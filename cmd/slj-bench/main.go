// Command slj-bench regenerates every figure and table of the paper's
// evaluation plus the ablations of DESIGN.md §4, printing paper-vs-measured
// rows for each (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	slj-bench [-seed S] [-figures] [-only ID]
//	slj-bench -json [-fast] [-seed S]
//	slj-bench -json [-fast] -compare BENCH_pipeline.json [-compare-threshold 25]
//
// -figures additionally prints the ASCII figure artefacts. -only restricts
// the run to one experiment id (F1..F7, T1, T2, T2est, A1..A4).
//
// -compare diffs the fresh perf document against a committed baseline
// (the BENCH trajectory series): matching rows — segmentation and
// end-to-end frames/sec, journal jobs/sec, dispatch round-trip latency,
// event-bus throughput — are reported with their deltas on stderr, and
// any regression beyond -compare-threshold percent exits nonzero.
//
// -json switches to the performance mode: instead of the experiment
// reports, it times the concurrency hot paths — per-frame segmentation at
// increasing worker counts, the end-to-end analysis sequential vs.
// parallel, the remote dispatch round trip over an in-process two-node
// worker pool (submit → hash-route → poll → result, cold and cache-hit),
// the durable-journal overhead on the async job path (jobs/sec with
// the journal off, on, and on with fsync-per-terminal), the GA fit
// profiles (the clip analysed under the default and fast pose.FitProfile,
// with the fast row's fitness excess and memo hit rate), the streaming
// clip-ingest path (chunked upload + seal wall clock, eager-segmentation
// reuse, inline vs by-hash dispatch payload bytes, and the by-hash
// analyze round trip cold and cache-hit), and the observability-plane
// overhead (jobs/sec with tracing, per-job resource accounting and SLO
// observation on vs off; -compare fails if it exceeds 5%) — and emits one
// machine-readable JSON document (schema slj-bench-perf/v1, frames/sec
// per configuration) on stdout, the data behind BENCH_*.json trajectory
// tracking. -fast trims the GA budget for quick comparisons.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sljmotion/sljmotion/internal/artifacts"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/dispatch"
	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/experiments"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/journal"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/server"
	"github.com/sljmotion/sljmotion/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slj-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Int64("seed", 1, "workload seed")
		figures   = flag.Bool("figures", false, "print ASCII figure artefacts")
		only      = flag.String("only", "", "run a single experiment id")
		jsonMode  = flag.Bool("json", false, "emit machine-readable perf JSON instead of experiment reports")
		fast      = flag.Bool("fast", false, "trim the GA budget in -json mode")
		compare   = flag.String("compare", "", "baseline perf JSON (e.g. BENCH_pipeline.json) to diff the fresh run against; implies -json")
		threshold = flag.Float64("compare-threshold", 25, "regression threshold for -compare, in percent")
	)
	flag.Parse()

	if *jsonMode || *compare != "" {
		return runPerf(*seed, *fast, *compare, *threshold)
	}

	type exp struct {
		id  string
		run func() (*experiments.Report, error)
	}
	all := []exp{
		{"F1", func() (*experiments.Report, error) { return experiments.Figure1(*seed) }},
		{"F2", func() (*experiments.Report, error) { return experiments.Figure2(*seed) }},
		{"F3", func() (*experiments.Report, error) { return experiments.Figure3(*seed) }},
		{"F4", func() (*experiments.Report, error) { return experiments.Figure4() }},
		{"F5", func() (*experiments.Report, error) { return experiments.Figure5() }},
		{"F6", func() (*experiments.Report, error) { return experiments.Figure6(*seed) }},
		{"F7", func() (*experiments.Report, error) {
			rep, _, err := experiments.Figure7(*seed)
			return rep, err
		}},
		{"T1", func() (*experiments.Report, error) { return experiments.Table1() }},
		{"T2", func() (*experiments.Report, error) {
			rep, _, err := experiments.Table2(*seed, false)
			return rep, err
		}},
		{"T2est", func() (*experiments.Report, error) {
			rep, _, err := experiments.Table2(*seed, true)
			return rep, err
		}},
		{"A1", func() (*experiments.Report, error) {
			rep, _, err := experiments.AblationSeeding(*seed)
			return rep, err
		}},
		{"A2", func() (*experiments.Report, error) { return experiments.AblationBackground(*seed) }},
		{"A3", func() (*experiments.Report, error) { return experiments.AblationShadow(*seed) }},
		{"A4", func() (*experiments.Report, error) { return experiments.AblationTracking(*seed) }},
	}

	failures := 0
	for _, e := range all {
		if *only != "" && e.id != *only {
			continue
		}
		rep, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Print(rep.String())
		if *figures && len(rep.Figures) > 0 {
			captions := make([]string, 0, len(rep.Figures))
			for c := range rep.Figures {
				captions = append(captions, c)
			}
			sort.Strings(captions)
			for _, c := range captions {
				fmt.Printf("  [%s]\n%s\n", c, rep.Figures[c])
			}
		}
		if !rep.OK() {
			failures++
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) had mismatching rows\n", failures)
	}
	return nil
}

// perfDoc is the machine-readable output of -json mode. NumCPU,
// GoMaxProcs and GoVersion are measurement provenance: a row measured at
// go_max_procs:1 reads as flat scaling however many workers it spawned,
// and without the provenance stamped into the document such a baseline is
// indistinguishable from a genuine scaling regression.
type perfDoc struct {
	Schema        string             `json:"schema"`
	NumCPU        int                `json:"num_cpu"`
	GoMaxProcs    int                `json:"go_max_procs"`
	GoVersion     string             `json:"go_version"`
	Seed          int64              `json:"seed"`
	Fast          bool               `json:"fast"`
	Frames        int                `json:"frames"`
	Width         int                `json:"width"`
	Height        int                `json:"height"`
	Segmentation  []perfSample       `json:"segmentation"`
	EndToEnd      []perfE2E          `json:"end_to_end"`
	GAProfiles    []perfGAProfile    `json:"ga_profiles,omitempty"`
	Dispatch      *perfDispatch      `json:"dispatch,omitempty"`
	Fleet         *perfFleet         `json:"fleet,omitempty"`
	Journal       *perfJournal       `json:"journal,omitempty"`
	Events        *perfEvents        `json:"events,omitempty"`
	Ingest        *perfIngest        `json:"ingest,omitempty"`
	Observability *perfObservability `json:"observability,omitempty"`
}

// perfGAProfile is one fit-profile row: the canonical clip analysed
// end-to-end under the named pose.FitProfile. The default row is the
// byte-identity reference; the fast row's worth is its frames/sec multiple,
// and its cost is FitnessDeltaVsDefault — the mean full-resolution Eq. (3)
// fitness excess over the default profile's poses, which the fidelity
// tolerance of DESIGN.md §15 bounds.
type perfGAProfile struct {
	Profile      string  `json:"profile"`
	Seconds      float64 `json:"seconds"`
	FramesPerSec float64 `json:"frames_per_sec"`
	// MeanFitness averages Estimate.Fitness over the tracked frames
	// (lower is a tighter silhouette fit).
	MeanFitness           float64 `json:"mean_fitness"`
	FitnessDeltaVsDefault float64 `json:"fitness_delta_vs_default"`
	// Evaluations counts fitness scores the GA requested across all
	// frames; MemoHitRate is the fraction answered from the memo table.
	Evaluations int     `json:"evaluations"`
	MemoHitRate float64 `json:"memo_hit_rate"`
}

// gaFitnessToleranceAbs is the determinism-sensitive compare guard: a
// fresh fast-profile row whose mean fitness exceeds the default profile's
// by more than this absolute amount fails -compare regardless of the
// percentage threshold (it means the speed profile started returning
// materially worse poses).
const gaFitnessToleranceAbs = 0.05

// perfIngest measures the streaming clip-ingest path against the inline
// upload it replaces: the chunked upload + seal wall clock (with the
// eager-segmentation reuse accounting the overlap buys), the dispatch
// payload size of a by-hash submission versus the same clip inline, and
// the by-hash analyze round trip cold (memo-assisted pipeline run) and
// resubmitted (result-cache hit).
type perfIngest struct {
	Frames           int     `json:"frames"`
	Chunks           int     `json:"chunks"`
	UploadSealMS     float64 `json:"upload_seal_ms"`
	EagerReused      int     `json:"eager_reused"`
	EagerResegmented int     `json:"eager_resegmented"`
	// InlinePayloadBytes vs ByHashPayloadBytes is the point of the
	// artifact store: the by-hash dispatch payload carries two content
	// hashes and a pose where the inline one carries every pixel.
	InlinePayloadBytes int       `json:"inline_payload_bytes"`
	ByHashPayloadBytes int       `json:"byhash_payload_bytes"`
	ByHashColdMS       perfStats `json:"byhash_cold_ms"`
	ByHashCacheHitMS   perfStats `json:"byhash_cache_hit_ms"`
}

// perfEvents measures the job event bus: one publisher fanning events
// over concurrent firehose subscribers (the dashboard pattern), pure
// in-memory — the ceiling on per-stage progress streaming.
type perfEvents struct {
	Events          int     `json:"events"`
	Subscribers     int     `json:"subscribers"`
	PublishPerSec   float64 `json:"publish_per_sec"`
	DeliveredPerSec float64 `json:"delivered_per_sec"`
	// Delivered counts events actually received across subscribers; the
	// drop-and-resync policy may discard under extreme pressure.
	Delivered int `json:"delivered"`
}

// perfObservability measures the cost of the observability plane on the
// async job path: segmentation-only jobs through an in-process Manager
// with tracing, per-job resource accounting and SLO observation on (the
// production default) versus everything disabled.
type perfObservability struct {
	Jobs          int     `json:"jobs"`
	OnJobsPerSec  float64 `json:"on_jobs_per_sec"`
	OffJobsPerSec float64 `json:"off_jobs_per_sec"`
	// OverheadPct is the throughput cost of observability; the -compare
	// guard fails when it exceeds observabilityOverheadMaxPct.
	OverheadPct float64 `json:"overhead_pct"`
}

// observabilityOverheadMaxPct is the absolute -compare guard on the
// observability section, independent of the percentage threshold: spans,
// resource snapshots and SLO observation together must cost under 5% of
// job throughput.
const observabilityOverheadMaxPct = 5.0

// perfJournal measures the durable-journal overhead on the async job
// path: segmentation-only jobs through an in-process Manager with no
// journal, with an unfsynced journal, and with the production policy
// (fsync on every terminal transition).
type perfJournal struct {
	Jobs            int     `json:"jobs"`
	OffJobsPerSec   float64 `json:"off_jobs_per_sec"`
	OnJobsPerSec    float64 `json:"on_jobs_per_sec"`
	FsyncJobsPerSec float64 `json:"fsync_jobs_per_sec"`
	// OverheadPct is the throughput cost of the production policy versus
	// no journal at all.
	OverheadPct float64 `json:"journal_overhead_pct"`
}

// perfDispatch times the remote dispatch round trip over an in-process
// two-node worker pool: cold submissions run the pipeline on the routed
// node; hits are identical resubmissions answered from that node's result
// cache.
type perfDispatch struct {
	Nodes      int                `json:"nodes"`
	RoundTrips int                `json:"round_trips"`
	ColdMS     perfStats          `json:"cold_ms"`
	CacheHitMS perfStats          `json:"cache_hit_ms"`
	NodeStats  []jobs.NodeMetrics `json:"node_metrics"`
}

// perfFleet times the elastic-fleet failover path (DESIGN.md §16): a clip
// computed on its ring primary, the primary killed, and the identical
// resubmission completing on the successor — once without replication (the
// successor recomputes the pipeline) and once with it (the successor
// answers from its replicated result cache). The gap between the two rows
// is what successor replication buys on node death.
type perfFleet struct {
	Rounds               int       `json:"rounds"`
	FailoverRecomputeMS  perfStats `json:"failover_recompute_ms"`
	FailoverReplicaHitMS perfStats `json:"failover_replica_hit_ms"`
}

// perfStats summarises a latency sample in milliseconds.
type perfStats struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func statsOf(samples []float64) perfStats {
	if len(samples) == 0 {
		return perfStats{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var sum float64
	for _, s := range sorted {
		sum += s
	}
	return perfStats{
		MeanMS: sum / float64(len(sorted)),
		P50MS:  sorted[len(sorted)/2],
		MaxMS:  sorted[len(sorted)-1],
	}
}

// perfSample is one segmentation timing at a fixed worker count.
// GoMaxProcs is the scheduler width the row actually ran under — workers
// beyond it time-slice one another instead of running in parallel.
type perfSample struct {
	Workers        int     `json:"workers"`
	Reps           int     `json:"reps"`
	SecondsPerClip float64 `json:"seconds_per_clip"`
	FramesPerSec   float64 `json:"frames_per_sec"`
	GoMaxProcs     int     `json:"go_max_procs"`
}

// perfE2E is one end-to-end analysis timing at a fixed parallelism.
type perfE2E struct {
	Parallelism  int     `json:"parallelism"`
	Seconds      float64 `json:"seconds"`
	FramesPerSec float64 `json:"frames_per_sec"`
	GoMaxProcs   int     `json:"go_max_procs"`
}

// runPerf times the concurrent hot paths on the canonical synthetic clip
// and prints one JSON document. With a baseline path it additionally
// reports per-row deltas on stderr, erroring past the regression
// threshold.
func runPerf(seed int64, fast bool, baselinePath string, thresholdPct float64) error {
	params := synth.DefaultJumpParams()
	params.Seed = seed
	v, err := synth.Generate(params)
	if err != nil {
		return err
	}
	maxprocs := runtime.GOMAXPROCS(0)
	doc := perfDoc{
		Schema:     "slj-bench-perf/v1",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: maxprocs,
		GoVersion:  runtime.Version(),
		Seed:       seed,
		Fast:       fast,
		Frames:     len(v.Frames),
		Width:      v.Frames[0].W,
		Height:     v.Frames[0].H,
	}

	workerCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		return err
	}
	for _, w := range workerCounts {
		if w > maxprocs {
			fmt.Fprintf(os.Stderr,
				"slj-bench: warning: workers=%d exceeds GOMAXPROCS=%d; the workers time-slice instead of running in parallel, so this row will read as flat scaling\n",
				w, maxprocs)
		}
		// Repeat until the sample is long enough to time reliably.
		const minSample = 300 * time.Millisecond
		reps := 0
		start := time.Now()
		for time.Since(start) < minSample {
			if _, err := pipe.RunWorkers(v.Frames, w); err != nil {
				return err
			}
			reps++
		}
		perClip := time.Since(start).Seconds() / float64(reps)
		doc.Segmentation = append(doc.Segmentation, perfSample{
			Workers:        w,
			Reps:           reps,
			SecondsPerClip: perClip,
			FramesPerSec:   float64(len(v.Frames)) / perClip,
			GoMaxProcs:     maxprocs,
		})
	}

	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	for _, par := range []int{1, runtime.NumCPU()} {
		cfg := core.DefaultConfig()
		cfg.Parallelism = par
		if fast {
			cfg.Pose.Population = 40
			cfg.Pose.Generations = 40
			cfg.Pose.Patience = 10
			cfg.Pose.RefineRounds = 1
		}
		an, err := core.New(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := an.Analyze(v.Frames, manual); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		doc.EndToEnd = append(doc.EndToEnd, perfE2E{
			Parallelism:  par,
			Seconds:      secs,
			FramesPerSec: float64(len(v.Frames)) / secs,
			GoMaxProcs:   maxprocs,
		})
		if par == runtime.NumCPU() {
			break // single-core host: one sample is the whole story
		}
	}

	gps, err := runGAProfilePerf(v, fast)
	if err != nil {
		return err
	}
	doc.GAProfiles = gps

	disp, err := runDispatchPerf(seed)
	if err != nil {
		return err
	}
	doc.Dispatch = disp

	fl, err := runFleetPerf(seed)
	if err != nil {
		return err
	}
	doc.Fleet = fl

	jl, err := runJournalPerf(v)
	if err != nil {
		return err
	}
	doc.Journal = jl

	doc.Events = runEventsPerf()

	ing, err := runIngestPerf(v)
	if err != nil {
		return err
	}
	doc.Ingest = ing

	ob, err := runObservabilityPerf(v)
	if err != nil {
		return err
	}
	doc.Observability = ob

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if baselinePath != "" {
		return compareBaseline(doc, baselinePath, thresholdPct)
	}
	return nil
}

// runGAProfilePerf analyses the canonical clip under each fit profile and
// reports the speed/fidelity trade: wall clock, mean Eq. (3) fitness (with
// the fast row's excess over the default row), and the GA's evaluation and
// memo-hit accounting. fast trims the GA budget the same way the e2e rows
// do, so the two sections stay comparable.
func runGAProfilePerf(v *synth.Video, fast bool) ([]perfGAProfile, error) {
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	var rows []perfGAProfile
	for _, name := range []string{"default", "fast"} {
		profile, err := pose.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Pose.Profile = profile
		if fast {
			cfg.Pose.Population = 40
			cfg.Pose.Generations = 40
			cfg.Pose.Patience = 10
			cfg.Pose.RefineRounds = 1
		}
		an, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := an.Analyze(v.Frames, manual)
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		var fitSum float64
		var fitN, evals, hits int
		for k, est := range res.Estimates {
			if k == 0 {
				continue // frame 0 echoes the manual pose
			}
			fitSum += est.Fitness
			fitN++
			if est.GA != nil {
				evals += est.GA.Evaluations
				hits += est.GA.MemoHits
			}
		}
		row := perfGAProfile{
			Profile:      name,
			Seconds:      secs,
			FramesPerSec: float64(len(v.Frames)) / secs,
			Evaluations:  evals,
		}
		if fitN > 0 {
			row.MeanFitness = fitSum / float64(fitN)
		}
		if evals > 0 {
			row.MemoHitRate = float64(hits) / float64(evals)
		}
		if len(rows) > 0 {
			row.FitnessDeltaVsDefault = row.MeanFitness - rows[0].MeanFitness
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runEventsPerf times the event bus: one publisher, four firehose
// subscribers draining concurrently.
func runEventsPerf() *perfEvents {
	const (
		nevents = 100000
		subs    = 4
	)
	hub := events.NewHub(events.Config{SubscriberBuffer: 4096, MaxSubscribers: subs, HistoryPerJob: 8})
	var delivered atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < subs; i++ {
		sub, err := hub.Subscribe("", 0)
		if err != nil {
			return nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := sub.Next(ctx); err != nil {
					return
				}
				delivered.Add(1)
			}
		}()
	}
	start := time.Now()
	for i := 0; i < nevents; i++ {
		hub.Publish(events.Event{
			Type:  events.TypeStage,
			JobID: fmt.Sprintf("job-%02d", i%64),
			Stage: "segmentation",
		})
	}
	publishSecs := time.Since(start).Seconds()
	hub.Close()
	wg.Wait()
	totalSecs := time.Since(start).Seconds()
	return &perfEvents{
		Events:          nevents,
		Subscribers:     subs,
		PublishPerSec:   float64(nevents) / publishSecs,
		DeliveredPerSec: float64(delivered.Load()) / totalSecs,
		Delivered:       int(delivered.Load()),
	}
}

// compareRow is one comparable measurement of a perf document.
type compareRow struct {
	name string
	old  float64
	new  float64
	// higherBetter: throughput rows regress downward, latency rows upward.
	higherBetter bool
}

// compareBaseline diffs the fresh document against a committed baseline,
// reporting every matching row and erroring when any regresses beyond the
// threshold.
func compareBaseline(doc perfDoc, path string, thresholdPct float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	var base perfDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("compare baseline %s: %w", path, err)
	}
	var rows []compareRow
	for _, b := range base.Segmentation {
		for _, n := range doc.Segmentation {
			if n.Workers == b.Workers {
				rows = append(rows, compareRow{
					name: fmt.Sprintf("segmentation workers=%d frames/sec", b.Workers),
					old:  b.FramesPerSec, new: n.FramesPerSec, higherBetter: true,
				})
			}
		}
	}
	// End-to-end rows only compare at matching GA budgets: a -fast run
	// against a full-budget baseline would always read as a huge "speedup".
	if doc.Fast == base.Fast {
		for _, b := range base.EndToEnd {
			for _, n := range doc.EndToEnd {
				if n.Parallelism == b.Parallelism {
					rows = append(rows, compareRow{
						name: fmt.Sprintf("end_to_end parallelism=%d frames/sec", b.Parallelism),
						old:  b.FramesPerSec, new: n.FramesPerSec, higherBetter: true,
					})
				}
			}
		}
	}
	// GA-profile rows likewise only compare at matching budgets.
	if doc.Fast == base.Fast {
		for _, b := range base.GAProfiles {
			for _, n := range doc.GAProfiles {
				if n.Profile == b.Profile {
					rows = append(rows, compareRow{
						name: fmt.Sprintf("ga_profile %s frames/sec", b.Profile),
						old:  b.FramesPerSec, new: n.FramesPerSec, higherBetter: true,
					})
				}
			}
		}
	}
	// Determinism-sensitive guard, independent of the percentage threshold:
	// the fast profile's fitness excess over the default row is bounded by
	// the fidelity tolerance, not allowed to drift with a noisy baseline.
	fitnessGuardFailures := 0
	for _, n := range doc.GAProfiles {
		if n.FitnessDeltaVsDefault > gaFitnessToleranceAbs {
			fmt.Fprintf(os.Stderr,
				"R ga_profile %s fitness delta %.4f exceeds tolerance %.2f\n",
				n.Profile, n.FitnessDeltaVsDefault, gaFitnessToleranceAbs)
			fitnessGuardFailures++
		}
	}
	if base.Journal != nil && doc.Journal != nil {
		rows = append(rows,
			compareRow{name: "journal off jobs/sec", old: base.Journal.OffJobsPerSec, new: doc.Journal.OffJobsPerSec, higherBetter: true},
			compareRow{name: "journal on jobs/sec", old: base.Journal.OnJobsPerSec, new: doc.Journal.OnJobsPerSec, higherBetter: true},
			compareRow{name: "journal fsync jobs/sec", old: base.Journal.FsyncJobsPerSec, new: doc.Journal.FsyncJobsPerSec, higherBetter: true},
		)
	}
	if base.Dispatch != nil && doc.Dispatch != nil {
		rows = append(rows,
			compareRow{name: "dispatch cold mean ms", old: base.Dispatch.ColdMS.MeanMS, new: doc.Dispatch.ColdMS.MeanMS},
			compareRow{name: "dispatch cache-hit mean ms", old: base.Dispatch.CacheHitMS.MeanMS, new: doc.Dispatch.CacheHitMS.MeanMS},
		)
	}
	if base.Fleet != nil && doc.Fleet != nil {
		rows = append(rows,
			compareRow{name: "fleet failover recompute mean ms", old: base.Fleet.FailoverRecomputeMS.MeanMS, new: doc.Fleet.FailoverRecomputeMS.MeanMS},
			compareRow{name: "fleet failover replica-hit mean ms", old: base.Fleet.FailoverReplicaHitMS.MeanMS, new: doc.Fleet.FailoverReplicaHitMS.MeanMS},
		)
	}
	if base.Ingest != nil && doc.Ingest != nil {
		rows = append(rows,
			compareRow{name: "ingest upload+seal ms", old: base.Ingest.UploadSealMS, new: doc.Ingest.UploadSealMS},
			compareRow{name: "ingest byhash payload bytes", old: float64(base.Ingest.ByHashPayloadBytes), new: float64(doc.Ingest.ByHashPayloadBytes)},
			compareRow{name: "ingest byhash cold mean ms", old: base.Ingest.ByHashColdMS.MeanMS, new: doc.Ingest.ByHashColdMS.MeanMS},
			compareRow{name: "ingest byhash cache-hit mean ms", old: base.Ingest.ByHashCacheHitMS.MeanMS, new: doc.Ingest.ByHashCacheHitMS.MeanMS},
		)
	}
	if base.Events != nil && doc.Events != nil {
		rows = append(rows,
			compareRow{name: "events publish/sec", old: base.Events.PublishPerSec, new: doc.Events.PublishPerSec, higherBetter: true},
			compareRow{name: "events delivered/sec", old: base.Events.DeliveredPerSec, new: doc.Events.DeliveredPerSec, higherBetter: true},
		)
	}
	if base.Observability != nil && doc.Observability != nil {
		rows = append(rows,
			compareRow{name: "observability on jobs/sec", old: base.Observability.OnJobsPerSec, new: doc.Observability.OnJobsPerSec, higherBetter: true},
			compareRow{name: "observability off jobs/sec", old: base.Observability.OffJobsPerSec, new: doc.Observability.OffJobsPerSec, higherBetter: true},
		)
	}
	// Absolute guard on the observability plane, like the fitness guard:
	// tracing + accounting must stay under observabilityOverheadMaxPct of
	// job throughput regardless of the percentage threshold.
	if doc.Observability != nil && doc.Observability.OverheadPct > observabilityOverheadMaxPct {
		fmt.Fprintf(os.Stderr,
			"R observability overhead %.1f%% exceeds the %.0f%% guard\n",
			doc.Observability.OverheadPct, observabilityOverheadMaxPct)
		fitnessGuardFailures++
	}

	fmt.Fprintf(os.Stderr, "bench compare vs %s (threshold %.0f%%):\n", path, thresholdPct)
	regressions := 0
	for _, r := range rows {
		if r.old == 0 {
			continue
		}
		deltaPct := 100 * (r.new - r.old) / r.old
		regressed := deltaPct < -thresholdPct
		if !r.higherBetter {
			regressed = deltaPct > thresholdPct
		}
		mark := "  "
		if regressed {
			mark = "R "
			regressions++
		}
		fmt.Fprintf(os.Stderr, "%s%-38s %12.2f -> %12.2f  (%+.1f%%)\n", mark, r.name, r.old, r.new, deltaPct)
	}
	regressions += fitnessGuardFailures
	if regressions > 0 {
		return fmt.Errorf("%d measurement(s) regressed beyond %.0f%% vs %s", regressions, thresholdPct, path)
	}
	fmt.Fprintf(os.Stderr, "no regressions beyond %.0f%% across %d comparable row(s)\n", thresholdPct, len(rows))
	return nil
}

// runJournalPerf measures jobs/sec through the async Manager with the
// journal off, on without fsync, and on with the production
// fsync-on-terminal policy, all over the same segmentation-only payload.
func runJournalPerf(v *synth.Video) (*perfJournal, error) {
	cfg := core.DefaultConfig()
	an, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	exec := jobs.ExecutorFunc(func(ctx context.Context, p jobs.Payload, _ func(string)) (any, error) {
		req, err := p.AnalysisRequest()
		if err != nil {
			return nil, err
		}
		return an.Run(ctx, req, nil)
	})
	payload, err := jobs.NewAnalysisPayload(jobs.ConfigFingerprint(cfg), core.Request{
		Frames:      v.Frames,
		ManualFirst: v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
		Stages:      core.OnlyStage(core.StageSegmentation),
	})
	if err != nil {
		return nil, err
	}

	const njobs = 12
	run := func(jrn jobs.Journal) (float64, error) {
		m, err := jobs.New(jobs.Config{Workers: 2, QueueSize: njobs, Journal: jrn}, exec)
		if err != nil {
			return 0, err
		}
		defer m.Close(context.Background())
		start := time.Now()
		ids := make([]string, 0, njobs)
		for i := 0; i < njobs; i++ {
			id, err := m.Submit(payload)
			if err != nil {
				return 0, err
			}
			ids = append(ids, id)
		}
		deadline := time.Now().Add(2 * time.Minute)
		for _, id := range ids {
			for {
				st, err := m.Status(id)
				if err != nil {
					return 0, err
				}
				if st.State == jobs.StateDone {
					break
				}
				if st.State == jobs.StateFailed {
					return 0, errors.New("journal bench job failed: " + st.Err)
				}
				if time.Now().After(deadline) {
					return 0, errors.New("journal bench timed out")
				}
				time.Sleep(time.Millisecond)
			}
		}
		return float64(njobs) / time.Since(start).Seconds(), nil
	}

	off, err := run(nil)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "slj-journal-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	onCfg := journal.DefaultConfig()
	onCfg.DisableTerminalFsync = true
	jOn, err := journal.Open(filepath.Join(dir, "on.journal"), onCfg)
	if err != nil {
		return nil, err
	}
	on, err := run(jOn)
	jOn.Close()
	if err != nil {
		return nil, err
	}
	jFs, err := journal.Open(filepath.Join(dir, "fsync.journal"), journal.DefaultConfig())
	if err != nil {
		return nil, err
	}
	fsynced, err := run(jFs)
	jFs.Close()
	if err != nil {
		return nil, err
	}
	return &perfJournal{
		Jobs:            njobs,
		OffJobsPerSec:   off,
		OnJobsPerSec:    on,
		FsyncJobsPerSec: fsynced,
		OverheadPct:     100 * (off - fsynced) / off,
	}, nil
}

// runObservabilityPerf measures jobs/sec through the async Manager with
// the observability plane on versus off. The modes alternate across
// four rounds each and keep their best round: the measured overhead is
// a few percent at most, so a single noisy round — or machine drift
// favouring whichever mode ran last — would dominate the signal.
func runObservabilityPerf(v *synth.Video) (*perfObservability, error) {
	cfg := core.DefaultConfig()
	an, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	exec := jobs.ExecutorFunc(func(ctx context.Context, p jobs.Payload, _ func(string)) (any, error) {
		req, err := p.AnalysisRequest()
		if err != nil {
			return nil, err
		}
		return an.Run(ctx, req, nil)
	})
	payload, err := jobs.NewAnalysisPayload(jobs.ConfigFingerprint(cfg), core.Request{
		Frames:      v.Frames,
		ManualFirst: v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
		Stages:      core.OnlyStage(core.StageSegmentation),
	})
	if err != nil {
		return nil, err
	}

	const njobs = 24
	run := func(disable bool) (float64, error) {
		mcfg := jobs.Config{Workers: 2, QueueSize: njobs, DisableObservability: disable}
		if !disable {
			mcfg.SLO = obs.NewSLO(2*time.Second, 0.99)
		}
		m, err := jobs.New(mcfg, exec)
		if err != nil {
			return 0, err
		}
		defer m.Close(context.Background())
		start := time.Now()
		ids := make([]string, 0, njobs)
		for i := 0; i < njobs; i++ {
			id, err := m.Submit(payload)
			if err != nil {
				return 0, err
			}
			ids = append(ids, id)
		}
		deadline := time.Now().Add(2 * time.Minute)
		for _, id := range ids {
			for {
				st, err := m.Status(id)
				if err != nil {
					return 0, err
				}
				if st.State == jobs.StateDone {
					break
				}
				if st.State == jobs.StateFailed {
					return 0, errors.New("observability bench job failed: " + st.Err)
				}
				if time.Now().After(deadline) {
					return 0, errors.New("observability bench timed out")
				}
				time.Sleep(time.Millisecond)
			}
		}
		return float64(njobs) / time.Since(start).Seconds(), nil
	}
	var on, off float64
	for round := 0; round < 4; round++ {
		r, err := run(false)
		if err != nil {
			return nil, err
		}
		if r > on {
			on = r
		}
		if r, err = run(true); err != nil {
			return nil, err
		}
		if r > off {
			off = r
		}
	}
	return &perfObservability{
		Jobs:          njobs,
		OnJobsPerSec:  on,
		OffJobsPerSec: off,
		OverheadPct:   100 * (off - on) / off,
	}, nil
}

// runDispatchPerf measures the remote dispatch round trip: two slj-serve
// worker nodes on an in-process HTTP stack, segmentation-only payloads
// hash-routed over them, each clip submitted cold and then resubmitted to
// hit the routed node's result cache.
func runDispatchPerf(seed int64) (*perfDispatch, error) {
	const nodes = 2
	cfg := core.DefaultConfig()

	var urls []string
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i := 0; i < nodes; i++ {
		opts := server.DefaultOptions()
		opts.Worker = true
		s, err := server.NewWithOptions(cfg, nil, opts)
		if err != nil {
			return nil, err
		}
		hs := httptest.NewServer(s.Handler())
		closers = append(closers, func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Close(ctx)
		})
		urls = append(urls, hs.URL)
	}
	d, err := dispatch.New(dispatch.Config{Nodes: urls})
	if err != nil {
		return nil, err
	}
	closers = append(closers, func() { _ = d.Close(context.Background()) })

	// Distinct clips spread over the ring; identical resubmissions measure
	// the cache-hit path on the same node.
	const clips = 4
	fp := jobs.ConfigFingerprint(cfg)
	var payloads []jobs.Payload
	for i := 0; i < clips; i++ {
		params := synth.DefaultJumpParams()
		params.Seed = seed + int64(i)
		v, err := synth.Generate(params)
		if err != nil {
			return nil, err
		}
		p, err := jobs.NewAnalysisPayload(fp, core.Request{
			Frames:      v.Frames,
			ManualFirst: v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
			Stages:      core.OnlyStage(core.StageSegmentation),
		})
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, p)
	}

	var cold, hit []float64
	for _, p := range payloads {
		ms, err := dispatchRoundTrip(d, p)
		if err != nil {
			return nil, fmt.Errorf("dispatch bench (cold): %w", err)
		}
		cold = append(cold, ms)
	}
	for _, p := range payloads {
		ms, err := dispatchRoundTrip(d, p)
		if err != nil {
			return nil, fmt.Errorf("dispatch bench (hit): %w", err)
		}
		hit = append(hit, ms)
	}

	return &perfDispatch{
		Nodes:      nodes,
		RoundTrips: len(cold) + len(hit),
		ColdMS:     statsOf(cold),
		CacheHitMS: statsOf(hit),
		NodeStats:  d.Metrics().Nodes,
	}, nil
}

// dispatchRoundTrip submits one payload and polls until its result lands,
// returning the wall-clock milliseconds.
func dispatchRoundTrip(d *dispatch.Remote, p jobs.Payload) (float64, error) {
	start := time.Now()
	id, err := d.Submit(p)
	if err != nil {
		return 0, err
	}
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		if _, err := d.Result(id); err == nil {
			return time.Since(start).Seconds() * 1000, nil
		} else if !errors.Is(err, jobs.ErrNotFinished) {
			return 0, err
		}
		time.Sleep(time.Millisecond)
	}
	return 0, errors.New("dispatch round trip timed out")
}

// runFleetPerf measures one node-death failover per mode and round: a clip
// is computed on whichever worker the ring picked, that worker's listener
// is torn down, and the identical resubmission is timed end to end. With
// Replicate off the ring successor re-runs the pipeline; with it on, the
// successor answers from the result replicated to it before the kill.
func runFleetPerf(seed int64) (*perfFleet, error) {
	const rounds = 2
	cfg := core.DefaultConfig()
	fp := jobs.ConfigFingerprint(cfg)

	measure := func(replicate bool, round int) (ms float64, err error) {
		var closers []func()
		defer func() {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
		}()
		var faces []*httptest.Server
		for i := 0; i < 2; i++ {
			opts := server.DefaultOptions()
			opts.Worker = true
			if replicate {
				repl := dispatch.NewReplicator(nil)
				closers = append(closers, repl.Close)
				opts.Replicator = repl
			}
			s, err := server.NewWithOptions(cfg, nil, opts)
			if err != nil {
				return 0, err
			}
			hs := httptest.NewServer(s.Handler())
			closers = append(closers, func() {
				hs.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_ = s.Close(ctx)
			})
			faces = append(faces, hs)
		}
		dcfg := dispatch.DefaultConfig()
		dcfg.Nodes = []string{faces[0].URL, faces[1].URL}
		dcfg.HealthInterval = time.Hour // failover timing, not probe timing
		dcfg.Replicate = replicate
		d, err := dispatch.New(dcfg)
		if err != nil {
			return 0, err
		}
		closers = append(closers, func() { _ = d.Close(context.Background()) })

		params := synth.DefaultJumpParams()
		params.Seed = seed + int64(round)
		v, err := synth.Generate(params)
		if err != nil {
			return 0, err
		}
		p, err := jobs.NewAnalysisPayload(fp, core.Request{
			Frames:      v.Frames,
			ManualFirst: v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
			Stages:      core.OnlyStage(core.StageSegmentation),
		})
		if err != nil {
			return 0, err
		}
		if _, err := dispatchRoundTrip(d, p); err != nil {
			return 0, fmt.Errorf("fleet bench (warm-up run): %w", err)
		}

		// Identify the worker that ran the clip; the other holds (or will
		// hold) the replica.
		runner := -1
		for _, n := range d.Metrics().Nodes {
			if n.Submitted == 0 {
				continue
			}
			for i, hs := range faces {
				if hs.URL == n.URL {
					runner = i
				}
			}
		}
		if runner < 0 {
			return 0, errors.New("fleet bench: no worker ran the clip")
		}
		if replicate {
			if err := waitForReplica(faces[1-runner].URL, 15*time.Second); err != nil {
				return 0, err
			}
		}
		faces[runner].Close()
		ms, err = dispatchRoundTrip(d, p)
		if err != nil {
			return 0, fmt.Errorf("fleet bench (failover): %w", err)
		}
		return ms, nil
	}

	out := &perfFleet{Rounds: rounds}
	var recompute, replicaHit []float64
	for round := 0; round < rounds; round++ {
		ms, err := measure(false, round)
		if err != nil {
			return nil, err
		}
		recompute = append(recompute, ms)
		ms, err = measure(true, round)
		if err != nil {
			return nil, err
		}
		replicaHit = append(replicaHit, ms)
	}
	out.FailoverRecomputeMS = statsOf(recompute)
	out.FailoverReplicaHitMS = statsOf(replicaHit)
	return out, nil
}

// waitForReplica polls a worker's metrics until a replicated result has
// been received, bounding how long the push may lag.
func waitForReplica(workerURL string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		resp, err := http.Get(workerURL + "/v1/metrics")
		if err != nil {
			return err
		}
		var doc struct {
			Replication *struct {
				ResultsReceived uint64 `json:"results_received"`
			} `json:"replication"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if doc.Replication != nil && doc.Replication.ResultsReceived > 0 {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return errors.New("fleet bench: replica never reached the successor")
}

// ingestJSON posts a JSON document (nil for an empty body) and decodes the
// JSON response into out, erroring on any status other than want.
func ingestJSON(method, url string, body io.Reader, contentType string, want int, out any) error {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: %d %s", method, url, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("%s %s: malformed document: %w", method, url, err)
		}
	}
	return nil
}

// runIngestPerf measures the streaming clip-ingest path on an in-process
// server: the canonical clip uploaded over a chunked ingest session and
// sealed into content-addressed artifacts, then analysed by hash. The
// payload-size rows marshal the actual dispatch wire forms: the inline
// payload carries every frame base64-encoded, the by-hash payload two
// content hashes and the manual pose.
func runIngestPerf(v *synth.Video) (*perfIngest, error) {
	cfg := core.DefaultConfig()
	s, err := server.NewWithOptions(cfg, nil, server.DefaultOptions())
	if err != nil {
		return nil, err
	}
	hs := httptest.NewServer(s.Handler())
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	}()

	const chunkFrames = 4
	var open struct {
		ClipID string `json:"clip_id"`
	}
	start := time.Now()
	if err := ingestJSON(http.MethodPost, hs.URL+"/v1/clips", nil, "", http.StatusCreated, &open); err != nil {
		return nil, err
	}
	chunks := 0
	for i := 0; i < len(v.Frames); i += chunkFrames {
		end := i + chunkFrames
		if end > len(v.Frames) {
			end = len(v.Frames)
		}
		var body bytes.Buffer
		mw := multipart.NewWriter(&body)
		if err := mw.WriteField("chunk", strconv.Itoa(chunks)); err != nil {
			return nil, err
		}
		for k, f := range v.Frames[i:end] {
			fw, err := mw.CreateFormFile("frames", fmt.Sprintf("frame_%04d.ppm", k))
			if err != nil {
				return nil, err
			}
			if err := imaging.EncodePPM(fw, f); err != nil {
				return nil, err
			}
		}
		mw.Close()
		if err := ingestJSON(http.MethodPut, hs.URL+"/v1/clips/"+open.ClipID+"/frames",
			&body, mw.FormDataContentType(), http.StatusOK, nil); err != nil {
			return nil, err
		}
		chunks++
	}
	var seal artifacts.SealDoc
	if err := ingestJSON(http.MethodPost, hs.URL+"/v1/clips/"+open.ClipID+"/seal",
		nil, "", http.StatusOK, &seal); err != nil {
		return nil, err
	}
	uploadSealMS := time.Since(start).Seconds() * 1000

	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	fp := jobs.ConfigFingerprint(cfg)
	inlineReq := core.Request{
		Frames:             v.Frames,
		ManualFirst:        manual,
		Stages:             core.OnlyStage(core.StageSegmentation),
		IncludeSilhouettes: true,
	}
	inlineP, err := jobs.NewAnalysisPayload(fp, inlineReq)
	if err != nil {
		return nil, err
	}
	inlineRaw, err := json.Marshal(inlineP)
	if err != nil {
		return nil, err
	}
	refReq := inlineReq
	refReq.Frames = nil
	refReq.FramesRef = seal.FramesHash
	refP, err := jobs.NewArtifactPayload(fp, refReq, inlineReq)
	if err != nil {
		return nil, err
	}
	refRaw, err := json.Marshal(refP)
	if err != nil {
		return nil, err
	}

	analyzeDoc, err := json.Marshal(map[string]any{
		"frames_ref":   seal.FramesHash,
		"manual_first": map[string]any{"x": manual.X, "y": manual.Y, "rho": manual.Rho[:]},
		"stages":       "segmentation",
		"silhouettes":  true,
	})
	if err != nil {
		return nil, err
	}
	roundTrip := func() (float64, error) {
		t0 := time.Now()
		if err := ingestJSON(http.MethodPost, hs.URL+"/v1/analyze",
			bytes.NewReader(analyzeDoc), "application/json", http.StatusOK, nil); err != nil {
			return 0, err
		}
		return time.Since(t0).Seconds() * 1000, nil
	}
	coldMS, err := roundTrip()
	if err != nil {
		return nil, fmt.Errorf("ingest bench (cold): %w", err)
	}
	var hit []float64
	for i := 0; i < 4; i++ {
		ms, err := roundTrip()
		if err != nil {
			return nil, fmt.Errorf("ingest bench (hit): %w", err)
		}
		hit = append(hit, ms)
	}

	return &perfIngest{
		Frames:             seal.Frames,
		Chunks:             chunks,
		UploadSealMS:       uploadSealMS,
		EagerReused:        seal.EagerReused,
		EagerResegmented:   seal.EagerResegmented,
		InlinePayloadBytes: len(inlineRaw),
		ByHashPayloadBytes: len(refRaw),
		ByHashColdMS:       statsOf([]float64{coldMS}),
		ByHashCacheHitMS:   statsOf(hit),
	}, nil
}
