// Command slj-bench regenerates every figure and table of the paper's
// evaluation plus the ablations of DESIGN.md §4, printing paper-vs-measured
// rows for each (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	slj-bench [-seed S] [-figures] [-only ID]
//	slj-bench -json [-fast] [-seed S]
//
// -figures additionally prints the ASCII figure artefacts. -only restricts
// the run to one experiment id (F1..F7, T1, T2, T2est, A1..A4).
//
// -json switches to the performance mode: instead of the experiment
// reports, it times the concurrency hot paths — per-frame segmentation at
// increasing worker counts and the end-to-end analysis sequential vs.
// parallel — and emits one machine-readable JSON document (schema
// slj-bench-perf/v1, frames/sec per configuration) on stdout, the data
// behind BENCH_*.json trajectory tracking. -fast trims the GA budget for
// quick comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/experiments"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slj-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 1, "workload seed")
		figures  = flag.Bool("figures", false, "print ASCII figure artefacts")
		only     = flag.String("only", "", "run a single experiment id")
		jsonMode = flag.Bool("json", false, "emit machine-readable perf JSON instead of experiment reports")
		fast     = flag.Bool("fast", false, "trim the GA budget in -json mode")
	)
	flag.Parse()

	if *jsonMode {
		return runPerf(*seed, *fast)
	}

	type exp struct {
		id  string
		run func() (*experiments.Report, error)
	}
	all := []exp{
		{"F1", func() (*experiments.Report, error) { return experiments.Figure1(*seed) }},
		{"F2", func() (*experiments.Report, error) { return experiments.Figure2(*seed) }},
		{"F3", func() (*experiments.Report, error) { return experiments.Figure3(*seed) }},
		{"F4", func() (*experiments.Report, error) { return experiments.Figure4() }},
		{"F5", func() (*experiments.Report, error) { return experiments.Figure5() }},
		{"F6", func() (*experiments.Report, error) { return experiments.Figure6(*seed) }},
		{"F7", func() (*experiments.Report, error) {
			rep, _, err := experiments.Figure7(*seed)
			return rep, err
		}},
		{"T1", func() (*experiments.Report, error) { return experiments.Table1() }},
		{"T2", func() (*experiments.Report, error) {
			rep, _, err := experiments.Table2(*seed, false)
			return rep, err
		}},
		{"T2est", func() (*experiments.Report, error) {
			rep, _, err := experiments.Table2(*seed, true)
			return rep, err
		}},
		{"A1", func() (*experiments.Report, error) {
			rep, _, err := experiments.AblationSeeding(*seed)
			return rep, err
		}},
		{"A2", func() (*experiments.Report, error) { return experiments.AblationBackground(*seed) }},
		{"A3", func() (*experiments.Report, error) { return experiments.AblationShadow(*seed) }},
		{"A4", func() (*experiments.Report, error) { return experiments.AblationTracking(*seed) }},
	}

	failures := 0
	for _, e := range all {
		if *only != "" && e.id != *only {
			continue
		}
		rep, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Print(rep.String())
		if *figures && len(rep.Figures) > 0 {
			captions := make([]string, 0, len(rep.Figures))
			for c := range rep.Figures {
				captions = append(captions, c)
			}
			sort.Strings(captions)
			for _, c := range captions {
				fmt.Printf("  [%s]\n%s\n", c, rep.Figures[c])
			}
		}
		if !rep.OK() {
			failures++
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) had mismatching rows\n", failures)
	}
	return nil
}

// perfDoc is the machine-readable output of -json mode.
type perfDoc struct {
	Schema       string       `json:"schema"`
	NumCPU       int          `json:"num_cpu"`
	GoMaxProcs   int          `json:"go_max_procs"`
	Seed         int64        `json:"seed"`
	Fast         bool         `json:"fast"`
	Frames       int          `json:"frames"`
	Width        int          `json:"width"`
	Height       int          `json:"height"`
	Segmentation []perfSample `json:"segmentation"`
	EndToEnd     []perfE2E    `json:"end_to_end"`
}

// perfSample is one segmentation timing at a fixed worker count.
type perfSample struct {
	Workers        int     `json:"workers"`
	Reps           int     `json:"reps"`
	SecondsPerClip float64 `json:"seconds_per_clip"`
	FramesPerSec   float64 `json:"frames_per_sec"`
}

// perfE2E is one end-to-end analysis timing at a fixed parallelism.
type perfE2E struct {
	Parallelism  int     `json:"parallelism"`
	Seconds      float64 `json:"seconds"`
	FramesPerSec float64 `json:"frames_per_sec"`
}

// runPerf times the concurrent hot paths on the canonical synthetic clip
// and prints one JSON document.
func runPerf(seed int64, fast bool) error {
	params := synth.DefaultJumpParams()
	params.Seed = seed
	v, err := synth.Generate(params)
	if err != nil {
		return err
	}
	doc := perfDoc{
		Schema:     "slj-bench-perf/v1",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Fast:       fast,
		Frames:     len(v.Frames),
		Width:      v.Frames[0].W,
		Height:     v.Frames[0].H,
	}

	workerCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		return err
	}
	for _, w := range workerCounts {
		// Repeat until the sample is long enough to time reliably.
		const minSample = 300 * time.Millisecond
		reps := 0
		start := time.Now()
		for time.Since(start) < minSample {
			if _, err := pipe.RunWorkers(v.Frames, w); err != nil {
				return err
			}
			reps++
		}
		perClip := time.Since(start).Seconds() / float64(reps)
		doc.Segmentation = append(doc.Segmentation, perfSample{
			Workers:        w,
			Reps:           reps,
			SecondsPerClip: perClip,
			FramesPerSec:   float64(len(v.Frames)) / perClip,
		})
	}

	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	for _, par := range []int{1, runtime.NumCPU()} {
		cfg := core.DefaultConfig()
		cfg.Parallelism = par
		if fast {
			cfg.Pose.Population = 40
			cfg.Pose.Generations = 40
			cfg.Pose.Patience = 10
			cfg.Pose.RefineRounds = 1
		}
		an, err := core.New(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := an.Analyze(v.Frames, manual); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		doc.EndToEnd = append(doc.EndToEnd, perfE2E{
			Parallelism:  par,
			Seconds:      secs,
			FramesPerSec: float64(len(v.Frames)) / secs,
		})
		if par == runtime.NumCPU() {
			break // single-core host: one sample is the whole story
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
