// Command slj-bench regenerates every figure and table of the paper's
// evaluation plus the ablations of DESIGN.md §4, printing paper-vs-measured
// rows for each (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	slj-bench [-seed S] [-figures] [-only ID]
//
// -figures additionally prints the ASCII figure artefacts. -only restricts
// the run to one experiment id (F1..F7, T1, T2, T2est, A1..A4).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/sljmotion/sljmotion/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slj-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 1, "workload seed")
		figures = flag.Bool("figures", false, "print ASCII figure artefacts")
		only    = flag.String("only", "", "run a single experiment id")
	)
	flag.Parse()

	type exp struct {
		id  string
		run func() (*experiments.Report, error)
	}
	all := []exp{
		{"F1", func() (*experiments.Report, error) { return experiments.Figure1(*seed) }},
		{"F2", func() (*experiments.Report, error) { return experiments.Figure2(*seed) }},
		{"F3", func() (*experiments.Report, error) { return experiments.Figure3(*seed) }},
		{"F4", func() (*experiments.Report, error) { return experiments.Figure4() }},
		{"F5", func() (*experiments.Report, error) { return experiments.Figure5() }},
		{"F6", func() (*experiments.Report, error) { return experiments.Figure6(*seed) }},
		{"F7", func() (*experiments.Report, error) {
			rep, _, err := experiments.Figure7(*seed)
			return rep, err
		}},
		{"T1", func() (*experiments.Report, error) { return experiments.Table1() }},
		{"T2", func() (*experiments.Report, error) {
			rep, _, err := experiments.Table2(*seed, false)
			return rep, err
		}},
		{"T2est", func() (*experiments.Report, error) {
			rep, _, err := experiments.Table2(*seed, true)
			return rep, err
		}},
		{"A1", func() (*experiments.Report, error) {
			rep, _, err := experiments.AblationSeeding(*seed)
			return rep, err
		}},
		{"A2", func() (*experiments.Report, error) { return experiments.AblationBackground(*seed) }},
		{"A3", func() (*experiments.Report, error) { return experiments.AblationShadow(*seed) }},
		{"A4", func() (*experiments.Report, error) { return experiments.AblationTracking(*seed) }},
	}

	failures := 0
	for _, e := range all {
		if *only != "" && e.id != *only {
			continue
		}
		rep, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Print(rep.String())
		if *figures && len(rep.Figures) > 0 {
			captions := make([]string, 0, len(rep.Figures))
			for c := range rep.Figures {
				captions = append(captions, c)
			}
			sort.Strings(captions)
			for _, c := range captions {
				fmt.Printf("  [%s]\n%s\n", c, rep.Figures[c])
			}
		}
		if !rep.OK() {
			failures++
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) had mismatching rows\n", failures)
	}
	return nil
}
