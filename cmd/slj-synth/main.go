// Command slj-synth renders synthetic standing-long-jump clips (the data
// substrate replacing the paper's CCD footage) and writes the frames as PPM
// files plus a ground-truth pose file.
//
// Usage:
//
//	slj-synth -out DIR [-frames N] [-w W] [-h H] [-seed S] [-defect NAME]
//
// Defect names: none, no-knee-bend, no-neck-bend, no-arm-backswing,
// straight-arms, no-air-knee-bend, upright-trunk, no-arm-forward.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slj-synth:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out    = flag.String("out", "", "output directory (required)")
		frames = flag.Int("frames", 20, "number of frames")
		width  = flag.Int("w", 192, "frame width")
		height = flag.Int("h", 144, "frame height")
		seed   = flag.Int64("seed", 1, "render seed")
		defect = flag.String("defect", "none", "planted form defect")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	p := synth.DefaultJumpParams()
	p.Frames = *frames
	p.W, p.H = *width, *height
	p.Seed = *seed
	var ok bool
	p.Defects, ok = defectByName(*defect)
	if !ok {
		return fmt.Errorf("unknown defect %q", *defect)
	}

	v, err := synth.Generate(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if err := clipio.WriteFrames(*out, v.Frames); err != nil {
		return err
	}
	if err := imaging.WritePPMFile(filepath.Join(*out, "background.ppm"), v.Background); err != nil {
		return err
	}
	if err := clipio.WritePosesFile(filepath.Join(*out, "truth.txt"), v.Truth); err != nil {
		return err
	}
	fmt.Printf("wrote %d frames + background + truth to %s\n", len(v.Frames), *out)
	return nil
}

func defectByName(name string) (synth.FormDefects, bool) {
	switch name {
	case "none", "":
		return synth.FormDefects{}, true
	case "no-knee-bend":
		return synth.FormDefects{NoKneeBend: true}, true
	case "no-neck-bend":
		return synth.FormDefects{NoNeckBend: true}, true
	case "no-arm-backswing":
		return synth.FormDefects{NoArmBackswing: true}, true
	case "straight-arms":
		return synth.FormDefects{StraightArms: true}, true
	case "no-air-knee-bend":
		return synth.FormDefects{NoAirKneeBend: true}, true
	case "upright-trunk":
		return synth.FormDefects{UprightTrunk: true}, true
	case "no-arm-forward":
		return synth.FormDefects{NoArmForward: true}, true
	default:
		return synth.FormDefects{}, false
	}
}
