// Command slj-serve runs the web service the paper names as future work:
// upload a standing-long-jump clip, receive a JSON analysis with scores and
// advice.
//
// Usage:
//
//	slj-serve [-addr :8080] [-workers N] [-queue N] [-result-ttl 15m]
//	          [-parallelism N] [-fit-profile default|fast]
//	          [-cache-size N] [-cache-ttl 15m]
//	          [-journal path] [-worker] [-dispatch-nodes url1,url2,...]
//	          [-fleet] [-replicate]
//	          [-join url -advertise url] [-join-weight N] [-drain-on-shutdown]
//	          [-event-subscribers N] [-event-buffer N]
//	          [-log-level info] [-log-format text] [-pprof]
//
// Endpoints (versioned under /v1; the unversioned paths remain as
// aliases):
//
//	POST /v1/analyze  synchronous: multipart form with 'frames' = PPM
//	                  files (ordered by name), 'truth' = truth.txt with
//	                  the manual first-frame pose, optional 'poses=1' /
//	                  'silhouettes=1' to shape the response and 'stages'
//	                  to run a pipeline prefix (e.g. stages=segmentation).
//	POST /v1/jobs     asynchronous: same form; replies 202 with a job id,
//	                  200 with the cached response for a resubmitted
//	                  identical clip, or 503 + Retry-After when the queue
//	                  is full.
//	GET  /v1/jobs     job history, newest-first (state=..., limit=N,
//	                  cursor= pagination; the reply's next_cursor token
//	                  continues the listing).
//	GET  /v1/jobs/{id}         job lifecycle state and pipeline stage.
//	GET  /v1/jobs/{id}/result  the AnalysisResponse once the job is done.
//	GET  /v1/jobs/{id}/trace   the job's span tree: where the wall-clock
//	                  time went (queue wait, each pipeline stage, journal
//	                  append, publish; on a dispatching front end, the
//	                  fan-out attempts with the worker node's tree grafted
//	                  underneath).
//	GET  /v1/jobs/{id}/events  server-sent events: live lifecycle and
//	                  per-stage progress (curl -N; Last-Event-ID resumes
//	                  a dropped stream; the terminal frame embeds the
//	                  result document).
//	GET  /v1/events   the global event feed of every job (state= filter),
//	                  for dashboards.
//	GET  /v1/metrics  queue depth, throughput counters, latency stats and
//	                  result-cache hit/miss counters (JSON by default;
//	                  ?format=prometheus serves the text exposition format
//	                  with latency histograms and runtime gauges).
//	GET  /v1/rules    the encoded Tables 1-2.
//	GET  /v1/healthz  deep health: overall status, clips analysed, and one
//	                  verdict per watchdog component (queue stall, fleet
//	                  routability, drain progress, replication backlog,
//	                  SLO burn rate). HTTP 200 even when degraded.
//	GET  /v1/fleet/metrics  the federated cluster scrape: every fleet
//	                  member's Prometheus exposition merged under a node
//	                  label (dispatching front ends only).
//
// -slo-latency-ms sets the end-to-end latency objective of the SLO plane
// (default 2000ms at a 99% target; -slo-target tunes the ratio): every
// terminal job is scored against it, and /v1/metrics?format=prometheus
// exposes rolling 5m/1h error-budget burn-rate gauges
// (slj_slo_error_budget_burn) alongside per-component health gauges
// (slj_health_component_ok).
//
// Streaming ingest + content-addressed artifacts (DESIGN.md §14): POST
// /v1/clips opens a chunked upload session, PUT /v1/clips/{id}/frames
// appends ordered frame chunks (segmentation starts speculatively as
// chunks arrive), POST /v1/clips/{id}/seal yields content hashes, and an
// application/json POST to /v1/analyze or /v1/jobs naming frames_ref
// analyses the stored clip without re-uploading a byte. Artifact blobs are
// stored/served at /v1/artifacts (-artifact-blobs/-artifact-bytes/
// -artifact-ttl bound the store, -artifact-spill adds a disk tier,
// -clip-ttl expires idle sessions). A dispatching front end sets
// -artifact-origin to its own public base URL so worker nodes can pull
// referenced artifacts by hash (-max-payload-bytes caps the worker intake
// body; by-reference payloads skip the base64 headroom).
//
// -workers sizes the analysis worker pool and -queue the submission queue
// (backpressure beyond it). -result-ttl bounds how long finished results
// stay pollable. -parallelism fans the per-frame hot paths of one analysis
// out over that many goroutines (0 keeps each analysis sequential).
// -cache-size bounds the content-addressed result cache (0 disables it)
// and -cache-ttl its entry lifetime. -event-subscribers caps concurrently
// connected event-stream clients (excess answers 503 + Retry-After) and
// -event-buffer sizes each subscriber's pending-event ring (a slower
// client is resynced — snapshot + delta — never allowed to stall the
// pipeline).
//
// -journal makes the job table durable (DESIGN.md §11): every submission,
// state transition and TTL eviction is appended to a JSON-lines journal at
// the given path (fsynced on terminal transitions), and a restart replays
// it — interrupted jobs re-run to identical results, finished results stay
// pollable with their original timestamps, and GET /v1/jobs serves the
// surviving history. Without -journal jobs live in memory only and a
// restart drops them.
//
// Multi-node deployment (DESIGN.md §10): start N nodes with -worker — they
// additionally accept serialized job payloads at POST /v1/worker/jobs —
// and one front end with -dispatch-nodes listing them. The front end then
// fans every asynchronous job out over the pool, hash-routed by the
// request's cache key so identical clips hit the node that already cached
// their result:
//
//	slj-serve -worker -addr :8081 &
//	slj-serve -worker -addr :8082 &
//	slj-serve -dispatch-nodes http://localhost:8081,http://localhost:8082
//
// The fleet is elastic (DESIGN.md §16): -fleet runs the front end even with
// an empty node list, workers register themselves at runtime with -join
// http://front -advertise http://me (weighted by -join-weight for uneven
// hardware), and -drain-on-shutdown makes SIGTERM leave the ring gracefully
// — no new keys, in-flight jobs finish, then removal — before the listener
// stops. -replicate on the front end stamps every payload with its ring
// successor; workers mirror cache fills and artifacts there, so a node
// death fails over to a warm cache instead of recomputing.
//
// Example round trip against a synthetic clip:
//
//	slj-synth -out /tmp/clip
//	curl -s -X POST http://localhost:8080/v1/jobs \
//	  $(for f in /tmp/clip/frame_*.ppm; do printf ' -F frames=@%s' "$f"; done) \
//	  -F truth=@/tmp/clip/truth.txt
//	curl -s http://localhost:8080/v1/jobs/<id>/result | head
//
// Logging is structured (log/slog) and correlated: every job lifecycle
// line carries its job_id and trace_id. -log-level picks the threshold
// (debug, info, warn, error) and -log-format the encoding (text or json).
// -pprof mounts net/http/pprof under /debug/pprof/ for live CPU and heap
// profiles — opt-in, never on by default.
//
// SIGINT/SIGTERM shut the service down gracefully: the listener stops, the
// job queue drains (up to -drain-timeout), then in-flight work is cancelled.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/dispatch"
	"github.com/sljmotion/sljmotion/internal/journal"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slj-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	defaults := server.DefaultOptions()
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", defaults.Workers, "analysis worker pool size")
		queue       = flag.Int("queue", defaults.QueueSize, "job submission queue size (backpressure beyond it)")
		resultTTL   = flag.Duration("result-ttl", defaults.ResultTTL, "how long finished job results stay pollable")
		parallelism = flag.Int("parallelism", 0, "per-analysis frame/fitness fan-out (0 = sequential)")
		fitProfile  = flag.String("fit-profile", "default", "GA pose-fit profile: default (byte-identical reference output) or fast (coarse-to-fine fitting, converged-population termination)")
		cacheSize   = flag.Int("cache-size", defaults.CacheEntries, "result cache entry bound (0 disables caching)")
		cacheTTL    = flag.Duration("cache-ttl", defaults.CacheTTL, "result cache entry lifetime")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain budget")
		journalPath = flag.String("journal", "", "durable job journal path; restarts replay it (re-running interrupted jobs, restoring finished results)")
		worker      = flag.Bool("worker", false, "run as a worker node: accept serialized job payloads at POST /v1/worker/jobs")
		nodes       = flag.String("dispatch-nodes", "", "comma-separated worker base URLs; fan asynchronous jobs out over them instead of the in-process pool")
		eventSubs   = flag.Int("event-subscribers", defaults.EventSubscribers, "max concurrently connected event-stream (SSE) clients; excess answers 503")
		eventBuffer = flag.Int("event-buffer", defaults.EventBuffer, "per-subscriber pending-event ring; slower clients are resynced, never block the pipeline")
		logLevel    = flag.String("log-level", "info", "log threshold: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "log encoding: text or json")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (live CPU/heap profiles)")

		maxPayload    = flag.Int64("max-payload-bytes", defaults.MaxPayloadBytes, "worker-intake payload body cap; inline payloads get double this (base64 headroom), by-reference payloads exactly this")
		artifactBlobs = flag.Int("artifact-blobs", 0, "artifact store blob-count bound (0 = default)")
		artifactBytes = flag.Int64("artifact-bytes", 0, "artifact store byte bound (0 = default)")
		artifactTTL   = flag.Duration("artifact-ttl", 0, "artifact lifetime after last store (0 = default)")
		artifactSpill = flag.String("artifact-spill", "", "directory to write-through-spill artifact blobs to (survives LRU eviction and restarts)")
		clipTTL       = flag.Duration("clip-ttl", 0, "idle clip-ingest session lifetime (0 = default)")
		artOrigin     = flag.String("artifact-origin", "", "this front end's public base URL, stamped into by-reference payloads so workers know where to pull artifacts (front ends with -dispatch-nodes)")

		fleet           = flag.Bool("fleet", false, "run the elastic dispatch front end even with an empty -dispatch-nodes; workers join at runtime via POST /v1/fleet/nodes")
		replicate       = flag.Bool("replicate", false, "front end: stamp each payload's ring successor so workers mirror cache fills and artifacts there (node death becomes a cache hit)")
		joinURL         = flag.String("join", "", "worker: front-end base URL to register with at startup (POST /v1/fleet/nodes, retried until admitted)")
		advertise       = flag.String("advertise", "", "worker: this node's base URL as the fleet should reach it (required with -join)")
		joinWeight      = flag.Int("join-weight", 1, "worker: consistent-hash weight to register with (vnode multiplier for heterogeneous hardware)")
		drainOnShutdown = flag.Bool("drain-on-shutdown", false, "worker: on SIGINT/SIGTERM, drain out of the fleet (-join front end) before stopping — no new keys, in-flight finishes, then removal")

		sloLatencyMS = flag.Int("slo-latency-ms", 0, "end-to-end job latency objective in milliseconds: slower successes burn error budget (0 = default 2000, negative = success ratio only)")
		sloTarget    = flag.Float64("slo-target", 0, "SLO success-ratio target in (0,1); 0 = default 0.99")
		stallAfter   = flag.Duration("stall-after", 0, "queue-stall watchdog threshold: the queue health component degrades when the oldest queued job has waited longer (0 = default 2m)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Parallelism = *parallelism
	profile, err := pose.ProfileByName(*fitProfile)
	if err != nil {
		return err
	}
	cfg.Pose.Profile = profile
	opts := server.Options{
		Workers:          *workers,
		QueueSize:        *queue,
		ResultTTL:        *resultTTL,
		CacheEntries:     *cacheSize,
		CacheTTL:         *cacheTTL,
		Worker:           *worker,
		EventSubscribers: *eventSubs,
		EventBuffer:      *eventBuffer,
		Log:              logger,
		PProf:            *pprofOn,
		MaxPayloadBytes:  *maxPayload,
		ArtifactBlobs:    *artifactBlobs,
		ArtifactBytes:    *artifactBytes,
		ArtifactTTL:      *artifactTTL,
		ArtifactSpillDir: *artifactSpill,
		ClipTTL:          *clipTTL,
		SLOLatency:       time.Duration(*sloLatencyMS) * time.Millisecond,
		SLOTarget:        *sloTarget,
		StallAfter:       *stallAfter,
	}
	var jrn *journal.Journal
	if *journalPath != "" {
		if *nodes != "" {
			return errors.New("-journal applies to the in-process job table; with -dispatch-nodes, journal on the worker nodes instead")
		}
		var err error
		if jrn, err = journal.Open(*journalPath, journal.DefaultConfig()); err != nil {
			return err
		}
		defer jrn.Close()
		opts.Journal = jrn
		logger.Info("journaling jobs (fsync on terminal transitions)", "path", *journalPath)
	}
	if *nodes != "" || *fleet {
		if *worker {
			return errors.New("-worker and -dispatch-nodes/-fleet are mutually exclusive (a node is either a front end or a worker)")
		}
		var urls []string
		for _, u := range strings.Split(*nodes, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		dcfg := dispatch.DefaultConfig()
		dcfg.Nodes = urls
		dcfg.ResultTTL = *resultTTL
		dcfg.Events.MaxSubscribers = *eventSubs
		dcfg.Events.SubscriberBuffer = *eventBuffer
		dcfg.Log = logger
		dcfg.ArtifactOrigin = strings.TrimRight(*artOrigin, "/")
		dcfg.Replicate = *replicate
		d, err := dispatch.New(dcfg)
		if err != nil {
			return err
		}
		opts.Dispatcher = d
		logger.Info("dispatching jobs over worker nodes", "count", len(urls),
			"nodes", strings.Join(urls, ", "), "replicate", *replicate)
	}
	if *joinURL != "" && !*worker {
		return errors.New("-join registers a worker with a front end; it needs -worker")
	}
	if *joinURL != "" && *advertise == "" {
		return errors.New("-join needs -advertise: the base URL the fleet should reach this node at")
	}
	if *worker {
		// Workers carry the successor-replication sink unconditionally: it
		// only activates when a payload names a replica target, which the
		// front end controls with -replicate.
		repl := dispatch.NewReplicator(nil)
		defer repl.Close()
		opts.Replicator = repl
	}
	srv, err := server.NewWithOptions(cfg, nil, opts)
	if err != nil {
		if opts.Dispatcher != nil {
			_ = opts.Dispatcher.Close(context.Background())
		}
		return err
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue,
			"result_ttl", *resultTTL, "parallelism", *parallelism, "fit_profile", profile.Name,
			"cache_entries", *cacheSize, "cache_ttl", *cacheTTL, "pprof", *pprofOn)
		errCh <- httpServer.ListenAndServe()
	}()
	if *joinURL != "" {
		// Register with the front end once our listener is answering probes.
		// The front end health-probes the advertised URL before admitting, so
		// a retry loop covers both orderings of startup.
		go fleetJoin(ctx, logger, strings.TrimRight(*joinURL, "/"), strings.TrimRight(*advertise, "/"), *joinWeight)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	if *drainOnShutdown && *joinURL != "" {
		// Leave the ring before the listener stops: the front end stops
		// routing new keys here, running jobs finish, and the membership
		// forgets this node — only then is it safe to stop serving.
		fleetDrain(logger, strings.TrimRight(*joinURL, "/"), strings.TrimRight(*advertise, "/"), *drain)
	}

	logger.Info("shutting down", "drain", *drain)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), *drain)
	defer cancelHTTP()
	if err := httpServer.Shutdown(httpCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	// The job queue gets its own drain budget: a slow in-flight synchronous
	// /analyze may have consumed the whole HTTP budget above, and the queued
	// jobs still deserve their drain window before the hard cancel.
	jobsCtx, cancelJobs := context.WithTimeout(context.Background(), *drain)
	defer cancelJobs()
	if err := srv.Close(jobsCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// The Manager's Close already synced the journal after the drain; the
	// explicit sync here covers the hard-cancel path, and the deferred
	// Close then just closes the file descriptor.
	if jrn != nil {
		if err := jrn.Sync(); err != nil {
			logger.Warn("journal sync", "err", err)
		}
	}
	logger.Info("bye")
	return nil
}

// fleetJoin registers this worker with the front end's membership, retrying
// with backoff until admitted or the process is shutting down. Admission can
// fail transiently in either direction — the front end may not be up yet, or
// its health probe of us may race our own listener — so every failure just
// waits and retries.
func fleetJoin(ctx context.Context, logger *slog.Logger, join, advertise string, weight int) {
	body, _ := json.Marshal(map[string]any{"url": advertise, "weight": weight})
	backoff := time.Second
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			join+"/v1/fleet/nodes", bytes.NewReader(body))
		if err != nil {
			logger.Error("fleet join request", "err", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				logger.Info("joined fleet", "front", join, "as", advertise, "weight", weight)
				return
			}
			logger.Warn("fleet join refused, retrying", "front", join, "status", resp.StatusCode, "backoff", backoff)
		} else if ctx.Err() != nil {
			return
		} else {
			logger.Warn("fleet join unreachable, retrying", "front", join, "err", err, "backoff", backoff)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < 30*time.Second {
			backoff *= 2
		}
	}
}

// fleetDrain asks the front end to drain this worker and waits until the
// membership has forgotten it (in-flight jobs finished) or the budget runs
// out. Best-effort: a front end that is itself gone just means there is
// nothing left to drain from.
func fleetDrain(logger *slog.Logger, join, advertise string, budget time.Duration) {
	logger.Info("draining out of fleet", "front", join, "as", advertise)
	body, _ := json.Marshal(map[string]string{"url": advertise})
	resp, err := http.Post(join+"/v1/fleet/drain", "application/json", bytes.NewReader(body))
	if err != nil {
		logger.Warn("fleet drain request failed", "err", err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		logger.Warn("fleet drain refused", "status", resp.StatusCode)
		return
	}
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		time.Sleep(250 * time.Millisecond)
		r, err := http.Get(join + "/v1/fleet")
		if err != nil {
			return
		}
		var view struct {
			Nodes []struct {
				URL string `json:"url"`
			} `json:"nodes"`
		}
		err = json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&view)
		r.Body.Close()
		if err != nil {
			return
		}
		still := false
		for _, n := range view.Nodes {
			if n.URL == advertise {
				still = true
				break
			}
		}
		if !still {
			logger.Info("drained out of fleet")
			return
		}
	}
	logger.Warn("fleet drain budget exhausted; shutting down anyway", "budget", budget)
}
