// Command slj-serve runs the web service the paper names as future work:
// upload a standing-long-jump clip, receive a JSON analysis with scores and
// advice.
//
// Usage:
//
//	slj-serve [-addr :8080]
//
// Endpoints:
//
//	POST /analyze  multipart form: 'frames' = PPM files (ordered by name),
//	               'truth' = truth.txt with the manual first-frame pose,
//	               optional 'poses=1' to include per-frame stick models.
//	GET  /rules    the encoded Tables 1-2.
//	GET  /healthz  liveness + clips analysed.
//
// Example round trip against a synthetic clip:
//
//	slj-synth -out /tmp/clip
//	curl -s -X POST http://localhost:8080/analyze \
//	  $(for f in /tmp/clip/frame_*.ppm; do printf ' -F frames=@%s' "$f"; done) \
//	  -F truth=@/tmp/clip/truth.txt | head
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slj-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	logger := log.New(os.Stderr, "slj-serve ", log.LstdFlags)
	srv, err := server.New(core.DefaultConfig(), logger)
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Printf("listening on %s", *addr)
	return httpServer.ListenAndServe()
}
