// Command slj-promlint lints a Prometheus text exposition (v0.0.4)
// against the conformance grammar the service's own tests enforce: HELP
// and TYPE exactly once per family and before its samples, counters named
// *_total, histogram buckets cumulative and monotone with the +Inf bucket
// equal to _count, and every sample parseable. CI runs it over the
// federated cluster scrape served at GET /v1/fleet/metrics.
//
// Usage:
//
//	slj-promlint [-require fam1,fam2,...] [file]
//
// With no file argument the exposition is read from stdin. -require
// additionally asserts the presence of the named metric families. Issues
// are printed one per line and the exit status is nonzero if any were
// found.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/sljmotion/sljmotion/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slj-promlint:", err)
		os.Exit(1)
	}
}

func run() error {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()

	var raw []byte
	var err error
	switch flag.NArg() {
	case 0:
		raw, err = io.ReadAll(os.Stdin)
	case 1:
		raw, err = os.ReadFile(flag.Arg(0))
	default:
		return fmt.Errorf("at most one file argument, got %d", flag.NArg())
	}
	if err != nil {
		return err
	}

	var required []string
	for _, f := range strings.Split(*require, ",") {
		if f = strings.TrimSpace(f); f != "" {
			required = append(required, f)
		}
	}

	res := obs.LintExposition(raw, required)
	for _, issue := range res.Issues {
		fmt.Println(issue)
	}
	if len(res.Issues) > 0 {
		return fmt.Errorf("%d issue(s) in %d sample(s) across %d famil(ies)",
			len(res.Issues), len(res.Samples), len(res.Types))
	}
	fmt.Printf("ok: %d samples across %d families\n", len(res.Samples), len(res.Types))
	return nil
}
