// Command slj-analyze runs the full motion-analysis pipeline on a clip and
// prints the jump score report, the detected phases, and (optionally) the
// per-frame silhouettes as ASCII art.
//
// Input is either a directory of frame_NN.ppm files produced by slj-synth
// (or any camera pipeline), or — with -synthetic — a freshly generated clip.
// The manual first-frame stick figure required by the paper is read from
// the truth file when present, otherwise derived from a synthetic
// annotation.
//
// Usage:
//
//	slj-analyze -synthetic [-defect NAME] [-seed S] [-ascii]
//	slj-analyze -in DIR [-ascii]
//	slj-analyze -synthetic -stages segmentation -ascii
//	slj-analyze -synthetic -follow
//	slj-analyze -synthetic -trace
//	slj-analyze -synthetic -fit-profile fast
//
// -fit-profile selects the GA speed/fidelity trade: "default" keeps the
// byte-identical reference output, "fast" runs the coarse-to-fine schedule
// (several times the throughput within a bounded fitness tolerance —
// DESIGN.md §15).
//
// -stages selects a pipeline prefix via the request API: "segmentation"
// stops after the silhouettes (no GA — fast, useful for inspecting the
// masks), "segmentation..pose" adds the stick-model fit, and "all" (the
// default) runs tracking and scoring too.
//
// -follow runs the analysis as an asynchronous job and streams its
// lifecycle live — queued, running, one line per pipeline stage, done —
// the terminal equivalent of the web service's
// GET /v1/jobs/{id}/events stream; the report prints as usual when the
// job finishes.
//
// -trace also runs through the job queue, and after the report prints the
// job's span tree — where the wall-clock time went: queue wait, each
// pipeline stage (with per-frame GA fits under pose), journal append and
// terminal publish — the terminal equivalent of GET /v1/jobs/{id}/trace.
//
// -clip-session URL streams the clip to a running slj-serve through the
// chunked ingest protocol instead of analysing in-process: frames upload
// in small chunks (the server segments them while later chunks are still
// in flight), the session is sealed into content-addressed artifacts, and
// the analysis runs by hash — the printed document is the web service's
// JSON response. A second run of the same clip re-uses the stored
// artifacts and the server's result cache without re-uploading anything.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/sljmotion/sljmotion"
	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slj-analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input directory with frame_NN.ppm (+ optional truth.txt)")
		synthetic = flag.Bool("synthetic", false, "generate a synthetic clip instead of reading -in")
		defect    = flag.String("defect", "none", "planted defect for -synthetic")
		seed      = flag.Int64("seed", 1, "seed for -synthetic")
		ascii     = flag.Bool("ascii", false, "print per-frame silhouettes as ASCII art")
		detect    = flag.Bool("detect-windows", false, "use detected takeoff/landing windows instead of the paper's fixed windows")
		stages    = flag.String("stages", "all", "pipeline prefix to run: all, segmentation, segmentation..pose, ...")
		fitProf   = flag.String("fit-profile", "default", "GA pose-fit profile: default (byte-identical reference output) or fast (coarse-to-fine fitting, converged-population termination)")
		follow    = flag.Bool("follow", false, "run as an asynchronous job and stream lifecycle + per-stage progress events live")
		trace     = flag.Bool("trace", false, "print the job's span tree after the report: queue wait, per-stage and per-frame timings")
		clipURL   = flag.String("clip-session", "", "server base URL: stream the clip up in chunks via an ingest session and analyse it by hash")
		chunkSize = flag.Int("chunk-frames", 4, "frames per upload chunk for -clip-session")
	)
	flag.Parse()

	sel, err := sljmotion.ParseStageSelection(*stages)
	if err != nil {
		return err
	}
	if sel.Normalize().First != sljmotion.StageSegmentation {
		return fmt.Errorf("-stages must start at segmentation (got %s): the command's input is frames", sel)
	}

	var frames []*sljmotion.Image
	var manual sljmotion.Pose
	var pxPerMeter float64

	switch {
	case *synthetic:
		p := synth.DefaultJumpParams()
		p.Seed = *seed
		switch *defect {
		case "none", "":
		default:
			found := false
			for _, c := range synth.DefectClips(p) {
				if c.Name == *defect {
					p.Defects = c.Defects
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown defect %q", *defect)
			}
		}
		v, err := synth.Generate(p)
		if err != nil {
			return err
		}
		frames = v.Frames
		manual = v.ManualAnnotation(synth.DefaultAnnotationError(), *seed)
		pxPerMeter = p.PxPerMeter()
	case *in != "":
		var err error
		frames, err = clipio.ReadFrames(*in)
		if err != nil {
			return err
		}
		manual, err = clipio.ReadManualPose(filepath.Join(*in, "truth.txt"))
		if err != nil {
			return fmt.Errorf("first-frame stick figure: %w (provide truth.txt)", err)
		}
	default:
		return fmt.Errorf("need -in DIR or -synthetic")
	}

	if *clipURL != "" {
		return streamClip(*clipURL, frames, manual, sel, *chunkSize)
	}

	cfg := sljmotion.DefaultConfig()
	cfg.PxPerMeter = pxPerMeter
	if *detect {
		cfg.Windows = sljmotion.WindowsDetected
	}
	profile, err := pose.ProfileByName(*fitProf)
	if err != nil {
		return err
	}
	cfg.Pose.Profile = profile
	req := sljmotion.AnalysisRequest{
		Frames:      frames,
		ManualFirst: manual,
		Stages:      sel,
	}
	var res *sljmotion.Result
	var traceDoc *sljmotion.JobTrace
	if *follow || *trace {
		res, traceDoc, err = runJob(cfg, req, *follow, *trace)
	} else {
		var an *sljmotion.Analyzer
		if an, err = sljmotion.NewAnalyzer(cfg); err == nil {
			res, err = an.Run(context.Background(), req, nil)
		}
	}
	if err != nil {
		return err
	}

	if res.Track != nil {
		fmt.Printf("frames: %d   takeoff: f%d   landing: f%d   distance: %.0f px",
			len(frames), res.Track.TakeoffFrame, res.Track.LandingFrame, res.Track.JumpDistancePx)
		if res.Track.JumpDistanceM > 0 {
			fmt.Printf(" (%.2f m)", res.Track.JumpDistanceM)
		}
		fmt.Println()
	} else {
		fmt.Printf("frames: %d   stages: %s\n", len(frames), sel)
	}
	if res.Report != nil {
		fmt.Print(res.Report.String())
	}
	if res.Poses != nil && res.Report == nil {
		fmt.Printf("estimated %d stick-model poses\n", len(res.Poses))
	}

	if *ascii {
		for k, s := range res.Silhouettes {
			if res.Track != nil {
				fmt.Printf("--- frame %02d (phase %s) ---\n", k, res.Track.Phases[k])
			} else {
				fmt.Printf("--- frame %02d ---\n", k)
			}
			fmt.Print(sljmotion.ASCIIMask(s.Mask, 72))
		}
	}
	if traceDoc != nil {
		printTrace(traceDoc)
	}
	return nil
}

// streamClip uploads the clip to a running slj-serve through a chunked
// ingest session, seals it into content-addressed artifacts, then analyses
// it by hash and prints the service's JSON response document.
func streamClip(base string, frames []*sljmotion.Image, manual sljmotion.Pose, sel sljmotion.StageSelection, chunkFrames int) error {
	if chunkFrames < 1 {
		chunkFrames = 1
	}
	cs, err := sljmotion.OpenClipSession(base, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "clip session %s: uploading %d frames in chunks of %d\n",
		cs.ID(), len(frames), chunkFrames)
	for i := 0; i < len(frames); i += chunkFrames {
		end := i + chunkFrames
		if end > len(frames) {
			end = len(frames)
		}
		if err := cs.AppendFrames(frames[i:end]); err != nil {
			return err
		}
	}
	seal, err := cs.Seal()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sealed: frames %s (%d eagerly segmented and reused, %d re-segmented)\n",
		seal.FramesHash, seal.EagerReused, seal.EagerResegmented)
	raw, err := cs.Analyze(seal, manual, sljmotion.ClipAnalyzeOptions{Stages: sel.String()})
	if err != nil {
		return err
	}
	os.Stdout.Write(raw)
	if len(raw) > 0 && raw[len(raw)-1] != '\n' {
		fmt.Println()
	}
	return nil
}

// runJob runs the request through an in-process job queue: with follow it
// prints each streamed lifecycle/progress event as it happens, with trace
// it snapshots the finished job's span tree before the queue closes.
func runJob(cfg sljmotion.Config, req sljmotion.AnalysisRequest, follow, trace bool) (*sljmotion.Result, *sljmotion.JobTrace, error) {
	ctx := context.Background()
	q, err := sljmotion.NewJobQueue(cfg, sljmotion.JobQueueOptions{Workers: 1, QueueSize: 1})
	if err != nil {
		return nil, nil, err
	}
	defer q.Close(ctx)
	id, err := q.Submit(req)
	if err != nil {
		return nil, nil, err
	}
	ch, err := q.Watch(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	for e := range ch {
		if !follow {
			continue // draining to the terminal event is the wait mechanism
		}
		switch e.Type {
		case sljmotion.JobEventStage:
			fmt.Printf("follow: #%d stage %s\n", e.Seq, e.Stage)
		case sljmotion.JobEventFailed:
			fmt.Printf("follow: #%d failed: %s\n", e.Seq, e.Error)
		default:
			fmt.Printf("follow: #%d %s\n", e.Seq, e.Type)
		}
	}
	res, err := q.JobResult(id)
	if err != nil {
		return nil, nil, err
	}
	var doc *sljmotion.JobTrace
	if trace {
		if doc, err = q.Trace(id); err != nil {
			return nil, nil, fmt.Errorf("trace: %w", err)
		}
	}
	return res, doc, nil
}

// printTrace renders the span tree as an indented breakdown, one line per
// span, durations right-aligned so the hierarchy reads as a profile.
func printTrace(doc *sljmotion.JobTrace) {
	fmt.Printf("trace %s\n", doc.TraceID)
	printSpan(doc.Root, 1)
}

func printSpan(s *sljmotion.TraceSpan, depth int) {
	if s == nil {
		return
	}
	name := s.Name
	if f, ok := s.Attrs["frame"]; ok {
		name += " #" + f
	}
	indent := depth * 2
	pad := 30 - indent - len(name)
	if pad < 1 {
		pad = 1
	}
	fmt.Printf("%*s%s%*s%10.2f ms\n", indent, "", name, pad, "", s.DurationMS)
	for _, c := range s.Children {
		printSpan(c, depth+1)
	}
}
