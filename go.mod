module github.com/sljmotion/sljmotion

go 1.22
