// Pose tracking: estimates the stick model for every frame with the GA and
// temporal seeding of Section 3, compares against ground truth, and prints
// the per-frame convergence — the data behind the paper's Figure 7.
package main

import (
	"fmt"
	"log"

	"github.com/sljmotion/sljmotion"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/segmentation"
)

func main() {
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		log.Fatal(err)
	}

	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sils, err := pipe.Run(video.Frames)
	if err != nil {
		log.Fatal(err)
	}

	// First-frame calibration from the (simulated) hand-drawn stick model.
	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)
	estimator, err := pose.NewEstimator(video.Dims, pose.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := estimator.Calibrate(sils[0], manual); err != nil {
		log.Fatal(err)
	}

	estimates, err := estimator.EstimateSequence(sils, manual)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("frame  fitness  near-best-gen  mean-angle-err  trunk     upper-arm")
	for k, e := range estimates {
		pe := sljmotion.ComparePoses(e.Pose, video.Truth[k], video.Dims)
		gen := "-"
		if e.GA != nil {
			gen = fmt.Sprintf("%d", e.GA.NearBestFoundAt)
		}
		fmt.Printf("f%02d    %.3f    %-13s %6.1f°       ρ0=%5.1f°  ρ2=%5.1f°\n",
			k, e.Fitness, gen, pe.MeanAngleErr,
			e.Pose.Rho[sljmotion.Trunk], e.Pose.Rho[sljmotion.UpperArm])
	}

	// Contrast with the cold-start baseline of Shoji et al. [5] on frame 2.
	cold, err := estimator.EstimateCold(sils[1])
	if err != nil {
		log.Fatal(err)
	}
	warm := estimates[1]
	fmt.Printf("\nframe 2, temporal vs cold start ([5] baseline):\n")
	fmt.Printf("  temporal: fitness %.3f, 2%%-converged at generation %d\n",
		warm.Fitness, warm.GA.NearBestFoundAt)
	fmt.Printf("  cold:     fitness %.3f, 2%%-converged at generation %d of %d\n",
		cold.Fitness, cold.GA.NearBestFoundAt, cold.GA.Generations)
}
