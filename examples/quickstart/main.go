// Quickstart: analyse one standing long jump end to end and print the
// score report with advice — the minimal use of the public request API.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/sljmotion/sljmotion"
)

func main() {
	// 1. Obtain a clip. Real deployments read PPM frames from a camera
	//    pipeline (sljmotion.ReadPPMFile); here we render the synthetic
	//    jump that substitutes for the paper's CCD footage.
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		log.Fatal(err)
	}

	// 2. The paper's method needs a hand-drawn stick figure for the first
	//    frame; the synthetic substrate simulates the trained person's
	//    annotation.
	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)

	// 3. Run the full pipeline — segmentation → GA pose estimation →
	//    tracking → scoring — as one AnalysisRequest. The zero Stages
	//    value selects every stage.
	analyzer, err := sljmotion.NewAnalyzer(sljmotion.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	result, err := analyzer.Run(context.Background(), sljmotion.AnalysisRequest{
		Frames:      video.Frames,
		ManualFirst: manual,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Use the results.
	fmt.Printf("takeoff at frame %d, landing at frame %d\n",
		result.Track.TakeoffFrame, result.Track.LandingFrame)
	fmt.Printf("jump distance: %.0f px\n", result.Track.JumpDistancePx)
	fmt.Println()
	fmt.Print(result.Report.String())

	// 5. Staged re-use: the request API re-runs tracking and scoring over
	//    the poses just estimated — no vision, no GA — the same seam the
	//    web service's result cache and re-scoring workloads build on.
	rescored, err := analyzer.Run(context.Background(), sljmotion.AnalysisRequest{
		Poses:      result.Poses,
		Dimensions: result.Dimensions,
		Stages:     sljmotion.SelectStages(sljmotion.StageTracking, sljmotion.StageScoring),
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-scored from stored poses: %d/%d\n",
		rescored.Report.Passed, rescored.Report.Total)
}
