// Quickstart: analyse one standing long jump end to end and print the
// score report with advice — the minimal use of the public API.
package main

import (
	"fmt"
	"log"

	"github.com/sljmotion/sljmotion"
)

func main() {
	// 1. Obtain a clip. Real deployments read PPM frames from a camera
	//    pipeline (sljmotion.ReadPPMFile); here we render the synthetic
	//    jump that substitutes for the paper's CCD footage.
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		log.Fatal(err)
	}

	// 2. The paper's method needs a hand-drawn stick figure for the first
	//    frame; the synthetic substrate simulates the trained person's
	//    annotation.
	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)

	// 3. Run the full pipeline: segmentation → GA pose estimation →
	//    tracking → scoring.
	analyzer, err := sljmotion.NewAnalyzer(sljmotion.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	result, err := analyzer.Analyze(video.Frames, manual)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Use the results.
	fmt.Printf("takeoff at frame %d, landing at frame %d\n",
		result.Track.TakeoffFrame, result.Track.LandingFrame)
	fmt.Printf("jump distance: %.0f px\n", result.Track.JumpDistancePx)
	fmt.Println()
	fmt.Print(result.Report.String())
}
