// Scoring demo: evaluates the Table 2 rules on eight jumper profiles (one
// well-formed, seven with planted form defects) and shows which rule
// catches which defect, with the advice the system would give the jumper
// (Section 4 of the paper).
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/sljmotion/sljmotion"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/synth"
	"github.com/sljmotion/sljmotion/internal/track"
)

func main() {
	// Show the encoded tables first.
	fmt.Println("Table 1 — evaluation standards:")
	for _, s := range sljmotion.Standards() {
		fmt.Printf("  %s (%s): %s\n", s.ID, s.Stage, s.Description)
	}
	fmt.Println("\nTable 2 — scoring rules:")
	for _, r := range sljmotion.Rules() {
		fmt.Printf("  %s implements %s: %s\n", r.ID, r.Standard, r.Formula)
	}

	// Score every profile on its ground-truth motion (the pure rule check;
	// run the quickstart for scoring on estimated poses).
	fmt.Println("\nper-profile rule outcomes (ground-truth poses):")
	for _, clip := range synth.DefectClips(synth.DefaultJumpParams()) {
		video, err := synth.Generate(clip.Params)
		if err != nil {
			log.Fatal(err)
		}
		initW, airW := track.FixedWindows(clip.Params.Frames)
		report, err := scoring.NewScorer().Score(video.Truth, initW, airW)
		if err != nil {
			log.Fatal(err)
		}
		var failed []string
		for _, res := range report.Results {
			if !res.Passed {
				failed = append(failed, res.Rule.ID)
			}
		}
		status := "PERFECT FORM"
		if len(failed) > 0 {
			status = "failed " + strings.Join(failed, ", ")
		}
		fmt.Printf("  %-18s score %d/7  %s\n", clip.Name, report.Passed, status)
		for _, advice := range report.Advice {
			fmt.Printf("      advice: %s\n", advice)
		}
	}
}
