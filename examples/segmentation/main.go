// Segmentation walkthrough: runs the five steps of Section 2 one at a time
// on a mid-jump frame and prints each intermediate mask as ASCII art — a
// terminal reproduction of the paper's Figures 1-3.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/sljmotion/sljmotion"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/segmentation"
)

func main() {
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		log.Fatal(err)
	}

	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: estimate the background from the whole sequence.
	bg, err := pipe.EstimateBackground(video.Frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step 1 — estimated background (luma):")
	fmt.Println(imaging.ASCIIGray(bg.Gray(), 72))

	// Steps 2-5 on the drive frame.
	const k = 8
	stages, err := pipe.SegmentFrame(video.Frames[k], bg)
	if err != nil {
		log.Fatal(err)
	}

	show := func(title string, m *sljmotion.Mask) {
		fmt.Printf("%s (%d px):\n%s\n", title, m.Count(), sljmotion.ASCIIMask(m, 72))
	}
	show("Step 2 — background subtraction (Figure 2a)", stages.Subtracted)
	show("Step 3a — noise removal (Figure 2b)", stages.Denoised)
	show("Step 3b — small-spot removal (Figure 2c)", stages.SpotsRemoved)
	show("Step 4 — hole fill (Figure 2d)", stages.HolesFilled)
	show("Step 5 — shadow mask SM_k (Eq. 1)", stages.ShadowMask)
	show("Final — human object (Figure 3a)", stages.Object)

	// Quantify against the synthetic ground truth.
	sc, err := sljmotion.CompareMasks(stages.Object, video.BodyMasks[k])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final silhouette vs ground truth: IoU %.3f, precision %.3f, recall %.3f\n",
		sc.IoU, sc.Precision, sc.Recall)

	// The public request API runs the same five steps over every frame in
	// one call — the segmentation-only selection behind
	// `slj-analyze -stages segmentation` and the web service's
	// stages=segmentation uploads.
	analyzer, err := sljmotion.NewAnalyzer(sljmotion.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := analyzer.Run(context.Background(), sljmotion.AnalysisRequest{
		Frames: video.Frames,
		Stages: sljmotion.OnlyStage(sljmotion.StageSegmentation),
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request API: %d silhouettes segmented; frame %d area %d px\n",
		len(res.Silhouettes), k, res.Silhouettes[k].Area)
}
