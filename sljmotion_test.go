package sljmotion_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion"
	"github.com/sljmotion/sljmotion/internal/server"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)

	cfg := sljmotion.DefaultConfig()
	cfg.Pose.Population = 50
	cfg.Pose.Generations = 60
	cfg.Pose.Patience = 12
	analyzer, err := sljmotion.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	result, err := analyzer.Analyze(video.Frames, manual)
	if err != nil {
		t.Fatal(err)
	}
	if result.Report.Passed < 6 {
		t.Errorf("good-form jump scored %d/7", result.Report.Passed)
	}
	if len(result.Poses) != len(video.Frames) {
		t.Error("pose per frame missing")
	}
	if !strings.Contains(result.Report.String(), "score") {
		t.Error("report rendering broken")
	}
}

func TestPublicTables(t *testing.T) {
	if len(sljmotion.Standards()) != 7 || len(sljmotion.Rules()) != 7 {
		t.Error("Tables 1 and 2 must have 7 rows each")
	}
	init, air := sljmotion.FixedWindows(20)
	if init.Len() != 10 || air.Len() != 10 {
		t.Error("fixed windows wrong")
	}
}

func TestPublicMetricsHelpers(t *testing.T) {
	d := sljmotion.ChildDimensions(60)
	var p sljmotion.Pose
	p.X, p.Y = 30, 30
	pe := sljmotion.ComparePoses(p, p, d)
	if pe.MeanAngleErr != 0 {
		t.Error("identical poses must have zero error")
	}
	m := p.Rasterize(d, 64, 64)
	sc, err := sljmotion.CompareMasks(m, m)
	if err != nil || sc.IoU != 1 {
		t.Error("identical masks must have IoU 1")
	}
	if sljmotion.ASCIIMask(m, 40) == "" {
		t.Error("ascii rendering empty")
	}
}

func TestStickConstantsMatchPaperNumbering(t *testing.T) {
	// S0..S7 per Figure 4.
	order := []sljmotion.StickID{
		sljmotion.Trunk, sljmotion.Neck, sljmotion.UpperArm, sljmotion.Thigh,
		sljmotion.Head, sljmotion.Forearm, sljmotion.Shank, sljmotion.Foot,
	}
	for i, id := range order {
		if int(id) != i {
			t.Errorf("stick %v has index %d, want %d", id, int(id), i)
		}
	}
	if sljmotion.NumSticks != 8 {
		t.Error("model must have 8 sticks")
	}
}

func TestPublicJobQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline through the job queue")
	}
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)

	cfg := sljmotion.DefaultConfig()
	cfg.Pose.Population = 50
	cfg.Pose.Generations = 60
	cfg.Pose.Patience = 12
	q, err := sljmotion.NewJobQueue(cfg, sljmotion.DefaultJobQueueOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close(context.Background())

	id, err := q.SubmitJob(video.Frames, manual)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.JobStatus(id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, err := q.JobStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == sljmotion.JobDone {
			break
		}
		if st.State == sljmotion.JobFailed {
			t.Fatalf("job failed: %s", st.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	result, err := q.JobResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if result.Report.Passed < 6 {
		t.Errorf("good-form jump scored %d/7 via job queue", result.Report.Passed)
	}
	if m := q.JobMetrics(); m.Completed != 1 {
		t.Errorf("metrics: %+v", m)
	}
}

// TestPublicRequestAPI exercises the staged AnalysisRequest path at the
// public surface: segmentation only, then a tracking+scoring re-run over
// the synthetic ground truth — neither runs the GA, so this is fast.
func TestPublicRequestAPI(t *testing.T) {
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	analyzer, err := sljmotion.NewAnalyzer(sljmotion.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var seen []sljmotion.PipelineStage
	seg, err := analyzer.Run(context.Background(), sljmotion.AnalysisRequest{
		Frames: video.Frames,
		Stages: sljmotion.OnlyStage(sljmotion.StageSegmentation),
	}, func(s sljmotion.PipelineStage) { seen = append(seen, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Silhouettes) != len(video.Frames) || seg.Report != nil {
		t.Errorf("segmentation-only result wrong: %d silhouettes", len(seg.Silhouettes))
	}
	if len(seen) != 1 || seen[0] != sljmotion.StageSegmentation {
		t.Errorf("progress saw %v", seen)
	}

	rescored, err := analyzer.Run(context.Background(), sljmotion.AnalysisRequest{
		Poses:      video.Truth,
		Dimensions: video.Dims,
		Stages:     sljmotion.SelectStages(sljmotion.StageTracking, sljmotion.StageScoring),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rescored.Report == nil || rescored.Report.Passed < 6 {
		t.Fatalf("ground-truth re-score wrong: %+v", rescored.Report)
	}
	if rescored.Track == nil || rescored.Track.TakeoffFrame <= 0 {
		t.Errorf("tracking missing from re-run: %+v", rescored.Track)
	}

	// Selection helpers and parsing agree.
	sel, err := sljmotion.ParseStageSelection("tracking..scoring")
	if err != nil {
		t.Fatal(err)
	}
	if sel != sljmotion.SelectStages(sljmotion.StageTracking, sljmotion.StageScoring) {
		t.Errorf("parsed selection %+v", sel)
	}
	if !sljmotion.AllStages().IsFull() {
		t.Error("AllStages must be the full pipeline")
	}
}

// TestPublicRemoteJobQueue fans a cheap staged request out over two real
// worker nodes through the public remote constructor: submit → hash-route →
// poll → JSON document, all from the library surface.
func TestPublicRemoteJobQueue(t *testing.T) {
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}

	var nodes []string
	for i := 0; i < 2; i++ {
		opts := server.DefaultOptions()
		opts.Worker = true
		s, err := server.NewWithOptions(sljmotion.DefaultConfig(), nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Close(ctx)
		})
		nodes = append(nodes, hs.URL)
	}

	q, err := sljmotion.NewRemoteJobQueue(sljmotion.DefaultConfig(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close(context.Background())

	id, err := q.Submit(sljmotion.AnalysisRequest{
		Poses:      video.Truth,
		Dimensions: video.Dims,
		Stages:     sljmotion.SelectStages(sljmotion.StageTracking, sljmotion.StageScoring),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := q.JobStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == sljmotion.JobDone {
			break
		}
		if st.State == sljmotion.JobFailed {
			t.Fatalf("remote job failed: %s", st.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	raw, err := q.JobResultJSON(id)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total  int `json:"total"`
		Passed int `json:"passed"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("remote result is not the service document: %v\n%s", err, raw)
	}
	if doc.Total != 7 || doc.Passed < 6 {
		t.Errorf("remote re-score = %d/%d", doc.Passed, doc.Total)
	}
	// The in-process accessor points callers at the JSON one.
	if _, err := q.JobResult(id); err == nil || !strings.Contains(err.Error(), "JobResultJSON") {
		t.Errorf("JobResult on a remote queue = %v, want JobResultJSON hint", err)
	}
	if m := q.JobMetrics(); m.Completed != 1 || len(m.Nodes) != 2 {
		t.Errorf("remote queue metrics: %+v", m)
	}
}

// TestPublicJobQueueStagedSubmit submits a cheap staged request through the
// queue: the dispatcher seam carries AnalysisRequests end to end.
func TestPublicJobQueueStagedSubmit(t *testing.T) {
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	q, err := sljmotion.NewJobQueue(sljmotion.DefaultConfig(), sljmotion.DefaultJobQueueOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close(context.Background())

	id, err := q.Submit(sljmotion.AnalysisRequest{
		Poses:      video.Truth,
		Dimensions: video.Dims,
		Stages:     sljmotion.SelectStages(sljmotion.StageTracking, sljmotion.StageScoring),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := q.JobStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == sljmotion.JobDone {
			break
		}
		if st.State == sljmotion.JobFailed {
			t.Fatalf("job failed: %s", st.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	res, err := q.JobResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.Total != 7 {
		t.Errorf("staged job result: %+v", res.Report)
	}
}

// TestPublicJournalBackedJobQueue: a journal-backed queue survives its
// process — a second queue opened over the same journal serves finished
// results (as JSON documents, without re-running), re-executes interrupted
// jobs, and lists the surviving history.
func TestPublicJournalBackedJobQueue(t *testing.T) {
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jrn, err := sljmotion.OpenJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jrn.Close()

	opts := sljmotion.DefaultJobQueueOptions()
	opts.Journal = jrn
	cfg := sljmotion.DefaultConfig()
	q1, err := sljmotion.NewJobQueue(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Segmentation only: fast, no GA.
	id, err := q1.Submit(sljmotion.AnalysisRequest{
		Frames:      video.Frames,
		ManualFirst: manual,
		Stages:      sljmotion.OnlyStage(sljmotion.StageSegmentation),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := q1.JobStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == sljmotion.JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := q1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	q2, err := sljmotion.NewJobQueue(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close(context.Background())
	st, err := q2.JobStatus(id)
	if err != nil {
		t.Fatalf("finished job lost across restart: %v", err)
	}
	if st.State != sljmotion.JobDone {
		t.Fatalf("restored state = %s, want done", st.State)
	}
	raw, err := q2.JobResultJSON(id)
	if err != nil {
		t.Fatalf("restored result: %v", err)
	}
	// The in-process queue journals the marshalled core.Result; the
	// segmentation-only run carries one silhouette per frame.
	var doc struct {
		Silhouettes []json.RawMessage `json:"Silhouettes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil || len(doc.Silhouettes) != len(video.Frames) {
		t.Errorf("restored result document: err=%v, %d silhouettes, want %d",
			err, len(doc.Silhouettes), len(video.Frames))
	}
	hist := q2.Jobs(sljmotion.JobFilter{State: sljmotion.JobDone})
	if len(hist) != 1 || hist[0].ID != id {
		t.Errorf("restored history: %+v", hist)
	}
}

// TestPublicJobQueueWatch is the streaming e2e at the public surface: a
// Watch client — issuing ZERO intermediate status polls — observes the
// complete lifecycle of a real pipeline run (queued, running, all four
// stage events in pipeline order, done), and the result is ready the
// moment the channel closes. The result must equal what the poll path
// would have returned (it is the same stored result object).
func TestPublicJobQueueWatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline through the job queue")
	}
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)

	cfg := sljmotion.DefaultConfig()
	cfg.Pose.Population = 40
	cfg.Pose.Generations = 40
	cfg.Pose.Patience = 10
	cfg.Pose.RefineRounds = 1
	q, err := sljmotion.NewJobQueue(cfg, sljmotion.DefaultJobQueueOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close(context.Background())

	id, err := q.SubmitJob(video.Frames, manual)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ch, err := q.Watch(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var types []sljmotion.JobEventType
	var stages []string
	var lastSeq uint64
	for e := range ch {
		if e.Seq <= lastSeq {
			t.Fatalf("event stream not monotonic: seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		types = append(types, e.Type)
		if e.Type == sljmotion.JobEventStage {
			stages = append(stages, e.Stage)
		}
	}
	if len(types) == 0 || types[0] != sljmotion.JobEventQueued {
		t.Fatalf("lifecycle events: %v", types)
	}
	if types[len(types)-1] != sljmotion.JobEventDone {
		t.Fatalf("stream did not end in done: %v", types)
	}
	want := []string{"segmentation", "pose", "tracking", "scoring"}
	if len(stages) != len(want) {
		t.Fatalf("stage events %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage events %v, want %v", stages, want)
		}
	}
	// The terminal event guarantees the result without ever having polled.
	result, err := q.JobResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if result.Report == nil || result.Report.Total != 7 {
		t.Errorf("watched job result incomplete: %+v", result)
	}
	// The poll path hands back the same stored result.
	again, err := q.JobResult(id)
	if err != nil || again != result {
		t.Errorf("poll-path result differs from the watched result")
	}
}
