package synth

import (
	"github.com/sljmotion/sljmotion/internal/imaging"
)

// Scene colours for the synthetic gym: a light wall, a tan floor, a skirting
// line and a bench so the background has structure for the estimator to
// recover.
var (
	wallTop    = imaging.Color{R: 176, G: 186, B: 196}
	wallBottom = imaging.Color{R: 158, G: 168, B: 178}
	floorNear  = imaging.Color{R: 186, G: 152, B: 110}
	floorFar   = imaging.Color{R: 172, G: 140, B: 100}
	skirting   = imaging.Color{R: 120, G: 96, B: 72}
	courtLine  = imaging.Color{R: 140, G: 60, B: 50}
	benchWood  = imaging.Color{R: 136, G: 104, B: 70}
	benchLeg   = imaging.Color{R: 70, G: 62, B: 54}
)

// Jumper clothing colours. Chosen to contrast with the scene so background
// subtraction has signal, while the shirt speckle (renderer) deliberately
// matches the wall to produce holes for Step 4.
var (
	skinColor  = imaging.Color{R: 228, G: 188, B: 156}
	shirtColor = imaging.Color{R: 188, G: 46, B: 52}
	pantsColor = imaging.Color{R: 44, G: 62, B: 142}
	shoeColor  = imaging.Color{R: 40, G: 34, B: 32}
	hairColor  = imaging.Color{R: 52, G: 38, B: 28}
)

// hash2 is a deterministic integer hash of a pixel coordinate, used for
// static background texture so the true background is exactly reproducible.
func hash2(x, y int) uint32 {
	h := uint32(x)*0x9E3779B1 ^ uint32(y)*0x85EBCA77
	h ^= h >> 13
	h *= 0xC2B2AE35
	h ^= h >> 16
	return h
}

// textureJitter returns a small deterministic offset in [-amp, amp].
func textureJitter(x, y, amp int) int {
	if amp == 0 {
		return 0
	}
	return int(hash2(x, y)%(uint32(2*amp+1))) - amp
}

// BuildBackground renders the static gym scene for the given parameters.
// It is the ground-truth background of experiment F1.
func BuildBackground(p JumpParams) *imaging.Image {
	img := imaging.NewImage(p.W, p.H)
	floorY := p.FloorY
	for y := 0; y < p.H; y++ {
		var base imaging.Color
		if y < floorY {
			t := float64(y) / float64(floorY)
			base = wallTop.Lerp(wallBottom, t)
		} else {
			t := float64(y-floorY) / float64(p.H-floorY)
			base = floorFar.Lerp(floorNear, t)
		}
		for x := 0; x < p.W; x++ {
			j := textureJitter(x, y, 4)
			c := imaging.Color{
				R: clampAdd(base.R, j),
				G: clampAdd(base.G, j),
				B: clampAdd(base.B, j),
			}
			img.Pix[y*p.W+x] = c
		}
	}

	// Skirting board along the wall-floor junction.
	imaging.FillRect(img, imaging.Rect{X0: 0, Y0: floorY - 3, X1: p.W - 1, Y1: floorY - 1}, skirting)

	// Court lines on the floor: a takeoff line at StartX and distance marks.
	lineX := int(p.StartX) + 4
	imaging.FillRect(img, imaging.Rect{X0: lineX, Y0: floorY, X1: lineX + 1, Y1: p.H - 1}, courtLine)
	for m := 1; m <= 3; m++ {
		mx := lineX + int(float64(m)*0.5*p.PxPerMeter())
		if mx >= p.W-1 {
			break
		}
		imaging.FillRect(img, imaging.Rect{X0: mx, Y0: floorY, X1: mx, Y1: p.H - 1}, courtLine)
	}

	// A bench against the far wall, well away from the jump corridor.
	bx := p.W - p.W/6
	if bx < p.W-24 {
		bx = p.W - 24
	}
	benchTop := floorY - 14
	imaging.FillRect(img, imaging.Rect{X0: bx, Y0: benchTop, X1: p.W - 4, Y1: benchTop + 3}, benchWood)
	imaging.FillRect(img, imaging.Rect{X0: bx + 2, Y0: benchTop + 4, X1: bx + 3, Y1: floorY - 1}, benchLeg)
	imaging.FillRect(img, imaging.Rect{X0: p.W - 7, Y0: benchTop + 4, X1: p.W - 6, Y1: floorY - 1}, benchLeg)

	return img
}

// flickerPatch is a wall region whose brightness oscillates frame to frame
// (a window reflection), producing the light-change blobs the paper's Step 3
// removes as "small spots".
type flickerPatch struct {
	rect  imaging.Rect
	amp   float64
	freq  float64
	phase float64
}

func defaultFlickerPatches(p JumpParams) []flickerPatch {
	return []flickerPatch{
		{
			rect: imaging.Rect{X0: p.W / 8, Y0: p.H / 8, X1: p.W/8 + 9, Y1: p.H/8 + 6},
			amp:  34, freq: 0.9, phase: 0.4,
		},
		{
			rect: imaging.Rect{X0: p.W - p.W/5, Y0: p.H / 6, X1: p.W - p.W/5 + 7, Y1: p.H/6 + 5},
			amp:  30, freq: 1.15, phase: 2.1,
		},
	}
}

func clampAdd(v uint8, d int) uint8 {
	n := int(v) + d
	if n < 0 {
		return 0
	}
	if n > 255 {
		return 255
	}
	return uint8(n)
}
