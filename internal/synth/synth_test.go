package synth

import (
	"math"
	"path/filepath"
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

func TestJumpParamsValidate(t *testing.T) {
	if err := DefaultJumpParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*JumpParams){
		func(p *JumpParams) { p.W = 10 },
		func(p *JumpParams) { p.Frames = 2 },
		func(p *JumpParams) { p.BodyHeight = 5 },
		func(p *JumpParams) { p.FloorY = 0 },
		func(p *JumpParams) { p.FloorY = p.H },
		func(p *JumpParams) { p.StartX = -1 },
		func(p *JumpParams) { p.JumpPx = 1e6 },
		func(p *JumpParams) { p.SubjectHeightM = 0 },
	}
	for i, mod := range bad {
		p := DefaultJumpParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should be invalid", i)
		}
	}
}

func TestPxPerMeter(t *testing.T) {
	p := DefaultJumpParams()
	p.BodyHeight = 65
	p.SubjectHeightM = 1.3
	if got := p.PxPerMeter(); got != 50 {
		t.Errorf("PxPerMeter = %v, want 50", got)
	}
}

func TestGenerateShapes(t *testing.T) {
	p := DefaultJumpParams()
	v, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames) != p.Frames || len(v.Truth) != p.Frames ||
		len(v.BodyMasks) != p.Frames || len(v.ShadowMasks) != p.Frames {
		t.Fatal("per-frame slices have wrong lengths")
	}
	for k, f := range v.Frames {
		if f.W != p.W || f.H != p.H {
			t.Fatalf("frame %d is %dx%d", k, f.W, f.H)
		}
	}
	if v.Background.W != p.W || v.Background.H != p.H {
		t.Fatal("background size wrong")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	p := DefaultJumpParams()
	p.Frames = 1
	if _, err := Generate(p); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultJumpParams()
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Frames {
		for i := range a.Frames[k].Pix {
			if a.Frames[k].Pix[i] != b.Frames[k].Pix[i] {
				t.Fatalf("frame %d pixel %d differs between runs with same seed", k, i)
			}
		}
	}
	p.Seed = 999
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Frames[0].Pix {
		if a.Frames[0].Pix[i] != c.Frames[0].Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestBodyMaskMatchesTruthPose(t *testing.T) {
	p := DefaultJumpParams()
	v, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 7, 13, 19} {
		want := v.Truth[k].Rasterize(v.Dims, p.W, p.H)
		got := v.BodyMasks[k]
		for i := range want.Bits {
			if want.Bits[i] != got.Bits[i] {
				t.Fatalf("frame %d body mask deviates from rasterised truth", k)
			}
		}
	}
}

func TestTruePosesGroundedDuringStance(t *testing.T) {
	p := DefaultJumpParams()
	dims := stickmodel.ChildDimensions(p.BodyHeight)
	poses := TruePoses(p, dims)
	// During the first frames the ankle must sit at floor level and at the
	// start position.
	j := poses[0].Joints(dims)
	ankle := j[stickmodel.JointAnkle]
	if math.Abs(ankle.X-p.StartX) > 1.5 {
		t.Errorf("stance ankle x = %v, want %v", ankle.X, p.StartX)
	}
	if math.Abs(ankle.Y-(float64(p.FloorY)-dims.Thick[stickmodel.Foot]/2-1)) > 1.5 {
		t.Errorf("stance ankle y = %v off floor", ankle.Y)
	}
	// The final frames land JumpPx ahead.
	jEnd := poses[len(poses)-1].Joints(dims)
	if math.Abs(jEnd[stickmodel.JointAnkle].X-(p.StartX+p.JumpPx)) > 1.5 {
		t.Errorf("landing ankle x = %v, want %v", jEnd[stickmodel.JointAnkle].X, p.StartX+p.JumpPx)
	}
}

func TestTruePosesFlightRises(t *testing.T) {
	p := DefaultJumpParams()
	dims := stickmodel.ChildDimensions(p.BodyHeight)
	poses := TruePoses(p, dims)
	minY := poses[0].Y
	for _, q := range poses {
		if q.Y < minY {
			minY = q.Y
		}
	}
	if poses[0].Y-minY < p.ApexRise*0.5 {
		t.Errorf("flight apex rise %.1f px too small (want >= %.1f)",
			poses[0].Y-minY, p.ApexRise*0.5)
	}
}

// Property: consecutive ground-truth poses stay within the tracker's
// per-joint mobility windows — the clips must be trackable by design.
func TestTruePosesVelocityBounds(t *testing.T) {
	limits := map[stickmodel.StickID]float64{
		stickmodel.Trunk:    20,
		stickmodel.Neck:     20,
		stickmodel.UpperArm: 55,
		stickmodel.Thigh:    30,
		stickmodel.Head:     20,
		stickmodel.Forearm:  55,
		stickmodel.Shank:    30,
		stickmodel.Foot:     25,
	}
	for _, clip := range DefectClips(DefaultJumpParams()) {
		dims := stickmodel.ChildDimensions(clip.Params.BodyHeight)
		poses := TruePoses(clip.Params, dims)
		for k := 1; k < len(poses); k++ {
			for l := 0; l < stickmodel.NumSticks; l++ {
				d := math.Abs(stickmodel.AngleDiff(poses[k-1].Rho[l], poses[k].Rho[l]))
				if d > limits[stickmodel.StickID(l)] {
					t.Errorf("%s: frame %d stick %v moved %.1f°/frame (limit %v)",
						clip.Name, k, stickmodel.StickID(l), d, limits[stickmodel.StickID(l)])
				}
			}
		}
	}
}

func TestShadowMaskOnFloorOnly(t *testing.T) {
	p := DefaultJumpParams()
	v, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for k, sm := range v.ShadowMasks {
		for _, pt := range sm.Points() {
			if pt.Y < p.FloorY {
				t.Fatalf("frame %d shadow pixel above floor at %v", k, pt)
			}
		}
		// Shadow and body must not overlap.
		for i := range sm.Bits {
			if sm.Bits[i] && v.BodyMasks[k].Bits[i] {
				t.Fatalf("frame %d shadow under body pixel %d", k, i)
			}
		}
	}
}

func TestShadowIsPhotometricallyConsistent(t *testing.T) {
	// Rendered shadows must darken the background's value while roughly
	// preserving hue — the signal Eq. (1) expects. Verified on the raw
	// composite (before sensor noise): regenerate one frame without noise
	// by comparing frame to background in shadow regions, allowing noise
	// tolerance.
	p := DefaultJumpParams()
	v, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	darker, total := 0, 0
	for _, pt := range v.ShadowMasks[k].Points() {
		fg := v.Frames[k].At(pt.X, pt.Y)
		bg := v.Background.At(pt.X, pt.Y)
		total++
		if fg.Luma() < bg.Luma() {
			darker++
		}
	}
	if total == 0 {
		t.Fatal("no shadow pixels in flight frame")
	}
	if float64(darker)/float64(total) < 0.95 {
		t.Errorf("only %d/%d shadow pixels darker than background", darker, total)
	}
}

func TestManualAnnotationErrorScale(t *testing.T) {
	p := DefaultJumpParams()
	v, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	e := DefaultAnnotationError()
	a := v.ManualAnnotation(e, 1)
	b := v.ManualAnnotation(e, 1)
	if a != b {
		t.Error("same seed must reproduce the annotation")
	}
	c := v.ManualAnnotation(e, 2)
	if a == c {
		t.Error("different seeds must differ")
	}
	// The perturbation stays within a few sigma of the truth.
	for l := 0; l < stickmodel.NumSticks; l++ {
		d := math.Abs(stickmodel.AngleDiff(v.Truth[0].Rho[l], a.Rho[l]))
		if d > 5*e.AngleSigma {
			t.Errorf("stick %d annotation error %.1f° implausibly large", l, d)
		}
	}
}

func TestDefectClipsEnumeration(t *testing.T) {
	clips := DefectClips(DefaultJumpParams())
	if len(clips) != 8 {
		t.Fatalf("want 8 clips (good + 7 defects), got %d", len(clips))
	}
	if clips[0].Defects.Any() {
		t.Error("clip 0 must be the good-form clip")
	}
	seen := map[string]bool{}
	for _, c := range clips[1:] {
		if !c.Defects.Any() {
			t.Errorf("%s has no defect", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate clip %s", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestGroundWindows(t *testing.T) {
	initEnd, landEnd := GroundWindows(20)
	if initEnd != 9 || landEnd != 19 {
		t.Errorf("GroundWindows(20) = %d,%d, want 9,19 (the paper's frames 1-10/11-20)", initEnd, landEnd)
	}
	if i, l := GroundWindows(1); i != 0 || l != 0 {
		t.Errorf("GroundWindows(1) = %d,%d", i, l)
	}
}

func TestWriteFrames(t *testing.T) {
	p := DefaultJumpParams()
	p.Frames = 4
	v, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := v.WriteFrames(dir); err != nil {
		t.Fatal(err)
	}
	img, err := imaging.ReadPPMFile(filepath.Join(dir, "frame_02.ppm"))
	if err != nil {
		t.Fatal(err)
	}
	if img.W != p.W {
		t.Error("written frame has wrong size")
	}
}

func TestBuildBackgroundDeterministic(t *testing.T) {
	p := DefaultJumpParams()
	a := BuildBackground(p)
	b := BuildBackground(p)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("background not deterministic")
		}
	}
}

func TestFormDefectsAny(t *testing.T) {
	if (FormDefects{}).Any() {
		t.Error("zero defects must report false")
	}
	if !(FormDefects{UprightTrunk: true}).Any() {
		t.Error("set defect must report true")
	}
}
