package synth

import (
	"fmt"
	"math/rand"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// Video is a synthetic standing-long-jump clip with full ground truth. It
// substitutes for the paper's CCD footage while retaining everything the
// evaluation needs: true poses, true background, and per-frame body and
// shadow masks.
type Video struct {
	Params JumpParams
	Dims   stickmodel.Dimensions
	// Frames are the observed RGB frames (with noise, flicker, shadows).
	Frames []*imaging.Image
	// Truth holds the ground-truth pose per frame.
	Truth []stickmodel.Pose
	// Background is the true static scene, before any noise.
	Background *imaging.Image
	// BodyMasks are the exact body silhouettes per frame.
	BodyMasks []*imaging.Mask
	// ShadowMasks are the exact cast-shadow regions per frame.
	ShadowMasks []*imaging.Mask
}

// Generate renders a full clip for the given parameters.
func Generate(p JumpParams) (*Video, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dims := stickmodel.ChildDimensions(p.BodyHeight)
	poses := TruePoses(p, dims)
	bg := BuildBackground(p)
	patches := defaultFlickerPatches(p)
	rng := rand.New(rand.NewSource(p.Seed))

	v := &Video{
		Params:      p,
		Dims:        dims,
		Truth:       poses,
		Background:  bg,
		Frames:      make([]*imaging.Image, p.Frames),
		BodyMasks:   make([]*imaging.Mask, p.Frames),
		ShadowMasks: make([]*imaging.Mask, p.Frames),
	}
	for k := 0; k < p.Frames; k++ {
		frame, body, shadowM := renderFrame(bg, poses[k], dims, p, k, patches, rng)
		v.Frames[k] = frame
		v.BodyMasks[k] = body
		v.ShadowMasks[k] = shadowM
	}
	return v, nil
}

// ManualAnnotationError models the imprecision of the "trained person" who
// draws the first-frame stick figure.
type ManualAnnotationError struct {
	// PosSigma is the standard deviation of the centre offset in pixels.
	PosSigma float64
	// AngleSigma is the standard deviation of each joint angle in degrees.
	AngleSigma float64
}

// DefaultAnnotationError returns a plausible human annotation error.
func DefaultAnnotationError() ManualAnnotationError {
	return ManualAnnotationError{PosSigma: 1.5, AngleSigma: 4}
}

// ManualAnnotation perturbs the true first-frame pose with the error model,
// simulating the hand-drawn stick figure the paper requires for frame 1.
func (v *Video) ManualAnnotation(e ManualAnnotationError, seed int64) stickmodel.Pose {
	rng := rand.New(rand.NewSource(seed))
	p := v.Truth[0]
	p.X += rng.NormFloat64() * e.PosSigma
	p.Y += rng.NormFloat64() * e.PosSigma
	for l := 0; l < stickmodel.NumSticks; l++ {
		p.Rho[l] = stickmodel.NormalizeAngle(p.Rho[l] + rng.NormFloat64()*e.AngleSigma)
	}
	return p
}

// WriteFrames writes every frame as PPM files named frame_00.ppm… in dir.
func (v *Video) WriteFrames(dir string) error {
	for k, f := range v.Frames {
		path := fmt.Sprintf("%s/frame_%02d.ppm", dir, k)
		if err := imaging.WritePPMFile(path, f); err != nil {
			return fmt.Errorf("frame %d: %w", k, err)
		}
	}
	return nil
}

// DefectClips enumerates the seven single-defect clips used by experiment
// T2 (one per scoring rule) plus labels. The good-form clip is index 0.
func DefectClips(base JumpParams) []struct {
	Name    string
	Params  JumpParams
	Defects FormDefects
} {
	mk := func(name string, d FormDefects) struct {
		Name    string
		Params  JumpParams
		Defects FormDefects
	} {
		p := base
		p.Defects = d
		return struct {
			Name    string
			Params  JumpParams
			Defects FormDefects
		}{Name: name, Params: p, Defects: d}
	}
	return []struct {
		Name    string
		Params  JumpParams
		Defects FormDefects
	}{
		mk("good-form", FormDefects{}),
		mk("no-knee-bend", FormDefects{NoKneeBend: true}),
		mk("no-neck-bend", FormDefects{NoNeckBend: true}),
		mk("no-arm-backswing", FormDefects{NoArmBackswing: true}),
		mk("straight-arms", FormDefects{StraightArms: true}),
		mk("no-air-knee-bend", FormDefects{NoAirKneeBend: true}),
		mk("upright-trunk", FormDefects{UprightTrunk: true}),
		mk("no-arm-forward", FormDefects{NoArmForward: true}),
	}
}
