package synth

import (
	"math"
	"math/rand"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// Shadow projection constants: the light is high on the upper-left behind
// the jumper, casting a slanted, flattened shadow to the right on the floor.
const (
	shadowShearX = 0.45 // horizontal displacement per pixel of height
	shadowFlatY  = 0.16 // vertical (into-floor) displacement per height px
	shadowDarken = 0.62 // multiplicative value attenuation inside shadow
)

// Sensor / illumination noise constants.
const (
	flickerAmp    = 0.015  // global illumination flicker amplitude
	sensorSigma   = 2.2    // Gaussian noise sigma, intensity levels
	saltDensity   = 0.0015 // isolated salt-and-pepper pixel density
	shirtSpeckleP = 0.02   // probability a shirt pixel matches the wall
)

// stickColors maps each stick to its clothing colour.
func stickColors() [stickmodel.NumSticks]imaging.Color {
	var c [stickmodel.NumSticks]imaging.Color
	c[stickmodel.Trunk] = shirtColor
	c[stickmodel.Neck] = skinColor
	c[stickmodel.UpperArm] = shirtColor
	c[stickmodel.Thigh] = pantsColor
	c[stickmodel.Head] = skinColor
	c[stickmodel.Forearm] = skinColor
	c[stickmodel.Shank] = pantsColor
	c[stickmodel.Foot] = shoeColor
	return c
}

// drawOrder renders far limbs first so near body parts overdraw them,
// giving silhouettes the merged-limb topology the paper describes.
var drawOrder = [stickmodel.NumSticks]stickmodel.StickID{
	stickmodel.UpperArm, stickmodel.Forearm, // arm behind trunk when swung back
	stickmodel.Thigh, stickmodel.Shank, stickmodel.Foot,
	stickmodel.Trunk, stickmodel.Neck, stickmodel.Head,
}

// BodyMask rasterises the ground-truth silhouette for a pose.
func BodyMask(pose stickmodel.Pose, dims stickmodel.Dimensions, w, h int) *imaging.Mask {
	return pose.Rasterize(dims, w, h)
}

// ShadowMaskFor projects the body mask onto the floor plane. Every body
// pixel above the floor casts to (x + shearX·h, floorY + flatY·h) where h is
// its height above the floor line.
func ShadowMaskFor(body *imaging.Mask, floorY int) *imaging.Mask {
	sm := imaging.NewMask(body.W, body.H)
	for y := 0; y < body.H && y <= floorY; y++ {
		for x := 0; x < body.W; x++ {
			if !body.Bits[y*body.W+x] {
				continue
			}
			hgt := float64(floorY - y)
			sx := x + int(shadowShearX*hgt+0.5)
			sy := floorY + int(shadowFlatY*hgt+0.5)
			if sx >= 0 && sx < sm.W && sy >= floorY && sy < sm.H {
				sm.Bits[sy*sm.W+sx] = true
				// Thicken horizontally to avoid aliasing gaps.
				if sx+1 < sm.W {
					sm.Bits[sy*sm.W+sx+1] = true
				}
			}
		}
	}
	// Remove shadow pixels hidden behind the body itself.
	for i := range sm.Bits {
		if body.Bits[i] {
			sm.Bits[i] = false
		}
	}
	return sm
}

// renderFrame composes one frame: background, cast shadow, body, then
// illumination flicker and sensor noise.
func renderFrame(bg *imaging.Image, pose stickmodel.Pose, dims stickmodel.Dimensions,
	p JumpParams, frame int, patches []flickerPatch, rng *rand.Rand) (*imaging.Image, *imaging.Mask, *imaging.Mask) {

	img := bg.Clone()

	// Window-reflection flicker patches (part of the *observed* frame, not
	// of the true background).
	for _, fp := range patches {
		d := int(fp.amp * math.Sin(fp.freq*float64(frame)+fp.phase))
		for y := fp.rect.Y0; y <= fp.rect.Y1 && y < img.H; y++ {
			for x := fp.rect.X0; x <= fp.rect.X1 && x < img.W; x++ {
				if x < 0 || y < 0 {
					continue
				}
				c := img.Pix[y*img.W+x]
				img.Pix[y*img.W+x] = imaging.Color{
					R: clampAdd(c.R, d), G: clampAdd(c.G, d), B: clampAdd(c.B, d),
				}
			}
		}
	}

	body := BodyMask(pose, dims, p.W, p.H)
	shadowM := ShadowMaskFor(body, p.FloorY)

	// Cast shadow: attenuate the background value uniformly (hue and
	// saturation preserved), exactly the photometric model of Eq. (1).
	for i, s := range shadowM.Bits {
		if s {
			f := shadowDarken + 0.05*float64(hash2(i%p.W, i/p.W)%100)/100
			img.Pix[i] = img.Pix[i].Scale(f)
		}
	}

	// Body: capsules in draw order with simple shading along each stick.
	colors := stickColors()
	segs := pose.Segments(dims)
	for _, id := range drawOrder {
		col := colors[id]
		imaging.FillCapsule(img, segs[id], dims.Thick[id]/2, col)
	}
	// Hair cap on the top half of the head stick.
	headSeg := segs[stickmodel.Head]
	hairSeg := imaging.Segment{A: headSeg.At(0.55), B: headSeg.B}
	imaging.FillCapsule(img, hairSeg, dims.Thick[stickmodel.Head]/2, hairColor)

	// Shirt speckle: a few trunk pixels match the wall colour, producing
	// holes after background subtraction (exercises Step 4).
	trunkSeg := segs[stickmodel.Trunk]
	tr := dims.Thick[stickmodel.Trunk] / 2
	x0 := int(math.Min(trunkSeg.A.X, trunkSeg.B.X) - tr)
	x1 := int(math.Max(trunkSeg.A.X, trunkSeg.B.X) + tr)
	y0 := int(math.Min(trunkSeg.A.Y, trunkSeg.B.Y) - tr)
	y1 := int(math.Max(trunkSeg.A.Y, trunkSeg.B.Y) + tr)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if !img.In(x, y) || !body.At(x, y) {
				continue
			}
			if trunkSeg.PointDist(imaging.Vec2{X: float64(x), Y: float64(y)}) <= tr &&
				rng.Float64() < shirtSpeckleP {
				img.Set(x, y, bg.At(x, y))
			}
		}
	}

	// Global illumination flicker.
	flicker := 1 + flickerAmp*math.Sin(0.8*float64(frame)+0.3) + rng.NormFloat64()*0.003
	for i := range img.Pix {
		img.Pix[i] = img.Pix[i].Scale(flicker)
	}

	// Sensor noise: Gaussian on every pixel plus sparse salt-and-pepper.
	for i := range img.Pix {
		n := rng.NormFloat64() * sensorSigma
		c := img.Pix[i]
		img.Pix[i] = imaging.Color{
			R: clampAdd(c.R, int(n)), G: clampAdd(c.G, int(n)), B: clampAdd(c.B, int(n)),
		}
	}
	nSalt := int(saltDensity * float64(len(img.Pix)))
	for s := 0; s < nSalt; s++ {
		i := rng.Intn(len(img.Pix))
		v := uint8(rng.Intn(256))
		img.Pix[i] = imaging.Color{R: v, G: 255 - v, B: uint8(rng.Intn(256))}
	}

	return img, body, shadowM
}
