// Package synth is the data substrate that replaces the paper's CCD video
// footage (DESIGN.md §1): a kinematic standing-long-jump script produces
// ground-truth stick-model poses, and a renderer turns them into RGB frames
// with a textured background, cast shadows consistent with the HSV shadow
// model of Eq. (1), illumination flicker and sensor noise.
package synth

import (
	"fmt"
	"math"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// FormDefects disables individual elements of good jump form. Each flag is
// designed to violate exactly one scoring rule of Table 2, so rule-level
// detection can be evaluated one defect at a time (experiment T2).
type FormDefects struct {
	// NoKneeBend keeps the legs nearly straight during initiation (→ R1).
	NoKneeBend bool
	// NoNeckBend keeps the neck upright during initiation (→ R2).
	NoNeckBend bool
	// NoArmBackswing keeps the arms low instead of swinging past 270° (→ R3).
	NoArmBackswing bool
	// StraightArms keeps the elbows extended during initiation (→ R4).
	StraightArms bool
	// NoAirKneeBend keeps the legs straight in flight and landing (→ R5).
	NoAirKneeBend bool
	// UprightTrunk keeps the trunk below 45° in flight/landing (→ R6).
	UprightTrunk bool
	// NoArmForward keeps the arms behind 160° after landing (→ R7).
	NoArmForward bool
}

// Any reports whether at least one defect is enabled.
func (f FormDefects) Any() bool {
	return f.NoKneeBend || f.NoNeckBend || f.NoArmBackswing || f.StraightArms ||
		f.NoAirKneeBend || f.UprightTrunk || f.NoArmForward
}

// JumpParams configures one synthetic jump clip.
type JumpParams struct {
	// W, H are the frame dimensions in pixels.
	W, H int
	// Frames is the clip length; the paper's clips are "20 frames or so".
	Frames int
	// BodyHeight is the jumper's standing height in pixels.
	BodyHeight float64
	// StartX is the ankle x position at the start, in pixels.
	StartX float64
	// JumpPx is the horizontal ankle displacement of the jump, in pixels.
	JumpPx float64
	// ApexRise is the additional trunk-centre rise at flight apex, px.
	ApexRise float64
	// FloorY is the image row of the floor line.
	FloorY int
	// SubjectHeightM is the real-world subject height used for pixel↔meter
	// calibration (primary-school child by default).
	SubjectHeightM float64
	// Defects plants form errors for scoring experiments.
	Defects FormDefects
	// Seed drives all stochastic rendering (noise, speckle).
	Seed int64
}

// DefaultJumpParams returns a 192×144, 20-frame clip of a well-formed jump.
func DefaultJumpParams() JumpParams {
	return JumpParams{
		W:              192,
		H:              144,
		Frames:         20,
		BodyHeight:     66,
		StartX:         46,
		JumpPx:         58,
		ApexRise:       16,
		FloorY:         124,
		SubjectHeightM: 1.30,
		Seed:           1,
	}
}

// Validate rejects unusable parameters.
func (p JumpParams) Validate() error {
	if p.W < 32 || p.H < 32 {
		return fmt.Errorf("synth: frame size %dx%d too small", p.W, p.H)
	}
	if p.Frames < 4 {
		return fmt.Errorf("synth: need at least 4 frames, got %d", p.Frames)
	}
	if p.BodyHeight < 16 {
		return fmt.Errorf("synth: body height %v too small", p.BodyHeight)
	}
	if p.FloorY <= 0 || p.FloorY >= p.H {
		return fmt.Errorf("synth: floor row %d outside frame height %d", p.FloorY, p.H)
	}
	if p.StartX < 0 || p.StartX+p.JumpPx >= float64(p.W) {
		return fmt.Errorf("synth: jump from %v by %v leaves frame width %d", p.StartX, p.JumpPx, p.W)
	}
	if p.SubjectHeightM <= 0 {
		return fmt.Errorf("synth: subject height must be positive, got %v", p.SubjectHeightM)
	}
	return nil
}

// PxPerMeter returns the pixel↔meter calibration factor.
func (p JumpParams) PxPerMeter() float64 { return p.BodyHeight / p.SubjectHeightM }

// jointAngles is a pure angle tuple; the trunk centre is solved separately
// from anchoring constraints.
type jointAngles [stickmodel.NumSticks]float64

// controlPoint is a keyframe of the jump script on the normalised timeline
// t ∈ [0,1].
type controlPoint struct {
	t float64
	a jointAngles
}

// Phase timeline constants on the normalised clip timeline: the last ground
// contact is at tTakeoff and the first ground contact after flight is at
// tLand. With 20 frames these map to the paper's windows (initiation =
// frames 1-10, air/landing = frames 11-20).
const (
	tTakeoff = 0.44
	tLand    = 0.72
)

// angles builds the keyframe table for the requested form.
func jumpScript(d FormDefects) []controlPoint {
	ang := func(trunk, neck, uarm, thigh, head, farm, shank, foot float64) jointAngles {
		var a jointAngles
		a[stickmodel.Trunk] = trunk
		a[stickmodel.Neck] = neck
		a[stickmodel.UpperArm] = uarm
		a[stickmodel.Thigh] = thigh
		a[stickmodel.Head] = head
		a[stickmodel.Forearm] = farm
		a[stickmodel.Shank] = shank
		a[stickmodel.Foot] = foot
		return a
	}

	// Well-formed jump. Angles per the convention of stickmodel: clockwise
	// from vertical-up toward the jump direction.
	stand := ang(6, 12, 182, 178, 8, 174, 182, 95)
	settle := ang(10, 16, 196, 172, 12, 182, 188, 95)
	crouch := ang(42, 44, 292, 138, 34, 228, 212, 95)
	drive := ang(38, 36, 248, 152, 28, 200, 200, 112)
	takeoff := ang(32, 26, 196, 166, 22, 172, 190, 128)
	flight1 := ang(30, 24, 150, 132, 20, 130, 198, 120)
	apex := ang(28, 22, 106, 116, 18, 92, 206, 118)
	descend := ang(34, 26, 88, 126, 22, 78, 188, 108)
	touch := ang(48, 32, 94, 134, 26, 84, 202, 96)
	absorb := ang(56, 36, 102, 140, 30, 92, 212, 95)
	recover := ang(44, 30, 118, 152, 26, 108, 198, 95)
	stand2 := ang(26, 20, 152, 166, 18, 146, 188, 95)

	if d.NoKneeBend {
		crouch[stickmodel.Thigh], crouch[stickmodel.Shank] = 168, 186
		drive[stickmodel.Thigh], drive[stickmodel.Shank] = 172, 186
		settle[stickmodel.Thigh], settle[stickmodel.Shank] = 176, 184
	}
	if d.NoNeckBend {
		for _, cp := range []*jointAngles{&settle, &crouch, &drive, &takeoff} {
			cp[stickmodel.Neck] = 8
			cp[stickmodel.Head] = 6
		}
	}
	if d.NoArmBackswing {
		// Arms stay low; elbows still flex so R4 is unaffected.
		settle[stickmodel.UpperArm], settle[stickmodel.Forearm] = 192, 158
		crouch[stickmodel.UpperArm], crouch[stickmodel.Forearm] = 214, 152
		drive[stickmodel.UpperArm], drive[stickmodel.Forearm] = 200, 148
	}
	if d.StraightArms {
		for _, cp := range []*jointAngles{&stand, &settle, &crouch, &drive, &takeoff} {
			cp[stickmodel.Forearm] = cp[stickmodel.UpperArm] - 6
		}
	}
	if d.NoAirKneeBend {
		flight1[stickmodel.Thigh], flight1[stickmodel.Shank] = 158, 178
		apex[stickmodel.Thigh], apex[stickmodel.Shank] = 154, 180
		descend[stickmodel.Thigh], descend[stickmodel.Shank] = 158, 176
		touch[stickmodel.Thigh], touch[stickmodel.Shank] = 162, 182
		absorb[stickmodel.Thigh], absorb[stickmodel.Shank] = 164, 184
		recover[stickmodel.Thigh], recover[stickmodel.Shank] = 168, 184
	}
	if d.UprightTrunk {
		for _, cp := range []*jointAngles{&flight1, &apex, &descend, &touch, &absorb, &recover} {
			cp[stickmodel.Trunk] = math.Min(cp[stickmodel.Trunk], 28)
		}
	}
	if d.NoArmForward {
		for _, cp := range []*jointAngles{&takeoff, &flight1, &apex, &descend, &touch, &absorb, &recover, &stand2} {
			if cp[stickmodel.UpperArm] < 188 {
				cp[stickmodel.UpperArm] = 188
			}
			if cp[stickmodel.Forearm] < 180 {
				cp[stickmodel.Forearm] = 180
			}
		}
	}

	return []controlPoint{
		{0.00, stand},
		{0.08, settle},
		{0.30, crouch},
		{0.38, drive},
		{tTakeoff, takeoff},
		{0.52, flight1},
		{0.60, apex},
		{0.66, descend},
		{tLand, touch},
		{0.78, absorb},
		{0.86, recover},
		{1.00, stand2},
	}
}

// anglesAt interpolates the keyframe table at normalised time t using
// shortest-arc angular interpolation.
func anglesAt(script []controlPoint, t float64) jointAngles {
	if t <= script[0].t {
		return script[0].a
	}
	if t >= script[len(script)-1].t {
		return script[len(script)-1].a
	}
	for i := 0; i+1 < len(script); i++ {
		a, b := script[i], script[i+1]
		if t > b.t {
			continue
		}
		u := (t - a.t) / (b.t - a.t)
		u = smoothstep(u)
		var out jointAngles
		for l := 0; l < stickmodel.NumSticks; l++ {
			out[l] = stickmodel.AngleLerp(a.a[l], b.a[l], u)
		}
		return out
	}
	return script[len(script)-1].a
}

func smoothstep(u float64) float64 { return u * u * (3 - 2*u) }

// TruePoses generates the ground-truth pose sequence for the parameters:
// angles from the jump script, trunk centre solved so the ankle is planted
// on the floor during stance and follows a ballistic arc during flight.
func TruePoses(p JumpParams, dims stickmodel.Dimensions) []stickmodel.Pose {
	script := jumpScript(p.Defects)
	n := p.Frames
	poses := make([]stickmodel.Pose, n)

	floor := float64(p.FloorY)
	ankleY := floor - dims.Thick[stickmodel.Foot]/2 - 1

	// centreFor solves the trunk centre from an ankle anchor.
	centreFor := func(a jointAngles, ankle imaging.Vec2) imaging.Vec2 {
		trunkHalf := stickmodel.Dir(a[stickmodel.Trunk]).Mul(dims.Length[stickmodel.Trunk] / 2)
		thigh := stickmodel.Dir(a[stickmodel.Thigh]).Mul(dims.Length[stickmodel.Thigh])
		shank := stickmodel.Dir(a[stickmodel.Shank]).Mul(dims.Length[stickmodel.Shank])
		// ankle = centre - trunkHalf + thigh + shank  ⇒  centre = ankle + trunkHalf - thigh - shank
		return ankle.Add(trunkHalf).Sub(thigh).Sub(shank)
	}

	startAnkle := imaging.Vec2{X: p.StartX, Y: ankleY}
	landAnkle := imaging.Vec2{X: p.StartX + p.JumpPx, Y: ankleY}

	tOf := func(k int) float64 { return float64(k) / float64(n-1) }

	// Ballistic boundary centres from the anchored takeoff/landing poses.
	c0 := centreFor(anglesAt(script, tTakeoff), startAnkle)
	c1 := centreFor(anglesAt(script, tLand), landAnkle)

	for k := 0; k < n; k++ {
		t := tOf(k)
		a := anglesAt(script, t)
		var centre imaging.Vec2
		switch {
		case t <= tTakeoff:
			centre = centreFor(a, startAnkle)
		case t >= tLand:
			centre = centreFor(a, landAnkle)
		default:
			s := (t - tTakeoff) / (tLand - tTakeoff)
			centre = imaging.Vec2{
				X: c0.X + (c1.X-c0.X)*s,
				Y: c0.Y + (c1.Y-c0.Y)*s - 4*p.ApexRise*s*(1-s),
			}
		}
		pose := stickmodel.Pose{X: centre.X, Y: centre.Y}
		for l := 0; l < stickmodel.NumSticks; l++ {
			pose.Rho[l] = stickmodel.NormalizeAngle(a[l])
		}
		poses[k] = pose
	}
	return poses
}

// GroundWindows returns the frame index windows matching the paper's fixed
// scoring stages for an n-frame clip: initiation = first half up to
// takeoff-inclusive scaling, air/landing = the rest. For the default
// 20-frame clip this is [0,9] and [10,19], exactly the paper's
// "first frame to the 10th" and "11th to the 20th".
func GroundWindows(n int) (initEnd, landEnd int) {
	if n < 2 {
		return 0, n - 1
	}
	initEnd = int(math.Round(float64(n)/2)) - 1
	return initEnd, n - 1
}
