// Package segmentation composes the paper's five-step human-object
// segmentation pipeline (Section 2):
//
//  1. estimate the background of the video sequence (change detection);
//  2. subtract the background from each frame;
//  3. remove noise (8-neighbour filter) and small spots (connected
//     components);
//  4. fill small holes (4-neighbour rule);
//  5. remove shadows (HSV detector, Eq. 1-2).
//
// The result per frame is a Silhouette: the binary mask of the human object
// plus derived statistics consumed by pose estimation.
package segmentation

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/sljmotion/sljmotion/internal/background"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/morphology"
	"github.com/sljmotion/sljmotion/internal/shadow"
)

// Config parameterises the pipeline. The zero value is NOT valid; use
// DefaultConfig and override fields as needed.
type Config struct {
	// StabilityThreshold is Step 1's "very small change" bound.
	StabilityThreshold int
	// SubtractThreshold is Step 2's foreground threshold.
	SubtractThreshold int
	// NoiseMinNeighbors is Step 3's 8-neighbour keep threshold.
	NoiseMinNeighbors int
	// SpotFraction and SpotFloor set the adaptive small-spot area bound:
	// max(SpotFraction × largest-component-area, SpotFloor).
	SpotFraction float64
	SpotFloor    int
	// HoleFillPasses is the number of Step 4 passes (paper uses one).
	HoleFillPasses int
	// FillEnclosed switches Step 4 to full enclosed-region filling
	// (extension; off reproduces the paper).
	FillEnclosed bool
	// Shadow holds the Eq. (1) constants.
	Shadow shadow.Params
	// DisableShadowRemoval skips Step 5 entirely (ablation A3).
	DisableShadowRemoval bool
	// KeepLargestOnly reduces the final mask to its largest component,
	// appropriate when exactly one jumper is in frame.
	KeepLargestOnly bool
}

// DefaultConfig returns the calibrated configuration of DESIGN.md §7.
func DefaultConfig() Config {
	return Config{
		StabilityThreshold: background.DefaultStabilityThreshold,
		SubtractThreshold:  background.DefaultSubtractThreshold,
		NoiseMinNeighbors:  3,
		SpotFraction:       0.2,
		SpotFloor:          40,
		HoleFillPasses:     1,
		Shadow:             shadow.DefaultParams(),
		KeepLargestOnly:    true,
	}
}

// Validate checks the configuration for usable values.
func (c Config) Validate() error {
	if c.NoiseMinNeighbors < 0 || c.NoiseMinNeighbors > 8 {
		return fmt.Errorf("segmentation: NoiseMinNeighbors must be in [0,8], got %d", c.NoiseMinNeighbors)
	}
	if c.SpotFraction < 0 || c.SpotFraction > 1 {
		return fmt.Errorf("segmentation: SpotFraction must be in [0,1], got %v", c.SpotFraction)
	}
	if c.HoleFillPasses < 0 {
		return fmt.Errorf("segmentation: HoleFillPasses must be >= 0, got %d", c.HoleFillPasses)
	}
	if !c.DisableShadowRemoval {
		if err := c.Shadow.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Silhouette is the segmented human object in one frame.
type Silhouette struct {
	Frame    int
	Mask     *imaging.Mask
	Area     int
	Centroid imaging.Vec2
	BBox     imaging.Rect
}

// NewSilhouette derives statistics from a mask.
func NewSilhouette(frame int, m *imaging.Mask) Silhouette {
	s := Silhouette{Frame: frame, Mask: m, Area: m.Count()}
	if cx, cy, ok := m.Centroid(); ok {
		s.Centroid = imaging.Vec2{X: cx, Y: cy}
	}
	if bb, ok := m.BBox(); ok {
		s.BBox = bb
	}
	return s
}

// StageMasks captures every intermediate mask of one frame, mirroring the
// panels of the paper's Figure 2 and Figure 3.
type StageMasks struct {
	Subtracted   *imaging.Mask // Figure 2 (a)
	Denoised     *imaging.Mask // Figure 2 (b)
	SpotsRemoved *imaging.Mask // Figure 2 (c)
	HolesFilled  *imaging.Mask // Figure 2 (d)
	ShadowMask   *imaging.Mask // the SM_k pixels of Eq. (1)
	Object       *imaging.Mask // Figure 3 (a): final silhouette
}

// Pipeline runs the five-step segmentation.
type Pipeline struct {
	cfg      Config
	detector *shadow.Detector
	bgEst    background.Estimator
}

// ErrNoFrames is returned when Run receives an empty sequence.
var ErrNoFrames = errors.New("segmentation: no frames")

// New returns a pipeline for the given configuration.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:   cfg,
		bgEst: &background.ChangeDetection{StabilityThreshold: cfg.StabilityThreshold},
	}
	if !cfg.DisableShadowRemoval {
		det, err := shadow.NewDetector(cfg.Shadow)
		if err != nil {
			return nil, err
		}
		p.detector = det
	}
	return p, nil
}

// WithEstimator overrides the Step 1 background estimator (ablation A2).
func (p *Pipeline) WithEstimator(est background.Estimator) *Pipeline {
	p.bgEst = est
	return p
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// EstimateBackground runs only Step 1.
func (p *Pipeline) EstimateBackground(frames []*imaging.Image) (*imaging.Image, error) {
	if len(frames) == 0 {
		return nil, ErrNoFrames
	}
	return p.bgEst.Estimate(frames)
}

// SegmentFrame runs Steps 2-5 on a single frame against a known background,
// returning all intermediate masks.
func (p *Pipeline) SegmentFrame(frame, bg *imaging.Image) (*StageMasks, error) {
	sub, err := background.Subtract(frame, bg, p.cfg.SubtractThreshold)
	if err != nil {
		return nil, fmt.Errorf("step 2: %w", err)
	}

	den := morphology.RemoveNoise(sub, p.cfg.NoiseMinNeighbors)

	minArea := morphology.AdaptiveSpotThreshold(den, p.cfg.SpotFraction, p.cfg.SpotFloor, morphology.Conn8)
	spots := morphology.RemoveSmallSpots(den, minArea, morphology.Conn8)

	var holes *imaging.Mask
	if p.cfg.FillEnclosed {
		holes = morphology.FillEnclosed(spots)
	} else {
		holes = morphology.FillHolesN(spots, maxInt(p.cfg.HoleFillPasses, 0))
	}

	stages := &StageMasks{
		Subtracted:   sub,
		Denoised:     den,
		SpotsRemoved: spots,
		HolesFilled:  holes,
	}

	object := holes.Clone()
	if p.detector != nil {
		obj, sm, err := p.detector.Remove(frame, bg, holes)
		if err != nil {
			return nil, fmt.Errorf("step 5: %w", err)
		}
		object = obj
		stages.ShadowMask = sm
	} else {
		stages.ShadowMask = imaging.NewMask(frame.W, frame.H)
	}

	// Shadow removal can fragment the object or expose small residues;
	// re-run hole filling and keep the dominant component when configured.
	object = morphology.FillHolesN(object, 1)
	if p.cfg.KeepLargestOnly {
		object = morphology.KeepLargest(object, morphology.Conn8)
	}
	stages.Object = object
	return stages, nil
}

// Run executes the full pipeline on a sequence: Step 1 once, Steps 2-5 per
// frame. It returns one silhouette per input frame.
func (p *Pipeline) Run(frames []*imaging.Image) ([]Silhouette, error) {
	return p.RunWorkers(frames, 1)
}

// RunWorkers is Run with Steps 2-5 fanned out over a worker pool. Frames
// are independent once the background is estimated, so the result is
// identical to the sequential path regardless of worker count. workers <= 0
// selects GOMAXPROCS; workers == 1 is fully sequential.
func (p *Pipeline) RunWorkers(frames []*imaging.Image, workers int) ([]Silhouette, error) {
	_, _, sils, err := p.runDetailedWorkers(frames, workers, false)
	return sils, err
}

// RunDetailed is Run but also returns the background and every frame's
// intermediate stages; the figure harness uses it.
func (p *Pipeline) RunDetailed(frames []*imaging.Image) (*imaging.Image, []StageMasks, []Silhouette, error) {
	return p.RunDetailedWorkers(frames, 1)
}

// RunDetailedWorkers is RunDetailed with the per-frame work (Steps 2-5)
// distributed over a worker pool; see RunWorkers for worker semantics.
func (p *Pipeline) RunDetailedWorkers(frames []*imaging.Image, workers int) (*imaging.Image, []StageMasks, []Silhouette, error) {
	return p.runDetailedWorkers(frames, workers, true)
}

// runDetailedWorkers runs Step 1 once, then Steps 2-5 per frame on up to
// `workers` goroutines. Results land in index-addressed slices, so the
// output ordering (and content — SegmentFrame is deterministic and the
// pipeline is immutable after New) is independent of scheduling.
func (p *Pipeline) runDetailedWorkers(frames []*imaging.Image, workers int, keepStages bool) (*imaging.Image, []StageMasks, []Silhouette, error) {
	bg, err := p.EstimateBackground(frames)
	if err != nil {
		return nil, nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}

	var stages []StageMasks
	if keepStages {
		stages = make([]StageMasks, len(frames))
	}
	sils := make([]Silhouette, len(frames))

	segment := func(i int) error {
		st, err := p.SegmentFrame(frames[i], bg)
		if err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
		if keepStages {
			stages[i] = *st
		}
		sils[i] = NewSilhouette(i, st.Object)
		return nil
	}

	if workers == 1 {
		for i := range frames {
			if err := segment(i); err != nil {
				return nil, nil, nil, err
			}
		}
		return bg, stages, sils, nil
	}

	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		runErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() { // stop claiming frames once any frame errors
				i := int(next.Add(1)) - 1
				if i >= len(frames) {
					return
				}
				if err := segment(i); err != nil {
					// Keep the lowest failing frame so the reported error
					// matches the sequential path on multi-frame failures.
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, runErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, nil, nil, runErr
	}
	return bg, stages, sils, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
