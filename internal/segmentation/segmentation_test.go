package segmentation

import (
	"testing"

	"github.com/sljmotion/sljmotion/internal/background"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/metrics"
	"github.com/sljmotion/sljmotion/internal/synth"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NoiseMinNeighbors = 9 },
		func(c *Config) { c.NoiseMinNeighbors = -1 },
		func(c *Config) { c.SpotFraction = 1.5 },
		func(c *Config) { c.HoleFillPasses = -1 },
		func(c *Config) { c.Shadow.Alpha = 2; c.Shadow.Beta = 1 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	// Disabling shadow removal skips shadow param validation.
	cfg := DefaultConfig()
	cfg.Shadow.Alpha = 2
	cfg.DisableShadowRemoval = true
	if err := cfg.Validate(); err != nil {
		t.Errorf("shadow params must be ignored when disabled: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpotFraction = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil); err == nil {
		t.Error("expected error for empty sequence")
	}
}

// testVideo generates one small synthetic clip shared by the pipeline tests.
func testVideo(t *testing.T) *synth.Video {
	t.Helper()
	params := synth.DefaultJumpParams()
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPipelineSilhouetteQuality(t *testing.T) {
	v := testVideo(t)
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sils, err := p.Run(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(sils) != len(v.Frames) {
		t.Fatalf("%d silhouettes for %d frames", len(sils), len(v.Frames))
	}
	for k, s := range sils {
		sc, err := metrics.CompareMasks(s.Mask, v.BodyMasks[k])
		if err != nil {
			t.Fatal(err)
		}
		if sc.IoU < 0.80 {
			t.Errorf("frame %d IoU = %.3f, want >= 0.80", k, sc.IoU)
		}
		if s.Frame != k {
			t.Errorf("silhouette %d has frame %d", k, s.Frame)
		}
		if s.Area == 0 {
			t.Errorf("frame %d empty silhouette", k)
		}
	}
}

func TestPipelineStagesImprovePrecision(t *testing.T) {
	// Figure 2's narrative: each cleanup stage raises precision against the
	// true body mask (noise → spots → holes).
	v := testVideo(t)
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, stages, _, err := p.RunDetailed(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 8, 15} {
		st := stages[k]
		truth := v.BodyMasks[k]
		sub, _ := metrics.CompareMasks(st.Subtracted, truth)
		den, _ := metrics.CompareMasks(st.Denoised, truth)
		spt, _ := metrics.CompareMasks(st.SpotsRemoved, truth)
		obj, _ := metrics.CompareMasks(st.Object, truth)
		if den.Precision < sub.Precision {
			t.Errorf("frame %d: denoise lowered precision %.3f -> %.3f", k, sub.Precision, den.Precision)
		}
		if spt.Precision < den.Precision {
			t.Errorf("frame %d: spot removal lowered precision %.3f -> %.3f", k, den.Precision, spt.Precision)
		}
		if obj.IoU < spt.IoU {
			t.Errorf("frame %d: final object IoU %.3f below spot stage %.3f", k, obj.IoU, spt.IoU)
		}
	}
}

func TestPipelineShadowRemovalReducesShadowPixels(t *testing.T) {
	v := testVideo(t)
	withShadow, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := DefaultConfig()
	cfgOff.DisableShadowRemoval = true
	withoutShadow, err := New(cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	_, stOn, silsOn, err := withShadow.RunDetailed(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	_, _, silsOff, err := withoutShadow.RunDetailed(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	// Over the clip, the shadow detector must fire on a meaningful number
	// of pixels and the resulting objects must not be larger than the
	// shadow-blind ones on average.
	totalShadow, onArea, offArea := 0, 0, 0
	for k := range v.Frames {
		totalShadow += stOn[k].ShadowMask.Count()
		onArea += silsOn[k].Area
		offArea += silsOff[k].Area
	}
	if totalShadow == 0 {
		t.Error("shadow detector never fired on a clip with rendered shadows")
	}
	if onArea > offArea {
		t.Errorf("shadow removal grew the object: %d > %d", onArea, offArea)
	}
}

func TestPipelineCustomEstimator(t *testing.T) {
	v := testVideo(t)
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.WithEstimator(background.Median{})
	bg, err := p.EstimateBackground(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := background.RMSE(bg, v.Background)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 12 {
		t.Errorf("median-estimated background RMSE %.2f too high", rmse)
	}
}

func TestSegmentFrameAgainstKnownBackground(t *testing.T) {
	v := testVideo(t)
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Using the *true* background isolates Steps 2-5 from Step 1.
	st, err := p.SegmentFrame(v.Frames[10], v.Background)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.CompareMasks(st.Object, v.BodyMasks[10])
	if err != nil {
		t.Fatal(err)
	}
	if sc.IoU < 0.85 {
		t.Errorf("IoU vs true background = %.3f, want >= 0.85", sc.IoU)
	}
}

func TestNewSilhouetteStats(t *testing.T) {
	m := imaging.NewMask(10, 10)
	imaging.FillRectMask(m, imaging.Rect{X0: 2, Y0: 3, X1: 4, Y1: 5})
	s := NewSilhouette(7, m)
	if s.Frame != 7 || s.Area != 9 {
		t.Errorf("frame/area = %d/%d", s.Frame, s.Area)
	}
	if s.Centroid.X != 3 || s.Centroid.Y != 4 {
		t.Errorf("centroid = %+v", s.Centroid)
	}
	if s.BBox.W() != 3 || s.BBox.H() != 3 {
		t.Errorf("bbox = %+v", s.BBox)
	}
	empty := NewSilhouette(0, imaging.NewMask(4, 4))
	if empty.Area != 0 {
		t.Error("empty silhouette area wrong")
	}
}

func TestFillEnclosedOption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FillEnclosed = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := testVideo(t)
	sils, err := p.Run(v.Frames[:4])
	if err != nil {
		t.Fatal(err)
	}
	if len(sils) != 4 {
		t.Fatalf("got %d silhouettes", len(sils))
	}
}

// TestRunWorkersMatchesSequential verifies the acceptance bar of the
// concurrent pipeline: fanning Steps 2-5 out over a worker pool must produce
// byte-identical silhouettes to the sequential path.
func TestRunWorkersMatchesSequential(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := pipe.Run(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		par, err := pipe.RunWorkers(v.Frames, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d silhouettes, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Frame != seq[i].Frame || par[i].Area != seq[i].Area {
				t.Fatalf("workers=%d frame %d: stats differ", workers, i)
			}
			for b, bit := range seq[i].Mask.Bits {
				if par[i].Mask.Bits[b] != bit {
					t.Fatalf("workers=%d frame %d: mask differs at pixel %d", workers, i, b)
				}
			}
		}
	}
}

// TestRunDetailedWorkersPropagatesStages checks the detailed variant keeps
// per-frame intermediate stages under the worker pool.
func TestRunDetailedWorkersPropagatesStages(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg, stages, sils, err := pipe.RunDetailedWorkers(v.Frames, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bg == nil || len(stages) != len(v.Frames) || len(sils) != len(v.Frames) {
		t.Fatalf("bg=%v stages=%d sils=%d", bg != nil, len(stages), len(sils))
	}
	for i, st := range stages {
		if st.Object == nil || st.Subtracted == nil {
			t.Fatalf("frame %d: missing stage masks", i)
		}
		if st.Object.Count() != sils[i].Area {
			t.Fatalf("frame %d: object/silhouette mismatch", i)
		}
	}
}
