package metrics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

func rectMask(w, h int, r imaging.Rect) *imaging.Mask {
	m := imaging.NewMask(w, h)
	imaging.FillRectMask(m, r)
	return m
}

func TestCompareMasksIdentical(t *testing.T) {
	m := rectMask(10, 10, imaging.Rect{X0: 2, Y0: 2, X1: 5, Y1: 5})
	s, err := CompareMasks(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.IoU != 1 || s.Precision != 1 || s.Recall != 1 || s.F1 != 1 {
		t.Errorf("identical masks: %+v", s)
	}
	if s.FP != 0 || s.FN != 0 || s.TP != 16 {
		t.Errorf("counts: %+v", s)
	}
}

func TestCompareMasksDisjoint(t *testing.T) {
	a := rectMask(10, 10, imaging.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2})
	b := rectMask(10, 10, imaging.Rect{X0: 6, Y0: 6, X1: 8, Y1: 8})
	s, err := CompareMasks(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.IoU != 0 || s.Precision != 0 || s.Recall != 0 || s.F1 != 0 {
		t.Errorf("disjoint masks: %+v", s)
	}
}

func TestCompareMasksHalfOverlap(t *testing.T) {
	a := rectMask(10, 10, imaging.Rect{X0: 0, Y0: 0, X1: 3, Y1: 0}) // 4 px
	b := rectMask(10, 10, imaging.Rect{X0: 2, Y0: 0, X1: 5, Y1: 0}) // 4 px, overlap 2
	s, err := CompareMasks(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.IoU-2.0/6.0) > 1e-12 {
		t.Errorf("IoU = %v, want 1/3", s.IoU)
	}
	if math.Abs(s.Precision-0.5) > 1e-12 || math.Abs(s.Recall-0.5) > 1e-12 {
		t.Errorf("P/R = %v/%v", s.Precision, s.Recall)
	}
}

func TestCompareMasksBothEmpty(t *testing.T) {
	s, err := CompareMasks(imaging.NewMask(5, 5), imaging.NewMask(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s.IoU != 1 {
		t.Error("empty-vs-empty must score 1")
	}
}

func TestCompareMasksSizeMismatch(t *testing.T) {
	if _, err := CompareMasks(imaging.NewMask(5, 5), imaging.NewMask(6, 5)); err == nil {
		t.Error("expected error")
	}
}

// Property: IoU is symmetric and within [0,1]; IoU <= precision and recall.
func TestCompareMasksProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		a, b := imaging.NewMask(12, 12), imaging.NewMask(12, 12)
		for i := range a.Bits {
			a.Bits[i] = rng.Float64() < 0.4
			b.Bits[i] = rng.Float64() < 0.4
		}
		ab, err := CompareMasks(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := CompareMasks(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ab.IoU-ba.IoU) > 1e-12 {
			t.Fatal("IoU not symmetric")
		}
		if ab.IoU < 0 || ab.IoU > 1 {
			t.Fatal("IoU out of range")
		}
		if ab.IoU > ab.Precision+1e-12 || ab.IoU > ab.Recall+1e-12 {
			t.Fatal("IoU must not exceed precision or recall")
		}
	}
}

func testPose() stickmodel.Pose {
	p := stickmodel.Pose{X: 50, Y: 50}
	p.Rho = [stickmodel.NumSticks]float64{10, 20, 200, 170, 15, 190, 185, 95}
	return p
}

func TestComparePosesIdentical(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	pe := ComparePoses(testPose(), testPose(), d)
	if pe.MeanJointErr != 0 || pe.MeanAngleErr != 0 || pe.CentreErr != 0 {
		t.Errorf("identical poses: %+v", pe)
	}
}

func TestComparePosesKnownOffsets(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	a := testPose()
	b := a
	b.X += 3
	b.Y += 4
	pe := ComparePoses(b, a, d)
	if math.Abs(pe.CentreErr-5) > 1e-9 {
		t.Errorf("centre err = %v, want 5", pe.CentreErr)
	}
	// Pure translation moves every joint by exactly 5.
	if math.Abs(pe.MeanJointErr-5) > 1e-9 || math.Abs(pe.MaxJointErr-5) > 1e-9 {
		t.Errorf("joint err = %v/%v, want 5", pe.MeanJointErr, pe.MaxJointErr)
	}
	if pe.MeanAngleErr != 0 {
		t.Errorf("angle err = %v, want 0", pe.MeanAngleErr)
	}
}

func TestComparePosesAngleWrap(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	a := testPose()
	b := a
	a.Rho[stickmodel.UpperArm] = 350
	b.Rho[stickmodel.UpperArm] = 10
	pe := ComparePoses(b, a, d)
	if math.Abs(pe.MaxAngleErr-20) > 1e-9 {
		t.Errorf("wrapped angle err = %v, want 20", pe.MaxAngleErr)
	}
}

func TestPCK(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	p := testPose()
	if got := PCK(p, p, d, 0.1); got != 1 {
		t.Errorf("identical PCK = %v, want 1", got)
	}
	far := p.Translate(100, 100)
	if got := PCK(far, p, d, 0.1); got != 0 {
		t.Errorf("far PCK = %v, want 0", got)
	}
}

func TestCompareSequences(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	a := []stickmodel.Pose{testPose(), testPose().Translate(1, 0)}
	b := []stickmodel.Pose{testPose(), testPose()}
	se, err := CompareSequences(a, b, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(se.PerFrame) != 2 {
		t.Fatal("per-frame length wrong")
	}
	if se.PerFrame[0].MeanJointErr != 0 || se.PerFrame[1].MeanJointErr != 1 {
		t.Errorf("per-frame errs: %v, %v", se.PerFrame[0].MeanJointErr, se.PerFrame[1].MeanJointErr)
	}
	if math.Abs(se.MeanJoint-0.5) > 1e-9 {
		t.Errorf("mean joint = %v, want 0.5", se.MeanJoint)
	}
	if _, err := CompareSequences(a, b[:1], d); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestMeanStddev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Stddev([]float64{5}) != 0 {
		t.Error("Stddev single = 0")
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}
