// Package metrics provides the quantitative evaluation measures used by the
// experiment harness: mask overlap scores (IoU, precision, recall, F1),
// pose errors (mean joint position error, mean absolute angle error, PCK)
// and convergence statistics. The paper's evaluation is qualitative
// (figures); these metrics are the quantitative equivalents enabled by the
// synthetic ground truth.
package metrics

import (
	"fmt"
	"math"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// MaskScores aggregates overlap measures of a predicted mask against truth.
type MaskScores struct {
	IoU       float64
	Precision float64
	Recall    float64
	F1        float64
	// TP, FP, FN are the raw pixel counts behind the ratios.
	TP, FP, FN int
}

// CompareMasks scores pred against truth. Empty-vs-empty scores 1.0 across
// the board (a correct "nothing there" prediction).
func CompareMasks(pred, truth *imaging.Mask) (MaskScores, error) {
	if !pred.SameSize(truth) {
		return MaskScores{}, fmt.Errorf("compare masks: %w", imaging.ErrSizeMismatch)
	}
	var s MaskScores
	for i := range pred.Bits {
		switch {
		case pred.Bits[i] && truth.Bits[i]:
			s.TP++
		case pred.Bits[i] && !truth.Bits[i]:
			s.FP++
		case !pred.Bits[i] && truth.Bits[i]:
			s.FN++
		}
	}
	if s.TP+s.FP+s.FN == 0 {
		return MaskScores{IoU: 1, Precision: 1, Recall: 1, F1: 1}, nil
	}
	union := s.TP + s.FP + s.FN
	s.IoU = float64(s.TP) / float64(union)
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	if s.TP+s.FN > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.FN)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s, nil
}

// PoseError aggregates the error of an estimated pose against ground truth.
type PoseError struct {
	// MeanJointErr is the mean Euclidean joint position error in pixels
	// (an MPJPE analogue over the nine named joints).
	MeanJointErr float64
	// MaxJointErr is the worst joint position error in pixels.
	MaxJointErr float64
	// MeanAngleErr is the mean absolute angular error over the 8 sticks,
	// in degrees, shortest-arc.
	MeanAngleErr float64
	// MaxAngleErr is the worst per-stick angular error in degrees.
	MaxAngleErr float64
	// CentreErr is the trunk-centre position error in pixels.
	CentreErr float64
}

// ComparePoses computes pose errors under shared dimensions.
func ComparePoses(est, truth stickmodel.Pose, dims stickmodel.Dimensions) PoseError {
	var pe PoseError
	ej := est.Joints(dims)
	tj := truth.Joints(dims)
	n := 0
	for id, tp := range tj {
		d := ej[id].Dist(tp)
		pe.MeanJointErr += d
		if d > pe.MaxJointErr {
			pe.MaxJointErr = d
		}
		n++
	}
	if n > 0 {
		pe.MeanJointErr /= float64(n)
	}
	for l := 0; l < stickmodel.NumSticks; l++ {
		d := math.Abs(stickmodel.AngleDiff(truth.Rho[l], est.Rho[l]))
		pe.MeanAngleErr += d
		if d > pe.MaxAngleErr {
			pe.MaxAngleErr = d
		}
	}
	pe.MeanAngleErr /= stickmodel.NumSticks
	pe.CentreErr = math.Hypot(est.X-truth.X, est.Y-truth.Y)
	return pe
}

// PCK returns the fraction of joints whose position error is within
// tol × torso-length (Percentage of Correct Keypoints, PCK@tol).
func PCK(est, truth stickmodel.Pose, dims stickmodel.Dimensions, tol float64) float64 {
	ej := est.Joints(dims)
	tj := truth.Joints(dims)
	thr := tol * dims.Length[stickmodel.Trunk]
	ok, n := 0, 0
	for id, tp := range tj {
		if ej[id].Dist(tp) <= thr {
			ok++
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

// SequenceErrors summarises pose errors over a clip.
type SequenceErrors struct {
	PerFrame  []PoseError
	MeanAngle float64
	MeanJoint float64
	WorstMean float64 // worst per-frame MeanAngleErr
}

// CompareSequences scores estimated poses frame by frame.
func CompareSequences(est, truth []stickmodel.Pose, dims stickmodel.Dimensions) (SequenceErrors, error) {
	if len(est) != len(truth) {
		return SequenceErrors{}, fmt.Errorf("metrics: %d estimates vs %d truths", len(est), len(truth))
	}
	out := SequenceErrors{PerFrame: make([]PoseError, len(est))}
	for i := range est {
		pe := ComparePoses(est[i], truth[i], dims)
		out.PerFrame[i] = pe
		out.MeanAngle += pe.MeanAngleErr
		out.MeanJoint += pe.MeanJointErr
		if pe.MeanAngleErr > out.WorstMean {
			out.WorstMean = pe.MeanAngleErr
		}
	}
	if len(est) > 0 {
		out.MeanAngle /= float64(len(est))
		out.MeanJoint /= float64(len(est))
	}
	return out, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
