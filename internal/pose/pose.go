// Package pose implements the paper's GA-based pose estimation (Section 3):
// the silhouette-fit fitness of Eq. (3), temporal seeding of the initial
// population from the preceding frame (the paper's modification of Shoji et
// al. [5]), a cold-start estimator reproducing [5] as the baseline, and
// first-frame calibration from a human-drawn stick figure.
package pose

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"github.com/sljmotion/sljmotion/internal/ga"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// Config parameterises the estimator. Use DefaultConfig as the base.
type Config struct {
	// DeltaXY is the half-size of the rectangle around the silhouette
	// centroid from which initial trunk centres are drawn ("points from the
	// rectangle {(xc-Δx, yc-Δy), (xc+Δx, yc+Δy)}").
	DeltaXY float64
	// DeltaRho is the per-stick angular seeding window ±Δρl around the
	// previous frame's angle, "determined by the nature of connected joints".
	DeltaRho [stickmodel.NumSticks]float64
	// MinContainment is the fraction of stick samples that must fall inside
	// the silhouette for a chromosome to be valid (temporal mode).
	MinContainment float64
	// ColdMinContainment is the laxer validity bound used when seeding with
	// no temporal prior, where most random chromosomes are far off.
	ColdMinContainment float64
	// PointStride subsamples silhouette points for the fitness sum
	// (1 = every pixel). Eq. (3) averages, so subsampling preserves scale.
	PointStride int
	// Population, Generations, CrossoverRate, MutationRate, EliteFraction
	// configure the GA (paper: crossover 0.2, mutation 0.01, elitism).
	Population    int
	Generations   int
	CrossoverRate float64
	MutationRate  float64
	EliteFraction float64
	// Patience stops evolution after this many generations without
	// improvement; 0 disables.
	Patience int
	// ColdGenerations is the budget for the no-temporal-information
	// baseline (paper [5]: "a proper stick model ... in 200 generations").
	ColdGenerations int
	// ClampToWindow keeps the whole temporal search — not only the initial
	// population — hard-inside prev±Δρ (and the ±Δx,Δy rectangle). The
	// paper only seeds inside the window. Clamping suppresses flips of
	// momentarily unobservable sticks but also prevents re-locking once the
	// chain falls behind a fast swing, so the default uses the soft
	// quadratic prior (TemporalLambda) instead. Ablation benches quantify
	// both choices.
	ClampToWindow bool
	// UseVelocity seeds part of the initial population around a
	// constant-velocity extrapolation of the two preceding poses, letting
	// the tracker keep up with the fast arm swing at takeoff. Extension to
	// the paper's single-previous-frame seeding; ablatable.
	UseVelocity bool
	// TemporalLambda weights the soft temporal prior added to Eq. (3)
	// during temporal estimation: λ · mean_l min(Δl/Δρl, 4)², where Δl is
	// the shortest-arc change of stick l from the anchor pose. Motion
	// within the joint-mobility window is nearly free; flips are expensive
	// but not impossible, so a strong silhouette signal can still win.
	// 0 reproduces the paper's pure silhouette fitness.
	TemporalLambda float64
	// ExploreFraction is the fraction of initial seeds whose limb angles
	// (arms and legs) are drawn uniformly from the full circle instead of
	// the temporal window. These keep the alternative interpretation of an
	// ambiguous silhouette represented in the population, allowing
	// recovery after tracking loss.
	ExploreFraction float64
	// RefineRounds is the number of group-coordinate refinement rounds run
	// on the GA result during temporal estimation. 0 reproduces the
	// paper's pure GA output; small values escape coordinated local optima
	// (trunk-lean + arm-flip) that grouped crossover cannot assemble.
	RefineRounds int
	// Parallelism is the fitness-evaluation worker count handed to the GA.
	// The evolution stays deterministic (genome construction is serial);
	// only Eq. (3) evaluations fan out. <= 1 evaluates sequentially.
	Parallelism int
	// AnatomyLambda weights two weak anatomical priors: the head should
	// roughly continue the neck (|ρ1−ρ4| small) and the elbow should not
	// hyper-extend (ρ5 should not exceed ρ2 by much). Both resolve
	// assignment ambiguities of short or collinear sticks that the
	// silhouette alone cannot disambiguate. 0 disables (paper-pure).
	AnatomyLambda float64
	// Profile selects the speed/fidelity trade of the GA fit (see
	// FitProfile). The zero value / DefaultProfile keeps output
	// byte-identical to the reference pipeline; FastProfile runs most
	// generations coarse and terminates converged populations early. The
	// profile feeds the config fingerprint, so cache keys of different
	// profiles never collide.
	Profile FitProfile
	// RandSeed makes runs reproducible.
	RandSeed int64
}

// DefaultConfig returns the calibrated configuration (DESIGN.md §7).
func DefaultConfig() Config {
	return Config{
		DeltaXY: 6,
		DeltaRho: [stickmodel.NumSticks]float64{
			stickmodel.Trunk:    20,
			stickmodel.Neck:     20,
			stickmodel.UpperArm: 60, // arms swing fastest during the drive
			stickmodel.Thigh:    35,
			stickmodel.Head:     20,
			stickmodel.Forearm:  60,
			stickmodel.Shank:    35,
			stickmodel.Foot:     25,
		},
		MinContainment:     0.85,
		ColdMinContainment: 0.55,
		PointStride:        2,
		Population:         80,
		Generations:        100,
		CrossoverRate:      0.2,
		MutationRate:       0.01,
		EliteFraction:      0.15,
		Patience:           20,
		ColdGenerations:    200,
		ClampToWindow:      false,
		UseVelocity:        true,
		TemporalLambda:     0.03,
		ExploreFraction:    0.25,
		RefineRounds:       2,
		AnatomyLambda:      0.02,
		Profile:            DefaultProfile(),
		RandSeed:           1,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.DeltaXY <= 0 {
		return fmt.Errorf("pose: DeltaXY must be > 0, got %v", c.DeltaXY)
	}
	if c.MinContainment < 0 || c.MinContainment > 1 {
		return fmt.Errorf("pose: MinContainment must be in [0,1], got %v", c.MinContainment)
	}
	if c.ColdMinContainment < 0 || c.ColdMinContainment > 1 {
		return fmt.Errorf("pose: ColdMinContainment must be in [0,1], got %v", c.ColdMinContainment)
	}
	if c.PointStride < 1 {
		return fmt.Errorf("pose: PointStride must be >= 1, got %d", c.PointStride)
	}
	if c.Population < 2 {
		return fmt.Errorf("pose: Population must be >= 2, got %d", c.Population)
	}
	if c.Generations < 1 || c.ColdGenerations < 1 {
		return fmt.Errorf("pose: generation budgets must be >= 1")
	}
	if c.TemporalLambda < 0 {
		return fmt.Errorf("pose: TemporalLambda must be >= 0, got %v", c.TemporalLambda)
	}
	if c.ExploreFraction < 0 || c.ExploreFraction > 1 {
		return fmt.Errorf("pose: ExploreFraction must be in [0,1], got %v", c.ExploreFraction)
	}
	if c.RefineRounds < 0 {
		return fmt.Errorf("pose: RefineRounds must be >= 0, got %d", c.RefineRounds)
	}
	if c.AnatomyLambda < 0 {
		return fmt.Errorf("pose: AnatomyLambda must be >= 0, got %v", c.AnatomyLambda)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("pose: Parallelism must be >= 0, got %d", c.Parallelism)
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	return nil
}

// Estimate is the outcome of fitting one frame.
type Estimate struct {
	Pose    stickmodel.Pose
	Fitness float64
	// GA carries convergence details (history, BestFoundAt, evaluations).
	GA *ga.Result
}

// Estimator fits stick models to silhouettes. An Estimator is not safe for
// concurrent use: it owns scratch rasterization buffers (the GA itself may
// still fan fitness evaluations across goroutines via Config.Parallelism).
type Estimator struct {
	cfg   Config
	dims  stickmodel.Dimensions
	arena stickmodel.Arena
}

// ErrEmptySilhouette is returned when a frame contains no foreground.
var ErrEmptySilhouette = errors.New("pose: empty silhouette")

// NewEstimator builds an estimator with the given body dimensions prior.
func NewEstimator(dims stickmodel.Dimensions, cfg Config) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{cfg: cfg, dims: dims}, nil
}

// Dimensions returns the current body dimensions.
func (e *Estimator) Dimensions() stickmodel.Dimensions { return e.dims }

// Config returns the estimator configuration.
func (e *Estimator) Config() Config { return e.cfg }

// Calibrate implements the paper's first-frame step: "a trained person is
// asked to draw the stick figure for the human object in the first frame",
// from which stick lengths and the per-stick area thicknesses tl of Eq. (3)
// are estimated. It updates the estimator's dimensions and returns them.
func (e *Estimator) Calibrate(sil segmentation.Silhouette, manual stickmodel.Pose) (stickmodel.Dimensions, error) {
	if sil.Mask == nil || sil.Area == 0 {
		return e.dims, ErrEmptySilhouette
	}
	d := stickmodel.EstimateLengthsArena(manual, e.dims, sil.Mask, &e.arena)
	d = stickmodel.EstimateThickness(manual, d, sil.Mask)
	e.dims = d
	return d, nil
}

// Fitness evaluates Eq. (3) for an arbitrary pose against a silhouette:
// FS = (Σ_points min_l d(point, Sl)/tl) / N.
func (e *Estimator) Fitness(p stickmodel.Pose, sil segmentation.Silhouette) (float64, error) {
	pts, err := e.silhouettePoints(sil)
	if err != nil {
		return 0, err
	}
	return newFitKernel(pts, e.dims).Eval(p), nil
}

// EstimateNext fits the silhouette with the initial population derived from
// the preceding frame's pose — the paper's temporal seeding. prev is the
// estimated (or manually drawn) pose of frame k-1.
func (e *Estimator) EstimateNext(sil segmentation.Silhouette, prev stickmodel.Pose) (*Estimate, error) {
	return e.estimateTemporal(sil, prev, nil)
}

// EstimateNextTracked is EstimateNext with an additional frame of history:
// prev2 is the pose at frame k-2, enabling constant-velocity extrapolation
// when Config.UseVelocity is set.
func (e *Estimator) EstimateNextTracked(sil segmentation.Silhouette, prev, prev2 stickmodel.Pose) (*Estimate, error) {
	if !e.cfg.UseVelocity {
		return e.estimateTemporal(sil, prev, nil)
	}
	pred := extrapolate(prev2, prev)
	return e.estimateTemporal(sil, prev, &pred)
}

// estimateTemporal implements the temporally seeded GA. pred, when non-nil,
// is a constant-velocity prediction used as a second seeding anchor.
func (e *Estimator) estimateTemporal(sil segmentation.Silhouette, prev stickmodel.Pose, pred *stickmodel.Pose) (*Estimate, error) {
	pts, err := e.silhouettePoints(sil)
	if err != nil {
		return nil, err
	}
	eq3 := newFitKernel(pts, e.dims).Eval
	anchor := prev
	if pred != nil {
		anchor = *pred
	}
	lambda := e.cfg.TemporalLambda
	anatomy := e.cfg.AnatomyLambda
	// withPriors composes the temporal and anatomical priors over an
	// Eq. (3) evaluator; reused for the coarse-phase kernel under a fast
	// profile so both phases optimise the same shaped objective.
	withPriors := func(eq func(stickmodel.Pose) float64) func(stickmodel.Pose) float64 {
		return eq
	}
	if lambda > 0 || anatomy > 0 {
		deltaRho := e.cfg.DeltaRho
		// Observability weighting: a stick whose angle barely affects
		// Eq. (3) at the anchor (it is buried inside the silhouette) gets a
		// weak prior so the tracker can re-lock once it emerges; a clearly
		// observable stick keeps the full prior. The floor keeps hidden
		// sticks from random-walking. Probed once on the full-resolution
		// kernel, shared by both phases.
		var conf [stickmodel.NumSticks]float64
		if lambda > 0 {
			conf = e.stickConfidence(eq3, anchor)
		}
		withPriors = func(eq func(stickmodel.Pose) float64) func(stickmodel.Pose) float64 {
			return func(p stickmodel.Pose) float64 {
				f := eq(p)
				if lambda > 0 {
					f += lambda * softWindowPenalty(p, anchor, deltaRho, conf)
				}
				if anatomy > 0 {
					f += anatomy * anatomyPenalty(p)
				}
				return f
			}
		}
	}
	fit := withPriors(eq3)
	var coarseFit func(stickmodel.Pose) float64
	if e.cfg.Profile.coarseEnabled() {
		if cpts, err := e.silhouettePointsStride(sil, e.cfg.PointStride*e.cfg.Profile.CoarseStrideScale); err == nil {
			coarseFit = withPriors(newFitKernel(cpts, e.dims).Eval)
		}
		// A silhouette too small to survive the coarse stride simply runs
		// full-resolution throughout.
	}

	// Seed centres around the centroid corrected by the model-based offset
	// between the previous pose centre and its own silhouette centroid, so
	// a trunk centre that sits off-centroid (crouched poses) is predicted
	// correctly.
	cx, cy := sil.Centroid.X, sil.Centroid.Y
	if off, ok := e.centroidOffset(prev, sil.Mask.W, sil.Mask.H); ok {
		cx += off.X
		cy += off.Y
	}

	anchors := []stickmodel.Pose{prev}
	if pred != nil {
		anchors = append(anchors, *pred)
	}

	seed := func(rng *rand.Rand) ga.Genome {
		base := anchors[rng.Intn(len(anchors))]
		// Multi-scale seeding: each draw uses a scale in (0,1], so seeds
		// arbitrarily close to the anchors always occur and rejection
		// sampling terminates even for tight silhouettes.
		s := rng.Float64()
		var p stickmodel.Pose
		p.X = cx + (rng.Float64()*2-1)*e.cfg.DeltaXY*s
		p.Y = cy + (rng.Float64()*2-1)*e.cfg.DeltaXY*s
		for l := 0; l < stickmodel.NumSticks; l++ {
			p.Rho[l] = stickmodel.NormalizeAngle(base.Rho[l] + (rng.Float64()*2-1)*e.cfg.DeltaRho[l]*s)
		}
		// Exploration seeds re-aim exactly one kinematic chain at a random
		// silhouette point (a cheap inverse-kinematics hypothesis), keeping
		// the rest anchored. This keeps alternative interpretations of an
		// ambiguous silhouette represented in the population, so the
		// tracker can recover after losing a fast-swinging limb.
		if rng.Float64() < e.cfg.ExploreFraction {
			e.aimChainAtSilhouette(rng, &p, pts)
		}
		return p.Genome()
	}

	var window *searchWindow
	if e.cfg.ClampToWindow {
		window = &searchWindow{
			anchors: anchors, cx: cx, cy: cy,
			deltaXY: e.cfg.DeltaXY, deltaRho: e.cfg.DeltaRho,
		}
	}
	est, err := e.run(sil, fit, coarseFit, seed, e.cfg.MinContainment, e.cfg.Generations, window)
	if err != nil {
		return nil, err
	}
	if e.cfg.RefineRounds > 0 {
		dims, mask, minContain := e.dims, sil.Mask, e.cfg.MinContainment
		valid := func(p stickmodel.Pose) bool {
			return p.ContainmentFraction(dims, mask) >= minContain
		}
		// The coordinate-descent scans cost thousands of Eq. (3) calls per
		// frame — more than the GA itself once the GA runs coarse-to-fine.
		// Under a fast profile the scans therefore also run on the coarse
		// kernel; only the final fitness is re-scored at full resolution.
		refineFit := fit
		if coarseFit != nil {
			refineFit = coarseFit
		}
		refined := refinePose(est.Pose, refineFit, valid, e.cfg.RefineRounds)
		est.Pose = refined.Normalize()
		est.Fitness = fit(refined)
	}
	return est, nil
}

// centroidOffset computes (pose centre − rasterised-silhouette centroid) for
// the previous pose, the model-based correction applied to the current
// centroid when predicting the new trunk centre.
func (e *Estimator) centroidOffset(prev stickmodel.Pose, w, h int) (imaging.Vec2, bool) {
	m := e.arena.Mask(w, h)
	prev.RasterizeInto(e.dims, m)
	mx, my, ok := m.Centroid()
	if !ok {
		return imaging.Vec2{}, false
	}
	return imaging.Vec2{X: prev.X - mx, Y: prev.Y - my}, true
}

// extrapolate predicts the next pose under damped constant velocity.
func extrapolate(prev2, prev stickmodel.Pose) stickmodel.Pose {
	const damping = 0.8
	out := stickmodel.Pose{
		X: prev.X + damping*(prev.X-prev2.X),
		Y: prev.Y + damping*(prev.Y-prev2.Y),
	}
	for l := 0; l < stickmodel.NumSticks; l++ {
		vel := stickmodel.AngleDiff(prev2.Rho[l], prev.Rho[l])
		out.Rho[l] = stickmodel.NormalizeAngle(prev.Rho[l] + damping*vel)
	}
	return out
}

// searchWindow bounds the temporal search around the seeding anchors.
type searchWindow struct {
	anchors  []stickmodel.Pose
	cx, cy   float64
	deltaXY  float64
	deltaRho [stickmodel.NumSticks]float64
}

// contains reports whether the pose stays within the temporal window of at
// least one anchor. A small slack on the centre rectangle keeps mutation
// from being rejected at the boundary too aggressively.
func (w *searchWindow) contains(p stickmodel.Pose) bool {
	const slack = 1.5
	if math.Abs(p.X-w.cx) > w.deltaXY*slack || math.Abs(p.Y-w.cy) > w.deltaXY*slack {
		return false
	}
anchors:
	for _, a := range w.anchors {
		for l := 0; l < stickmodel.NumSticks; l++ {
			if math.Abs(stickmodel.AngleDiff(a.Rho[l], p.Rho[l])) > w.deltaRho[l] {
				continue anchors
			}
		}
		return true
	}
	return false
}

// softWindowPenalty is the quadratic temporal prior: the confidence-weighted
// mean over sticks of min(Δl/Δρl, 2.5)², where Δl is the shortest-arc change
// from the anchor and Δρl the joint-mobility window. Motion inside the
// window is nearly free; flips are expensive but recoverable.
func softWindowPenalty(p, anchor stickmodel.Pose, deltaRho, conf [stickmodel.NumSticks]float64) float64 {
	var sum float64
	for l := 0; l < stickmodel.NumSticks; l++ {
		w := deltaRho[l]
		if w <= 0 {
			w = 30
		}
		r := math.Abs(stickmodel.AngleDiff(anchor.Rho[l], p.Rho[l])) / w
		if r > 2.5 {
			r = 2.5 // cap so a recoverable flip is expensive, not fatal
		}
		sum += conf[l] * r * r
	}
	return sum / stickmodel.NumSticks
}

// anatomyPenalty encodes two weak joint-limit priors, each normalised to
// roughly [0, 4]: the head continues the neck within ±25°, and the elbow
// does not hyper-extend (forearm angle should not exceed the upper-arm angle
// by more than 10° in the clockwise-from-vertical convention).
func anatomyPenalty(p stickmodel.Pose) float64 {
	var sum float64
	if d := math.Abs(stickmodel.AngleDiff(p.Rho[stickmodel.Neck], p.Rho[stickmodel.Head])); d > 12 {
		r := (d - 12) / 90
		sum += r * r
	}
	// Hyper-extension: ρ5 rotated past ρ2 by more than 10° against the
	// natural flexion direction (flexion is ρ2−ρ5 > 0 in this convention).
	if d := stickmodel.AngleDiff(p.Rho[stickmodel.UpperArm], p.Rho[stickmodel.Forearm]); d > 10 {
		r := (d - 10) / 90
		sum += r * r
	}
	return sum
}

// Confidence weighting constants: sensitivityRef is the Eq. (3) increase
// (when a stick is perturbed by its mobility window) that counts as fully
// observable; confFloor keeps some prior on unobservable sticks.
const (
	sensitivityRef = 0.02
	confFloor      = 0.25
)

// stickConfidence probes the observability of each stick at the anchor:
// perturb the stick by ±Δρl and measure how much Eq. (3) worsens. The
// result is normalised to [confFloor, 1].
func (e *Estimator) stickConfidence(eq3 func(stickmodel.Pose) float64, anchor stickmodel.Pose) [stickmodel.NumSticks]float64 {
	base := eq3(anchor)
	var conf [stickmodel.NumSticks]float64
	for l := 0; l < stickmodel.NumSticks; l++ {
		up := anchor
		up.Rho[l] = stickmodel.NormalizeAngle(up.Rho[l] + e.cfg.DeltaRho[l])
		down := anchor
		down.Rho[l] = stickmodel.NormalizeAngle(down.Rho[l] - e.cfg.DeltaRho[l])
		sens := (eq3(up)+eq3(down))/2 - base
		c := sens / sensitivityRef
		if c < confFloor {
			c = confFloor
		}
		if c > 1 {
			c = 1
		}
		conf[l] = c
	}
	return conf
}

// aimChainAtSilhouette rewrites one kinematic chain of p so it points from
// its proximal joint toward a randomly chosen silhouette point within reach,
// with small angular jitter. Chains: the arm (shoulder→wrist) or the leg
// (hip→ankle).
func (e *Estimator) aimChainAtSilhouette(rng *rand.Rand, p *stickmodel.Pose, pts []imaging.Vec2) {
	joints := p.Joints(e.dims)
	arm := rng.Float64() < 0.5
	var origin imaging.Vec2
	var reach float64
	if arm {
		origin = joints[stickmodel.JointShoulder]
		reach = e.dims.Length[stickmodel.UpperArm] + e.dims.Length[stickmodel.Forearm]
	} else {
		origin = joints[stickmodel.JointHip]
		reach = e.dims.Length[stickmodel.Thigh] + e.dims.Length[stickmodel.Shank]
	}
	// A handful of tries to find a target within the chain's reach annulus.
	for try := 0; try < 8; try++ {
		q := pts[rng.Intn(len(pts))]
		d := q.Dist(origin)
		if d < reach*0.45 || d > reach*1.15 {
			continue
		}
		angle := stickmodel.AngleOf(q.Sub(origin))
		if arm {
			p.Rho[stickmodel.UpperArm] = stickmodel.NormalizeAngle(angle + rng.NormFloat64()*10)
			p.Rho[stickmodel.Forearm] = stickmodel.NormalizeAngle(angle + rng.NormFloat64()*20)
		} else {
			p.Rho[stickmodel.Thigh] = stickmodel.NormalizeAngle(angle + rng.NormFloat64()*10)
			p.Rho[stickmodel.Shank] = stickmodel.NormalizeAngle(angle + rng.NormFloat64()*20)
		}
		return
	}
}

// EstimateCold reproduces the baseline of Shoji et al. [5]: no temporal
// information, the trunk centre drawn near the silhouette centroid and all
// angles drawn uniformly from [0°, 360°).
func (e *Estimator) EstimateCold(sil segmentation.Silhouette) (*Estimate, error) {
	pts, err := e.silhouettePoints(sil)
	if err != nil {
		return nil, err
	}
	fit := newFitKernel(pts, e.dims).Eval
	cx, cy := sil.Centroid.X, sil.Centroid.Y
	spread := 3 * e.cfg.DeltaXY

	seed := func(rng *rand.Rand) ga.Genome {
		var p stickmodel.Pose
		p.X = cx + (rng.Float64()*2-1)*spread
		p.Y = cy + (rng.Float64()*2-1)*spread
		for l := 0; l < stickmodel.NumSticks; l++ {
			p.Rho[l] = rng.Float64() * 360
		}
		return p.Genome()
	}

	// The cold baseline never runs coarse (it exists to reproduce [5]);
	// under a fast profile it still benefits from memoization and
	// converged-population termination via runOnce.
	return e.run(sil, fit, nil, seed, e.cfg.ColdMinContainment, e.cfg.ColdGenerations, nil)
}

// EstimateSequence runs temporal estimation across a silhouette sequence.
// first is the (calibrated) pose for frame 0; the result has one estimate
// per silhouette, with index 0 echoing the first pose.
func (e *Estimator) EstimateSequence(sils []segmentation.Silhouette, first stickmodel.Pose) ([]Estimate, error) {
	return e.EstimateSequenceContext(context.Background(), sils, first)
}

// EstimateSequenceContext is EstimateSequence with cooperative cancellation:
// ctx is checked before each frame's GA fit, so a cancelled context aborts
// the sequence between frames. The temporal chain itself stays sequential —
// frame k seeds from k-1 as the paper requires.
func (e *Estimator) EstimateSequenceContext(ctx context.Context, sils []segmentation.Silhouette, first stickmodel.Pose) ([]Estimate, error) {
	if len(sils) == 0 {
		return nil, errors.New("pose: no silhouettes")
	}
	out := make([]Estimate, len(sils))
	f0, err := e.Fitness(first, sils[0])
	if err != nil {
		return nil, fmt.Errorf("frame 0: %w", err)
	}
	out[0] = Estimate{Pose: first, Fitness: f0}
	prev := first
	havePrev2 := false
	var prev2 stickmodel.Pose
	for k := 1; k < len(sils); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, span := obs.StartSpan(ctx, "ga_fit")
		span.SetAttr("frame", strconv.Itoa(k))
		var est *Estimate
		if havePrev2 {
			est, err = e.EstimateNextTracked(sils[k], prev, prev2)
		} else {
			est, err = e.EstimateNext(sils[k], prev)
		}
		span.End()
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", k, err)
		}
		out[k] = *est
		prev2, prev = prev, est.Pose
		havePrev2 = true
	}
	return out, nil
}

func (e *Estimator) run(sil segmentation.Silhouette, fit, coarseFit func(stickmodel.Pose) float64,
	seed func(*rand.Rand) ga.Genome, minContain float64, generations int,
	window *searchWindow) (*Estimate, error) {

	// Violent inter-frame motion (short clips, missed frames) can make the
	// full containment requirement unseedable; progressively relaxing it
	// yields a degraded estimate instead of a hard failure.
	var lastErr error
	for _, relax := range []float64{1, 0.85, 0.7, 0.5} {
		est, err := e.runOnce(sil, fit, coarseFit, seed, minContain*relax, generations, window)
		if err == nil {
			return est, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// runOnce performs one GA fit. Under a fast profile with a coarse fitness,
// it runs the coarse-to-fine schedule: CoarseFraction of the generation
// budget evolves against the subsampled kernel, then the remaining
// generations refine at full resolution with the coarse final population
// injected (and re-scored under the full-resolution fitness). The default
// profile runs the single-phase reference schedule unchanged.
func (e *Estimator) runOnce(sil segmentation.Silhouette, fit, coarseFit func(stickmodel.Pose) float64,
	seed func(*rand.Rand) ga.Genome, minContain float64, generations int,
	window *searchWindow) (*Estimate, error) {

	dims := e.dims
	mask := sil.Mask
	genomeFit := func(fn func(stickmodel.Pose) float64) func(ga.Genome) float64 {
		return func(g ga.Genome) float64 {
			p, err := stickmodel.PoseFromGenome(g)
			if err != nil {
				return 1e18 // unreachable for engine-produced genomes
			}
			return fn(p)
		}
	}
	valid := func(g ga.Genome) bool {
		p, err := stickmodel.PoseFromGenome(g)
		if err != nil {
			return false
		}
		if window != nil && !window.contains(p) {
			return false
		}
		return p.ContainmentFraction(dims, mask) >= minContain
	}
	newEngine := func(fn func(ga.Genome) float64, initial []ga.Genome, gens, patience int, randSeed int64) (*ga.Engine, error) {
		return ga.New(ga.Spec{
			Fitness:           fn,
			Seed:              seed,
			Valid:             valid,
			Groups:            stickmodel.CrossoverGroups(),
			Mutate:            e.mutateGroup,
			InitialPopulation: initial,
		},
			ga.WithPopulationSize(e.cfg.Population),
			ga.WithGenerations(gens),
			ga.WithEliteFraction(e.cfg.EliteFraction),
			ga.WithCrossoverRate(e.cfg.CrossoverRate),
			ga.WithMutationRate(e.cfg.MutationRate),
			ga.WithPatience(patience),
			ga.WithRandSeed(randSeed),
			ga.WithMaxSeedTries(600),
			ga.WithImmigrantRate(0.08),
			ga.WithParallelism(e.cfg.Parallelism),
			ga.WithMemoization(true),
			ga.WithConvergeSpread(e.cfg.Profile.ConvergeSpread),
		)
	}

	fineGens := generations
	finePatience := e.cfg.Patience
	var initial []ga.Genome
	var coarseRes *ga.Result
	if coarseFit != nil && e.cfg.Profile.coarseEnabled() && generations >= 2 {
		coarseGens := int(e.cfg.Profile.CoarseFraction*float64(generations) + 0.5)
		if coarseGens < 1 {
			coarseGens = 1
		}
		if coarseGens > generations-1 {
			coarseGens = generations - 1
		}
		// The patience budget is split in proportion to each phase's
		// generation share, so the two phases together wait about as long
		// without improvement as a single reference run would.
		coarsePatience := e.cfg.Patience
		if coarsePatience > 0 {
			coarsePatience = int(e.cfg.Profile.CoarseFraction*float64(e.cfg.Patience) + 0.5)
			if coarsePatience < 2 {
				coarsePatience = 2
			}
			finePatience = e.cfg.Patience - coarsePatience
			if finePatience < 2 {
				finePatience = 2
			}
		}
		eng, err := newEngine(genomeFit(coarseFit), nil, coarseGens, coarsePatience, e.cfg.RandSeed)
		if err != nil {
			return nil, err
		}
		coarseRes, err = eng.Run()
		if err != nil {
			return nil, err
		}
		recordMemoStats(coarseRes)
		initial = coarseRes.FinalPopulation
		fineGens = generations - coarseGens
	}
	randSeed := e.cfg.RandSeed
	if coarseRes != nil {
		// A distinct stream for the fine phase; the coarse phase consumed
		// the base stream.
		randSeed++
	}
	eng, err := newEngine(genomeFit(fit), initial, fineGens, finePatience, randSeed)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	recordMemoStats(res)
	if coarseRes != nil {
		// Fold the coarse phase into the reported convergence detail so
		// Evaluations/History reflect the whole frame fit.
		res.Evaluations += coarseRes.Evaluations
		res.MemoHits += coarseRes.MemoHits
		res.MemoMisses += coarseRes.MemoMisses
		res.Generations += coarseRes.Generations
		res.BestFoundAt += coarseRes.Generations
		res.NearBestFoundAt += coarseRes.Generations
		res.History = append(coarseRes.History, res.History...)
	}
	p, err := stickmodel.PoseFromGenome(res.Best)
	if err != nil {
		return nil, err
	}
	return &Estimate{Pose: p.Normalize(), Fitness: res.BestFitness, GA: res}, nil
}

// mutateGroup perturbs one crossover group: positions with sigma 2 px,
// angles with sigma Δρl/3 so mutation respects joint mobility.
func (e *Estimator) mutateGroup(rng *rand.Rand, g ga.Genome, group []int) {
	for _, gi := range group {
		switch {
		case gi < 2:
			g[gi] += rng.NormFloat64() * 2
		default:
			l := gi - 2
			sigma := e.cfg.DeltaRho[l] / 3
			if sigma <= 0 {
				sigma = 5
			}
			g[gi] = stickmodel.NormalizeAngle(g[gi] + rng.NormFloat64()*sigma)
		}
	}
}

// silhouettePoints extracts (subsampled) silhouette pixel coordinates at
// the configured stride.
func (e *Estimator) silhouettePoints(sil segmentation.Silhouette) ([]imaging.Vec2, error) {
	return e.silhouettePointsStride(sil, e.cfg.PointStride)
}

// silhouettePointsStride extracts silhouette pixel coordinates sampled on a
// stride×stride grid, in row-major order (the order the fitness kernel
// preserves).
func (e *Estimator) silhouettePointsStride(sil segmentation.Silhouette, stride int) ([]imaging.Vec2, error) {
	if sil.Mask == nil {
		return nil, ErrEmptySilhouette
	}
	m := sil.Mask
	// Capacity bound: the sampling grid has ceil(W/s)·ceil(H/s) sites and
	// at most Area of them are foreground. The former Area/s²+1 estimate
	// under-allocates whenever the foreground is elongated along one axis
	// (a vertical bar of Area=H yields ceil(H/s) points, not H/s²).
	hint := ((m.W + stride - 1) / stride) * ((m.H + stride - 1) / stride)
	if sil.Area < hint {
		hint = sil.Area
	}
	pts := make([]imaging.Vec2, 0, hint)
	for y := 0; y < m.H; y += stride {
		row := y * m.W
		for x := 0; x < m.W; x += stride {
			if m.Bits[row+x] {
				pts = append(pts, imaging.Vec2{X: float64(x), Y: float64(y)})
			}
		}
	}
	if len(pts) == 0 {
		return nil, ErrEmptySilhouette
	}
	return pts, nil
}
