package pose

import (
	"sync/atomic"

	"github.com/sljmotion/sljmotion/internal/ga"
)

// Process-wide GA memoization counters, aggregated across every GA run the
// process performs (all frames, all jobs, coarse and fine phases). Surfaced
// as the "ga" section of /v1/metrics and as Prometheus counters.
var (
	gaMemoHits   atomic.Uint64
	gaMemoMisses atomic.Uint64
)

// GAStats is the process-wide GA acceleration telemetry.
type GAStats struct {
	// FitnessMemoHits counts fitness scores answered from the
	// cross-generation memo table instead of re-evaluating Eq. (3).
	FitnessMemoHits uint64 `json:"fitness_memo_hits"`
	// FitnessMemoMisses counts fitness scores actually evaluated.
	FitnessMemoMisses uint64 `json:"fitness_memo_misses"`
}

// GAMetrics snapshots the process-wide GA counters.
func GAMetrics() GAStats {
	return GAStats{
		FitnessMemoHits:   gaMemoHits.Load(),
		FitnessMemoMisses: gaMemoMisses.Load(),
	}
}

// ResetGAMetrics zeroes the process-wide GA counters. Tests that pin whole
// metric documents call this to decouple from analyses run earlier in the
// same process.
func ResetGAMetrics() {
	gaMemoHits.Store(0)
	gaMemoMisses.Store(0)
}

// recordMemoStats folds one GA run's memoization counters into the
// process-wide totals.
func recordMemoStats(res *ga.Result) {
	if res.MemoHits > 0 {
		gaMemoHits.Add(uint64(res.MemoHits))
	}
	if res.MemoMisses > 0 {
		gaMemoMisses.Add(uint64(res.MemoMisses))
	}
}
