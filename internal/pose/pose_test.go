package pose

import (
	"math"
	"testing"

	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// fastConfig shrinks the GA for unit-test speed while keeping behaviour.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Population = 40
	cfg.Generations = 40
	cfg.Patience = 10
	cfg.RefineRounds = 1
	return cfg
}

// cleanSilhouette rasterises a pose into a noise-free silhouette — the
// idealised segmentation output.
func cleanSilhouette(t *testing.T, p stickmodel.Pose, d stickmodel.Dimensions, w, h int) segmentation.Silhouette {
	t.Helper()
	m := p.Rasterize(d, w, h)
	if m.Empty() {
		t.Fatal("test pose rasterised empty")
	}
	return segmentation.NewSilhouette(0, m)
}

func crouchPose(cx, cy float64) stickmodel.Pose {
	p := stickmodel.Pose{X: cx, Y: cy}
	p.Rho[stickmodel.Trunk] = 40
	p.Rho[stickmodel.Neck] = 35
	p.Rho[stickmodel.Head] = 28
	p.Rho[stickmodel.UpperArm] = 280
	p.Rho[stickmodel.Forearm] = 225
	p.Rho[stickmodel.Thigh] = 140
	p.Rho[stickmodel.Shank] = 210
	p.Rho[stickmodel.Foot] = 95
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.DeltaXY = 0 },
		func(c *Config) { c.MinContainment = 1.1 },
		func(c *Config) { c.ColdMinContainment = -0.1 },
		func(c *Config) { c.PointStride = 0 },
		func(c *Config) { c.Population = 1 },
		func(c *Config) { c.Generations = 0 },
		func(c *Config) { c.TemporalLambda = -1 },
		func(c *Config) { c.ExploreFraction = 2 },
		func(c *Config) { c.RefineRounds = -1 },
		func(c *Config) { c.AnatomyLambda = -0.5 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestFitnessPrefersTruePose(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := cleanSilhouette(t, truth, d, 140, 140)
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	fTrue, err := est.Fitness(truth, sil)
	if err != nil {
		t.Fatal(err)
	}
	wrong := truth
	wrong.Rho[stickmodel.UpperArm] += 120
	wrong.Rho[stickmodel.Thigh] += 60
	fWrong, err := est.Fitness(wrong, sil)
	if err != nil {
		t.Fatal(err)
	}
	if fTrue >= fWrong {
		t.Errorf("Eq.3 fitness must prefer the generating pose: true %.4f vs wrong %.4f", fTrue, fWrong)
	}
}

func TestFitnessEmptySilhouette(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	empty := segmentation.NewSilhouette(0, crouchPose(0, 0).Rasterize(d, 10, 10))
	// Pose far off-canvas yields an empty mask.
	if empty.Area != 0 {
		t.Skip("unexpectedly non-empty")
	}
	if _, err := est.Fitness(crouchPose(5, 5), empty); err == nil {
		t.Error("empty silhouette must error")
	}
}

func TestCalibrateAdjustsDimensions(t *testing.T) {
	trueDims := stickmodel.ChildDimensions(64)
	truth := crouchPose(70, 80)
	sil := cleanSilhouette(t, truth, trueDims, 150, 150)

	// Prior with wrong thicknesses.
	prior := trueDims
	for i := 0; i < stickmodel.NumSticks; i++ {
		prior.Thick[i] *= 1.5
	}
	est, err := NewEstimator(prior, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	calibrated, err := est.Calibrate(sil, truth)
	if err != nil {
		t.Fatal(err)
	}
	trunkErrBefore := math.Abs(prior.Thick[stickmodel.Trunk] - trueDims.Thick[stickmodel.Trunk])
	trunkErrAfter := math.Abs(calibrated.Thick[stickmodel.Trunk] - trueDims.Thick[stickmodel.Trunk])
	if trunkErrAfter >= trunkErrBefore {
		t.Errorf("calibration did not improve trunk thickness: %.2f -> %.2f", trunkErrBefore, trunkErrAfter)
	}
	if est.Dimensions() != calibrated {
		t.Error("estimator must adopt calibrated dimensions")
	}
}

func TestCalibrateEmptySilhouette(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	empty := segmentation.Silhouette{}
	if _, err := est.Calibrate(empty, crouchPose(0, 0)); err == nil {
		t.Error("empty silhouette must error")
	}
}

func TestEstimateNextTracksSmallMotion(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	prev := crouchPose(70, 70)
	next := prev
	next.X += 4
	next.Rho[stickmodel.UpperArm] += 18
	next.Rho[stickmodel.Thigh] -= 10
	next.Rho[stickmodel.Shank] += 8
	sil := cleanSilhouette(t, next, d, 140, 140)

	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.EstimateNext(sil, prev)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < stickmodel.NumSticks; l++ {
		diff := math.Abs(stickmodel.AngleDiff(next.Rho[l], got.Pose.Rho[l]))
		if diff > 25 {
			t.Errorf("stick %v error %.1f° > 25°", stickmodel.StickID(l), diff)
		}
	}
	if got.GA == nil || got.GA.Evaluations == 0 {
		t.Error("GA result missing")
	}
}

func TestEstimateNextEmptySilhouette(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	empty := segmentation.NewSilhouette(0, crouchPose(500, 500).Rasterize(d, 20, 20))
	if _, err := est.EstimateNext(empty, crouchPose(10, 10)); err == nil {
		t.Error("empty silhouette must error")
	}
}

func TestEstimateSequenceChainsFrames(t *testing.T) {
	d := stickmodel.ChildDimensions(56)
	p0 := crouchPose(60, 70)
	p1 := p0.Translate(5, -2)
	p1.Rho[stickmodel.UpperArm] -= 25
	p2 := p1.Translate(5, -2)
	p2.Rho[stickmodel.UpperArm] -= 25

	sils := []segmentation.Silhouette{
		cleanSilhouette(t, p0, d, 160, 140),
		cleanSilhouette(t, p1, d, 160, 140),
		cleanSilhouette(t, p2, d, 160, 140),
	}
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := est.EstimateSequence(sils, p0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d estimates", len(out))
	}
	if out[0].Pose != p0 {
		t.Error("frame 0 must echo the manual pose")
	}
	for k, truth := range []stickmodel.Pose{p0, p1, p2} {
		diff := math.Abs(stickmodel.AngleDiff(truth.Rho[stickmodel.UpperArm], out[k].Pose.Rho[stickmodel.UpperArm]))
		if diff > 25 {
			t.Errorf("frame %d arm error %.1f°", k, diff)
		}
	}
	if _, err := est.EstimateSequence(nil, p0); err == nil {
		t.Error("empty sequence must error")
	}
}

func TestEstimateColdFindsPose(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := cleanSilhouette(t, truth, d, 140, 140)
	cfg := fastConfig()
	cfg.ColdGenerations = 120
	est, err := NewEstimator(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.EstimateCold(sil)
	if err != nil {
		t.Fatal(err)
	}
	// Cold start only needs to land a plausible fit: centre near the
	// silhouette and fitness comparable to the generating pose's.
	fTrue, err := est.Fitness(truth, sil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fitness > fTrue*2.5 {
		t.Errorf("cold fitness %.4f far above truth %.4f", got.Fitness, fTrue)
	}
	if math.Hypot(got.Pose.X-truth.X, got.Pose.Y-truth.Y) > 25 {
		t.Errorf("cold centre (%f,%f) far from truth (%f,%f)",
			got.Pose.X, got.Pose.Y, truth.X, truth.Y)
	}
}

func TestTemporalBeatsColdInConvergence(t *testing.T) {
	// The paper's headline: with temporal seeding the best model appears
	// within the first few generations; cold start needs far longer.
	d := stickmodel.ChildDimensions(60)
	prev := crouchPose(70, 70)
	cur := prev.Translate(3, -1)
	cur.Rho[stickmodel.UpperArm] += 10
	sil := cleanSilhouette(t, cur, d, 140, 140)

	cfg := fastConfig()
	cfg.RefineRounds = 0 // compare pure GA convergence
	est, err := NewEstimator(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := est.EstimateNext(sil, prev)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := est.EstimateCold(sil)
	if err != nil {
		t.Fatal(err)
	}
	// Temporal seeding starts from an almost-correct population: its
	// initial best must already be better than the cold start's.
	if warm.GA.History[0] >= cold.GA.History[0] {
		t.Errorf("temporal initial population %.4f not better than cold %.4f",
			warm.GA.History[0], cold.GA.History[0])
	}
}

func TestExtrapolate(t *testing.T) {
	a := crouchPose(10, 10)
	b := a.Translate(5, 2)
	b.Rho[stickmodel.UpperArm] = stickmodel.NormalizeAngle(a.Rho[stickmodel.UpperArm] + 20)
	pred := extrapolate(a, b)
	if math.Abs(pred.X-(b.X+4)) > 1e-9 { // damping 0.8 × velocity 5
		t.Errorf("pred.X = %v", pred.X)
	}
	wantArm := stickmodel.NormalizeAngle(b.Rho[stickmodel.UpperArm] + 16)
	if math.Abs(stickmodel.AngleDiff(pred.Rho[stickmodel.UpperArm], wantArm)) > 1e-9 {
		t.Errorf("pred arm = %v, want %v", pred.Rho[stickmodel.UpperArm], wantArm)
	}
}

func TestAnatomyPenalty(t *testing.T) {
	p := crouchPose(0, 0)
	p.Rho[stickmodel.Neck] = 30
	p.Rho[stickmodel.Head] = 30
	p.Rho[stickmodel.UpperArm] = 200
	p.Rho[stickmodel.Forearm] = 180 // flexion +20, natural
	if got := anatomyPenalty(p); got != 0 {
		t.Errorf("natural pose penalty = %v, want 0", got)
	}
	p.Rho[stickmodel.Head] = 80 // 50° head-neck mismatch
	if got := anatomyPenalty(p); got <= 0 {
		t.Error("head-neck mismatch not penalised")
	}
	q := crouchPose(0, 0)
	q.Rho[stickmodel.UpperArm] = 180
	q.Rho[stickmodel.Forearm] = 230 // hyper-extension
	if got := anatomyPenalty(q); got <= 0 {
		t.Error("elbow hyper-extension not penalised")
	}
}

func TestSoftWindowPenalty(t *testing.T) {
	anchor := crouchPose(0, 0)
	var conf [stickmodel.NumSticks]float64
	for i := range conf {
		conf[i] = 1
	}
	deltaRho := DefaultConfig().DeltaRho
	if got := softWindowPenalty(anchor, anchor, deltaRho, conf); got != 0 {
		t.Errorf("identical poses penalty = %v", got)
	}
	moved := anchor
	moved.Rho[stickmodel.UpperArm] += 60 // exactly one window
	got := softWindowPenalty(moved, anchor, deltaRho, conf)
	want := 1.0 / stickmodel.NumSticks
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("one-window move penalty = %v, want %v", got, want)
	}
	flipped := anchor
	flipped.Rho[stickmodel.UpperArm] += 180
	if softWindowPenalty(flipped, anchor, deltaRho, conf) <= got {
		t.Error("flip must cost more than a window move")
	}
}

func TestStickConfidenceObservability(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := cleanSilhouette(t, truth, d, 140, 140)
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := est.silhouettePoints(sil)
	if err != nil {
		t.Fatal(err)
	}
	conf := est.stickConfidence(fitnessOver(pts, d), truth)
	for l := 0; l < stickmodel.NumSticks; l++ {
		if conf[l] < confFloor || conf[l] > 1 {
			t.Errorf("conf[%d] = %v outside [%v,1]", l, conf[l], confFloor)
		}
	}
	// The trunk (large, defining the torso) must be clearly observable in a
	// crouch silhouette.
	if conf[stickmodel.Trunk] < 0.9 {
		t.Errorf("trunk confidence %v unexpectedly low", conf[stickmodel.Trunk])
	}
}

func TestPointStrideSubsampling(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := cleanSilhouette(t, truth, d, 140, 140)
	cfg := fastConfig()
	cfg.PointStride = 1
	est1, err := NewEstimator(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PointStride = 3
	est3, err := NewEstimator(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := est1.silhouettePoints(sil)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := est3.silhouettePoints(sil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p3) >= len(p1) {
		t.Errorf("stride 3 points %d not fewer than stride 1 %d", len(p3), len(p1))
	}
	// Eq. (3) is an average: values with different strides stay close.
	f1 := fitnessOver(p1, d)(truth)
	f3 := fitnessOver(p3, d)(truth)
	if math.Abs(f1-f3) > 0.05 {
		t.Errorf("stride changed the fitness scale: %.4f vs %.4f", f1, f3)
	}
}
