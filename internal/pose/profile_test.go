package pose

import (
	"testing"

	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"", "default"} {
		p, err := ProfileByName(name)
		if err != nil || p.coarseEnabled() || p.ConvergeSpread != 0 {
			t.Errorf("ProfileByName(%q) = %+v, %v; want reference profile", name, p, err)
		}
	}
	fast, err := ProfileByName("fast")
	if err != nil || !fast.coarseEnabled() || fast.ConvergeSpread <= 0 {
		t.Errorf("ProfileByName(fast) = %+v, %v; want coarse phase enabled", fast, err)
	}
	if _, err := ProfileByName("turbo"); err == nil {
		t.Error("unknown profile name must error")
	}
}

func TestProfileValidate(t *testing.T) {
	good := []FitProfile{{}, DefaultProfile(), FastProfile(),
		{CoarseStrideScale: 3, CoarseFraction: 0.9}}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %d unexpectedly invalid: %v", i, err)
		}
	}
	bad := []FitProfile{
		{CoarseFraction: -0.1},
		{CoarseFraction: 1},
		{CoarseStrideScale: 2}, // stride without a coarse budget
		{ConvergeSpread: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should be invalid: %+v", i, p)
		}
	}
}

// TestFastProfileWithinTolerance is the fidelity contract of the fast
// profile (DESIGN.md §15): over a short tracked sequence, the fast
// profile's full-resolution Eq. (3) fitness stays within 0.05 of the
// reference profile's on every frame. (In the fitness's units, 0.05 is
// 5% of a stick thickness of mean point-to-model distance.)
func TestFastProfileWithinTolerance(t *testing.T) {
	dims := stickmodel.ChildDimensions(60)
	// A short synthetic motion: the crouch pose swinging its arm and thigh.
	truths := make([]stickmodel.Pose, 4)
	sils := make([]segmentation.Silhouette, 4)
	for k := range truths {
		p := crouchPose(70, 72)
		p.X += float64(k) * 2
		p.Rho[stickmodel.UpperArm] += float64(k) * 8
		p.Rho[stickmodel.Thigh] -= float64(k) * 5
		truths[k] = p
		sils[k] = cleanSilhouette(t, p, dims, 150, 150)
	}

	run := func(profile FitProfile) []Estimate {
		cfg := fastConfig()
		cfg.Profile = profile
		est, err := NewEstimator(dims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := est.EstimateSequence(sils, truths[0])
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(DefaultProfile())
	fast := run(FastProfile())

	const tolerance = 0.05
	for k := 1; k < len(sils); k++ {
		if d := fast[k].Fitness - ref[k].Fitness; d > tolerance {
			t.Errorf("frame %d: fast fitness %.4f exceeds reference %.4f by %.4f (tolerance %v)",
				k, fast[k].Fitness, ref[k].Fitness, d, tolerance)
		}
	}

	// The fast profile must do measurably less Eq. (3) work.
	work := func(ests []Estimate) (evals, hits, misses int) {
		for _, e := range ests {
			if e.GA != nil {
				evals += e.GA.Evaluations
				hits += e.GA.MemoHits
				misses += e.GA.MemoMisses
			}
		}
		return
	}
	refEvals, refHits, refMisses := work(ref)
	fastEvals, _, _ := work(fast)
	if fastEvals >= refEvals {
		t.Errorf("fast profile did not reduce evaluations: %d vs %d", fastEvals, refEvals)
	}
	if refHits+refMisses != refEvals {
		t.Errorf("memo accounting broken: hits %d + misses %d != evals %d",
			refHits, refMisses, refEvals)
	}
	if refHits == 0 {
		t.Error("memoization produced no hits on a tracked sequence")
	}
}

// TestDefaultProfileMatchesZeroValue pins the byte-identity precondition:
// the default profile must not alter the estimator's behaviour relative to
// a zero-valued profile (both disable coarse fitting and convergence
// termination), so configs that never mention profiles keep their output.
func TestDefaultProfileMatchesZeroValue(t *testing.T) {
	dims := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 72)
	sil := cleanSilhouette(t, truth, dims, 150, 150)

	run := func(profile FitProfile) *Estimate {
		cfg := fastConfig()
		cfg.Profile = profile
		est, err := NewEstimator(dims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := est.EstimateNext(sil, truth)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run(FitProfile{})
	b := run(DefaultProfile())
	if a.Fitness != b.Fitness || a.Pose != b.Pose {
		t.Errorf("zero profile and DefaultProfile diverge: %.17g vs %.17g", a.Fitness, b.Fitness)
	}
}
