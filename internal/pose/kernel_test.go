package pose

import (
	"math/rand"
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// maskPoints replicates the estimator's silhouette sampling: row-major
// stride×stride grid points that are foreground.
func maskPoints(m *imaging.Mask, stride int) []imaging.Vec2 {
	var pts []imaging.Vec2
	for y := 0; y < m.H; y += stride {
		for x := 0; x < m.W; x += stride {
			if m.At(x, y) {
				pts = append(pts, imaging.Vec2{X: float64(x), Y: float64(y)})
			}
		}
	}
	return pts
}

func randomPose(rng *rand.Rand, w, h float64) stickmodel.Pose {
	var p stickmodel.Pose
	p.X = rng.Float64() * w
	p.Y = rng.Float64() * h
	for l := 0; l < stickmodel.NumSticks; l++ {
		p.Rho[l] = rng.Float64() * 360
	}
	return p
}

// TestKernelMatchesReferenceBitExact is the bit-identity contract of the
// fast evaluator: over random silhouettes and random candidate poses
// (including poses far off the silhouette, where pruning is most
// aggressive), fitKernel.Eval must return the exact float64 the naive
// reference produces.
func TestKernelMatchesReferenceBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dims := stickmodel.ChildDimensions(60)
	for trial := 0; trial < 30; trial++ {
		sil := randomPose(rng, 80, 80).Rasterize(dims, 140, 140)
		stride := 1 + rng.Intn(3)
		pts := maskPoints(sil, stride)
		if len(pts) == 0 {
			continue
		}
		k := newFitKernel(pts, dims)
		ref := fitnessOver(pts, dims)
		if k.NumPoints() != len(pts) {
			t.Fatalf("NumPoints = %d, want %d", k.NumPoints(), len(pts))
		}
		for c := 0; c < 40; c++ {
			p := randomPose(rng, 160, 160)
			got, want := k.Eval(p), ref(p)
			if got != want {
				t.Fatalf("trial %d cand %d: kernel %.17g != reference %.17g (pose %+v)",
					trial, c, got, want, p)
			}
		}
	}
}

// TestKernelDegenerateSticks covers zero-length segments (l2 == 0), where
// the closest point collapses to the segment origin.
func TestKernelDegenerateSticks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var dims stickmodel.Dimensions
	for l := 0; l < stickmodel.NumSticks; l++ {
		dims.Thick[l] = 4 // lengths all zero
	}
	pts := []imaging.Vec2{{X: 3, Y: 4}, {X: 10, Y: 0}, {X: 0, Y: 0}}
	k := newFitKernel(pts, dims)
	ref := fitnessOver(pts, dims)
	for c := 0; c < 20; c++ {
		p := randomPose(rng, 20, 20)
		if got, want := k.Eval(p), ref(p); got != want {
			t.Fatalf("degenerate sticks: kernel %.17g != reference %.17g", got, want)
		}
	}
}

func TestKernelEvalZeroAllocs(t *testing.T) {
	dims := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := truth.Rasterize(dims, 140, 140)
	k := newFitKernel(maskPoints(sil, 2), dims)
	p := crouchPose(72, 69)
	allocs := testing.AllocsPerRun(50, func() { k.Eval(p) })
	if allocs != 0 {
		t.Errorf("fitKernel.Eval allocates %v/op, want 0", allocs)
	}
}

func BenchmarkFitKernelEval(b *testing.B) {
	dims := stickmodel.ChildDimensions(60)
	sil := crouchPose(70, 70).Rasterize(dims, 140, 140)
	k := newFitKernel(maskPoints(sil, 2), dims)
	p := crouchPose(72, 69)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Eval(p)
	}
}

// BenchmarkFitnessReference is the naive evaluator the kernel replaced;
// keep both benchmarks so the speedup stays visible in CI output.
func BenchmarkFitnessReference(b *testing.B) {
	dims := stickmodel.ChildDimensions(60)
	sil := crouchPose(70, 70).Rasterize(dims, 140, 140)
	ref := fitnessOver(maskPoints(sil, 2), dims)
	p := crouchPose(72, 69)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref(p)
	}
}
