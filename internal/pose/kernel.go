package pose

import (
	"math"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// fitKernel is the allocation-free evaluator of the Eq. (3) fitness:
// FS = (Σ_points min_l d(point, S_l)/t_l) / N. It is built once per frame
// from the (subsampled) silhouette point set and then evaluated thousands
// of times per GA fit, so everything per-candidate lives on the stack:
// silhouette coordinates are flattened into two float buffers, and a
// row-band grid over the points lets whole cells skip the sticks that
// provably cannot own any of their points.
//
// The kernel returns bit-identical values to the naive reference
// (Segment.PointDist in stick order with a strict-< minimum): cells are
// contiguous ranges of the row-major point order, so the summation order is
// unchanged; cell-level pruning only discards a stick when a conservative
// distance bound proves it cannot attain the minimum for any point in the
// cell; and per point the cheap squared-distance comparison only selects
// *candidate* winners — the returned minimum is then recomputed with
// exactly the reference arithmetic (same Hypot, same division by t_l) over
// every candidate within a safety margin. Since only the minimum's value
// enters the sum, recovering the exact value of the true minimiser suffices.
//
// Eval is safe for concurrent use (the GA fans fitness calls across
// workers): the kernel is read-only after construction.
type fitKernel struct {
	xs, ys []float64 // flattened point coordinates, original row-major order
	cells  []kernelCell
	dims   stickmodel.Dimensions
}

// kernelCell is one x-band of one sampled silhouette row: the points
// xs[start:end] / ys[start:end], plus the covering circle (centre, radius)
// of those points used for conservative stick pruning.
type kernelCell struct {
	start, end int32
	cx, cy     float64
	radius     float64
}

// kernelCellCap bounds the points per cell. Points in a row are ascending
// in x, so a cell spans at most (cap-1)·stride pixels; smaller cells prune
// sticks more sharply but pay more per-cell bound computations.
const kernelCellCap = 16

// Pruning safety margins. cellPad (pixels) widens the covering radius;
// candMargin is the relative slack on squared-distance winner selection.
// Both absorb floating-point rounding between the bound arithmetic and the
// reference arithmetic; they only ever make pruning less aggressive.
const (
	cellPad    = 1e-6
	candMargin = 1e-12
)

// newFitKernel flattens pts (row-major silhouette order) and builds the
// row-band grid. The point slice is not retained.
func newFitKernel(pts []imaging.Vec2, dims stickmodel.Dimensions) *fitKernel {
	k := &fitKernel{
		xs:   make([]float64, len(pts)),
		ys:   make([]float64, len(pts)),
		dims: dims,
	}
	for i, pt := range pts {
		k.xs[i] = pt.X
		k.ys[i] = pt.Y
	}
	start := 0
	for i := 1; i <= len(pts); i++ {
		if i == len(pts) || pts[i].Y != pts[start].Y || i-start == kernelCellCap {
			minX, maxX := pts[start].X, pts[start].X
			for _, pt := range pts[start+1 : i] {
				if pt.X < minX {
					minX = pt.X
				}
				if pt.X > maxX {
					maxX = pt.X
				}
			}
			cx := (minX + maxX) / 2
			k.cells = append(k.cells, kernelCell{
				start:  int32(start),
				end:    int32(i),
				cx:     cx,
				cy:     pts[start].Y,
				radius: (maxX-minX)/2 + cellPad,
			})
			start = i
		}
	}
	return k
}

// Eval scores one pose. Zero heap allocations.
func (k *fitKernel) Eval(p stickmodel.Pose) float64 {
	segs := p.Segments(k.dims)
	// Per-stick precomputation, mirroring Segment.PointDist's locals.
	var ax, ay, dx, dy, l2, thick, invT2 [stickmodel.NumSticks]float64
	for l := 0; l < stickmodel.NumSticks; l++ {
		ax[l] = segs[l].A.X
		ay[l] = segs[l].A.Y
		dx[l] = segs[l].B.X - segs[l].A.X
		dy[l] = segs[l].B.Y - segs[l].A.Y
		l2[l] = dx[l]*dx[l] + dy[l]*dy[l]
		thick[l] = k.dims.Thick[l]
		invT2[l] = 1 / (thick[l] * thick[l])
	}
	var sum float64
	// Per-point scratch; only active-stick slots are written and read each
	// iteration, so hoisting avoids re-zeroing inside the hot loop.
	var rxs, rys, q [stickmodel.NumSticks]float64
	for _, c := range k.cells {
		// Cell-level pruning: from the exact distance dc of the cell's
		// covering centre to each stick, every point of the cell has
		// d_l ∈ [dc-radius, dc+radius]. A stick whose normalised lower
		// bound exceeds the smallest normalised upper bound cannot own any
		// point here. Bounds are conservative, so results are unaffected.
		var active [stickmodel.NumSticks]int
		nact := 0
		var lb, ub [stickmodel.NumSticks]float64
		ubMin := math.Inf(1)
		for l := 0; l < stickmodel.NumSticks; l++ {
			rx, ry := closestOffset(c.cx, c.cy, ax[l], ay[l], dx[l], dy[l], l2[l])
			dc := math.Sqrt(rx*rx + ry*ry)
			lo := dc - c.radius
			if lo < 0 {
				lo = 0
			}
			lb[l] = lo / thick[l]
			ub[l] = (dc + c.radius) / thick[l]
			if ub[l] < ubMin {
				ubMin = ub[l]
			}
		}
		for l := 0; l < stickmodel.NumSticks; l++ {
			if lb[l] <= ubMin+1e-9 {
				active[nact] = l
				nact++
			}
		}
		for i := c.start; i < c.end; i++ {
			px, py := k.xs[i], k.ys[i]
			// Cheap pass: squared distances scaled by 1/t² pick candidate
			// winners without any sqrt.
			bestQ := math.Inf(1)
			for j := 0; j < nact; j++ {
				l := active[j]
				rx, ry := closestOffset(px, py, ax[l], ay[l], dx[l], dy[l], l2[l])
				rxs[l] = rx
				rys[l] = ry
				q[l] = (rx*rx + ry*ry) * invT2[l]
				if q[l] < bestQ {
					bestQ = q[l]
				}
			}
			// Exact pass over candidates: the reference expression
			// Hypot(...)/t_l, minimised with strict < as in the reference.
			limit := bestQ + bestQ*candMargin + candMargin
			best := 1e18
			for j := 0; j < nact; j++ {
				l := active[j]
				if q[l] > limit {
					continue
				}
				d := math.Hypot(rxs[l], rys[l]) / thick[l]
				if d < best {
					best = d
				}
			}
			sum += best
		}
	}
	return sum / float64(len(k.xs))
}

// closestOffset returns (px,py) minus the closest point of the segment
// (a + t·d, t clamped to [0,1]), with the exact expression shapes of
// Segment.PointDist so the compiler rounds identically.
func closestOffset(px, py, ax, ay, dx, dy, l2 float64) (rx, ry float64) {
	if l2 == 0 {
		return px - ax, py - ay
	}
	t := ((px-ax)*dx + (py-ay)*dy) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return px - (ax + dx*t), py - (ay + dy*t)
}

// NumPoints reports the silhouette point count the kernel averages over.
func (k *fitKernel) NumPoints() int { return len(k.xs) }

// fitnessOver is the naive Eq. (3) reference evaluator the kernel is pinned
// against: the mean over silhouette points of the minimum
// thickness-normalised distance to any stick. Kept as the ground truth for
// the bit-identity equivalence tests (and any future kernel rewrite);
// production paths use fitKernel.
func fitnessOver(pts []imaging.Vec2, dims stickmodel.Dimensions) func(stickmodel.Pose) float64 {
	return func(p stickmodel.Pose) float64 {
		segs := p.Segments(dims)
		var sum float64
		for _, pt := range pts {
			best := 1e18
			for l := 0; l < stickmodel.NumSticks; l++ {
				d := segs[l].PointDist(pt) / dims.Thick[l]
				if d < best {
					best = d
				}
			}
			sum += best
		}
		return sum / float64(len(pts))
	}
}
