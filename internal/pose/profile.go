package pose

import "fmt"

// FitProfile names a speed/fidelity trade for the per-frame GA fit. The
// profile participates in the analyzer's config fingerprint (and therefore
// in every cache key and dispatch-ring placement), so results produced
// under different profiles can never collide.
//
// The zero value and DefaultProfile are the reference profile: coarse
// fitting and converged-population termination disabled, output
// byte-identical to the paper-calibrated pipeline. FastProfile trades a
// bounded fitness tolerance (see DESIGN.md §15) for a multiple of
// throughput by fitting most generations against a stride-subsampled point
// set, refining the remainder at full resolution seeded with the coarse
// population, and stopping converged populations early.
type FitProfile struct {
	// Name identifies the profile ("default", "fast") in bench rows, logs
	// and flags. Empty means default.
	Name string
	// CoarseStrideScale multiplies Config.PointStride during the coarse
	// phase (2 → roughly a quarter of the points). <= 1 disables the
	// coarse phase.
	CoarseStrideScale int
	// CoarseFraction is the fraction of the per-frame generation budget
	// spent in the coarse phase; the rest runs at full resolution.
	CoarseFraction float64
	// ConvergeSpread stops a GA run once the population's 75th-percentile
	// to best fitness spread falls to this value (the worst slots are
	// excluded — random immigrants keep them deliberately unfit); 0
	// disables.
	ConvergeSpread float64
}

// DefaultProfile is the reference profile: byte-identical output.
func DefaultProfile() FitProfile { return FitProfile{Name: "default"} }

// FastProfile is the calibrated throughput profile: 60% of generations on
// a 2×-strided point set, the rest at full resolution, and early
// termination of converged populations.
func FastProfile() FitProfile {
	return FitProfile{
		Name:              "fast",
		CoarseStrideScale: 2,
		CoarseFraction:    0.6,
		ConvergeSpread:    0.004,
	}
}

// ProfileByName resolves a profile flag value.
func ProfileByName(name string) (FitProfile, error) {
	switch name {
	case "", "default":
		return DefaultProfile(), nil
	case "fast":
		return FastProfile(), nil
	}
	return FitProfile{}, fmt.Errorf("pose: unknown fit profile %q (want default or fast)", name)
}

// Validate rejects unusable profiles.
func (p FitProfile) Validate() error {
	if p.CoarseFraction < 0 || p.CoarseFraction >= 1 {
		return fmt.Errorf("pose: profile CoarseFraction must be in [0,1), got %v", p.CoarseFraction)
	}
	if p.CoarseStrideScale > 1 && p.CoarseFraction == 0 {
		return fmt.Errorf("pose: profile CoarseStrideScale set without CoarseFraction")
	}
	if p.ConvergeSpread < 0 {
		return fmt.Errorf("pose: profile ConvergeSpread must be >= 0, got %v", p.ConvergeSpread)
	}
	return nil
}

// coarseEnabled reports whether the profile runs a coarse phase.
func (p FitProfile) coarseEnabled() bool {
	return p.CoarseStrideScale > 1 && p.CoarseFraction > 0
}
