package pose

import (
	"math"
	"testing"

	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

func TestRefineEscapesArmFlip(t *testing.T) {
	// Plant the coordinated local optimum seen in tracking: the arm flipped
	// ~170° with the rest of the pose correct. Group-coordinate refinement
	// must recover the generating pose.
	d := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := cleanSilhouette(t, truth, d, 140, 140)

	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := est.silhouettePoints(sil)
	if err != nil {
		t.Fatal(err)
	}
	fit := fitnessOver(pts, d)
	valid := func(p stickmodel.Pose) bool {
		return p.ContainmentFraction(d, sil.Mask) >= 0.6
	}

	stuck := truth
	stuck.Rho[stickmodel.UpperArm] = stickmodel.NormalizeAngle(truth.Rho[stickmodel.UpperArm] + 170)
	stuck.Rho[stickmodel.Forearm] = stickmodel.NormalizeAngle(truth.Rho[stickmodel.Forearm] + 150)

	refined := refinePose(stuck, fit, valid, 3)
	armErr := math.Abs(stickmodel.AngleDiff(truth.Rho[stickmodel.UpperArm], refined.Rho[stickmodel.UpperArm]))
	if armErr > 30 {
		t.Errorf("refinement left arm error %.1f°", armErr)
	}
	if fit(refined) >= fit(stuck) {
		t.Error("refinement did not improve fitness")
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := cleanSilhouette(t, truth, d, 140, 140)
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := est.silhouettePoints(sil)
	if err != nil {
		t.Fatal(err)
	}
	fit := fitnessOver(pts, d)
	valid := func(p stickmodel.Pose) bool { return true }

	for _, start := range []stickmodel.Pose{truth, truth.Translate(2, 2)} {
		refined := refinePose(start, fit, valid, 2)
		if fit(refined) > fit(start) {
			t.Error("refine increased fitness")
		}
	}
}

func TestRefineZeroRoundsIdentity(t *testing.T) {
	d := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := cleanSilhouette(t, truth, d, 140, 140)
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := est.silhouettePoints(sil)
	if err != nil {
		t.Fatal(err)
	}
	fit := fitnessOver(pts, d)
	got := refinePose(truth, fit, func(stickmodel.Pose) bool { return true }, 0)
	if got != truth {
		t.Error("0 rounds must return the input pose")
	}
}

func TestRefineRespectsValidity(t *testing.T) {
	// With a validity predicate that rejects everything but the start, the
	// start must be returned unchanged.
	d := stickmodel.ChildDimensions(60)
	truth := crouchPose(70, 70)
	sil := cleanSilhouette(t, truth, d, 140, 140)
	est, err := NewEstimator(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := est.silhouettePoints(sil)
	if err != nil {
		t.Fatal(err)
	}
	fit := fitnessOver(pts, d)
	got := refinePose(truth, fit, func(stickmodel.Pose) bool { return false }, 2)
	if got != truth {
		t.Error("all-invalid predicate must freeze the pose")
	}
}
