package pose

import (
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// refinePose runs group-coordinate refinement: each kinematic group is
// scanned over a discrete candidate set while the rest of the pose is held
// fixed, keeping the best valid candidate; the process repeats for the
// configured number of rounds. Groups interact only weakly through Eq. (3)
// (they cover different silhouette regions), so coordinate descent with
// full-circle scans reliably escapes the coordinated local optima that
// grouped crossover alone cannot assemble (e.g. trunk-lean + arm-flip).
func refinePose(start stickmodel.Pose, fit func(stickmodel.Pose) float64,
	valid func(stickmodel.Pose) bool, rounds int) stickmodel.Pose {

	best := start
	bestFit := fit(best)

	apply := func(p stickmodel.Pose) {
		if f := fit(p); f < bestFit && valid(p) {
			best, bestFit = p, f
		}
	}

	for round := 0; round < rounds; round++ {
		prevFit := bestFit

		// Trunk centre: small grid around the current centre.
		for _, dx := range []float64{-3, -1.5, 1.5, 3} {
			for _, dy := range []float64{-3, -1.5, 0, 1.5, 3} {
				p := best
				p.X += dx
				p.Y += dy
				apply(p)
			}
		}

		// Trunk angle: full-circle scan, 5° steps.
		scan1(&best, &bestFit, fit, valid, stickmodel.Trunk, 360, 5)

		// Neck and head: anatomically bounded joint scan around current.
		scan2(&best, &bestFit, fit, valid, stickmodel.Neck, stickmodel.Head, 45, 9)

		// Arm chain: full-circle joint scan (the chain most prone to
		// flipping when it crosses the trunk).
		scan2(&best, &bestFit, fit, valid, stickmodel.UpperArm, stickmodel.Forearm, 180, 12)

		// Leg chain: full-circle thigh × shank, then foot alone.
		scan2(&best, &bestFit, fit, valid, stickmodel.Thigh, stickmodel.Shank, 180, 12)
		scan1(&best, &bestFit, fit, valid, stickmodel.Foot, 90, 6)

		if prevFit-bestFit < 1e-6 {
			break // converged
		}
	}
	return best
}

// scan1 scans a single stick's angle within ±span of its current value at
// the given step, keeping the best valid improvement.
func scan1(best *stickmodel.Pose, bestFit *float64, fit func(stickmodel.Pose) float64,
	valid func(stickmodel.Pose) bool, id stickmodel.StickID, span, step float64) {

	base := *best
	for d := -span; d <= span; d += step {
		if d == 0 {
			continue
		}
		p := base
		p.Rho[id] = stickmodel.NormalizeAngle(base.Rho[id] + d)
		if f := fit(p); f < *bestFit && valid(p) {
			*best, *bestFit = p, f
		}
	}
}

// scan2 jointly scans two sticks within ±span of their current values.
func scan2(best *stickmodel.Pose, bestFit *float64, fit func(stickmodel.Pose) float64,
	valid func(stickmodel.Pose) bool, a, b stickmodel.StickID, span, step float64) {

	base := *best
	for da := -span; da <= span; da += step {
		for db := -span; db <= span; db += step {
			if da == 0 && db == 0 {
				continue
			}
			p := base
			p.Rho[a] = stickmodel.NormalizeAngle(base.Rho[a] + da)
			p.Rho[b] = stickmodel.NormalizeAngle(base.Rho[b] + db)
			if f := fit(p); f < *bestFit && valid(p) {
				*best, *bestFit = p, f
			}
		}
	}
}
