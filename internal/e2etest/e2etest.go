// Package e2etest is the shared end-to-end identity harness: helpers that
// drive a server stack over HTTP exactly like a client would — multipart
// clip uploads, the async submit/poll lifecycle, the metrics document —
// so different subsystems (the remote dispatcher's fan-out, the journal's
// crash recovery) can assert the same property: the bytes coming back are
// identical to the reference path, whatever ran in between.
package e2etest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// Config is the shared analyzer configuration of the harness: a trimmed GA
// budget so full-pipeline runs take seconds, not minutes. Every node in a
// test fleet must use it so cache keys line up fleet-wide.
func Config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Pose.Population = 40
	cfg.Pose.Generations = 40
	cfg.Pose.Patience = 10
	cfg.Pose.RefineRounds = 1
	return cfg
}

// ClipUpload builds a multipart clip upload for the synthetic video:
// frames ordered by name plus the truth file with the manual first-frame
// pose. stages selects a pipeline prefix ("" = full pipeline);
// silhouettes adds the mask field to the response.
func ClipUpload(t *testing.T, v *synth.Video, stages string, silhouettes bool) (*bytes.Buffer, string) {
	t.Helper()
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for k, f := range v.Frames {
		fw, err := mw.CreateFormFile("frames", clipio.FrameName(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, f); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("truth", "truth.txt")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(fw, "0 %.2f %.2f", manual.X, manual.Y)
	for l := 0; l < 8; l++ {
		fmt.Fprintf(fw, " %.2f", manual.Rho[l])
	}
	fmt.Fprintln(fw)
	fields := [][2]string{}
	if stages != "" {
		fields = append(fields, [2]string{"stages", stages})
	}
	if silhouettes {
		fields = append(fields, [2]string{"silhouettes", "1"})
	}
	for _, field := range fields {
		if err := mw.WriteField(field[0], field[1]); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return &body, mw.FormDataContentType()
}

// SubmitDoc is the submit acknowledgement of POST /v1/jobs.
type SubmitDoc struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	ResultURL string `json:"result_url"`
}

// Submit posts the clip to base's async route and returns the raw reply.
// A 200 (cache-answered) reply carries the result in Raw and no ID.
func Submit(t *testing.T, base string, v *synth.Video, stages string, silhouettes bool) (doc SubmitDoc, raw []byte, code int) {
	t.Helper()
	body, ctype := ClipUpload(t, v, stages, silhouettes)
	resp, err := http.Post(base+"/v1/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("malformed submit document: %s", raw)
		}
	}
	return doc, raw, resp.StatusCode
}

// PollResult polls a result URL until 200, returning the response bytes.
func PollResult(t *testing.T, base, resultURL string, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + resultURL)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return raw
		case http.StatusAccepted:
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("result status %d: %s", resp.StatusCode, raw)
		}
	}
	t.Fatalf("job at %s never finished", resultURL)
	return nil
}

// SubmitAndFetch submits the canonical segmentation-only upload (fast: no
// GA) and polls it to the final result bytes. A 200 on submit
// (cache-answered) returns immediately.
func SubmitAndFetch(t *testing.T, base string, v *synth.Video) []byte {
	t.Helper()
	doc, raw, code := Submit(t, base, v, "segmentation", true)
	if code == http.StatusOK {
		return raw
	}
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	return PollResult(t, base, doc.ResultURL, 30*time.Second)
}

// StripVolatile removes the timing fields from a JSON response document so
// two runs of the same clip can be byte-compared. Everything the pipeline
// computes is deterministic; stage_ms is wall-clock and differs run to run.
// The re-marshalling matches the server's writeJSON (two-space indent), so
// two stripped documents from identical analyses are byte-identical.
func StripVolatile(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("strip volatile: malformed document: %v\n%s", err, raw)
	}
	delete(doc, "stage_ms")
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// MetricsOf fetches a server's /v1/metrics document.
func MetricsOf(t *testing.T, base string) (clips int, jm jobs.Metrics, cm cache.Metrics) {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		ClipsAnalyzed int           `json:"clips_analyzed"`
		Jobs          jobs.Metrics  `json:"jobs"`
		Cache         cache.Metrics `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.ClipsAnalyzed, doc.Jobs, doc.Cache
}
