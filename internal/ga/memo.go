package ga

import "math"

// memoTable is an open-addressing hash table from genome to fitness, the
// cross-generation memoization store behind Config.MemoizeFitness. Elites
// are cloned verbatim between generations and roughly a third of offspring
// undergo neither crossover nor mutation (0.8^5 with the paper's five gene
// groups), so identical chromosomes recur constantly; caching their scores
// removes whole cohort fractions from the Eq. (3) hot path without changing
// any result — the fitness function is pure, so a cached value is
// indistinguishable from a recomputation.
//
// The table is specialised for fixed-length float64 genomes: keys live in
// one flat array (no per-entry allocation), hashing goes over the raw
// IEEE-754 bits, and lookups are allocation-free. It is confined to the
// single evolution goroutine; evaluateAll consults it serially before
// fanning out the misses.
type memoTable struct {
	n    int       // genome length, fixed at first insert
	keys []float64 // cap * n gene values
	fits []float64 // cap fitness values
	used []bool    // cap occupancy flags
	mask uint64    // cap - 1 (cap is a power of two)
	size int
}

const memoInitialCap = 256

func newMemoTable() *memoTable { return &memoTable{} }

// genomeHash mixes the IEEE-754 bit patterns of the genes (FNV-1a over
// 64-bit words, finished with a murmur-style avalanche). Bit-pattern
// hashing means two genomes are "equal" only when every gene is
// bit-identical — exactly the condition under which the cached fitness is
// the value the fitness function would return.
func genomeHash(g Genome) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range g {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (m *memoTable) equalAt(slot int, g Genome) bool {
	base := slot * m.n
	for i, v := range g {
		if math.Float64bits(m.keys[base+i]) != math.Float64bits(v) {
			return false
		}
	}
	return true
}

// lookup returns the cached fitness for a bit-identical genome.
func (m *memoTable) lookup(g Genome) (float64, bool) {
	if m.size == 0 || len(g) != m.n {
		return 0, false
	}
	i := genomeHash(g) & m.mask
	for m.used[i] {
		if m.equalAt(int(i), g) {
			return m.fits[i], true
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// insert stores (or refreshes) the fitness of a genome.
func (m *memoTable) insert(g Genome, fitness float64) {
	if len(g) == 0 {
		return
	}
	if m.used == nil {
		m.n = len(g)
		m.grow(memoInitialCap)
	}
	if len(g) != m.n {
		return
	}
	if 4*(m.size+1) > 3*len(m.used) {
		m.grow(2 * len(m.used))
	}
	i := genomeHash(g) & m.mask
	for m.used[i] {
		if m.equalAt(int(i), g) {
			m.fits[i] = fitness
			return
		}
		i = (i + 1) & m.mask
	}
	m.used[i] = true
	m.fits[i] = fitness
	copy(m.keys[int(i)*m.n:], g)
	m.size++
}

func (m *memoTable) grow(capacity int) {
	oldKeys, oldFits, oldUsed := m.keys, m.fits, m.used
	m.keys = make([]float64, capacity*m.n)
	m.fits = make([]float64, capacity)
	m.used = make([]bool, capacity)
	m.mask = uint64(capacity - 1)
	m.size = 0
	for slot, occupied := range oldUsed {
		if occupied {
			m.insert(oldKeys[slot*m.n:(slot+1)*m.n], oldFits[slot])
		}
	}
}
