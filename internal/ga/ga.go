// Package ga implements the genetic algorithm of Section 3: real-valued
// chromosomes, an elitist evolution strategy in which "only the fittest
// chromosomes can be left and they have a higher probability to be picked",
// multiple crossover over gene groups (rate 0.2), per-group mutation
// (rate 0.01), and rejection of invalid chromosomes.
//
// The engine is problem-agnostic: pose estimation supplies the fitness,
// seeding and validity functions. Lower fitness is better throughout,
// matching Eq. (3) ("the smaller the FS is, the better the stick model fits
// the silhouette").
package ga

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sljmotion/sljmotion/internal/obs"
)

// fitnessEvalSeconds is the cohort fitness-evaluation latency histogram:
// one observation per GA generation (a cohort of Population fitness
// calls), the hot-path quantity behind the ROADMAP's "10× GA" item.
// Registered once so the per-generation cost is a few atomic adds.
var fitnessEvalSeconds = obs.Default.Histogram("slj_ga_fitness_eval_seconds",
	"Wall-clock time to fitness-score one GA cohort (one generation), in seconds.",
	obs.IOBuckets)

// Genome is a real-valued chromosome.
type Genome []float64

// Clone returns a deep copy of the genome.
func (g Genome) Clone() Genome {
	out := make(Genome, len(g))
	copy(out, g)
	return out
}

// Spec defines the optimisation problem.
type Spec struct {
	// Fitness scores a genome; lower is better. Required.
	Fitness func(Genome) float64
	// Seed produces one random initial genome. Required.
	Seed func(rng *rand.Rand) Genome
	// Valid reports whether a genome is admissible. Invalid genomes are
	// "removed from the population" per the paper. Nil means all valid.
	Valid func(Genome) bool
	// Groups partitions gene indices for multiple crossover and grouped
	// mutation, e.g. the paper's (x0,y0)(ρ0)(ρ1,ρ4)(ρ2,ρ5)(ρ3,ρ6,ρ7).
	// Nil means one group per gene.
	Groups [][]int
	// Mutate perturbs the genes of one group in place. Nil selects a
	// default Gaussian perturbation with per-gene sigma 1.
	Mutate func(rng *rand.Rand, g Genome, group []int)
	// InitialPopulation optionally injects genomes into the initial
	// population (the coarse-to-fine hand-off: a finished coarse run seeds
	// the full-resolution run with its final population). Genomes failing
	// Valid are skipped; remaining slots are rejection-sampled from Seed as
	// usual. Injected genomes are cloned, and their fitness is evaluated
	// fresh — the fitness function may differ from the run that produced
	// them. Nil leaves seeding unchanged.
	InitialPopulation []Genome
}

func (s *Spec) validate() error {
	if s.Fitness == nil {
		return errors.New("ga: Spec.Fitness is required")
	}
	if s.Seed == nil {
		return errors.New("ga: Spec.Seed is required")
	}
	return nil
}

// Config holds evolution hyper-parameters. Construct with DefaultConfig and
// adjust via Options.
type Config struct {
	PopulationSize int
	Generations    int
	// EliteFraction of the population survives unchanged each generation.
	EliteFraction float64
	// CrossoverRate is the per-group swap probability (paper: 0.2).
	CrossoverRate float64
	// MutationRate is the per-group mutation probability (paper: 0.01).
	MutationRate float64
	// MaxSeedTries bounds rejection sampling for initial population and
	// offspring; exceeding it falls back to cloning a surviving parent.
	MaxSeedTries int
	// ImmigrantRate is the probability that an offspring slot is filled by
	// a fresh Seed() draw instead of crossover ("random immigrants").
	// Immigrants keep alternative hypotheses in the population so grouped
	// crossover can combine them with polished genomes. 0 disables.
	ImmigrantRate float64
	// TargetFitness stops evolution early once the best fitness is at or
	// below this value. NaN-free sentinel: <0 disables (fitness in this
	// system is non-negative).
	TargetFitness float64
	// Patience stops evolution after this many consecutive generations
	// without improvement of the best fitness. 0 disables.
	Patience int
	// RandSeed seeds the internal PRNG for reproducible runs.
	RandSeed int64
	// Parallelism is the number of goroutines used to evaluate fitness.
	// Genome construction (seeding, crossover, mutation, validity) stays on
	// the single RNG-driven thread, so the evolution — population contents,
	// history, best genome, evaluation count — is identical at any
	// parallelism; only fitness calls fan out. Spec.Fitness must be safe for
	// concurrent use when Parallelism > 1. <= 1 evaluates sequentially.
	Parallelism int
	// MemoizeFitness caches fitness by bit-identical genome across
	// generations. Elites and unmodified clones recur verbatim, so a large
	// cohort fraction is answered from the table instead of re-evaluated.
	// Spec.Fitness must be pure (it is for Eq. 3); then memoization cannot
	// change any result — Result.Evaluations still counts requested scores,
	// with MemoHits/MemoMisses breaking out how many hit the table.
	MemoizeFitness bool
	// ConvergeSpread stops evolution once the population has collapsed:
	// when the fitness spread between the best individual and the 75th
	// percentile drops to this value or below, further generations only
	// shuffle near-identical genomes. The percentile (not the worst slot)
	// keeps random immigrants — deliberately unfit diversity — from
	// masking convergence. 0 disables (default). This early stop changes
	// results, so callers needing reference-identical output must leave it
	// off.
	ConvergeSpread float64
}

// DefaultConfig returns the paper-calibrated hyper-parameters.
func DefaultConfig() Config {
	return Config{
		PopulationSize: 60,
		Generations:    200,
		EliteFraction:  0.15,
		CrossoverRate:  0.2,
		MutationRate:   0.01,
		MaxSeedTries:   200,
		TargetFitness:  -1,
		RandSeed:       1,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.PopulationSize < 2 {
		return fmt.Errorf("ga: population must be >= 2, got %d", c.PopulationSize)
	}
	if c.Generations < 1 {
		return fmt.Errorf("ga: generations must be >= 1, got %d", c.Generations)
	}
	if c.EliteFraction < 0 || c.EliteFraction > 1 {
		return fmt.Errorf("ga: elite fraction must be in [0,1], got %v", c.EliteFraction)
	}
	if c.CrossoverRate < 0 || c.CrossoverRate > 1 {
		return fmt.Errorf("ga: crossover rate must be in [0,1], got %v", c.CrossoverRate)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("ga: mutation rate must be in [0,1], got %v", c.MutationRate)
	}
	if c.MaxSeedTries < 1 {
		return fmt.Errorf("ga: max seed tries must be >= 1, got %d", c.MaxSeedTries)
	}
	if c.ImmigrantRate < 0 || c.ImmigrantRate > 1 {
		return fmt.Errorf("ga: immigrant rate must be in [0,1], got %v", c.ImmigrantRate)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("ga: parallelism must be >= 0, got %d", c.Parallelism)
	}
	if c.ConvergeSpread < 0 {
		return fmt.Errorf("ga: converge spread must be >= 0, got %v", c.ConvergeSpread)
	}
	return nil
}

// Option mutates a Config.
type Option func(*Config)

// WithPopulationSize sets the population size.
func WithPopulationSize(n int) Option { return func(c *Config) { c.PopulationSize = n } }

// WithGenerations sets the generation budget.
func WithGenerations(n int) Option { return func(c *Config) { c.Generations = n } }

// WithEliteFraction sets the surviving elite fraction.
func WithEliteFraction(f float64) Option { return func(c *Config) { c.EliteFraction = f } }

// WithCrossoverRate sets the per-group crossover probability.
func WithCrossoverRate(r float64) Option { return func(c *Config) { c.CrossoverRate = r } }

// WithMutationRate sets the per-group mutation probability.
func WithMutationRate(r float64) Option { return func(c *Config) { c.MutationRate = r } }

// WithTargetFitness enables early stop at the given fitness.
func WithTargetFitness(f float64) Option { return func(c *Config) { c.TargetFitness = f } }

// WithPatience stops after n generations without improvement.
func WithPatience(n int) Option { return func(c *Config) { c.Patience = n } }

// WithRandSeed seeds the PRNG.
func WithRandSeed(s int64) Option { return func(c *Config) { c.RandSeed = s } }

// WithMaxSeedTries bounds rejection sampling per individual.
func WithMaxSeedTries(n int) Option { return func(c *Config) { c.MaxSeedTries = n } }

// WithImmigrantRate sets the per-slot probability of a fresh random seed in
// each generation.
func WithImmigrantRate(r float64) Option { return func(c *Config) { c.ImmigrantRate = r } }

// WithParallelism sets the fitness-evaluation worker count (the evolution
// itself stays deterministic; see Config.Parallelism).
func WithParallelism(n int) Option { return func(c *Config) { c.Parallelism = n } }

// WithMemoization enables cross-generation fitness caching (see
// Config.MemoizeFitness).
func WithMemoization(on bool) Option { return func(c *Config) { c.MemoizeFitness = on } }

// WithConvergeSpread enables converged-population early termination (see
// Config.ConvergeSpread).
func WithConvergeSpread(s float64) Option { return func(c *Config) { c.ConvergeSpread = s } }

// Individual pairs a genome with its fitness.
type Individual struct {
	Genome  Genome
	Fitness float64
}

// Result reports the outcome of one evolution run.
type Result struct {
	Best        Genome
	BestFitness float64
	// Generations is the number of generations actually evolved (may be
	// fewer than configured when early stop triggers).
	Generations int
	// BestFoundAt is the generation index (0 = initial population) at which
	// the final best fitness was first reached.
	BestFoundAt int
	// NearBestFoundAt is the first generation whose best fitness is within
	// 2% of the final best — the quantity behind the paper's "the shown
	// best estimated model was generated at the second generation": a
	// visually indistinguishable model appears this early even though tiny
	// numeric improvements continue afterwards.
	NearBestFoundAt int
	// History records the best fitness after every generation, starting
	// with the initial population.
	History []float64
	// Evaluations counts requested fitness scores (memoization answers
	// MemoHits of them from the table without calling Spec.Fitness).
	Evaluations int
	// MemoHits and MemoMisses break down Evaluations when
	// Config.MemoizeFitness is on; both stay 0 otherwise.
	MemoHits   int
	MemoMisses int
	// ConvergedEarly reports that the run stopped on Config.ConvergeSpread.
	ConvergedEarly bool
	// FinalPopulation is the last generation's genomes, fittest first —
	// the hand-off a coarse run passes to Spec.InitialPopulation of the
	// full-resolution run.
	FinalPopulation []Genome
}

// Engine runs the evolution strategy.
type Engine struct {
	spec Spec
	cfg  Config
}

// New constructs an Engine, validating spec and options.
func New(spec Spec, opts ...Option) (*Engine, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{spec: spec, cfg: cfg}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Run evolves a population and returns the best individual found. The run
// is deterministic for a fixed Config.RandSeed.
func (e *Engine) Run() (*Result, error) {
	rng := rand.New(rand.NewSource(e.cfg.RandSeed))
	res := &Result{}
	var memo *memoTable
	if e.cfg.MemoizeFitness {
		memo = newMemoTable()
	}

	genomes, err := e.initialGenomes(rng)
	if err != nil {
		return nil, err
	}
	pop := e.evaluateAll(genomes, res, memo)
	sortByFitness(pop)
	best := Individual{Genome: pop[0].Genome.Clone(), Fitness: pop[0].Fitness}
	res.History = append(res.History, best.Fitness)
	res.BestFoundAt = 0

	elite := int(e.cfg.EliteFraction * float64(e.cfg.PopulationSize))
	if elite < 1 {
		elite = 1
	}
	if elite > e.cfg.PopulationSize {
		elite = e.cfg.PopulationSize
	}

	sinceImproved := 0
	gen := 0
	for gen = 1; gen <= e.cfg.Generations; gen++ {
		if e.cfg.TargetFitness >= 0 && best.Fitness <= e.cfg.TargetFitness {
			gen--
			break
		}
		if e.cfg.Patience > 0 && sinceImproved >= e.cfg.Patience {
			gen--
			break
		}
		if e.cfg.ConvergeSpread > 0 {
			qi := (len(pop) * 3) / 4
			if qi >= len(pop) {
				qi = len(pop) - 1
			}
			if pop[qi].Fitness-pop[0].Fitness <= e.cfg.ConvergeSpread {
				res.ConvergedEarly = true
				gen--
				break
			}
		}
		next := make([]Individual, 0, e.cfg.PopulationSize)
		for i := 0; i < elite; i++ {
			next = append(next, Individual{Genome: pop[i].Genome.Clone(), Fitness: pop[i].Fitness})
		}
		// Build the whole offspring cohort first (serial: every RNG draw and
		// validity rejection happens in submission order), then score it in
		// one deferred batch so fitness calls can fan out across workers.
		pending := make([]Genome, 0, e.cfg.PopulationSize-len(next))
		for len(next)+len(pending) < e.cfg.PopulationSize {
			if e.cfg.ImmigrantRate > 0 && rng.Float64() < e.cfg.ImmigrantRate {
				if g, ok := e.tryImmigrantGenome(rng); ok {
					pending = append(pending, g)
					continue
				}
			}
			a := e.selectParent(rng, pop)
			b := e.selectParent(rng, pop)
			pending = append(pending, e.makeOffspringGenome(rng, a, b))
		}
		next = append(next, e.evaluateAll(pending, res, memo)...)
		pop = next
		sortByFitness(pop)
		if pop[0].Fitness < best.Fitness {
			best = Individual{Genome: pop[0].Genome.Clone(), Fitness: pop[0].Fitness}
			res.BestFoundAt = gen
			sinceImproved = 0
		} else {
			sinceImproved++
		}
		res.History = append(res.History, best.Fitness)
	}
	if gen > e.cfg.Generations {
		gen = e.cfg.Generations
	}

	res.Best = best.Genome
	res.BestFitness = best.Fitness
	res.Generations = gen
	res.FinalPopulation = make([]Genome, len(pop))
	for i, ind := range pop {
		res.FinalPopulation[i] = ind.Genome.Clone()
	}
	res.NearBestFoundAt = res.BestFoundAt
	// Fitness is non-negative in this system; guard the tolerance anyway.
	if tol := math.Abs(best.Fitness) * 0.02; tol > 0 {
		for i, f := range res.History {
			if f <= best.Fitness+tol {
				res.NearBestFoundAt = i
				break
			}
		}
	}
	return res, nil
}

// initialGenomes rejection-samples valid genomes: "any randomly-generated
// chromosome not in the boundary of the silhouette should be removed from
// the initial population". Fitness is deferred to evaluateAll.
func (e *Engine) initialGenomes(rng *rand.Rand) ([]Genome, error) {
	genomes := make([]Genome, 0, e.cfg.PopulationSize)
	var lastValid Genome
	for _, g := range e.spec.InitialPopulation {
		if len(genomes) == e.cfg.PopulationSize {
			break
		}
		if e.isValid(g) {
			lastValid = g.Clone()
			genomes = append(genomes, lastValid)
		}
	}
	for len(genomes) < e.cfg.PopulationSize {
		var g Genome
		ok := false
		for try := 0; try < e.cfg.MaxSeedTries; try++ {
			g = e.spec.Seed(rng)
			if e.isValid(g) {
				ok = true
				break
			}
		}
		if !ok {
			if lastValid == nil {
				return nil, fmt.Errorf("ga: could not seed a valid genome in %d tries", e.cfg.MaxSeedTries)
			}
			g = lastValid.Clone()
		} else {
			lastValid = g
		}
		genomes = append(genomes, g)
	}
	return genomes, nil
}

// evaluateAll scores a cohort, fanning the (pure) fitness calls over up to
// Config.Parallelism goroutines. Results are written by index, so the
// returned order — and therefore the evolution — matches the sequential
// path exactly. When memoization is on, a serial pre-pass answers repeated
// genomes from the table and only the misses are evaluated (and inserted,
// again serially, afterwards) — the table never crosses a goroutine.
func (e *Engine) evaluateAll(genomes []Genome, res *Result, memo *memoTable) []Individual {
	defer func(start time.Time) {
		fitnessEvalSeconds.Observe(time.Since(start).Seconds())
	}(time.Now())
	out := make([]Individual, len(genomes))
	res.Evaluations += len(genomes)
	toEval := make([]int, 0, len(genomes))
	if memo != nil {
		for i, g := range genomes {
			if f, ok := memo.lookup(g); ok {
				out[i] = Individual{Genome: g, Fitness: f}
				res.MemoHits++
				continue
			}
			toEval = append(toEval, i)
		}
		res.MemoMisses += len(toEval)
	} else {
		for i := range genomes {
			toEval = append(toEval, i)
		}
	}
	workers := e.cfg.Parallelism
	if workers > len(toEval) {
		workers = len(toEval)
	}
	if workers <= 1 {
		for _, i := range toEval {
			out[i] = Individual{Genome: genomes[i], Fitness: e.spec.Fitness(genomes[i])}
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(toEval) {
						return
					}
					i := toEval[k]
					out[i] = Individual{Genome: genomes[i], Fitness: e.spec.Fitness(genomes[i])}
				}
			}()
		}
		wg.Wait()
	}
	if memo != nil {
		for _, i := range toEval {
			memo.insert(genomes[i], out[i].Fitness)
		}
	}
	return out
}

// selectParent implements rank-biased selection over the sorted population:
// fitter individuals "have a higher probability to be picked". Squaring a
// uniform variate skews the index toward rank 0.
func (e *Engine) selectParent(rng *rand.Rand, pop []Individual) Genome {
	u := rng.Float64()
	idx := int(u * u * float64(len(pop)))
	if idx >= len(pop) {
		idx = len(pop) - 1
	}
	return pop[idx].Genome
}

// tryImmigrantGenome rejection-samples one fresh seed with a small try
// budget; failure falls back to normal reproduction.
func (e *Engine) tryImmigrantGenome(rng *rand.Rand) (Genome, bool) {
	const tries = 20
	for t := 0; t < tries; t++ {
		g := e.spec.Seed(rng)
		if e.isValid(g) {
			return g, true
		}
	}
	return nil, false
}

// makeOffspringGenome applies grouped crossover then grouped mutation,
// retrying until the child is valid; after MaxSeedTries it falls back to
// cloning the first parent (which is valid by construction).
func (e *Engine) makeOffspringGenome(rng *rand.Rand, a, b Genome) Genome {
	for try := 0; try < e.cfg.MaxSeedTries; try++ {
		child := a.Clone()
		for _, group := range e.groups(len(child)) {
			if rng.Float64() < e.cfg.CrossoverRate {
				for _, gi := range group {
					child[gi] = b[gi]
				}
			}
			if rng.Float64() < e.cfg.MutationRate {
				e.mutate(rng, child, group)
			}
		}
		if e.isValid(child) {
			return child
		}
	}
	return a.Clone()
}

func (e *Engine) groups(n int) [][]int {
	if e.spec.Groups != nil {
		return e.spec.Groups
	}
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	return groups
}

func (e *Engine) mutate(rng *rand.Rand, g Genome, group []int) {
	if e.spec.Mutate != nil {
		e.spec.Mutate(rng, g, group)
		return
	}
	for _, gi := range group {
		g[gi] += rng.NormFloat64()
	}
}

func (e *Engine) isValid(g Genome) bool {
	return e.spec.Valid == nil || e.spec.Valid(g)
}

func sortByFitness(pop []Individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].Fitness < pop[j].Fitness })
}
