package ga

import (
	"math"
	"math/rand"
	"testing"
)

// sphereSpec is a smooth convex test problem: minimise Σ (g_i - target_i)².
func sphereSpec(target []float64) Spec {
	return Spec{
		Fitness: func(g Genome) float64 {
			var s float64
			for i := range g {
				d := g[i] - target[i]
				s += d * d
			}
			return s
		},
		Seed: func(rng *rand.Rand) Genome {
			g := make(Genome, len(target))
			for i := range g {
				g[i] = rng.Float64()*20 - 10
			}
			return g
		},
		Mutate: func(rng *rand.Rand, g Genome, group []int) {
			for _, i := range group {
				g[i] += rng.NormFloat64()
			}
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.PopulationSize = 1 },
		func(c *Config) { c.Generations = 0 },
		func(c *Config) { c.EliteFraction = 1.5 },
		func(c *Config) { c.CrossoverRate = -0.1 },
		func(c *Config) { c.MutationRate = 2 },
		func(c *Config) { c.MaxSeedTries = 0 },
		func(c *Config) { c.ImmigrantRate = -1 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestNewRequiresFitnessAndSeed(t *testing.T) {
	if _, err := New(Spec{Seed: func(*rand.Rand) Genome { return Genome{0} }}); err == nil {
		t.Error("missing Fitness must error")
	}
	if _, err := New(Spec{Fitness: func(Genome) float64 { return 0 }}); err == nil {
		t.Error("missing Seed must error")
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	spec := sphereSpec([]float64{0})
	if _, err := New(spec, WithPopulationSize(1)); err == nil {
		t.Error("bad option must error")
	}
}

func TestRunConvergesOnSphere(t *testing.T) {
	target := []float64{3, -2, 7, 0.5}
	eng, err := New(sphereSpec(target),
		WithPopulationSize(50),
		WithGenerations(150),
		WithMutationRate(0.3), // generous mutation for a smooth problem
		WithRandSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 1.0 {
		t.Errorf("did not converge: best fitness %v", res.BestFitness)
	}
	for i := range target {
		if math.Abs(res.Best[i]-target[i]) > 1.5 {
			t.Errorf("gene %d = %v, want ~%v", i, res.Best[i], target[i])
		}
	}
}

// Property: the recorded history of best fitness is non-increasing — the
// elitist strategy can never lose the best individual.
func TestElitismMonotoneHistory(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		eng, err := New(sphereSpec([]float64{1, 2}),
			WithPopulationSize(20), WithGenerations(60), WithRandSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.History); i++ {
			if res.History[i] > res.History[i-1]+1e-12 {
				t.Fatalf("seed %d: history increased at %d: %v -> %v",
					seed, i, res.History[i-1], res.History[i])
			}
		}
		if res.BestFitness != res.History[len(res.History)-1] {
			t.Error("final history entry must equal best fitness")
		}
	}
}

func TestDeterminismWithSameSeed(t *testing.T) {
	run := func() *Result {
		eng, err := New(sphereSpec([]float64{5}),
			WithPopulationSize(30), WithGenerations(40), WithRandSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestFitness != b.BestFitness || a.Best[0] != b.Best[0] || a.Evaluations != b.Evaluations {
		t.Error("same seed must reproduce the identical run")
	}
}

func TestTargetFitnessEarlyStop(t *testing.T) {
	eng, err := New(sphereSpec([]float64{0, 0}),
		WithPopulationSize(40), WithGenerations(500),
		WithMutationRate(0.3), WithTargetFitness(0.5), WithRandSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 0.5 && res.Generations == 500 {
		t.Error("early stop did not trigger")
	}
	if res.Generations >= 500 {
		t.Errorf("ran %d generations, expected early stop", res.Generations)
	}
}

func TestPatienceEarlyStop(t *testing.T) {
	// A constant fitness function can never improve: patience must stop
	// the run almost immediately.
	spec := Spec{
		Fitness: func(Genome) float64 { return 1 },
		Seed:    func(rng *rand.Rand) Genome { return Genome{rng.Float64()} },
	}
	eng, err := New(spec, WithPopulationSize(10), WithGenerations(1000),
		WithPatience(5), WithRandSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations > 10 {
		t.Errorf("patience ignored: ran %d generations", res.Generations)
	}
}

func TestValidityConstraintRespected(t *testing.T) {
	// Genomes must stay in [0, 10]; the optimum of the unconstrained
	// problem (-5) lies outside.
	spec := Spec{
		Fitness: func(g Genome) float64 { return (g[0] + 5) * (g[0] + 5) },
		Seed: func(rng *rand.Rand) Genome {
			return Genome{rng.Float64() * 10}
		},
		Valid: func(g Genome) bool { return g[0] >= 0 && g[0] <= 10 },
		Mutate: func(rng *rand.Rand, g Genome, group []int) {
			for _, i := range group {
				g[i] += rng.NormFloat64() * 2
			}
		},
	}
	eng, err := New(spec, WithPopulationSize(30), WithGenerations(60),
		WithMutationRate(0.5), WithRandSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] < 0 || res.Best[0] > 10 {
		t.Fatalf("best genome %v violates constraint", res.Best[0])
	}
	// The constrained optimum is at the boundary 0.
	if res.Best[0] > 1 {
		t.Errorf("best %v, want near 0", res.Best[0])
	}
}

func TestImpossibleSeedingFails(t *testing.T) {
	spec := Spec{
		Fitness: func(Genome) float64 { return 0 },
		Seed:    func(rng *rand.Rand) Genome { return Genome{1} },
		Valid:   func(Genome) bool { return false },
	}
	eng, err := New(spec, WithPopulationSize(5), WithGenerations(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("unseedable problem must return an error")
	}
}

func TestGroupedCrossoverUsesGroups(t *testing.T) {
	// With crossover rate 1 and two parents from disjoint constant
	// populations, every child gene group must come wholly from one parent.
	spec := sphereSpec([]float64{0, 0, 0, 0})
	spec.Groups = [][]int{{0, 1}, {2, 3}}
	eng, err := New(spec, WithPopulationSize(10), WithGenerations(3),
		WithCrossoverRate(1), WithMutationRate(0), WithRandSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Behavioural check only: the engine must accept custom groups and run.
}

func TestBestFoundAtTracksImprovement(t *testing.T) {
	eng, err := New(sphereSpec([]float64{2}),
		WithPopulationSize(30), WithGenerations(50),
		WithMutationRate(0.4), WithRandSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFoundAt < 0 || res.BestFoundAt > res.Generations {
		t.Errorf("BestFoundAt = %d outside [0,%d]", res.BestFoundAt, res.Generations)
	}
	// The fitness at BestFoundAt must equal the final best.
	if res.History[res.BestFoundAt] != res.BestFitness {
		t.Errorf("history[%d] = %v, best = %v", res.BestFoundAt,
			res.History[res.BestFoundAt], res.BestFitness)
	}
	if res.BestFoundAt > 0 && res.History[res.BestFoundAt-1] <= res.BestFitness {
		t.Error("BestFoundAt is not the first generation reaching the best")
	}
}

func TestImmigrantsKeepDiversity(t *testing.T) {
	// With immigrants enabled the run must still converge and count their
	// evaluations.
	eng, err := New(sphereSpec([]float64{1, 1}),
		WithPopulationSize(20), WithGenerations(40),
		WithImmigrantRate(0.3), WithMutationRate(0.3), WithRandSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 2 {
		t.Errorf("immigrant run failed to converge: %v", res.BestFitness)
	}
}

func TestGenomeClone(t *testing.T) {
	g := Genome{1, 2, 3}
	c := g.Clone()
	c[0] = 99
	if g[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestParallelismIsDeterministic(t *testing.T) {
	// The parallel fitness path must reproduce the sequential evolution
	// exactly: same best genome, same history, same evaluation count.
	run := func(par int) *Result {
		eng, err := New(sphereSpec([]float64{3, -2, 7}),
			WithPopulationSize(30), WithGenerations(60),
			WithImmigrantRate(0.1), WithMutationRate(0.2),
			WithRandSeed(42), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, par := range []int{2, 4, 8} {
		got := run(par)
		if got.BestFitness != seq.BestFitness {
			t.Errorf("parallelism %d: best fitness %v != %v", par, got.BestFitness, seq.BestFitness)
		}
		for i := range seq.Best {
			if got.Best[i] != seq.Best[i] {
				t.Errorf("parallelism %d: best genome differs at %d", par, i)
			}
		}
		if got.Evaluations != seq.Evaluations {
			t.Errorf("parallelism %d: evaluations %d != %d", par, got.Evaluations, seq.Evaluations)
		}
		if len(got.History) != len(seq.History) {
			t.Fatalf("parallelism %d: history length %d != %d", par, len(got.History), len(seq.History))
		}
		for i := range seq.History {
			if got.History[i] != seq.History[i] {
				t.Errorf("parallelism %d: history differs at generation %d", par, i)
			}
		}
	}
}

func TestParallelismRejectsNegative(t *testing.T) {
	if _, err := New(sphereSpec([]float64{0}), WithParallelism(-1)); err == nil {
		t.Fatal("negative parallelism should be rejected")
	}
}
