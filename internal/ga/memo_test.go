package ga

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestMemoTableBasic(t *testing.T) {
	m := newMemoTable()
	if _, ok := m.lookup(Genome{1, 2}); ok {
		t.Fatal("empty table must miss")
	}
	m.insert(Genome{1, 2}, 0.5)
	if f, ok := m.lookup(Genome{1, 2}); !ok || f != 0.5 {
		t.Fatalf("lookup = %v,%v, want 0.5,true", f, ok)
	}
	if _, ok := m.lookup(Genome{1, 3}); ok {
		t.Fatal("different genome must miss")
	}
	// Refresh overwrites.
	m.insert(Genome{1, 2}, 0.25)
	if f, _ := m.lookup(Genome{1, 2}); f != 0.25 {
		t.Fatalf("refresh lost: %v", f)
	}
	if m.size != 1 {
		t.Fatalf("size = %d after refresh, want 1", m.size)
	}
}

func TestMemoTableBitExactKeys(t *testing.T) {
	m := newMemoTable()
	m.insert(Genome{0.0}, 1)
	// -0.0 has a different bit pattern than +0.0: must be a distinct key.
	if _, ok := m.lookup(Genome{math.Copysign(0, -1)}); ok {
		t.Error("-0.0 must not hit the +0.0 entry")
	}
	nan := math.NaN()
	m.insert(Genome{nan}, 7)
	if f, ok := m.lookup(Genome{nan}); !ok || f != 7 {
		t.Error("bit-identical NaN key must hit")
	}
}

func TestMemoTableGrowth(t *testing.T) {
	m := newMemoTable()
	const n = 4 * memoInitialCap
	for i := 0; i < n; i++ {
		m.insert(Genome{float64(i), float64(i) * 2}, float64(i))
	}
	if m.size != n {
		t.Fatalf("size = %d, want %d", m.size, n)
	}
	for i := 0; i < n; i++ {
		f, ok := m.lookup(Genome{float64(i), float64(i) * 2})
		if !ok || f != float64(i) {
			t.Fatalf("entry %d lost across growth: %v,%v", i, f, ok)
		}
	}
}

func TestMemoTableRejectsLengthMismatch(t *testing.T) {
	m := newMemoTable()
	m.insert(Genome{1, 2}, 3)
	m.insert(Genome{1, 2, 3}, 4) // silently ignored: wrong arity
	if _, ok := m.lookup(Genome{1, 2, 3}); ok {
		t.Error("mismatched genome length must never hit")
	}
	if m.size != 1 {
		t.Errorf("size = %d, want 1", m.size)
	}
}

func TestMemoLookupZeroAllocs(t *testing.T) {
	m := newMemoTable()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		m.insert(Genome{rng.Float64(), rng.Float64(), rng.Float64()}, rng.Float64())
	}
	g := Genome{0.5, 0.25, 0.125}
	m.insert(g, 9)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := m.lookup(g); !ok {
			t.Fatal("hit expected")
		}
	})
	if allocs != 0 {
		t.Errorf("memo lookup allocates %v/op, want 0", allocs)
	}
}

// TestMemoizationPreservesEvolution is the determinism contract of the memo
// layer: because fitness is pure, a memoized run must reproduce the
// non-memoized run exactly — same best genome, history and requested
// evaluation count — while actually computing fewer scores.
func TestMemoizationPreservesEvolution(t *testing.T) {
	run := func(memo bool) *Result {
		eng, err := New(sphereSpec([]float64{3, -2, 7}),
			WithPopulationSize(30), WithGenerations(60),
			WithImmigrantRate(0.1), WithMutationRate(0.2),
			WithRandSeed(42), WithMemoization(memo))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, memo := run(false), run(true)
	if plain.BestFitness != memo.BestFitness {
		t.Errorf("best fitness %v != %v", memo.BestFitness, plain.BestFitness)
	}
	for i := range plain.Best {
		if plain.Best[i] != memo.Best[i] {
			t.Fatalf("best genome differs at gene %d", i)
		}
	}
	if plain.Evaluations != memo.Evaluations {
		t.Errorf("requested evaluations %d != %d (memo must not change the count)",
			memo.Evaluations, plain.Evaluations)
	}
	if len(plain.History) != len(memo.History) {
		t.Fatalf("history length %d != %d", len(memo.History), len(plain.History))
	}
	for i := range plain.History {
		if plain.History[i] != memo.History[i] {
			t.Fatalf("history differs at generation %d", i)
		}
	}
	if plain.MemoHits != 0 || plain.MemoMisses != 0 {
		t.Error("non-memoized run must report zero memo traffic")
	}
	if memo.MemoHits == 0 {
		t.Error("memoized elitist run must hit (elites recur every generation)")
	}
	if memo.MemoHits+memo.MemoMisses != memo.Evaluations {
		t.Errorf("hits %d + misses %d != evaluations %d",
			memo.MemoHits, memo.MemoMisses, memo.Evaluations)
	}
}

func TestMemoizationDeterministicUnderParallelism(t *testing.T) {
	run := func(par int) *Result {
		eng, err := New(sphereSpec([]float64{1, 2, 3}),
			WithPopulationSize(24), WithGenerations(40),
			WithMutationRate(0.2), WithRandSeed(7),
			WithMemoization(true), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, par := range []int{2, 4} {
		got := run(par)
		if got.BestFitness != seq.BestFitness || got.MemoHits != seq.MemoHits {
			t.Errorf("parallelism %d: (best, hits) = (%v, %d), want (%v, %d)",
				par, got.BestFitness, got.MemoHits, seq.BestFitness, seq.MemoHits)
		}
	}
}

func TestInitialPopulationSeedsRun(t *testing.T) {
	target := []float64{3, -2}
	optimum := Genome{3, -2}
	eng, err := New(Spec{
		Fitness:           sphereSpec(target).Fitness,
		Seed:              sphereSpec(target).Seed,
		InitialPopulation: []Genome{optimum},
	}, WithPopulationSize(10), WithGenerations(1), WithMutationRate(0), WithRandSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The injected optimum must survive generation 0 via elitism.
	if res.BestFitness != 0 {
		t.Errorf("injected optimum lost: best fitness %v", res.BestFitness)
	}
	// The engine must have cloned the injected genome, not retained it.
	optimum[0] = 99
	if res.Best[0] != 3 {
		t.Error("InitialPopulation genome was retained, not cloned")
	}
}

func TestInitialPopulationFiltersInvalid(t *testing.T) {
	spec := sphereSpec([]float64{5})
	spec.Valid = func(g Genome) bool { return g[0] >= 0 }
	spec.InitialPopulation = []Genome{{-3}, {4}}
	eng, err := New(spec, WithPopulationSize(8), WithGenerations(2),
		WithMutationRate(0), WithRandSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] < 0 {
		t.Errorf("invalid injected genome survived: %v", res.Best[0])
	}
}

func TestFinalPopulationSortedAndCloned(t *testing.T) {
	eng, err := New(sphereSpec([]float64{1}),
		WithPopulationSize(12), WithGenerations(10), WithRandSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalPopulation) != 12 {
		t.Fatalf("final population size %d, want 12", len(res.FinalPopulation))
	}
	if res.FinalPopulation[0][0] != res.Best[0] {
		t.Error("final population must lead with the best genome")
	}
}

func TestConvergeSpreadStopsEarly(t *testing.T) {
	// A constant fitness converges instantly under any spread threshold.
	spec := Spec{
		Fitness: func(Genome) float64 { return 1 },
		Seed:    func(rng *rand.Rand) Genome { return Genome{rng.Float64()} },
	}
	eng, err := New(spec, WithPopulationSize(10), WithGenerations(500),
		WithConvergeSpread(1e-9), WithRandSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConvergedEarly {
		t.Error("ConvergedEarly not reported")
	}
	if res.Generations > 3 {
		t.Errorf("converged run lasted %d generations", res.Generations)
	}
	// Disabled (0) must not stop a constant run before its patience/budget.
	eng2, err := New(spec, WithPopulationSize(10), WithGenerations(20), WithRandSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.ConvergedEarly {
		t.Error("spread 0 must disable convergence termination")
	}
}

func TestConvergeSpreadRejectsNegative(t *testing.T) {
	if _, err := New(sphereSpec([]float64{0}), WithConvergeSpread(-1)); err == nil {
		t.Fatal("negative ConvergeSpread should be rejected")
	}
}

func BenchmarkMemoLookupHit(b *testing.B) {
	m := newMemoTable()
	rng := rand.New(rand.NewSource(1))
	genomes := make([]Genome, 512)
	for i := range genomes {
		g := Genome{rng.Float64(), rng.Float64(), rng.Float64(),
			rng.Float64(), rng.Float64(), rng.Float64(),
			rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		genomes[i] = g
		m.insert(g, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.lookup(genomes[i&511]); !ok {
			b.Fatal("hit expected")
		}
	}
}

func BenchmarkMemoInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	genomes := make([]Genome, 4096)
	for i := range genomes {
		genomes[i] = Genome{rng.Float64(), rng.Float64(), rng.Float64(),
			rng.Float64(), rng.Float64(), rng.Float64(),
			rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m *memoTable
	for i := 0; i < b.N; i++ {
		if i&4095 == 0 {
			m = newMemoTable()
		}
		m.insert(genomes[i&4095], float64(i))
	}
	_ = fmt.Sprint(m.size)
}
