package morphology

import (
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

func TestComponentsTwoBlobs(t *testing.T) {
	m := imaging.NewMask(20, 10)
	imaging.FillRectMask(m, imaging.Rect{X0: 1, Y0: 1, X1: 4, Y1: 4})   // 16 px
	imaging.FillRectMask(m, imaging.Rect{X0: 10, Y0: 2, X1: 17, Y1: 7}) // 48 px
	labels := Components(m, Conn8)
	if len(labels.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(labels.Regions))
	}
	// Sorted by descending area.
	if labels.Regions[0].Area != 48 || labels.Regions[1].Area != 16 {
		t.Errorf("areas = %d, %d", labels.Regions[0].Area, labels.Regions[1].Area)
	}
	big := labels.Regions[0]
	if big.BBox != (imaging.Rect{X0: 10, Y0: 2, X1: 17, Y1: 7}) {
		t.Errorf("bbox = %+v", big.BBox)
	}
	if big.Centroid.X != 13.5 || big.Centroid.Y != 4.5 {
		t.Errorf("centroid = %+v", big.Centroid)
	}
}

func TestComponentsConnectivity(t *testing.T) {
	// Two pixels touching only diagonally: one component under 8-conn,
	// two under 4-conn.
	m := imaging.NewMask(4, 4)
	m.Set(1, 1, true)
	m.Set(2, 2, true)
	if got := len(Components(m, Conn8).Regions); got != 1 {
		t.Errorf("8-conn regions = %d, want 1", got)
	}
	if got := len(Components(m, Conn4).Regions); got != 2 {
		t.Errorf("4-conn regions = %d, want 2", got)
	}
}

func TestComponentsEmptyMask(t *testing.T) {
	labels := Components(imaging.NewMask(5, 5), Conn8)
	if len(labels.Regions) != 0 {
		t.Errorf("empty mask produced %d regions", len(labels.Regions))
	}
}

func TestComponentsAreaSum(t *testing.T) {
	m := imaging.NewMask(15, 15)
	imaging.FillRectMask(m, imaging.Rect{X0: 0, Y0: 0, X1: 3, Y1: 3})
	imaging.FillRectMask(m, imaging.Rect{X0: 8, Y0: 8, X1: 14, Y1: 14})
	m.Set(6, 2, true)
	labels := Components(m, Conn8)
	total := 0
	for _, r := range labels.Regions {
		total += r.Area
	}
	if total != m.Count() {
		t.Errorf("region areas sum to %d, mask has %d", total, m.Count())
	}
}

func TestMaskOf(t *testing.T) {
	m := imaging.NewMask(10, 5)
	imaging.FillRectMask(m, imaging.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1})
	imaging.FillRectMask(m, imaging.Rect{X0: 6, Y0: 2, X1: 8, Y1: 4})
	labels := Components(m, Conn8)
	largest := labels.MaskOf(labels.Regions[0].Label)
	if largest.Count() != 9 {
		t.Errorf("largest mask count = %d, want 9", largest.Count())
	}
	if largest.At(0, 0) {
		t.Error("largest mask contains other region")
	}
}

func TestRemoveSmallSpots(t *testing.T) {
	m := imaging.NewMask(20, 20)
	imaging.FillRectMask(m, imaging.Rect{X0: 2, Y0: 2, X1: 9, Y1: 9})   // 64 px body
	m.Set(15, 15, true)                                                 // 1 px spot
	imaging.FillRectMask(m, imaging.Rect{X0: 15, Y0: 2, X1: 16, Y1: 3}) // 4 px spot
	out := RemoveSmallSpots(m, 10, Conn8)
	if out.At(15, 15) || out.At(15, 2) {
		t.Error("small spots survived")
	}
	if !out.At(5, 5) {
		t.Error("large component removed")
	}
}

func TestKeepLargest(t *testing.T) {
	m := imaging.NewMask(20, 20)
	imaging.FillRectMask(m, imaging.Rect{X0: 1, Y0: 1, X1: 6, Y1: 6})
	imaging.FillRectMask(m, imaging.Rect{X0: 10, Y0: 10, X1: 12, Y1: 12})
	out := KeepLargest(m, Conn8)
	if out.Count() != 36 {
		t.Errorf("kept %d pixels, want 36", out.Count())
	}
	if KeepLargest(imaging.NewMask(4, 4), Conn8).Count() != 0 {
		t.Error("empty mask should stay empty")
	}
}

func TestAdaptiveSpotThreshold(t *testing.T) {
	m := imaging.NewMask(30, 30)
	imaging.FillRectMask(m, imaging.Rect{X0: 0, Y0: 0, X1: 19, Y1: 19}) // 400 px
	if got := AdaptiveSpotThreshold(m, 0.2, 40, Conn8); got != 80 {
		t.Errorf("threshold = %d, want 80 (0.2×400)", got)
	}
	if got := AdaptiveSpotThreshold(m, 0.01, 40, Conn8); got != 40 {
		t.Errorf("threshold = %d, want floor 40", got)
	}
	if got := AdaptiveSpotThreshold(imaging.NewMask(5, 5), 0.2, 40, Conn8); got != 40 {
		t.Errorf("empty-mask threshold = %d, want floor", got)
	}
}
