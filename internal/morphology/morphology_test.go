package morphology

import (
	"math/rand"
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

func block(w, h int, r imaging.Rect) *imaging.Mask {
	m := imaging.NewMask(w, h)
	imaging.FillRectMask(m, r)
	return m
}

func TestRemoveNoiseKillsIsolatedPixels(t *testing.T) {
	m := block(12, 12, imaging.Rect{X0: 3, Y0: 3, X1: 8, Y1: 8})
	m.Set(0, 0, true)  // isolated corner speck
	m.Set(11, 5, true) // isolated edge speck
	out := RemoveNoise(m, 3)
	if out.At(0, 0) || out.At(11, 5) {
		t.Error("isolated pixels survived")
	}
	if !out.At(5, 5) {
		t.Error("interior pixel removed")
	}
}

func TestRemoveNoiseThresholdZeroKeepsAll(t *testing.T) {
	m := imaging.NewMask(5, 5)
	m.Set(2, 2, true)
	out := RemoveNoise(m, 0)
	if !out.At(2, 2) {
		t.Error("threshold 0 must keep everything")
	}
}

// Property: noise removal is anti-extensive (never adds pixels) and
// monotone in the threshold.
func TestRemoveNoiseProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		m := imaging.NewMask(16, 16)
		for i := range m.Bits {
			m.Bits[i] = rng.Float64() < 0.4
		}
		prevCount := m.Count()
		for thr := 0; thr <= 8; thr++ {
			out := RemoveNoise(m, thr)
			for i := range out.Bits {
				if out.Bits[i] && !m.Bits[i] {
					t.Fatal("noise removal added a pixel")
				}
			}
			c := out.Count()
			if c > prevCount {
				t.Fatalf("count increased from %d to %d at threshold %d", prevCount, c, thr)
			}
			prevCount = c
		}
	}
}

func TestFillHolesSinglePixelHole(t *testing.T) {
	m := block(10, 10, imaging.Rect{X0: 2, Y0: 2, X1: 7, Y1: 7})
	m.Set(4, 4, false)
	out := FillHoles(m)
	if !out.At(4, 4) {
		t.Error("single-pixel hole not filled")
	}
}

func TestFillHolesLeavesConcavitiesAlone(t *testing.T) {
	// A pixel with only three set 4-neighbours must stay clear.
	m := imaging.NewMask(5, 5)
	m.Set(2, 1, true)
	m.Set(1, 2, true)
	m.Set(3, 2, true)
	out := FillHoles(m)
	if out.At(2, 2) {
		t.Error("pixel with 3 set neighbours was filled")
	}
}

// Property: hole filling is extensive (never removes pixels).
func TestFillHolesExtensive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		m := imaging.NewMask(12, 12)
		for i := range m.Bits {
			m.Bits[i] = rng.Float64() < 0.6
		}
		out := FillHoles(m)
		for i := range m.Bits {
			if m.Bits[i] && !out.Bits[i] {
				t.Fatal("hole filling removed a pixel")
			}
		}
	}
}

func TestFillHolesCannotFillMultiPixelHoles(t *testing.T) {
	// The paper's strict all-4-neighbours rule only fills isolated
	// single-pixel holes: every pixel of a 4-connected hole component of
	// size ≥ 2 always has a clear neighbour, so the component never fills
	// no matter how many passes run. FillEnclosed is the stronger
	// alternative for such holes.
	m := block(12, 12, imaging.Rect{X0: 1, Y0: 1, X1: 10, Y1: 10})
	for _, p := range []imaging.Point{{X: 5, Y: 5}, {X: 6, Y: 5}, {X: 5, Y: 6}, {X: 6, Y: 6}} {
		m.Set(p.X, p.Y, false)
	}
	out := FillHolesN(m, 10)
	if out.At(5, 5) || out.At(6, 6) {
		t.Error("strict 4-neighbour rule must not fill a 2x2 hole")
	}
	enc := FillEnclosed(m)
	if !enc.At(5, 5) || !enc.At(6, 6) {
		t.Error("FillEnclosed must fill the 2x2 hole")
	}
	if FillHolesN(m, 0).Count() != m.Count() {
		t.Error("0 passes must be identity")
	}
}

// Property: diagonal hole pairs fill in one pass (each has all four
// 4-neighbours set), and one pass is idempotent on masks whose single-pixel
// holes are gone.
func TestFillHolesIdempotentAfterOnePass(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		m := imaging.NewMask(14, 14)
		for i := range m.Bits {
			m.Bits[i] = rng.Float64() < 0.7
		}
		once := FillHoles(m)
		twice := FillHoles(once)
		for i := range once.Bits {
			if once.Bits[i] != twice.Bits[i] {
				t.Fatal("FillHoles not idempotent after one pass")
			}
		}
	}
}

func TestFillEnclosed(t *testing.T) {
	// Ring with a big enclosed hole: single-pass FillHoles cannot fill it,
	// FillEnclosed must.
	m := block(16, 16, imaging.Rect{X0: 2, Y0: 2, X1: 13, Y1: 13})
	imaging.FillRectMask(m, imaging.Rect{X0: 5, Y0: 5, X1: 10, Y1: 10})
	for y := 5; y <= 10; y++ {
		for x := 5; x <= 10; x++ {
			m.Set(x, y, false)
		}
	}
	out := FillEnclosed(m)
	if !out.At(7, 7) {
		t.Error("enclosed hole not filled")
	}
	if out.At(0, 0) {
		t.Error("border background was filled")
	}
}

func TestFillEnclosedOpenRegionUntouched(t *testing.T) {
	// A C-shape: the cavity connects to the border and must stay clear.
	m := imaging.NewMask(10, 10)
	imaging.FillRectMask(m, imaging.Rect{X0: 2, Y0: 2, X1: 7, Y1: 3})
	imaging.FillRectMask(m, imaging.Rect{X0: 2, Y0: 6, X1: 7, Y1: 7})
	imaging.FillRectMask(m, imaging.Rect{X0: 2, Y0: 2, X1: 3, Y1: 7})
	out := FillEnclosed(m)
	if out.At(6, 5) {
		t.Error("open cavity was filled")
	}
}

func TestDilateErode(t *testing.T) {
	m := block(12, 12, imaging.Rect{X0: 5, Y0: 5, X1: 6, Y1: 6})
	d := Dilate(m, 1)
	if !d.At(4, 4) || !d.At(7, 7) {
		t.Error("dilation missing pixels")
	}
	if d.At(3, 3) {
		t.Error("dilation too large")
	}
	e := Erode(d, 1)
	// Erosion of the dilation recovers at least the original (closing).
	for i := range m.Bits {
		if m.Bits[i] && !e.Bits[i] {
			t.Error("closing lost an original pixel")
			break
		}
	}
	if Dilate(m, 0).Count() != m.Count() || Erode(m, 0).Count() != m.Count() {
		t.Error("radius 0 must be identity")
	}
}

// Property: erosion ⊆ original ⊆ dilation.
func TestErodeDilateOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := imaging.NewMask(14, 14)
		for i := range m.Bits {
			m.Bits[i] = rng.Float64() < 0.5
		}
		d := Dilate(m, 1)
		e := Erode(m, 1)
		for i := range m.Bits {
			if e.Bits[i] && !m.Bits[i] {
				t.Fatal("erosion added a pixel")
			}
			if m.Bits[i] && !d.Bits[i] {
				t.Fatal("dilation lost a pixel")
			}
		}
	}
}
