// Package morphology implements the binary-mask cleanup operators of the
// paper's segmentation pipeline: the 8-neighbour noise filter (Step 3), the
// 4-neighbour hole fill (Step 4), connected-component labelling and
// small-spot removal (Step 3), plus standard dilation/erosion used by
// extensions and tests.
package morphology

import (
	"github.com/sljmotion/sljmotion/internal/imaging"
)

// neigh8 enumerates the 8-connected neighbourhood offsets.
var neigh8 = [8][2]int{
	{-1, -1}, {0, -1}, {1, -1},
	{-1, 0}, {1, 0},
	{-1, 1}, {0, 1}, {1, 1},
}

// neigh4 enumerates the 4-connected neighbourhood offsets.
var neigh4 = [4][2]int{{0, -1}, {-1, 0}, {1, 0}, {0, 1}}

// RemoveNoise implements the paper's Step 3 filter: a set pixel is kept only
// when at least minNeighbors of its 8 neighbours are set ("if the number of
// neighbors that are not 0 is greater than the threshold, the pixel is
// kept"). It returns a new mask.
func RemoveNoise(m *imaging.Mask, minNeighbors int) *imaging.Mask {
	out := imaging.NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if !m.Bits[y*m.W+x] {
				continue
			}
			n := 0
			for _, d := range neigh8 {
				if m.At(x+d[0], y+d[1]) {
					n++
				}
			}
			if n >= minNeighbors {
				out.Bits[y*m.W+x] = true
			}
		}
	}
	return out
}

// FillHoles implements the paper's Step 4 rule: a clear pixel whose four
// 4-neighbours are all set becomes set. One call performs a single pass, as
// in the paper; use FillHolesN for repeated passes.
func FillHoles(m *imaging.Mask) *imaging.Mask {
	out := m.Clone()
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.Bits[y*m.W+x] {
				continue
			}
			all := true
			for _, d := range neigh4 {
				if !m.At(x+d[0], y+d[1]) {
					all = false
					break
				}
			}
			if all {
				out.Bits[y*m.W+x] = true
			}
		}
	}
	return out
}

// FillHolesN applies FillHoles up to n passes, stopping early once a pass
// changes nothing.
func FillHolesN(m *imaging.Mask, n int) *imaging.Mask {
	cur := m
	for i := 0; i < n; i++ {
		next := FillHoles(cur)
		if masksEqual(cur, next) {
			return next
		}
		cur = next
	}
	return cur
}

// FillEnclosed fills every background region not connected to the mask
// border (a flood fill from the border; everything unreachable is a hole).
// This is the stronger alternative to the paper's single-pass rule and is
// used by the extension pipeline configuration.
func FillEnclosed(m *imaging.Mask) *imaging.Mask {
	outside := imaging.NewMask(m.W, m.H)
	stack := make([]imaging.Point, 0, 2*(m.W+m.H))
	push := func(x, y int) {
		if x < 0 || x >= m.W || y < 0 || y >= m.H {
			return
		}
		idx := y*m.W + x
		if m.Bits[idx] || outside.Bits[idx] {
			return
		}
		outside.Bits[idx] = true
		stack = append(stack, imaging.Point{X: x, Y: y})
	}
	for x := 0; x < m.W; x++ {
		push(x, 0)
		push(x, m.H-1)
	}
	for y := 0; y < m.H; y++ {
		push(0, y)
		push(m.W-1, y)
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range neigh4 {
			push(p.X+d[0], p.Y+d[1])
		}
	}
	out := m.Clone()
	for i := range out.Bits {
		if !out.Bits[i] && !outside.Bits[i] {
			out.Bits[i] = true
		}
	}
	return out
}

// Dilate grows the mask by a square structuring element of the given radius.
func Dilate(m *imaging.Mask, radius int) *imaging.Mask {
	if radius <= 0 {
		return m.Clone()
	}
	out := imaging.NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if !m.Bits[y*m.W+x] {
				continue
			}
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					out.Set(x+dx, y+dy, true)
				}
			}
		}
	}
	return out
}

// Erode shrinks the mask by a square structuring element of the given radius.
func Erode(m *imaging.Mask, radius int) *imaging.Mask {
	if radius <= 0 {
		return m.Clone()
	}
	out := imaging.NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
	pixels:
		for x := 0; x < m.W; x++ {
			if !m.Bits[y*m.W+x] {
				continue
			}
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					if !m.At(x+dx, y+dy) {
						continue pixels
					}
				}
			}
			out.Bits[y*m.W+x] = true
		}
	}
	return out
}

func masksEqual(a, b *imaging.Mask) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Bits {
		if a.Bits[i] != b.Bits[i] {
			return false
		}
	}
	return true
}
