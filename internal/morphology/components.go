package morphology

import (
	"sort"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

// Connectivity selects the neighbourhood used by component labelling.
type Connectivity int

// Supported connectivities. Enum starts at one so the zero value is invalid
// and misuse fails loudly.
const (
	Conn4 Connectivity = iota + 1
	Conn8
)

// Region describes one connected component of a mask.
type Region struct {
	Label    int
	Area     int
	BBox     imaging.Rect
	Centroid imaging.Vec2
}

// Labels is the result of connected-component analysis: a per-pixel label
// plane (0 = background) and per-region statistics.
type Labels struct {
	W, H    int
	Plane   []int32
	Regions []Region
}

// Components labels the connected components of m using breadth-first
// search. Regions are returned sorted by descending area so Regions[0] is
// always the largest object.
func Components(m *imaging.Mask, conn Connectivity) *Labels {
	offsets := neigh4[:]
	if conn == Conn8 {
		offsets = neigh8[:]
	}
	out := &Labels{W: m.W, H: m.H, Plane: make([]int32, m.W*m.H)}
	queue := make([]imaging.Point, 0, 1024)
	next := int32(1)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			idx := y*m.W + x
			if !m.Bits[idx] || out.Plane[idx] != 0 {
				continue
			}
			label := next
			next++
			out.Plane[idx] = label
			queue = queue[:0]
			queue = append(queue, imaging.Point{X: x, Y: y})
			reg := Region{
				Label: int(label),
				BBox:  imaging.Rect{X0: x, Y0: y, X1: x, Y1: y},
			}
			var sx, sy int
			for len(queue) > 0 {
				p := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				reg.Area++
				sx += p.X
				sy += p.Y
				if p.X < reg.BBox.X0 {
					reg.BBox.X0 = p.X
				}
				if p.X > reg.BBox.X1 {
					reg.BBox.X1 = p.X
				}
				if p.Y < reg.BBox.Y0 {
					reg.BBox.Y0 = p.Y
				}
				if p.Y > reg.BBox.Y1 {
					reg.BBox.Y1 = p.Y
				}
				for _, d := range offsets {
					nx, ny := p.X+d[0], p.Y+d[1]
					if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
						continue
					}
					nidx := ny*m.W + nx
					if m.Bits[nidx] && out.Plane[nidx] == 0 {
						out.Plane[nidx] = label
						queue = append(queue, imaging.Point{X: nx, Y: ny})
					}
				}
			}
			reg.Centroid = imaging.Vec2{
				X: float64(sx) / float64(reg.Area),
				Y: float64(sy) / float64(reg.Area),
			}
			out.Regions = append(out.Regions, reg)
		}
	}
	sort.Slice(out.Regions, func(i, j int) bool {
		if out.Regions[i].Area != out.Regions[j].Area {
			return out.Regions[i].Area > out.Regions[j].Area
		}
		return out.Regions[i].Label < out.Regions[j].Label
	})
	return out
}

// MaskOf extracts the mask of a single labelled region.
func (l *Labels) MaskOf(label int) *imaging.Mask {
	m := imaging.NewMask(l.W, l.H)
	for i, v := range l.Plane {
		if int(v) == label {
			m.Bits[i] = true
		}
	}
	return m
}

// RemoveSmallSpots implements the paper's "smaller spots can be removed from
// the scene": components with an area below minArea are erased. It returns a
// new mask.
func RemoveSmallSpots(m *imaging.Mask, minArea int, conn Connectivity) *imaging.Mask {
	labels := Components(m, conn)
	keep := make(map[int32]bool, len(labels.Regions))
	for _, r := range labels.Regions {
		if r.Area >= minArea {
			keep[int32(r.Label)] = true
		}
	}
	out := imaging.NewMask(m.W, m.H)
	for i, v := range labels.Plane {
		if v != 0 && keep[v] {
			out.Bits[i] = true
		}
	}
	return out
}

// KeepLargest keeps only the largest connected component, the typical
// final step when exactly one human object is expected in frame.
func KeepLargest(m *imaging.Mask, conn Connectivity) *imaging.Mask {
	labels := Components(m, conn)
	if len(labels.Regions) == 0 {
		return imaging.NewMask(m.W, m.H)
	}
	return labels.MaskOf(labels.Regions[0].Label)
}

// AdaptiveSpotThreshold computes the paper-calibrated minimum spot area:
// a fraction of the largest component with an absolute floor, so the
// threshold scales with subject size.
func AdaptiveSpotThreshold(m *imaging.Mask, fraction float64, floor int, conn Connectivity) int {
	labels := Components(m, conn)
	if len(labels.Regions) == 0 {
		return floor
	}
	t := int(fraction * float64(labels.Regions[0].Area))
	if t < floor {
		t = floor
	}
	return t
}
