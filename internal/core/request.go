package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/track"
)

// StageSelection picks a contiguous run of pipeline stages to execute,
// inclusive on both ends. The pipeline is linear (segmentation → pose →
// tracking → scoring), so a selection is a range, not an arbitrary set.
// The zero value selects the full pipeline.
type StageSelection struct {
	// First is the earliest stage to run; empty means StageSegmentation.
	First Stage
	// Last is the latest stage to run; empty means StageScoring.
	Last Stage
}

// AllStages selects the full pipeline explicitly.
func AllStages() StageSelection {
	return StageSelection{First: StageSegmentation, Last: StageScoring}
}

// OnlyStage selects a single pipeline stage.
func OnlyStage(s Stage) StageSelection { return StageSelection{First: s, Last: s} }

// SelectStages selects the inclusive stage range first..last.
func SelectStages(first, last Stage) StageSelection {
	return StageSelection{First: first, Last: last}
}

// stageIndex returns the position of s in the execution order, or -1.
func stageIndex(s Stage) int {
	for i, st := range Stages() {
		if st == s {
			return i
		}
	}
	return -1
}

// Normalize fills empty endpoints with the pipeline's ends.
func (sel StageSelection) Normalize() StageSelection {
	if sel.First == "" {
		sel.First = StageSegmentation
	}
	if sel.Last == "" {
		sel.Last = StageScoring
	}
	return sel
}

// Validate rejects unknown stages and reversed ranges. Endpoints are
// normalised first, so the zero value is valid.
func (sel StageSelection) Validate() error {
	sel = sel.Normalize()
	fi, li := stageIndex(sel.First), stageIndex(sel.Last)
	if fi < 0 {
		return fmt.Errorf("core: unknown stage %q", sel.First)
	}
	if li < 0 {
		return fmt.Errorf("core: unknown stage %q", sel.Last)
	}
	if fi > li {
		return fmt.Errorf("core: stage range %s..%s is reversed", sel.First, sel.Last)
	}
	return nil
}

// Includes reports whether the (normalised) selection covers stage s.
func (sel StageSelection) Includes(s Stage) bool {
	sel = sel.Normalize()
	i := stageIndex(s)
	return i >= 0 && i >= stageIndex(sel.First) && i <= stageIndex(sel.Last)
}

// IsFull reports whether the selection covers the whole pipeline.
func (sel StageSelection) IsFull() bool {
	sel = sel.Normalize()
	return sel.First == StageSegmentation && sel.Last == StageScoring
}

// Selected lists the covered stages in execution order.
func (sel StageSelection) Selected() []Stage {
	sel = sel.Normalize()
	var out []Stage
	for _, s := range Stages() {
		if sel.Includes(s) {
			out = append(out, s)
		}
	}
	return out
}

// String renders the selection in the form ParseStageSelection accepts.
func (sel StageSelection) String() string {
	sel = sel.Normalize()
	if sel.First == sel.Last {
		return string(sel.First)
	}
	return string(sel.First) + ".." + string(sel.Last)
}

// ParseStageSelection parses a stage-selection string: "" or "all" for the
// full pipeline, one stage name ("segmentation") for a single stage, or an
// inclusive range "first..last" ("segmentation..pose", "tracking..scoring").
func ParseStageSelection(s string) (StageSelection, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "all" {
		return StageSelection{}, nil
	}
	var sel StageSelection
	if first, last, ok := strings.Cut(s, ".."); ok {
		sel = StageSelection{First: Stage(strings.TrimSpace(first)), Last: Stage(strings.TrimSpace(last))}
	} else {
		sel = OnlyStage(Stage(s))
	}
	if err := sel.Validate(); err != nil {
		return StageSelection{}, err
	}
	return sel, nil
}

// Request is a staged analysis request: the input artifacts plus the stage
// selection to run over them. The zero Stages value runs the full pipeline,
// making Request{Frames: f, ManualFirst: m} equivalent to Analyze(f, m).
//
// Later entry points consume previously computed artifacts instead of
// frames: a selection starting at StagePose needs Silhouettes (and
// ManualFirst for calibration), and one starting at StageTracking or
// StageScoring needs Poses and the calibrated Dimensions. This is the seam
// the result cache and re-scoring workloads attach to: segmentation can be
// run once, and pose/tracking/scoring re-run against the stored outputs.
type Request struct {
	// Frames is the clip; required when the selection includes segmentation.
	Frames []*imaging.Image
	// ManualFirst is the hand-drawn first-frame stick figure the paper
	// requires; consumed by the pose stage (calibration + temporal seed).
	ManualFirst stickmodel.Pose
	// Stages selects the contiguous pipeline range to execute.
	Stages StageSelection

	// Silhouettes feeds a selection starting at StagePose (e.g. the stored
	// output of an earlier segmentation-only request).
	Silhouettes []segmentation.Silhouette
	// Background optionally carries the Step 1 estimate through to the
	// result when segmentation is skipped.
	Background *imaging.Image
	// Poses feeds a selection starting at StageTracking or StageScoring.
	Poses []stickmodel.Pose
	// Dimensions are the calibrated stick dimensions accompanying Poses.
	Dimensions stickmodel.Dimensions

	// FramesRef, SilhouettesRef and PosesRef are content-address references
	// (SHA-256 hex) into the artifact store, standing in for the inline
	// Frames / Silhouettes / Poses fields. They exist only on the request's
	// way in: callers resolve them into the inline fields (the
	// artifacts.Resolver seam) before validation, keying, or Run — a request
	// reaching those with a reference still set is a programming error.
	FramesRef      string
	SilhouettesRef string
	PosesRef       string

	// SegmentationMemo marks Silhouettes and Background as a trusted,
	// server-injected replay of this exact configuration's segmentation over
	// Frames (recorded when an ingest session sealed). Run then reuses them
	// instead of re-segmenting — bit-identical by determinism, so only
	// timing changes. The flag is process-local: it never crosses the wire
	// and cache keys ignore the injected artifacts it covers.
	SegmentationMemo bool

	// IncludePoses and IncludeSilhouettes shape serialised responses built
	// from the result (the web service's JSON document). The in-process
	// Result always carries every computed artifact regardless.
	IncludePoses       bool
	IncludeSilhouettes bool
}

// Validate checks that the stage selection is runnable and that the inputs
// it needs are present. windows is the analyzer's window mode: detected
// windows need the tracking stage to feed scoring.
func (r Request) Validate(windows WindowMode) error {
	sel := r.Stages.Normalize()
	if err := sel.Validate(); err != nil {
		return err
	}
	if r.FramesRef != "" || r.SilhouettesRef != "" || r.PosesRef != "" {
		return errors.New("core: request carries unresolved artifact references (resolve via artifacts.ResolveRequest first)")
	}
	switch sel.First {
	case StageSegmentation:
		if len(r.Frames) == 0 {
			return ErrNoFrames
		}
	case StagePose:
		if len(r.Silhouettes) == 0 {
			return errors.New("core: a request starting at the pose stage needs Silhouettes")
		}
		if r.ManualFirst == (stickmodel.Pose{}) {
			return errors.New("core: a request starting at the pose stage needs ManualFirst (calibration + temporal seed)")
		}
	case StageTracking, StageScoring:
		if len(r.Poses) == 0 {
			return fmt.Errorf("core: a request starting at the %s stage needs Poses", sel.First)
		}
		if r.Dimensions == (stickmodel.Dimensions{}) {
			return fmt.Errorf("core: a request starting at the %s stage needs the calibrated Dimensions", sel.First)
		}
	}
	if sel.First == StageScoring && windows == WindowsDetected {
		return errors.New("core: detected windows need the tracking stage; select tracking..scoring")
	}
	return nil
}

// Run executes the selected stages of the pipeline. Artifacts of stages
// that ran are set on the Result; artifacts supplied as request inputs are
// passed through, and everything downstream of the selection stays nil.
// ctx and progress behave as in AnalyzeContext. A full-range request takes
// exactly the AnalyzeContext code path, so its Result is identical.
func (a *Analyzer) Run(ctx context.Context, req Request, progress ProgressFunc) (*Result, error) {
	if err := req.Validate(a.cfg.Windows); err != nil {
		return nil, err
	}
	sel := req.Stages.Normalize()
	res := &Result{Background: req.Background, Silhouettes: req.Silhouettes, StageMS: make(map[string]float64)}
	// enter starts one stage's bookkeeping: cancellation check, progress
	// callback, a trace span (a no-op unless ctx carries one), and the
	// wall-clock timer behind Result.StageMS and the per-stage histogram.
	// Each stage block must call the returned done exactly once.
	enter := func(s Stage) (context.Context, func(), error) {
		if err := ctx.Err(); err != nil {
			return ctx, nil, err
		}
		if progress != nil {
			progress(s)
		}
		stageCtx, span := obs.StartSpan(ctx, string(s))
		start := time.Now()
		var snap obs.ResourceSnapshot
		if span != nil {
			// Per-stage resource accounting rides on tracing: the deltas
			// land as span attributes, and the untraced synchronous and
			// benchmark paths pay nothing.
			snap = obs.TakeResourceSnapshot()
		}
		done := func() {
			d := time.Since(start)
			if span != nil {
				snap.Delta().Stamp(span)
			}
			span.End()
			res.StageMS[string(s)] = float64(d) / float64(time.Millisecond)
			stageSeconds(s).Observe(d.Seconds())
		}
		return stageCtx, done, nil
	}

	if sel.Includes(StageSegmentation) {
		_, done, err := enter(StageSegmentation)
		if err != nil {
			return nil, err
		}
		switch {
		case req.SegmentationMemo && req.Background != nil && len(req.Silhouettes) == len(req.Frames):
			// A sealed ingest session already segmented this exact clip
			// under this exact configuration; replay its output instead of
			// recomputing it. SegmentFrame is deterministic, so the replay
			// is bit-identical — the stage still runs (and is timed), it
			// just costs nothing.
			done()
			res.Background = req.Background
			res.Silhouettes = req.Silhouettes
		default:
			seg, err := segmentation.New(a.cfg.Segmentation)
			if err != nil {
				return nil, fmt.Errorf("segmentation: %w", err)
			}
			bg, _, sils, err := seg.RunDetailedWorkers(req.Frames, maxParallel(a.cfg.Parallelism))
			if err != nil {
				return nil, fmt.Errorf("segmentation: %w", err)
			}
			done()
			res.Background = bg
			res.Silhouettes = sils
		}
	}

	res.Poses = req.Poses
	res.Dimensions = req.Dimensions
	if sel.Includes(StagePose) {
		poseCtx, done, err := enter(StagePose)
		if err != nil {
			return nil, err
		}
		if len(res.Silhouettes) == 0 {
			return nil, errors.New("core: pose stage has no silhouettes")
		}
		dims, err := a.dimensionPrior(res.Silhouettes[0])
		if err != nil {
			return nil, err
		}
		poseCfg := a.cfg.Pose
		if poseCfg.Parallelism == 0 {
			poseCfg.Parallelism = a.cfg.Parallelism
		}
		est, err := pose.NewEstimator(dims, poseCfg)
		if err != nil {
			return nil, fmt.Errorf("pose: %w", err)
		}
		calibrated, err := est.Calibrate(res.Silhouettes[0], req.ManualFirst)
		if err != nil {
			return nil, fmt.Errorf("calibrate: %w", err)
		}
		estimates, err := est.EstimateSequenceContext(poseCtx, res.Silhouettes, req.ManualFirst)
		if err != nil {
			return nil, fmt.Errorf("pose: %w", err)
		}
		done()
		poses := make([]stickmodel.Pose, len(estimates))
		for i, e := range estimates {
			poses[i] = e.Pose
		}
		res.Dimensions = calibrated
		res.Poses = poses
		res.Estimates = estimates
	}

	if sel.Includes(StageTracking) {
		_, done, err := enter(StageTracking)
		if err != nil {
			return nil, err
		}
		tracker := track.NewTracker(res.Dimensions, a.cfg.PxPerMeter)
		analysis, err := tracker.Analyze(res.Poses)
		if err != nil {
			return nil, fmt.Errorf("track: %w", err)
		}
		done()
		res.Track = analysis
	}

	if sel.Includes(StageScoring) {
		_, done, err := enter(StageScoring)
		if err != nil {
			return nil, err
		}
		var initW, airW track.Window
		switch {
		case a.cfg.Windows == WindowsDetected && res.Track != nil:
			initW, airW = res.Track.Initiation, res.Track.AirLanding
		default:
			initW, airW = track.FixedWindows(len(res.Poses))
		}
		report, err := scoring.NewScorer().Score(res.Poses, initW, airW)
		if err != nil {
			return nil, fmt.Errorf("scoring: %w", err)
		}
		done()
		res.Report = report
	}
	return res, nil
}

// stageSeconds returns the per-stage latency histogram, lazily registered
// once per stage in the process-wide registry.
func stageSeconds(s Stage) *obs.Histogram {
	return obs.Default.Histogram("slj_stage_seconds",
		"Wall-clock time per pipeline stage, in seconds.",
		obs.DefBuckets, "stage", string(s))
}
