package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/synth"
)

func TestParseStageSelection(t *testing.T) {
	cases := []struct {
		in   string
		want StageSelection
		err  bool
	}{
		{"", StageSelection{}, false},
		{"all", StageSelection{}, false},
		{"segmentation", OnlyStage(StageSegmentation), false},
		{"POSE", OnlyStage(StagePose), false},
		{"segmentation..pose", StageSelection{First: StageSegmentation, Last: StagePose}, false},
		{"tracking..scoring", StageSelection{First: StageTracking, Last: StageScoring}, false},
		{" segmentation .. scoring ", StageSelection{First: StageSegmentation, Last: StageScoring}, false},
		{"scoring..segmentation", StageSelection{}, true},
		{"nope", StageSelection{}, true},
		{"segmentation..nope", StageSelection{}, true},
	}
	for _, c := range cases {
		got, err := ParseStageSelection(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseStageSelection(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStageSelection(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseStageSelection(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestStageSelectionSemantics(t *testing.T) {
	var zero StageSelection
	if !zero.IsFull() {
		t.Error("zero selection must be the full pipeline")
	}
	for _, s := range Stages() {
		if !zero.Includes(s) {
			t.Errorf("zero selection must include %s", s)
		}
	}
	segOnly := OnlyStage(StageSegmentation)
	if segOnly.IsFull() || !segOnly.Includes(StageSegmentation) || segOnly.Includes(StagePose) {
		t.Errorf("segmentation-only selection wrong: %+v", segOnly)
	}
	if got := segOnly.String(); got != "segmentation" {
		t.Errorf("String() = %q", got)
	}
	rng := StageSelection{First: StagePose, Last: StageTracking}
	if got := rng.String(); got != "pose..tracking" {
		t.Errorf("String() = %q", got)
	}
	if want := []Stage{StagePose, StageTracking}; !reflect.DeepEqual(rng.Selected(), want) {
		t.Errorf("Selected() = %v", rng.Selected())
	}
}

func TestRequestValidate(t *testing.T) {
	v := clip(t)
	cases := []struct {
		name string
		req  Request
	}{
		{"segmentation without frames", Request{Stages: OnlyStage(StageSegmentation)}},
		{"pose without silhouettes", Request{Stages: OnlyStage(StagePose)}},
		{"pose without manual pose", Request{Stages: OnlyStage(StagePose),
			Silhouettes: make([]segmentation.Silhouette, 1)}},
		{"tracking without poses", Request{Stages: OnlyStage(StageTracking)}},
		{"tracking without dimensions", Request{Stages: OnlyStage(StageTracking), Poses: v.Truth}},
		{"reversed range", Request{Frames: v.Frames, Stages: StageSelection{First: StageScoring, Last: StagePose}}},
		{"unknown stage", Request{Frames: v.Frames, Stages: OnlyStage(Stage("warp"))}},
	}
	for _, c := range cases {
		if err := c.req.Validate(WindowsFixed); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Detected windows cannot be scored without the tracking stage.
	req := Request{Poses: v.Truth, Dimensions: v.Dims, Stages: OnlyStage(StageScoring)}
	if err := req.Validate(WindowsDetected); err == nil {
		t.Error("scoring-only under detected windows: expected error")
	}
	if err := req.Validate(WindowsFixed); err != nil {
		t.Errorf("scoring-only under fixed windows: %v", err)
	}
}

// clip generates the canonical synthetic clip once per test.
func clip(t *testing.T) *synth.Video {
	t.Helper()
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRunSegmentationOnly(t *testing.T) {
	v := clip(t)
	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var seen []Stage
	res, err := an.Run(context.Background(), Request{
		Frames: v.Frames,
		Stages: OnlyStage(StageSegmentation),
	}, func(s Stage) { seen = append(seen, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Silhouettes) != len(v.Frames) || res.Background == nil {
		t.Errorf("segmentation artifacts missing: %d silhouettes", len(res.Silhouettes))
	}
	if res.Poses != nil || res.Estimates != nil || res.Track != nil || res.Report != nil {
		t.Error("downstream artifacts must stay nil on a segmentation-only run")
	}
	if !reflect.DeepEqual(seen, []Stage{StageSegmentation}) {
		t.Errorf("progress saw %v", seen)
	}
}

// TestRunStagedMatchesFull is the core staged-execution guarantee: running
// the pipeline one entry point at a time over stored artifacts reproduces
// the full run exactly.
func TestRunStagedMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the GA chain twice")
	}
	v := clip(t)
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 7)
	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := an.Analyze(v.Frames, manual)
	if err != nil {
		t.Fatal(err)
	}

	// Pose..scoring from the stored silhouettes.
	fromSils, err := an.Run(context.Background(), Request{
		ManualFirst: manual,
		Silhouettes: full.Silhouettes,
		Stages:      StageSelection{First: StagePose},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSils.Poses, full.Poses) {
		t.Error("poses from stored silhouettes differ from the full run")
	}
	if fromSils.Dimensions != full.Dimensions {
		t.Errorf("dimensions differ: %+v vs %+v", fromSils.Dimensions, full.Dimensions)
	}
	// Rule carries func fields, so reports are compared via their rendered
	// table (every measured value, window and verdict).
	if fromSils.Report.String() != full.Report.String() {
		t.Errorf("report from stored silhouettes differs from the full run:\n%s\nvs\n%s",
			fromSils.Report, full.Report)
	}

	// Tracking+scoring re-run from the stored poses (the re-scoring
	// workload: no vision, no GA).
	rescore, err := an.Run(context.Background(), Request{
		Poses:      full.Poses,
		Dimensions: full.Dimensions,
		Stages:     StageSelection{First: StageTracking, Last: StageScoring},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rescore.Track, full.Track) {
		t.Error("track analysis from stored poses differs from the full run")
	}
	if rescore.Report.String() != full.Report.String() {
		t.Errorf("report from stored poses differs from the full run:\n%s\nvs\n%s",
			rescore.Report, full.Report)
	}
	if rescore.Silhouettes != nil || rescore.Estimates != nil {
		t.Error("upstream artifacts must stay nil when tracking is the entry point")
	}
}

func TestRunScoringOnlyOnTruth(t *testing.T) {
	v := clip(t)
	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Run(context.Background(), Request{
		Poses:      v.Truth,
		Dimensions: v.Dims,
		Stages:     OnlyStage(StageScoring),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.Total != 7 {
		t.Fatalf("report missing or wrong: %+v", res.Report)
	}
	if res.Track != nil {
		t.Error("tracking must not run on a scoring-only request")
	}
	if res.Report.Passed < 6 {
		t.Errorf("ground-truth good-form clip scored %d/7", res.Report.Passed)
	}
}

func TestRunRespectsCancellation(t *testing.T) {
	v := clip(t)
	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = an.Run(ctx, Request{Frames: v.Frames, Stages: OnlyStage(StageSegmentation)}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
