package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/sljmotion/sljmotion/internal/metrics"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// fastConfig trims the GA budget for test speed.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Pose.Population = 50
	cfg.Pose.Generations = 60
	cfg.Pose.Patience = 12
	cfg.Pose.RefineRounds = 1
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Windows = WindowMode(99)
	if err := cfg.Validate(); err == nil {
		t.Error("bad window mode must be invalid")
	}
	cfg = DefaultConfig()
	cfg.Pose.Population = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad pose config must propagate")
	}
	cfg = DefaultConfig()
	cfg.Segmentation.SpotFraction = 3
	if err := cfg.Validate(); err == nil {
		t.Error("bad segmentation config must propagate")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Windows = WindowMode(0)
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestAnalyzeRejectsEmptyInput(t *testing.T) {
	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Analyze(nil, synth.TruePoses(synth.DefaultJumpParams(),
		(&synth.Video{}).Dims)[0:1][0]); err == nil {
		t.Error("expected ErrNoFrames")
	}
}

func TestAnalyzeEndToEndGoodForm(t *testing.T) {
	params := synth.DefaultJumpParams()
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 7)

	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze(v.Frames, manual)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Silhouettes) != params.Frames || len(res.Poses) != params.Frames {
		t.Fatal("per-frame outputs missing")
	}
	// Background close to truth.
	if res.Background == nil {
		t.Fatal("background missing")
	}
	// Pose quality: sequence mean angle error within tolerance.
	se, err := metrics.CompareSequences(res.Poses, v.Truth, v.Dims)
	if err != nil {
		t.Fatal(err)
	}
	if se.MeanAngle > 15 {
		t.Errorf("sequence mean angle error %.1f° too high", se.MeanAngle)
	}
	if se.MeanJoint > 5 {
		t.Errorf("sequence mean joint error %.1f px too high", se.MeanJoint)
	}
	// A good-form jump must score high.
	if res.Report.Passed < 6 {
		t.Errorf("good form scored %d/7:\n%s", res.Report.Passed, res.Report.String())
	}
	// Track output consistent with the synthetic jump.
	if math.Abs(res.Track.JumpDistancePx-params.JumpPx) > 8 {
		t.Errorf("jump distance %.1f px, want ~%.1f", res.Track.JumpDistancePx, params.JumpPx)
	}
}

func TestAnalyzeDetectedWindows(t *testing.T) {
	params := synth.DefaultJumpParams()
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 3)
	cfg := fastConfig()
	cfg.Windows = WindowsDetected
	cfg.PxPerMeter = params.PxPerMeter()
	an, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze(v.Frames, manual)
	if err != nil {
		t.Fatal(err)
	}
	if res.Track.JumpDistanceM == 0 {
		t.Error("metric distance missing despite calibration")
	}
	if res.Report == nil || res.Report.Total != 7 {
		t.Error("report missing under detected windows")
	}
}

func TestAnalyzeBodyHeightPrior(t *testing.T) {
	params := synth.DefaultJumpParams()
	params.Frames = 8 // shorter clip for speed; scoring still runs
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 3)
	cfg := fastConfig()
	cfg.BodyHeightPrior = params.BodyHeight
	an, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Analyze(v.Frames, manual)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dimensions.Height() < params.BodyHeight*0.6 ||
		res.Dimensions.Height() > params.BodyHeight*1.4 {
		t.Errorf("calibrated height %.1f implausible for body %v",
			res.Dimensions.Height(), params.BodyHeight)
	}
}

func TestAnalyzeContextCancelled(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	if _, err := an.AnalyzeContext(ctx, v.Frames, manual, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestAnalyzeContextReportsStagesAndMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline twice")
	}
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)

	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := an.Analyze(v.Frames, manual)
	if err != nil {
		t.Fatal(err)
	}

	// Same config with the per-frame fan-out enabled must produce the
	// identical analysis (GA parallelism is deterministic by construction).
	parCfg := fastConfig()
	parCfg.Parallelism = 4
	anPar, err := New(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	var seen []Stage
	par, err := anPar.AnalyzeContext(context.Background(), v.Frames, manual, func(s Stage) {
		seen = append(seen, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Stages()
	if len(seen) != len(want) {
		t.Fatalf("stages seen: %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("stage %d = %s, want %s", i, seen[i], want[i])
		}
	}
	if len(par.Poses) != len(seq.Poses) {
		t.Fatalf("pose count %d != %d", len(par.Poses), len(seq.Poses))
	}
	for i := range seq.Poses {
		if par.Poses[i] != seq.Poses[i] {
			t.Errorf("pose %d differs between sequential and parallel analysis", i)
		}
	}
	for i := range seq.Silhouettes {
		if par.Silhouettes[i].Area != seq.Silhouettes[i].Area {
			t.Errorf("silhouette %d differs", i)
		}
	}
	if par.Report.Passed != seq.Report.Passed {
		t.Errorf("report %d/%d != %d/%d", par.Report.Passed, par.Report.Total,
			seq.Report.Passed, seq.Report.Total)
	}
}
