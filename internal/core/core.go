// Package core composes the paper's full system: Section 2 segmentation,
// Section 3 GA-based pose estimation with temporal seeding, movement
// tracking, and Section 4 scoring — video frames in, an analysis with
// silhouettes, stick-model poses, jump phases, a score report and advice
// out.
package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/track"
)

// WindowMode selects how the scoring stage windows are chosen.
type WindowMode int

// Window modes. The paper fixes initiation to the first ten frames and
// air/landing to the next ten; detection derives them from the tracked
// ankle trajectory instead.
const (
	// WindowsFixed reproduces the paper: first half / second half.
	WindowsFixed WindowMode = iota + 1
	// WindowsDetected uses takeoff/landing detection from the tracker.
	WindowsDetected
)

// Config assembles the per-stage configurations.
type Config struct {
	Segmentation segmentation.Config
	Pose         pose.Config
	// BodyHeightPrior is the assumed body height in pixels used to build
	// the dimension prior before first-frame calibration. ≤0 derives it
	// from the first silhouette's bounding box.
	BodyHeightPrior float64
	// PxPerMeter calibrates jump distance; ≤0 disables metric output.
	PxPerMeter float64
	// Windows selects fixed (paper) or detected stage windows.
	Windows WindowMode
	// Parallelism fans the embarrassingly parallel per-frame work out over
	// this many goroutines: Steps 2-5 of segmentation across frames, and GA
	// fitness evaluation inside each pose fit. The temporal-seeding chain
	// of Section 3 stays sequential (frame k seeds from k-1), and results
	// are identical to the sequential path at any value. <= 1 disables;
	// 0 is treated as 1 so the zero value stays paper-faithful.
	Parallelism int
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Segmentation: segmentation.DefaultConfig(),
		Pose:         pose.DefaultConfig(),
		Windows:      WindowsFixed,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if err := c.Segmentation.Validate(); err != nil {
		return err
	}
	if err := c.Pose.Validate(); err != nil {
		return err
	}
	if c.Windows != WindowsFixed && c.Windows != WindowsDetected {
		return fmt.Errorf("core: unknown window mode %d", c.Windows)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}

// Stage names one of the four pipeline phases, in execution order. The job
// manager reports these as per-job progress.
type Stage string

// Pipeline stages.
const (
	StageSegmentation Stage = "segmentation"
	StagePose         Stage = "pose"
	StageTracking     Stage = "tracking"
	StageScoring      Stage = "scoring"
)

// Stages lists the pipeline stages in execution order.
func Stages() []Stage {
	return []Stage{StageSegmentation, StagePose, StageTracking, StageScoring}
}

// ProgressFunc observes stage transitions; it is called once when each
// stage begins. Implementations must be fast and non-blocking.
type ProgressFunc func(Stage)

// Result is the complete analysis of one jump clip.
type Result struct {
	// Background is the Step 1 estimate.
	Background *imaging.Image
	// Silhouettes holds the segmented human object per frame.
	Silhouettes []segmentation.Silhouette
	// Dimensions are the calibrated stick lengths/thicknesses.
	Dimensions stickmodel.Dimensions
	// Poses are the estimated stick models per frame; Estimates carries the
	// per-frame GA convergence detail.
	Poses     []stickmodel.Pose
	Estimates []pose.Estimate
	// Track is the movement analysis (phases, distance, trajectories).
	Track *track.Analysis
	// Report is the Table 2 scoring outcome with advice.
	Report *scoring.Report
	// StageMS records the wall-clock milliseconds spent in each stage that
	// ran, keyed by stage name — the per-stage breakdown clients read off
	// the result document without fetching the full trace.
	StageMS map[string]float64
}

// Analyzer is the end-to-end system.
type Analyzer struct {
	cfg Config
}

// New constructs an analyzer.
func New(cfg Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{cfg: cfg}, nil
}

// Config returns the analyzer configuration.
func (a *Analyzer) Config() Config { return a.cfg }

// ErrNoFrames is returned when Analyze receives an empty clip.
var ErrNoFrames = errors.New("core: no frames")

// Analyze runs the full pipeline on a clip. manualFirst is the hand-drawn
// stick figure for the first frame that the paper requires; it both
// calibrates the stick dimensions and seeds the temporal chain.
func (a *Analyzer) Analyze(frames []*imaging.Image, manualFirst stickmodel.Pose) (*Result, error) {
	return a.AnalyzeContext(context.Background(), frames, manualFirst, nil)
}

// AnalyzeContext is Analyze with cooperative cancellation and per-stage
// progress reporting: ctx is checked between pipeline stages and before
// every frame of the pose stage (the dominant cost — one GA fit per frame),
// and progress — when non-nil — is invoked at the start of each stage. The
// async job manager drives the pipeline through this entry point. It is
// Run over a full-range Request.
func (a *Analyzer) AnalyzeContext(ctx context.Context, frames []*imaging.Image, manualFirst stickmodel.Pose, progress ProgressFunc) (*Result, error) {
	return a.Run(ctx, Request{Frames: frames, ManualFirst: manualFirst}, progress)
}

// dimensionPrior builds the initial body dimensions either from the
// configured prior height or from the first silhouette's bounding box.
func (a *Analyzer) dimensionPrior(first segmentation.Silhouette) (stickmodel.Dimensions, error) {
	h := a.cfg.BodyHeightPrior
	if h <= 0 {
		if first.Area == 0 {
			return stickmodel.Dimensions{}, pose.ErrEmptySilhouette
		}
		// A standing first frame: the bounding-box height approximates the
		// body height.
		h = float64(first.BBox.H())
	}
	return stickmodel.ChildDimensions(h), nil
}

// maxParallel normalises the config knob for the worker fan-out: the zero
// value means sequential, never "all cores".
func maxParallel(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
