// Package core composes the paper's full system: Section 2 segmentation,
// Section 3 GA-based pose estimation with temporal seeding, movement
// tracking, and Section 4 scoring — video frames in, an analysis with
// silhouettes, stick-model poses, jump phases, a score report and advice
// out.
package core

import (
	"errors"
	"fmt"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/track"
)

// WindowMode selects how the scoring stage windows are chosen.
type WindowMode int

// Window modes. The paper fixes initiation to the first ten frames and
// air/landing to the next ten; detection derives them from the tracked
// ankle trajectory instead.
const (
	// WindowsFixed reproduces the paper: first half / second half.
	WindowsFixed WindowMode = iota + 1
	// WindowsDetected uses takeoff/landing detection from the tracker.
	WindowsDetected
)

// Config assembles the per-stage configurations.
type Config struct {
	Segmentation segmentation.Config
	Pose         pose.Config
	// BodyHeightPrior is the assumed body height in pixels used to build
	// the dimension prior before first-frame calibration. ≤0 derives it
	// from the first silhouette's bounding box.
	BodyHeightPrior float64
	// PxPerMeter calibrates jump distance; ≤0 disables metric output.
	PxPerMeter float64
	// Windows selects fixed (paper) or detected stage windows.
	Windows WindowMode
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Segmentation: segmentation.DefaultConfig(),
		Pose:         pose.DefaultConfig(),
		Windows:      WindowsFixed,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if err := c.Segmentation.Validate(); err != nil {
		return err
	}
	if err := c.Pose.Validate(); err != nil {
		return err
	}
	if c.Windows != WindowsFixed && c.Windows != WindowsDetected {
		return fmt.Errorf("core: unknown window mode %d", c.Windows)
	}
	return nil
}

// Result is the complete analysis of one jump clip.
type Result struct {
	// Background is the Step 1 estimate.
	Background *imaging.Image
	// Silhouettes holds the segmented human object per frame.
	Silhouettes []segmentation.Silhouette
	// Dimensions are the calibrated stick lengths/thicknesses.
	Dimensions stickmodel.Dimensions
	// Poses are the estimated stick models per frame; Estimates carries the
	// per-frame GA convergence detail.
	Poses     []stickmodel.Pose
	Estimates []pose.Estimate
	// Track is the movement analysis (phases, distance, trajectories).
	Track *track.Analysis
	// Report is the Table 2 scoring outcome with advice.
	Report *scoring.Report
}

// Analyzer is the end-to-end system.
type Analyzer struct {
	cfg Config
}

// New constructs an analyzer.
func New(cfg Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{cfg: cfg}, nil
}

// Config returns the analyzer configuration.
func (a *Analyzer) Config() Config { return a.cfg }

// ErrNoFrames is returned when Analyze receives an empty clip.
var ErrNoFrames = errors.New("core: no frames")

// Analyze runs the full pipeline on a clip. manualFirst is the hand-drawn
// stick figure for the first frame that the paper requires; it both
// calibrates the stick dimensions and seeds the temporal chain.
func (a *Analyzer) Analyze(frames []*imaging.Image, manualFirst stickmodel.Pose) (*Result, error) {
	if len(frames) == 0 {
		return nil, ErrNoFrames
	}

	seg, err := segmentation.New(a.cfg.Segmentation)
	if err != nil {
		return nil, fmt.Errorf("segmentation: %w", err)
	}
	bg, _, sils, err := seg.RunDetailed(frames)
	if err != nil {
		return nil, fmt.Errorf("segmentation: %w", err)
	}

	dims, err := a.dimensionPrior(sils[0])
	if err != nil {
		return nil, err
	}
	est, err := pose.NewEstimator(dims, a.cfg.Pose)
	if err != nil {
		return nil, fmt.Errorf("pose: %w", err)
	}
	calibrated, err := est.Calibrate(sils[0], manualFirst)
	if err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}
	estimates, err := est.EstimateSequence(sils, manualFirst)
	if err != nil {
		return nil, fmt.Errorf("pose: %w", err)
	}
	poses := make([]stickmodel.Pose, len(estimates))
	for i, e := range estimates {
		poses[i] = e.Pose
	}

	tracker := track.NewTracker(calibrated, a.cfg.PxPerMeter)
	analysis, err := tracker.Analyze(poses)
	if err != nil {
		return nil, fmt.Errorf("track: %w", err)
	}

	var initW, airW track.Window
	switch a.cfg.Windows {
	case WindowsDetected:
		initW, airW = analysis.Initiation, analysis.AirLanding
	default:
		initW, airW = track.FixedWindows(len(poses))
	}
	report, err := scoring.NewScorer().Score(poses, initW, airW)
	if err != nil {
		return nil, fmt.Errorf("scoring: %w", err)
	}

	return &Result{
		Background:  bg,
		Silhouettes: sils,
		Dimensions:  calibrated,
		Poses:       poses,
		Estimates:   estimates,
		Track:       analysis,
		Report:      report,
	}, nil
}

// dimensionPrior builds the initial body dimensions either from the
// configured prior height or from the first silhouette's bounding box.
func (a *Analyzer) dimensionPrior(first segmentation.Silhouette) (stickmodel.Dimensions, error) {
	h := a.cfg.BodyHeightPrior
	if h <= 0 {
		if first.Area == 0 {
			return stickmodel.Dimensions{}, pose.ErrEmptySilhouette
		}
		// A standing first frame: the bounding-box height approximates the
		// body height.
		h = float64(first.BBox.H())
	}
	return stickmodel.ChildDimensions(h), nil
}
