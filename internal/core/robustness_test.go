package core

import (
	"math/rand"
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// TestAnalyzeSurvivesDroppedFrames simulates a camera hiccup: two frames
// missing from the middle of the clip. The pipeline must still produce a
// full analysis (poses chain over the gap thanks to the seeding windows and
// the containment relaxation fallback).
func TestAnalyzeSurvivesDroppedFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*imaging.Image, 0, len(v.Frames)-2)
	frames = append(frames, v.Frames[:7]...)
	frames = append(frames, v.Frames[9:]...) // drop frames 7 and 8

	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 5)
	res, err := an.Analyze(frames, manual)
	if err != nil {
		t.Fatalf("dropped-frame clip failed: %v", err)
	}
	if len(res.Poses) != len(frames) {
		t.Error("missing poses")
	}
	if res.Report == nil {
		t.Error("missing report")
	}
}

// TestAnalyzeSurvivesCorruptedFrame blasts one frame with heavy noise — a
// transmission glitch. Segmentation of that frame degrades but the clip
// analysis must complete.
func TestAnalyzeSurvivesCorruptedFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	corrupt := v.Frames[11].Clone()
	for i := range corrupt.Pix {
		if rng.Float64() < 0.15 {
			corrupt.Pix[i] = imaging.Color{
				R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)),
			}
		}
	}
	frames := append([]*imaging.Image(nil), v.Frames...)
	frames[11] = corrupt

	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 5)
	res, err := an.Analyze(frames, manual)
	if err != nil {
		t.Fatalf("corrupted-frame clip failed: %v", err)
	}
	if len(res.Poses) != len(frames) {
		t.Error("missing poses")
	}
}

// TestAnalyzePartialOcclusion erases a vertical strip from every frame (a
// pole between camera and jumper). Segmentation loses those columns; the
// analysis must still complete with sane output.
func TestAnalyzePartialOcclusion(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	pole := imaging.Rect{X0: 88, Y0: 0, X1: 92, Y1: v.Params.H - 1}
	frames := make([]*imaging.Image, len(v.Frames))
	for k, f := range v.Frames {
		c := f.Clone()
		imaging.FillRect(c, pole, imaging.Color{R: 90, G: 88, B: 86})
		frames[k] = c
	}

	an, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 5)
	res, err := an.Analyze(frames, manual)
	if err != nil {
		t.Fatalf("occluded clip failed: %v", err)
	}
	// The jump still moves rightward past the pole.
	if res.Track.JumpDistancePx < v.Params.JumpPx*0.5 {
		t.Errorf("distance %.1f px collapsed under occlusion", res.Track.JumpDistancePx)
	}
}
