package artifacts

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/segmentation"
)

func newTestSessions(t *testing.T, cfg SessionConfig) (*Sessions, *Store) {
	t.Helper()
	if cfg.Store == nil {
		store, err := NewStore(Config{MaxBlobs: 32, MaxBytes: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(store.Close)
		cfg.Store = store
	}
	if cfg.Seg == (segmentation.Config{}) {
		cfg.Seg = segmentation.DefaultConfig()
	}
	s, err := NewSessions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, cfg.Store
}

func TestSessionRejectsOutOfOrderChunk(t *testing.T) {
	s, _ := newTestSessions(t, SessionConfig{})
	sess, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(2, 16, 8)

	err = sess.Append(1, frames)
	var ooo *OutOfOrderError
	if !errors.As(err, &ooo) {
		t.Fatalf("Append(1) on a fresh session: %v, want OutOfOrderError", err)
	}
	if ooo.Got != 1 || ooo.Expected != 0 {
		t.Fatalf("OutOfOrderError = %+v, want Got=1 Expected=0", ooo)
	}
	if err := sess.Append(0, frames); err != nil {
		t.Fatal(err)
	}
	// Replaying an already-accepted chunk is also out of order.
	if err := sess.Append(0, frames); !errors.As(err, &ooo) || ooo.Expected != 1 {
		t.Fatalf("replayed chunk: %v, want OutOfOrderError with Expected=1", err)
	}
	if err := sess.Append(2, nil); err == nil {
		t.Fatal("empty chunk accepted")
	}
}

func TestSessionRejectsMismatchedFrameSize(t *testing.T) {
	s, _ := newTestSessions(t, SessionConfig{})
	sess, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(0, testFrames(2, 16, 8)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(1, testFrames(1, 32, 8)); !errors.Is(err, imaging.ErrSizeMismatch) {
		t.Fatalf("mismatched frame size: %v, want ErrSizeMismatch", err)
	}
}

func TestSealIdempotentAndAppendAfterSealRejected(t *testing.T) {
	s, store := newTestSessions(t, SessionConfig{})
	sess, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(5, 64, 16)
	if err := sess.Append(0, frames[:3]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(1, frames[3:]); err != nil {
		t.Fatal(err)
	}
	doc, err := sess.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Frames != 5 || doc.FramesHash == "" || doc.SilhouettesHash == "" {
		t.Fatalf("seal doc = %+v", doc)
	}
	// The frames artifact is the canonical encoding of what was appended.
	blob, kind, ok := store.Get(doc.FramesHash)
	if !ok || kind != KindFrames {
		t.Fatalf("frames artifact: kind %q, ok %v", kind, ok)
	}
	want, err := EncodeFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatal("frames artifact differs from the appended frames")
	}
	if _, kind, ok := store.Get(doc.SilhouettesHash); !ok || kind != KindSilhouettes {
		t.Fatalf("silhouettes artifact: kind %q, ok %v", kind, ok)
	}

	// Sealing again returns the same document without re-running anything.
	again, err := sess.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if *again != *doc {
		t.Fatalf("second seal = %+v, want %+v", again, doc)
	}
	if m := s.Metrics(); m.Sealed != 1 {
		t.Fatalf("sealed counter = %d after an idempotent reseal, want 1", m.Sealed)
	}
	if err := sess.Append(2, frames[:1]); !errors.Is(err, ErrSessionSealed) {
		t.Fatalf("append after seal: %v, want ErrSessionSealed", err)
	}
	// The frames→silhouettes memo is registered for by-hash analyses.
	if h, ok := s.Memo(doc.FramesHash); !ok || h != doc.SilhouettesHash {
		t.Fatalf("memo = %q, %v; want the silhouettes hash", h, ok)
	}
}

func TestSealConcurrentCallsAgree(t *testing.T) {
	s, _ := newTestSessions(t, SessionConfig{})
	sess, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(0, testFrames(4, 64, 16)); err != nil {
		t.Fatal(err)
	}
	const n = 4
	docs := make([]*SealDoc, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			docs[i], _ = sess.Seal()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if docs[i] == nil || *docs[i] != *docs[0] {
			t.Fatalf("concurrent seal %d = %+v, want %+v", i, docs[i], docs[0])
		}
	}
	if m := s.Metrics(); m.Sealed != 1 {
		t.Fatalf("sealed counter = %d after concurrent seals, want 1", m.Sealed)
	}
}

func TestSealEmptySessionFails(t *testing.T) {
	s, _ := newTestSessions(t, SessionConfig{})
	sess, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Seal(); err == nil {
		t.Fatal("sealed a session with no frames")
	}
}

func TestSessionTTLExpiryMidUpload(t *testing.T) {
	now := time.Unix(5000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	s, _ := newTestSessions(t, SessionConfig{TTL: time.Minute, Clock: clock})
	sess, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(0, testFrames(2, 16, 8)); err != nil {
		t.Fatal(err)
	}
	// Each append refreshes the deadline: half a TTL later the session is
	// still reachable...
	advance(30 * time.Second)
	if _, ok := s.Get(sess.ID()); !ok {
		t.Fatal("session expired with half its TTL remaining")
	}
	// ...but a full idle TTL mid-upload expires it, frames and all.
	advance(2 * time.Minute)
	if _, ok := s.Get(sess.ID()); ok {
		t.Fatal("session survived past its idle TTL")
	}
	m := s.Metrics()
	if m.Expired != 1 || m.Open != 0 {
		t.Fatalf("metrics = %+v, want one expired session and none open", m)
	}
}

func TestOpenAfterCloseFails(t *testing.T) {
	store, err := NewStore(Config{MaxBlobs: 4, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	s, err := NewSessions(SessionConfig{Store: store, Seg: segmentation.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Open(); err == nil {
		t.Fatal("Open succeeded on a closed ingest layer")
	}
}

// TestEagerSegmentationOverlapsUpload is the overlap proof: the first
// chunk's speculative segmentation completes while later chunks have not
// been appended yet, and — because the test clip's prefix background
// converges immediately — seal keeps every speculative silhouette and
// still produces exactly the batch pipeline's output.
func TestEagerSegmentationOverlapsUpload(t *testing.T) {
	s, store := newTestSessions(t, SessionConfig{})
	sess, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(7, 64, 16)

	if err := sess.Append(0, frames[:3]); err != nil {
		t.Fatal(err)
	}
	// Wait for the first chunk's speculation to finish BEFORE uploading the
	// rest: segmentation demonstrably overlapped the (still unfinished)
	// upload.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := sess.Status()
		if st.EagerSegmented >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("speculative segmentation never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sess.Append(1, frames[3:5]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(2, frames[5:]); err != nil {
		t.Fatal(err)
	}
	doc, err := sess.Seal()
	if err != nil {
		t.Fatal(err)
	}
	// The clip is built so every >=3-frame prefix background equals the
	// final background (the figure clears its own footprint every frame),
	// so nothing needs re-segmenting at seal.
	if doc.EagerReused != 7 || doc.EagerResegmented != 0 {
		t.Fatalf("seal doc = %+v, want all 7 frames eagerly reused", doc)
	}

	// Bit-identity with the batch pipeline: same background, same masks.
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantBG, err := pipe.EstimateBackground(frames)
	if err != nil {
		t.Fatal(err)
	}
	blob, _, ok := store.Get(doc.SilhouettesHash)
	if !ok {
		t.Fatal("silhouettes artifact missing")
	}
	gotBG, sils, err := DecodeSilhouettes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !sameImage(gotBG, wantBG) {
		t.Fatal("sealed background differs from the batch estimate")
	}
	if len(sils) != len(frames) {
		t.Fatalf("sealed %d silhouettes, want %d", len(sils), len(frames))
	}
	for i, f := range frames {
		st, err := pipe.SegmentFrame(f, wantBG)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMask(sils[i].Mask, st.Object) {
			t.Fatalf("frame %d: sealed silhouette differs from the batch segmentation", i)
		}
	}
	m := s.Metrics()
	if m.EagerSegmented < 7 || m.EagerReused != 7 {
		t.Fatalf("metrics = %+v", m)
	}
}

// reqWithFramesRef builds the minimal valid by-reference request.
func reqWithFramesRef(hash string) core.Request {
	req := core.Request{FramesRef: hash}
	req.Stages = core.AllStages()
	return req
}

func TestResolveRequestMaterialisesRefs(t *testing.T) {
	store, err := NewStore(Config{MaxBlobs: 8, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	frames := testFrames(3, 32, 16)
	blob, err := EncodeFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := store.Put(blob)
	if err != nil {
		t.Fatal(err)
	}

	req, err := ResolveRequest(store, reqWithFramesRef(hash))
	if err != nil {
		t.Fatal(err)
	}
	if req.FramesRef != "" || len(req.Frames) != 3 {
		t.Fatalf("resolved request: ref %q, %d frames", req.FramesRef, len(req.Frames))
	}
	for i := range frames {
		if !sameImage(req.Frames[i], frames[i]) {
			t.Fatalf("frame %d differs after resolution", i)
		}
	}
	if _, err := ResolveRequest(store, reqWithFramesRef("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown ref: %v, want ErrNotFound", err)
	}
	conflicted := reqWithFramesRef(hash)
	conflicted.Frames = frames
	if _, err := ResolveRequest(store, conflicted); err == nil {
		t.Fatal("accepted a request with both inline frames and a frames ref")
	}
}
