package artifacts

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// testFrames builds a small deterministic clip: a dark block marching over
// a light background, one block-width per frame.
func testFrames(n, w, h int) []*imaging.Image {
	bg := imaging.Color{R: 200, G: 200, B: 200}
	fg := imaging.Color{R: 20, G: 20, B: 20}
	frames := make([]*imaging.Image, n)
	for k := range frames {
		f := imaging.NewImageFilled(w, h, bg)
		for y := h / 4; y < h/2; y++ {
			for x := k * 8; x < k*8+4 && x < w; x++ {
				f.Set(x, y, fg)
			}
		}
		frames[k] = f
	}
	return frames
}

func sameImage(a, b *imaging.Image) bool {
	if !a.SameSize(b) {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

func sameMask(a, b *imaging.Mask) bool {
	if !a.SameSize(b) {
		return false
	}
	for i := range a.Bits {
		if a.Bits[i] != b.Bits[i] {
			return false
		}
	}
	return true
}

func TestFramesRoundTrip(t *testing.T) {
	frames := testFrames(3, 32, 16)
	blob, err := EncodeFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := KindOf(blob); !ok || k != KindFrames {
		t.Fatalf("KindOf = %q, %v; want %q, true", k, ok, KindFrames)
	}
	got, err := DecodeFrames(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range got {
		if !sameImage(got[i], frames[i]) {
			t.Fatalf("frame %d changed across the round trip", i)
		}
	}
	// Content addressing is deterministic: re-encoding yields the same hash.
	blob2, err := EncodeFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if HashOf(blob) != HashOf(blob2) {
		t.Fatal("re-encoding the same frames produced a different hash")
	}
}

func TestSilhouettesRoundTrip(t *testing.T) {
	frames := testFrames(3, 32, 16)
	sils := make([]segmentation.Silhouette, len(frames))
	for i := range sils {
		m := imaging.NewMask(32, 16)
		for y := 4; y < 8; y++ {
			for x := i * 8; x < i*8+4; x++ {
				m.Set(x, y, true)
			}
		}
		sils[i] = segmentation.NewSilhouette(i, m)
	}
	bg := imaging.NewImageFilled(32, 16, imaging.Color{R: 200, G: 200, B: 200})

	for _, withBG := range []bool{true, false} {
		var in *imaging.Image
		if withBG {
			in = bg
		}
		blob, err := EncodeSilhouettes(in, sils)
		if err != nil {
			t.Fatal(err)
		}
		if k, ok := KindOf(blob); !ok || k != KindSilhouettes {
			t.Fatalf("KindOf = %q, %v; want %q, true", k, ok, KindSilhouettes)
		}
		gotBG, got, err := DecodeSilhouettes(blob)
		if err != nil {
			t.Fatal(err)
		}
		if withBG != (gotBG != nil) {
			t.Fatalf("background presence: got %v, want %v", gotBG != nil, withBG)
		}
		if withBG && !sameImage(gotBG, bg) {
			t.Fatal("background changed across the round trip")
		}
		if len(got) != len(sils) {
			t.Fatalf("decoded %d silhouettes, want %d", len(got), len(sils))
		}
		for i := range got {
			if got[i].Frame != sils[i].Frame || !sameMask(got[i].Mask, sils[i].Mask) {
				t.Fatalf("silhouette %d changed across the round trip", i)
			}
			// Derived statistics are recomputed, not stored: they must agree.
			if got[i].Area != sils[i].Area || got[i].Centroid != sils[i].Centroid || got[i].BBox != sils[i].BBox {
				t.Fatalf("silhouette %d statistics diverged", i)
			}
		}
	}
}

func TestPosesRoundTrip(t *testing.T) {
	dims := stickmodel.ChildDimensions(60)
	poses := make([]stickmodel.Pose, 4)
	for i := range poses {
		poses[i].X = 10 + float64(i)*3.5
		poses[i].Y = 20.25
		for j := 0; j < stickmodel.NumSticks; j++ {
			poses[i].Rho[j] = float64(i*10+j) + 0.125
		}
	}
	blob, err := EncodePoses(poses, dims)
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := KindOf(blob); !ok || k != KindPoses {
		t.Fatalf("KindOf = %q, %v; want %q, true", k, ok, KindPoses)
	}
	gotPoses, gotDims, err := DecodePoses(blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dimensions changed: got %+v, want %+v", gotDims, dims)
	}
	if len(gotPoses) != len(poses) {
		t.Fatalf("decoded %d poses, want %d", len(gotPoses), len(poses))
	}
	for i := range gotPoses {
		if gotPoses[i] != poses[i] {
			t.Fatalf("pose %d changed: got %+v, want %+v", i, gotPoses[i], poses[i])
		}
	}
}

func TestDecodeRejectsCorruptBlobs(t *testing.T) {
	frames := testFrames(2, 16, 8)
	blob, err := EncodeFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := KindOf([]byte("not an artifact")); ok {
		t.Fatal("KindOf accepted garbage")
	}
	if _, err := DecodeFrames(blob[:len(blob)-3]); err == nil {
		t.Fatal("DecodeFrames accepted a truncated blob")
	}
	if _, err := DecodeFrames(append(bytes.Clone(blob), 0xFF)); err == nil {
		t.Fatal("DecodeFrames accepted trailing bytes")
	}
	// A frames blob is not a poses blob: the kind tag must be honoured.
	if _, _, err := DecodePoses(blob); err == nil {
		t.Fatal("DecodePoses accepted a frames blob")
	}
}

func TestStorePutGet(t *testing.T) {
	s, err := NewStore(Config{MaxBlobs: 8, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	blob, err := EncodeFrames(testFrames(2, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put(blob)
	if err != nil {
		t.Fatal(err)
	}
	if hash != HashOf(blob) {
		t.Fatalf("Put returned %s, want the content hash %s", hash, HashOf(blob))
	}
	got, kind, ok := s.Get(hash)
	if !ok || kind != KindFrames || !bytes.Equal(got, blob) {
		t.Fatalf("Get(%s) = %d bytes, %q, %v", hash, len(got), kind, ok)
	}
	if _, _, ok := s.Get(strings.Repeat("0", 64)); ok {
		t.Fatal("Get answered for an unknown hash")
	}
	if _, err := s.Put([]byte("no header")); err == nil {
		t.Fatal("Put accepted a blob without an artifact header")
	}
	m := s.Metrics()
	if m.Blobs != 1 || m.Stored != 1 || m.Hits != 1 || m.Misses != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Bytes != int64(len(blob)) {
		t.Fatalf("metrics bytes = %d, want %d", m.Bytes, len(blob))
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s, err := NewStore(Config{MaxBlobs: 2, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var hashes []string
	for n := 1; n <= 3; n++ {
		blob, err := EncodeFrames(testFrames(n, 16, 8))
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Put(blob)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	if _, _, ok := s.Get(hashes[0]); ok {
		t.Fatal("oldest blob survived past the blob capacity")
	}
	for _, h := range hashes[1:] {
		if _, _, ok := s.Get(h); !ok {
			t.Fatalf("recent blob %s was evicted", h)
		}
	}
	if m := s.Metrics(); m.EvictedLRU != 1 || m.Blobs != 2 {
		t.Fatalf("metrics = %+v, want one LRU eviction and two blobs", m)
	}
}

func TestStoreTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, err := NewStore(Config{MaxBlobs: 8, MaxBytes: 1 << 20, TTL: time.Minute, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	blob, err := EncodeFrames(testFrames(2, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put(blob)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(59 * time.Second)
	if _, _, ok := s.Get(hash); !ok {
		t.Fatal("blob expired before its TTL")
	}
	now = now.Add(2 * time.Minute) // Get refreshed nothing: TTL runs from Put
	if _, _, ok := s.Get(hash); ok {
		t.Fatal("blob survived past its TTL")
	}
	if m := s.Metrics(); m.EvictedTTL != 1 || m.Blobs != 0 {
		t.Fatalf("metrics = %+v, want one TTL eviction and zero blobs", m)
	}
}

func TestStoreSpillServesMemoryEvictions(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(Config{MaxBlobs: 1, MaxBytes: 1 << 20, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := EncodeFrames(testFrames(1, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeFrames(testFrames(2, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s.Put(first)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(second); err != nil {
		t.Fatal(err) // evicts h1 from memory; its spill file stays
	}
	if _, err := os.Stat(filepath.Join(dir, h1)); err != nil {
		t.Fatalf("spill file for the evicted blob: %v", err)
	}
	got, kind, ok := s.Get(h1)
	if !ok || kind != KindFrames || !bytes.Equal(got, first) {
		t.Fatalf("Get after LRU eviction = %d bytes, %q, %v; want the spilled blob", len(got), kind, ok)
	}
	m := s.Metrics()
	if m.SpillWrites != 2 || m.SpillReads != 1 {
		t.Fatalf("metrics = %+v, want 2 spill writes and 1 spill read", m)
	}
}

func TestStoreRejectsOversizedBlob(t *testing.T) {
	s, err := NewStore(Config{MaxBlobs: 4, MaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob, err := EncodeFrames(testFrames(2, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(blob); err == nil {
		t.Fatal("Put accepted a blob larger than the store's byte capacity")
	}
}

func TestStoreArtifactResolver(t *testing.T) {
	s, err := NewStore(Config{MaxBlobs: 8, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob, err := EncodeFrames(testFrames(2, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Artifact(hash); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("Artifact(%s) = %d bytes, %v", hash, len(got), err)
	}
	if _, err := s.Artifact(strings.Repeat("a", 64)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Artifact(unknown) error = %v, want ErrNotFound", err)
	}
}

// TestStoreOpenStreamsWithoutLoading pins the streaming read path behind
// the HTTP Range route: a memory-resident blob opens as an in-memory
// reader, and a memory-evicted blob opens directly over its spill file —
// seekable, byte-identical, and never re-loaded into the memory tier.
func TestStoreOpenStreamsWithoutLoading(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(Config{MaxBlobs: 1, MaxBytes: 1 << 20, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := EncodeFrames(testFrames(1, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeFrames(testFrames(2, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s.Put(first)
	if err != nil {
		t.Fatal(err)
	}

	// Memory hit: served from the in-memory tier.
	rs, kind, size, ok := s.Open(h1)
	if !ok || kind != KindFrames || size != int64(len(first)) {
		t.Fatalf("Open(memory) = %v kind %q size %d", ok, kind, size)
	}
	got, err := io.ReadAll(rs)
	if err != nil || !bytes.Equal(got, first) {
		t.Fatalf("memory read: %v, %d bytes", err, len(got))
	}

	// Evict h1 from memory; only the spill file remains.
	if _, err := s.Put(second); err != nil {
		t.Fatal(err)
	}
	rs, kind, size, ok = s.Open(h1)
	if !ok || kind != KindFrames || size != int64(len(first)) {
		t.Fatalf("Open(spill) = %v kind %q size %d", ok, kind, size)
	}
	f, isFile := rs.(*os.File)
	if !isFile {
		t.Fatalf("spill open returned %T, want a streaming *os.File", rs)
	}
	defer f.Close()

	// Seekable partial read: the Range path never buffers the whole blob.
	if _, err := f.Seek(3, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	part := make([]byte, 4)
	if _, err := io.ReadFull(f, part); err != nil || !bytes.Equal(part, first[3:7]) {
		t.Fatalf("partial read at 3: %v %q want %q", err, part, first[3:7])
	}

	if m := s.Metrics(); m.SpillReads != 1 {
		t.Fatalf("spill reads = %d, want 1", m.SpillReads)
	}

	if _, _, _, ok := s.Open(strings.Repeat("0", 64)); ok {
		t.Fatal("Open of an unknown hash must miss")
	}
}
