// Streaming clip ingest: chunked upload sessions over the artifact store.
//
// A session accepts a clip as ordered frame chunks. The paper's pipeline is
// batch — Step 1 estimates the background over the *whole* sequence before
// Steps 2-5 touch any frame — so a naive streaming design would either wait
// for the last chunk (no overlap) or segment against a partial background
// (different answer). The session does neither: as each chunk arrives it
// speculatively segments the new frames against the background estimated
// over the frames received so far, tagging every speculative silhouette
// with the content hash of that prefix background. Seal then estimates the
// final background over the complete clip and keeps exactly the
// speculative silhouettes whose background tag matches it, re-segmenting
// the rest. Because SegmentFrame is deterministic in (frame, background),
// the sealed output is bit-identical to the batch pipeline regardless of
// how much speculation survived — overlap is a pure latency win, never a
// result change. On stable footage the prefix estimate converges to the
// final background after a few frames, so in practice most of the clip is
// segmented before the upload finishes.
//
// Seal stores two artifacts — the frames and the segmentation output — and
// registers a frames-hash → silhouettes-hash memo, which the server uses
// to answer a by-hash analysis over the same clip without re-running
// segmentation (the injected silhouettes being, again, bit-identical to a
// recompute).
package artifacts

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/segmentation"
)

// DefaultSessionTTL expires idle ingest sessions (the clip never sealed).
const DefaultSessionTTL = 15 * time.Minute

// DefaultMaxSessions bounds concurrently open sessions.
const DefaultMaxSessions = 64

// memoCap bounds the frames-hash → silhouettes-hash memo registry.
const memoCap = 256

// SessionConfig parameterises the ingest session layer.
type SessionConfig struct {
	// Store receives the sealed artifacts. Required.
	Store *Store
	// Seg is the segmentation configuration sessions segment under. It must
	// equal the analyzer's, or the memo would hand back silhouettes a batch
	// run would not have produced.
	Seg segmentation.Config
	// TTL expires sessions this long after their last append or seal;
	// 0 selects DefaultSessionTTL.
	TTL time.Duration
	// MaxSessions bounds concurrently open sessions; 0 selects
	// DefaultMaxSessions.
	MaxSessions int
	// Clock overrides time.Now, a test seam for session expiry.
	Clock func() time.Time
}

// SessionMetrics is a point-in-time snapshot of the ingest layer.
type SessionMetrics struct {
	Open             int    `json:"open"`
	Opened           uint64 `json:"opened"`
	Sealed           uint64 `json:"sealed"`
	Expired          uint64 `json:"expired"`
	FramesIngested   uint64 `json:"frames_ingested"`
	EagerSegmented   uint64 `json:"eager_segmented"`
	EagerReused      uint64 `json:"eager_reused"`
	EagerResegmented uint64 `json:"eager_resegmented"`
}

// OutOfOrderError rejects a chunk appended out of sequence; Expected is the
// next acceptable chunk index, so clients can resynchronise.
type OutOfOrderError struct {
	Got      int
	Expected int
}

func (e *OutOfOrderError) Error() string {
	return fmt.Sprintf("artifacts: chunk %d out of order; next chunk is %d", e.Got, e.Expected)
}

// ErrSessionSealed rejects appends to a sealed (or sealing) session.
var ErrSessionSealed = errors.New("artifacts: session is sealed")

// SealDoc is the terminal document of one ingest session: the content
// hashes a by-hash analysis request needs, plus the speculation outcome.
type SealDoc struct {
	ClipID          string `json:"clip_id"`
	FramesHash      string `json:"frames_hash"`
	SilhouettesHash string `json:"silhouettes_hash"`
	Frames          int    `json:"frames"`
	// EagerReused counts frames whose speculative (mid-upload) segmentation
	// was computed against what turned out to be the final background and
	// was therefore kept; EagerResegmented counts the rest.
	EagerReused      int `json:"eager_reused"`
	EagerResegmented int `json:"eager_resegmented"`
}

// SessionStatus reports one session's progress.
type SessionStatus struct {
	ClipID string `json:"clip_id"`
	Frames int    `json:"frames"`
	Chunks int    `json:"chunks"`
	// EagerSegmented counts frames whose speculative segmentation has
	// completed (against some prefix background; seal decides reuse).
	EagerSegmented int  `json:"eager_segmented"`
	Sealed         bool `json:"sealed"`
}

// Sessions manages the open ingest sessions of one server.
type Sessions struct {
	cfg   SessionConfig
	pipe  *segmentation.Pipeline
	clock func() time.Time

	mu       sync.Mutex
	sessions map[string]*Session

	memoMu    sync.Mutex
	memo      map[string]string
	memoOrder []string

	opened           atomic.Uint64
	sealedN          atomic.Uint64
	expired          atomic.Uint64
	framesIngested   atomic.Uint64
	eagerSegmented   atomic.Uint64
	eagerReused      atomic.Uint64
	eagerResegmented atomic.Uint64

	janitorStop chan struct{}
	janitor     sync.WaitGroup
}

// NewSessions starts the ingest layer (plus its expiry janitor).
func NewSessions(cfg SessionConfig) (*Sessions, error) {
	if cfg.Store == nil {
		return nil, errors.New("artifacts: SessionConfig.Store is required")
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("artifacts: session TTL must be >= 0, got %v", cfg.TTL)
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultSessionTTL
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	pipe, err := segmentation.New(cfg.Seg)
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Sessions{
		cfg:         cfg,
		pipe:        pipe,
		clock:       clock,
		sessions:    make(map[string]*Session),
		memo:        make(map[string]string),
		janitorStop: make(chan struct{}),
	}
	s.janitor.Add(1)
	go s.runJanitor()
	return s, nil
}

// Open starts a new ingest session.
func (s *Sessions) Open() (*Session, error) {
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	sess := &Session{
		id:      id,
		owner:   s,
		eager:   make(map[int]eagerResult),
		expires: s.clock().Add(s.cfg.TTL),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessions == nil {
		return nil, errors.New("artifacts: ingest layer is closed")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sweepLocked(s.clock())
		if len(s.sessions) >= s.cfg.MaxSessions {
			return nil, fmt.Errorf("artifacts: too many open ingest sessions (max %d)", s.cfg.MaxSessions)
		}
	}
	s.sessions[id] = sess
	s.opened.Add(1)
	return sess, nil
}

// Get returns the session with the given id; ok is false for unknown or
// expired sessions (expiry is also checked lazily here, so a just-expired
// session never answers between janitor sweeps).
func (s *Sessions) Get(id string) (*Session, bool) {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, false
	}
	if sess.expired(now) {
		delete(s.sessions, id)
		s.expired.Add(1)
		return nil, false
	}
	return sess, true
}

// Memo returns the silhouettes-artifact hash memoised for a frames-artifact
// hash by a sealed session, if any.
func (s *Sessions) Memo(framesHash string) (string, bool) {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	h, ok := s.memo[framesHash]
	return h, ok
}

// recordMemo registers a frames→silhouettes association, evicting the
// oldest beyond the registry bound.
func (s *Sessions) recordMemo(framesHash, silsHash string) {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if _, ok := s.memo[framesHash]; !ok {
		s.memoOrder = append(s.memoOrder, framesHash)
		for len(s.memoOrder) > memoCap {
			delete(s.memo, s.memoOrder[0])
			s.memoOrder = s.memoOrder[1:]
		}
	}
	s.memo[framesHash] = silsHash
}

// Metrics returns a snapshot of the ingest counters.
func (s *Sessions) Metrics() SessionMetrics {
	s.mu.Lock()
	s.sweepLocked(s.clock())
	open := len(s.sessions)
	s.mu.Unlock()
	return SessionMetrics{
		Open:             open,
		Opened:           s.opened.Load(),
		Sealed:           s.sealedN.Load(),
		Expired:          s.expired.Load(),
		FramesIngested:   s.framesIngested.Load(),
		EagerSegmented:   s.eagerSegmented.Load(),
		EagerReused:      s.eagerReused.Load(),
		EagerResegmented: s.eagerResegmented.Load(),
	}
}

// Close stops the janitor and drops every open session. Idempotent.
func (s *Sessions) Close() {
	s.mu.Lock()
	if s.sessions == nil {
		s.mu.Unlock()
		return
	}
	s.sessions = nil
	s.mu.Unlock()
	close(s.janitorStop)
	s.janitor.Wait()
}

func (s *Sessions) runJanitor() {
	defer s.janitor.Done()
	interval := s.cfg.TTL / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.mu.Lock()
			s.sweepLocked(s.clock())
			s.mu.Unlock()
		}
	}
}

// sweepLocked drops expired sessions. Caller holds mu.
func (s *Sessions) sweepLocked(now time.Time) {
	for id, sess := range s.sessions {
		if sess.expired(now) {
			delete(s.sessions, id)
			s.expired.Add(1)
		}
	}
}

func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("artifacts: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// eagerResult is one frame's speculative segmentation, tagged with the
// content hash of the prefix background it was computed against.
type eagerResult struct {
	bgHash cache.Key
	sil    segmentation.Silhouette
}

// Session is one in-flight chunked clip upload.
type Session struct {
	id    string
	owner *Sessions

	// sealMu serialises Seal (so a concurrent second Seal waits and then
	// returns the idempotent document instead of racing the first).
	sealMu sync.Mutex

	mu      sync.Mutex
	frames  []*imaging.Image
	chunks  int
	eager   map[int]eagerResult
	sealing bool
	sealed  *SealDoc
	expires time.Time

	// pending tracks in-flight speculative segmentation goroutines.
	pending sync.WaitGroup
}

// ID returns the session identifier.
func (ss *Session) ID() string { return ss.id }

func (ss *Session) expired(now time.Time) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return now.After(ss.expires)
}

// Append adds one chunk of frames to the session. Chunks are numbered from
// zero and must arrive in order — an out-of-sequence chunk is rejected with
// an OutOfOrderError naming the expected index, and a sealed session
// rejects every append. The new frames start segmenting speculatively in
// the background immediately; only Seal waits for anything.
func (ss *Session) Append(chunk int, frames []*imaging.Image) error {
	if len(frames) == 0 {
		return errors.New("artifacts: empty chunk")
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.sealed != nil || ss.sealing {
		return ErrSessionSealed
	}
	if chunk != ss.chunks {
		return &OutOfOrderError{Got: chunk, Expected: ss.chunks}
	}
	for _, f := range frames {
		if len(ss.frames) > 0 && !ss.frames[0].SameSize(f) {
			return fmt.Errorf("artifacts: chunk %d frame is %dx%d, clip is %dx%d: %w",
				chunk, f.W, f.H, ss.frames[0].W, ss.frames[0].H, imaging.ErrSizeMismatch)
		}
		ss.frames = append(ss.frames, f)
	}
	ss.chunks++
	ss.expires = ss.owner.clock().Add(ss.owner.cfg.TTL)
	ss.owner.framesIngested.Add(uint64(len(frames)))

	// Speculatively segment the new frames against the background estimated
	// over everything received so far. The prefix slice is a stable
	// read-only view: frames are append-only and never mutated.
	prefix := ss.frames[:len(ss.frames):len(ss.frames)]
	start := len(prefix) - len(frames)
	ss.pending.Add(1)
	go ss.eagerSegment(prefix, start)
	return nil
}

// eagerSegment runs the speculative segmentation of frames [start, len) of
// the prefix. Errors are swallowed: a failed speculation just means those
// frames re-segment at seal, where errors do surface.
func (ss *Session) eagerSegment(prefix []*imaging.Image, start int) {
	defer ss.pending.Done()
	bg, err := ss.owner.pipe.EstimateBackground(prefix)
	if err != nil {
		return
	}
	tag := imageHash(bg)
	results := make(map[int]eagerResult, len(prefix)-start)
	for i := start; i < len(prefix); i++ {
		st, err := ss.owner.pipe.SegmentFrame(prefix[i], bg)
		if err != nil {
			continue
		}
		results[i] = eagerResult{bgHash: tag, sil: segmentation.NewSilhouette(i, st.Object)}
	}
	ss.mu.Lock()
	for i, r := range results {
		ss.eager[i] = r
	}
	ss.mu.Unlock()
	ss.owner.eagerSegmented.Add(uint64(len(results)))
}

// Status reports the session's progress; the overlap tests poll it to
// observe early-chunk segmentation completing before later chunks upload.
func (ss *Session) Status() SessionStatus {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return SessionStatus{
		ClipID:         ss.id,
		Frames:         len(ss.frames),
		Chunks:         ss.chunks,
		EagerSegmented: len(ss.eager),
		Sealed:         ss.sealed != nil,
	}
}

// Seal closes the session: it waits for in-flight speculation, estimates
// the final background over the complete clip, keeps every speculative
// silhouette whose background tag matches it (re-segmenting the rest),
// stores the frames and segmentation artifacts, registers the
// frames→silhouettes memo, and returns the seal document. Seal is
// idempotent — a second call returns the same document without redoing any
// work — and a failed seal leaves the session open for retry.
func (ss *Session) Seal() (*SealDoc, error) {
	ss.sealMu.Lock()
	defer ss.sealMu.Unlock()

	ss.mu.Lock()
	if ss.sealed != nil {
		doc := ss.sealed
		ss.mu.Unlock()
		return doc, nil
	}
	if len(ss.frames) == 0 {
		ss.mu.Unlock()
		return nil, errors.New("artifacts: cannot seal a session with no frames")
	}
	ss.sealing = true // Append now rejects; pending can only drain
	frames := ss.frames[:len(ss.frames):len(ss.frames)]
	ss.mu.Unlock()

	doc, err := ss.seal(frames)
	ss.mu.Lock()
	if err != nil {
		ss.sealing = false
	} else {
		ss.sealed = doc
		ss.expires = ss.owner.clock().Add(ss.owner.cfg.TTL)
	}
	ss.mu.Unlock()
	if err != nil {
		return nil, err
	}
	ss.owner.sealedN.Add(1)
	return doc, nil
}

func (ss *Session) seal(frames []*imaging.Image) (*SealDoc, error) {
	ss.pending.Wait()

	bg, err := ss.owner.pipe.EstimateBackground(frames)
	if err != nil {
		return nil, err
	}
	finalTag := imageHash(bg)

	ss.mu.Lock()
	eager := make(map[int]eagerResult, len(ss.eager))
	for i, r := range ss.eager {
		eager[i] = r
	}
	ss.mu.Unlock()

	sils := make([]segmentation.Silhouette, len(frames))
	reused, resegmented := 0, 0
	for i := range frames {
		if r, ok := eager[i]; ok && r.bgHash == finalTag {
			sils[i] = r.sil
			reused++
			continue
		}
		st, err := ss.owner.pipe.SegmentFrame(frames[i], bg)
		if err != nil {
			return nil, fmt.Errorf("artifacts: seal frame %d: %w", i, err)
		}
		sils[i] = segmentation.NewSilhouette(i, st.Object)
		resegmented++
	}

	framesBlob, err := EncodeFrames(frames)
	if err != nil {
		return nil, err
	}
	framesHash, err := ss.owner.cfg.Store.Put(framesBlob)
	if err != nil {
		return nil, err
	}
	silsBlob, err := EncodeSilhouettes(bg, sils)
	if err != nil {
		return nil, err
	}
	silsHash, err := ss.owner.cfg.Store.Put(silsBlob)
	if err != nil {
		return nil, err
	}
	ss.owner.recordMemo(framesHash, silsHash)
	ss.owner.eagerReused.Add(uint64(reused))
	ss.owner.eagerResegmented.Add(uint64(resegmented))
	return &SealDoc{
		ClipID:           ss.id,
		FramesHash:       framesHash,
		SilhouettesHash:  silsHash,
		Frames:           len(frames),
		EagerReused:      reused,
		EagerResegmented: resegmented,
	}, nil
}

// imageHash content-addresses one image (the background tag).
func imageHash(img *imaging.Image) cache.Key {
	k := cache.NewKeyer()
	k.WriteInt(img.W)
	k.WriteInt(img.H)
	buf := make([]byte, 0, 3*len(img.Pix))
	for _, px := range img.Pix {
		buf = append(buf, px.R, px.G, px.B)
	}
	k.WriteBytes(buf)
	return k.Sum()
}
