// Package artifacts is the content-addressed blob store behind the
// streaming ingest path: frames, silhouettes and pose sequences are stored
// once under the SHA-256 of their canonical binary encoding, and every
// later consumer — a re-score, a worker node, a by-hash analysis request —
// names them by that hash instead of re-shipping the bytes.
//
// Three typed artifact kinds exist, each with a deterministic, versioned
// binary encoding (a four-byte magic plus a kind byte, then little-endian
// fields): a clip's frames, the segmentation output (background plus
// per-frame silhouettes, bundled so one hash covers the whole stage), and
// a pose sequence with its calibrated dimensions. The encodings round-trip
// exactly, so a request resolved from hashes is bit-identical to the same
// request built inline — and therefore hashes to the same cache key.
//
// The Store is a bounded two-tier cache: an in-memory LRU limited by blob
// count and total bytes, with TTL expiry (janitor plus lazy checks, the
// same pattern as internal/cache), and an optional content-addressed disk
// spill directory. Puts write through to the spill; an LRU eviction drops
// only the memory copy (the spill is the overflow tier and survives
// restarts), while a TTL expiry removes both. The Resolver seam — local
// store first, then an HTTP pull from the originating front end — is how
// worker nodes materialise by-hash payloads.
package artifacts

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// Kind names an artifact type; the version suffix changes whenever the
// binary encoding does, so stale blobs can never be mis-decoded.
type Kind string

// The typed artifact kinds.
const (
	KindFrames      Kind = "frames/v1"
	KindSilhouettes Kind = "silhouettes/v1"
	KindPoses       Kind = "poses/v1"
)

// magic prefixes every artifact blob; the byte after it is the kind tag.
var magic = []byte("SLJA")

const (
	tagFrames      byte = 1
	tagSilhouettes byte = 2
	tagPoses       byte = 3
)

// Encoding sanity bounds: dimensions and counts beyond these are corrupt
// blobs, not plausible clips, and are rejected before any allocation.
const (
	maxDim    = 1 << 15 // frames wider/taller than 32768 px are rejected
	maxItems  = 1 << 20 // per-blob frame/silhouette/pose count bound
	headerLen = 5       // len(magic) + 1 kind byte
)

// ErrNotFound is returned by resolvers for hashes they cannot materialise.
var ErrNotFound = errors.New("artifacts: artifact not found")

// HashOf returns the content address of a blob: its SHA-256, lowercase hex.
func HashOf(blob []byte) string {
	sum := sha256.Sum256(blob)
	return cache.Key(sum).String()
}

// KindOf inspects a blob's header. ok is false for anything that is not a
// versioned artifact encoding.
func KindOf(blob []byte) (Kind, bool) {
	if len(blob) < headerLen || !bytes.Equal(blob[:len(magic)], magic) {
		return "", false
	}
	switch blob[len(magic)] {
	case tagFrames:
		return KindFrames, true
	case tagSilhouettes:
		return KindSilhouettes, true
	case tagPoses:
		return KindPoses, true
	}
	return "", false
}

// enc accumulates the little-endian binary encoding of one artifact.
type enc struct {
	buf []byte
}

func newEnc(tag byte, sizeHint int) *enc {
	e := &enc{buf: make([]byte, 0, headerLen+sizeHint)}
	e.buf = append(e.buf, magic...)
	e.buf = append(e.buf, tag)
	return e
}

func (e *enc) u32(v int) { e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(v)) }
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) raw(b []byte)   { e.buf = append(e.buf, b...) }
func (e *enc) byteVal(b byte) { e.buf = append(e.buf, b) }
func (e *enc) image(img *imaging.Image) {
	e.u32(img.W)
	e.u32(img.H)
	for _, px := range img.Pix {
		e.buf = append(e.buf, px.R, px.G, px.B)
	}
}

// dec walks a blob during decoding, failing on any truncation.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("artifacts: truncated blob (need %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u32() int {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint32(b))
}

func (d *dec) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *dec) byteVal() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) image() *imaging.Image {
	w, h := d.u32(), d.u32()
	if d.err != nil {
		return nil
	}
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim {
		d.fail("artifacts: invalid image size %dx%d", w, h)
		return nil
	}
	rgb := d.take(3 * w * h)
	if rgb == nil {
		return nil
	}
	img := imaging.NewImage(w, h)
	for i := range img.Pix {
		img.Pix[i] = imaging.Color{R: rgb[3*i], G: rgb[3*i+1], B: rgb[3*i+2]}
	}
	return img
}

// done checks that the blob was consumed exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("artifacts: %d trailing bytes after blob body", len(d.buf)-d.off)
	}
	return nil
}

func open(blob []byte, want Kind) (*dec, error) {
	k, ok := KindOf(blob)
	if !ok {
		return nil, errors.New("artifacts: not an artifact blob")
	}
	if k != want {
		return nil, fmt.Errorf("artifacts: blob is %s, want %s", k, want)
	}
	return &dec{buf: blob, off: headerLen}, nil
}

// EncodeFrames encodes a clip as a frames/v1 blob: a frame count, then per
// frame its dimensions and raw interleaved RGB. The encoding is canonical —
// the same frames always produce the same bytes, hence the same hash.
func EncodeFrames(frames []*imaging.Image) ([]byte, error) {
	if len(frames) == 0 {
		return nil, errors.New("artifacts: no frames to encode")
	}
	size := 4
	for _, f := range frames {
		size += 8 + 3*len(f.Pix)
	}
	e := newEnc(tagFrames, size)
	e.u32(len(frames))
	for _, f := range frames {
		e.image(f)
	}
	return e.buf, nil
}

// DecodeFrames reverses EncodeFrames exactly.
func DecodeFrames(blob []byte) ([]*imaging.Image, error) {
	d, err := open(blob, KindFrames)
	if err != nil {
		return nil, err
	}
	n := d.u32()
	if d.err == nil && (n <= 0 || n > maxItems) {
		d.fail("artifacts: invalid frame count %d", n)
	}
	var frames []*imaging.Image
	for i := 0; i < n && d.err == nil; i++ {
		frames = append(frames, d.image())
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return frames, nil
}

// EncodeSilhouettes encodes one segmentation output — the Step 1 background
// estimate plus every frame's silhouette mask (bit-packed row-major, MSB
// first) — as a silhouettes/v1 blob. Bundling the background keeps the whole
// stage output under a single hash, so a by-hash re-score reproduces the
// batch path's response exactly.
func EncodeSilhouettes(bg *imaging.Image, sils []segmentation.Silhouette) ([]byte, error) {
	if len(sils) == 0 {
		return nil, errors.New("artifacts: no silhouettes to encode")
	}
	size := 5
	if bg != nil {
		size += 8 + 3*len(bg.Pix)
	}
	for _, s := range sils {
		size += 12 + (len(s.Mask.Bits)+7)/8
	}
	e := newEnc(tagSilhouettes, size)
	if bg != nil {
		e.byteVal(1)
		e.image(bg)
	} else {
		e.byteVal(0)
	}
	e.u32(len(sils))
	for _, s := range sils {
		e.u32(s.Frame)
		e.u32(s.Mask.W)
		e.u32(s.Mask.H)
		e.raw(packMask(s.Mask))
	}
	return e.buf, nil
}

// DecodeSilhouettes reverses EncodeSilhouettes; silhouette statistics are
// rederived from the masks, so they cannot drift from them.
func DecodeSilhouettes(blob []byte) (*imaging.Image, []segmentation.Silhouette, error) {
	d, err := open(blob, KindSilhouettes)
	if err != nil {
		return nil, nil, err
	}
	var bg *imaging.Image
	if d.byteVal() == 1 {
		bg = d.image()
	}
	n := d.u32()
	if d.err == nil && (n <= 0 || n > maxItems) {
		d.fail("artifacts: invalid silhouette count %d", n)
	}
	var sils []segmentation.Silhouette
	for i := 0; i < n && d.err == nil; i++ {
		frame, w, h := d.u32(), d.u32(), d.u32()
		if d.err != nil {
			break
		}
		if w <= 0 || h <= 0 || w > maxDim || h > maxDim {
			d.fail("artifacts: invalid mask size %dx%d", w, h)
			break
		}
		packed := d.take((w*h + 7) / 8)
		if packed == nil {
			break
		}
		sils = append(sils, segmentation.NewSilhouette(frame, unpackMask(w, h, packed)))
	}
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return bg, sils, nil
}

// EncodePoses encodes a pose sequence plus its calibrated stick dimensions
// as a poses/v1 blob (IEEE-754 bits, so float round-trips are exact).
func EncodePoses(poses []stickmodel.Pose, dims stickmodel.Dimensions) ([]byte, error) {
	if len(poses) == 0 {
		return nil, errors.New("artifacts: no poses to encode")
	}
	e := newEnc(tagPoses, 4+len(poses)*(2+stickmodel.NumSticks)*8+2*stickmodel.NumSticks*8)
	e.u32(len(poses))
	for _, p := range poses {
		e.f64(p.X)
		e.f64(p.Y)
		for _, rho := range p.Rho {
			e.f64(rho)
		}
	}
	for i := 0; i < stickmodel.NumSticks; i++ {
		e.f64(dims.Length[i])
		e.f64(dims.Thick[i])
	}
	return e.buf, nil
}

// DecodePoses reverses EncodePoses exactly.
func DecodePoses(blob []byte) ([]stickmodel.Pose, stickmodel.Dimensions, error) {
	d, err := open(blob, KindPoses)
	if err != nil {
		return nil, stickmodel.Dimensions{}, err
	}
	n := d.u32()
	if d.err == nil && (n <= 0 || n > maxItems) {
		d.fail("artifacts: invalid pose count %d", n)
	}
	var poses []stickmodel.Pose
	for i := 0; i < n && d.err == nil; i++ {
		var p stickmodel.Pose
		p.X, p.Y = d.f64(), d.f64()
		for j := 0; j < stickmodel.NumSticks; j++ {
			p.Rho[j] = d.f64()
		}
		poses = append(poses, p)
	}
	var dims stickmodel.Dimensions
	for i := 0; i < stickmodel.NumSticks; i++ {
		dims.Length[i], dims.Thick[i] = d.f64(), d.f64()
	}
	if err := d.done(); err != nil {
		return nil, stickmodel.Dimensions{}, err
	}
	return poses, dims, nil
}

// packMask bit-packs a mask row-major, MSB first within each byte — the
// same layout as jobs.PackMask and the web service's mask_b64 field.
func packMask(m *imaging.Mask) []byte {
	packed := make([]byte, (len(m.Bits)+7)/8)
	for i, b := range m.Bits {
		if b {
			packed[i/8] |= 1 << (7 - i%8)
		}
	}
	return packed
}

func unpackMask(w, h int, packed []byte) *imaging.Mask {
	m := imaging.NewMask(w, h)
	for i := range m.Bits {
		m.Bits[i] = packed[i/8]&(1<<(7-i%8)) != 0
	}
	return m
}

// Config parameterises a Store.
type Config struct {
	// MaxBlobs bounds the in-memory blob count; must be >= 1.
	MaxBlobs int
	// MaxBytes bounds the total in-memory blob bytes; must be >= 1.
	MaxBytes int64
	// TTL expires blobs this long after their last store; 0 disables expiry.
	TTL time.Duration
	// SpillDir, when set, write-through-spills every blob to a
	// content-addressed file (<dir>/<hash>) and serves memory misses from
	// it. LRU evictions keep the spill copy (it is the overflow tier, and
	// it survives restarts); TTL expiry removes it.
	SpillDir string
	// Clock overrides time.Now, a test seam for TTL expiry.
	Clock func() time.Time
	// OnStore, when set, observes every successful Put with the stored
	// blob — the write-through seam successor replication hangs off.
	// Called outside the store's lock.
	OnStore func(hash string, blob []byte)
}

// DefaultConfig bounds the store for a small deployment: enough for a few
// dozen clips in flight, with an hour to re-reference them.
func DefaultConfig() Config {
	return Config{MaxBlobs: 256, MaxBytes: 512 << 20, TTL: time.Hour}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.MaxBlobs < 1 {
		return fmt.Errorf("artifacts: MaxBlobs must be >= 1, got %d", c.MaxBlobs)
	}
	if c.MaxBytes < 1 {
		return fmt.Errorf("artifacts: MaxBytes must be >= 1, got %d", c.MaxBytes)
	}
	if c.TTL < 0 {
		return fmt.Errorf("artifacts: TTL must be >= 0, got %v", c.TTL)
	}
	return nil
}

// Metrics is a point-in-time snapshot of the store.
type Metrics struct {
	Blobs         int    `json:"blobs"`
	Bytes         int64  `json:"bytes"`
	CapacityBlobs int    `json:"capacity_blobs"`
	CapacityBytes int64  `json:"capacity_bytes"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Stored        uint64 `json:"stored"`
	EvictedTTL    uint64 `json:"evicted_ttl"`
	EvictedLRU    uint64 `json:"evicted_lru"`
	SpillWrites   uint64 `json:"spill_writes"`
	SpillReads    uint64 `json:"spill_reads"`
	// Pulls / PullFailures count worker round-trips fetching artifacts from
	// their originating front end (HTTPResolver).
	Pulls        uint64 `json:"pulls"`
	PullFailures uint64 `json:"pull_failures"`
}

// blobEntry is one stored blob; expires is zero when TTL is disabled.
type blobEntry struct {
	key     cache.Key
	blob    []byte
	kind    Kind
	expires time.Time
	elem    *list.Element
}

// Store is the bounded content-addressed blob store.
type Store struct {
	cfg   Config
	clock func() time.Time

	mu      sync.Mutex
	entries map[cache.Key]*blobEntry
	lru     *list.List // front = most recently used; values are *blobEntry
	bytes   int64
	closed  bool

	hits         uint64
	misses       uint64
	stored       uint64
	evictedTTL   uint64
	evictedLRU   uint64
	spillWrites  uint64
	spillReads   uint64
	pulls        uint64
	pullFailures uint64

	janitorStop chan struct{}
	janitor     sync.WaitGroup
}

// NewStore starts a store (plus a TTL janitor when expiry is enabled),
// creating the spill directory if configured.
func NewStore(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("artifacts: spill dir: %w", err)
		}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Store{
		cfg:         cfg,
		clock:       clock,
		entries:     make(map[cache.Key]*blobEntry),
		lru:         list.New(),
		janitorStop: make(chan struct{}),
	}
	if cfg.TTL > 0 {
		s.janitor.Add(1)
		go s.runJanitor()
	}
	return s, nil
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// Put stores a blob under its content address, returning the hash. The blob
// must carry a valid artifact header. Storing an already-present hash
// refreshes its TTL and recency. Blobs larger than the byte capacity are
// rejected (they could never be admitted).
func (s *Store) Put(blob []byte) (string, error) {
	kind, ok := KindOf(blob)
	if !ok {
		return "", errors.New("artifacts: blob has no valid artifact header")
	}
	if int64(len(blob)) > s.cfg.MaxBytes {
		return "", fmt.Errorf("artifacts: blob of %d bytes exceeds the store's %d-byte capacity", len(blob), s.cfg.MaxBytes)
	}
	sum := sha256.Sum256(blob)
	key := cache.Key(sum)
	now := s.clock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errors.New("artifacts: store is closed")
	}
	var expires time.Time
	if s.cfg.TTL > 0 {
		expires = now.Add(s.cfg.TTL)
	}
	if e, ok := s.entries[key]; ok {
		e.expires = expires
		s.lru.MoveToFront(e.elem)
		s.stored++
		s.mu.Unlock()
		if s.cfg.OnStore != nil {
			// A refresh still notifies: the observer (replication) may not
			// have seen the blob yet, and dedups what it has.
			s.cfg.OnStore(key.String(), blob)
		}
		return key.String(), nil
	}
	for len(s.entries) >= s.cfg.MaxBlobs || s.bytes+int64(len(blob)) > s.cfg.MaxBytes {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		s.removeLocked(oldest.Value.(*blobEntry), false)
		s.evictedLRU++
	}
	e := &blobEntry{key: key, blob: blob, kind: kind, expires: expires}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.bytes += int64(len(blob))
	s.stored++
	spill := s.cfg.SpillDir
	s.mu.Unlock()

	if spill != "" {
		if err := s.writeSpill(key.String(), blob); err != nil {
			return "", err
		}
	}
	if s.cfg.OnStore != nil {
		s.cfg.OnStore(key.String(), blob)
	}
	return key.String(), nil
}

// Get returns the blob stored under the given hex hash, consulting the
// spill tier on a memory miss (spilled blobs are verified against their
// hash and re-admitted). ok is false when the hash is unknown or expired.
func (s *Store) Get(hash string) ([]byte, Kind, bool) {
	key, ok := cache.ParseKey(hash)
	if !ok {
		return nil, "", false
	}
	now := s.clock()
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && s.cfg.TTL > 0 && !e.expires.After(now) {
		s.removeLocked(e, true)
		s.evictedTTL++
		ok = false
	}
	if ok {
		s.lru.MoveToFront(e.elem)
		s.hits++
		blob, kind := e.blob, e.kind
		s.mu.Unlock()
		return blob, kind, true
	}
	spill := s.cfg.SpillDir
	s.mu.Unlock()

	if spill != "" {
		if blob, kind, ok := s.readSpill(key, hash); ok {
			return blob, kind, true
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, "", false
}

// Open returns a seekable reader over the blob stored under hash, for
// streaming (range) HTTP serving. Memory hits are served from the in-memory
// blob; a memory miss with a spill tier streams straight from the spill
// file WITHOUT loading it into memory — the point of range requests is
// exactly that very large clips should not transit the memory tier. A
// spill-backed reader implements io.Closer and the caller must close it.
// The streamed spill bytes are not re-hashed (that would require the full
// read this path avoids); clients can verify against the ETag/hash
// themselves, and the non-streaming Get path still verifies on read.
func (s *Store) Open(hash string) (io.ReadSeeker, Kind, int64, bool) {
	key, ok := cache.ParseKey(hash)
	if !ok {
		return nil, "", 0, false
	}
	now := s.clock()
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && s.cfg.TTL > 0 && !e.expires.After(now) {
		s.removeLocked(e, true)
		s.evictedTTL++
		ok = false
	}
	if ok {
		s.lru.MoveToFront(e.elem)
		s.hits++
		blob, kind := e.blob, e.kind
		s.mu.Unlock()
		return bytes.NewReader(blob), kind, int64(len(blob)), true
	}
	spill := s.cfg.SpillDir
	s.mu.Unlock()

	if spill != "" {
		if f, kind, size, ok := s.openSpill(hash); ok {
			return f, kind, size, true
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, "", 0, false
}

// openSpill streams a spill file: the artifact header is read to recover
// the kind, then the reader is rewound to the start.
func (s *Store) openSpill(hash string) (io.ReadSeeker, Kind, int64, bool) {
	path := filepath.Join(s.cfg.SpillDir, hash)
	f, err := os.Open(path)
	if err != nil {
		return nil, "", 0, false
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, "", 0, false
	}
	head := make([]byte, headerLen)
	if _, err := io.ReadFull(f, head); err != nil {
		f.Close()
		return nil, "", 0, false
	}
	kind, ok := KindOf(head)
	if !ok {
		f.Close()
		return nil, "", 0, false
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, "", 0, false
	}
	s.mu.Lock()
	s.spillReads++
	s.hits++
	s.mu.Unlock()
	return f, kind, st.Size(), true
}

// Artifact implements Resolver over the local store.
func (s *Store) Artifact(hash string) ([]byte, error) {
	if blob, _, ok := s.Get(hash); ok {
		return blob, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, hash)
}

// RecordPull counts one worker pull round-trip against the store's metrics.
func (s *Store) RecordPull(ok bool) {
	s.mu.Lock()
	s.pulls++
	if !ok {
		s.pullFailures++
	}
	s.mu.Unlock()
}

// Metrics returns a consistent snapshot of occupancy and counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(s.clock())
	return Metrics{
		Blobs:         len(s.entries),
		Bytes:         s.bytes,
		CapacityBlobs: s.cfg.MaxBlobs,
		CapacityBytes: s.cfg.MaxBytes,
		Hits:          s.hits,
		Misses:        s.misses,
		Stored:        s.stored,
		EvictedTTL:    s.evictedTTL,
		EvictedLRU:    s.evictedLRU,
		SpillWrites:   s.spillWrites,
		SpillReads:    s.spillReads,
		Pulls:         s.pulls,
		PullFailures:  s.pullFailures,
	}
}

// Close stops the janitor and drops all in-memory blobs (spill files
// persist — they are the restart-survival tier). Idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.entries = make(map[cache.Key]*blobEntry)
	s.lru.Init()
	s.bytes = 0
	s.mu.Unlock()
	close(s.janitorStop)
	s.janitor.Wait()
}

// writeSpill persists one blob content-addressed, atomically via a rename
// so a crashed write never leaves a corrupt hash-named file.
func (s *Store) writeSpill(hash string, blob []byte) error {
	path := filepath.Join(s.cfg.SpillDir, hash)
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: an existing file is already correct
	}
	tmp, err := os.CreateTemp(s.cfg.SpillDir, hash+".tmp*")
	if err != nil {
		return fmt.Errorf("artifacts: spill: %w", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("artifacts: spill: %w", werr)
	}
	s.mu.Lock()
	s.spillWrites++
	s.mu.Unlock()
	return nil
}

// readSpill serves a memory miss from the spill tier, verifying the file
// against its hash (a corrupt file is removed, never served) and
// re-admitting the blob into memory.
func (s *Store) readSpill(key cache.Key, hash string) ([]byte, Kind, bool) {
	path := filepath.Join(s.cfg.SpillDir, hash)
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, "", false
	}
	if sha256.Sum256(blob) != key {
		_ = os.Remove(path)
		return nil, "", false
	}
	kind, ok := KindOf(blob)
	if !ok {
		_ = os.Remove(path)
		return nil, "", false
	}
	now := s.clock()
	s.mu.Lock()
	if !s.closed {
		if _, present := s.entries[key]; !present {
			for len(s.entries) >= s.cfg.MaxBlobs || s.bytes+int64(len(blob)) > s.cfg.MaxBytes {
				oldest := s.lru.Back()
				if oldest == nil {
					break
				}
				s.removeLocked(oldest.Value.(*blobEntry), false)
				s.evictedLRU++
			}
			var expires time.Time
			if s.cfg.TTL > 0 {
				expires = now.Add(s.cfg.TTL)
			}
			e := &blobEntry{key: key, blob: blob, kind: kind, expires: expires}
			e.elem = s.lru.PushFront(e)
			s.entries[key] = e
			s.bytes += int64(len(blob))
		}
	}
	s.spillReads++
	s.hits++
	s.mu.Unlock()
	return blob, kind, true
}

// runJanitor periodically expires blobs, mirroring the result cache.
func (s *Store) runJanitor() {
	defer s.janitor.Done()
	interval := s.cfg.TTL / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.mu.Lock()
			s.sweepLocked(s.clock())
			s.mu.Unlock()
		}
	}
}

// sweepLocked drops expired blobs (and their spill files). Caller holds mu.
func (s *Store) sweepLocked(now time.Time) {
	if s.cfg.TTL <= 0 {
		return
	}
	for _, e := range s.entries {
		if !e.expires.After(now) {
			s.removeLocked(e, true)
			s.evictedTTL++
		}
	}
}

// removeLocked unlinks one blob; dropSpill also removes its spill file
// (TTL expiry — the artifact is genuinely gone), while LRU evictions keep
// it as the overflow tier. Caller holds mu.
func (s *Store) removeLocked(e *blobEntry, dropSpill bool) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.key)
	s.bytes -= int64(len(e.blob))
	if dropSpill && s.cfg.SpillDir != "" {
		_ = os.Remove(filepath.Join(s.cfg.SpillDir, e.key.String()))
	}
}

// Resolver materialises an artifact blob from its content hash. The local
// Store implements it directly; HTTPResolver adds the worker pull protocol.
type Resolver interface {
	// Artifact returns the blob stored under the hex hash, or an error
	// wrapping ErrNotFound when it cannot be materialised.
	Artifact(hash string) ([]byte, error)
}

// HTTPResolver resolves hashes against the local store first, then pulls
// misses from the originating front end (GET {origin}/v1/artifacts/{hash}),
// verifies them against the hash, and caches them locally — the second
// by-hash job for the same clip never leaves the node.
type HTTPResolver struct {
	// Local is the node's own store; consulted first, populated on pull.
	Local *Store
	// Origin is the front end's base URL; empty disables pulling.
	Origin string
	// Client overrides http.DefaultClient.
	Client *http.Client
}

// Artifact implements Resolver.
func (h *HTTPResolver) Artifact(hash string) ([]byte, error) {
	if h.Local != nil {
		if blob, _, ok := h.Local.Get(hash); ok {
			return blob, nil
		}
	}
	if h.Origin == "" {
		return nil, fmt.Errorf("%w: %s (no artifact origin to pull from)", ErrNotFound, hash)
	}
	key, ok := cache.ParseKey(hash)
	if !ok {
		return nil, fmt.Errorf("artifacts: malformed hash %q", hash)
	}
	blob, err := h.pull(hash)
	if h.Local != nil {
		h.Local.RecordPull(err == nil)
	}
	if err != nil {
		return nil, err
	}
	if sha256.Sum256(blob) != key {
		return nil, fmt.Errorf("artifacts: pulled blob does not hash to %s", hash)
	}
	if h.Local != nil {
		if _, err := h.Local.Put(blob); err != nil {
			return nil, err
		}
	}
	return blob, nil
}

func (h *HTTPResolver) pull(hash string) ([]byte, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(h.Origin + "/v1/artifacts/" + hash)
	if err != nil {
		return nil, fmt.Errorf("artifacts: pull %s: %w", hash, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s (origin %s)", ErrNotFound, hash, h.Origin)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("artifacts: pull %s: origin answered %s", hash, resp.Status)
	}
	var limit int64 = 1 << 30
	if h.Local != nil && h.Local.cfg.MaxBytes < limit {
		limit = h.Local.cfg.MaxBytes
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("artifacts: pull %s: %w", hash, err)
	}
	if int64(len(blob)) > limit {
		return nil, fmt.Errorf("artifacts: pull %s: blob exceeds the %d-byte pull limit", hash, limit)
	}
	return blob, nil
}
