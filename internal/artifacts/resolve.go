package artifacts

import (
	"fmt"

	"github.com/sljmotion/sljmotion/internal/core"
)

// ResolveRequest materialises every artifact reference of a request into
// its inline field and clears the reference, so the returned request is
// indistinguishable from one built inline — same Validate outcome, same
// cache key, same analysis. A request carrying both a reference and the
// corresponding inline artifact is rejected: the two could disagree, and
// there is no principled winner.
func ResolveRequest(r Resolver, req core.Request) (core.Request, error) {
	if req.FramesRef != "" {
		if len(req.Frames) > 0 {
			return core.Request{}, fmt.Errorf("artifacts: request carries both inline frames and frames ref %s", req.FramesRef)
		}
		blob, err := r.Artifact(req.FramesRef)
		if err != nil {
			return core.Request{}, fmt.Errorf("frames ref: %w", err)
		}
		frames, err := DecodeFrames(blob)
		if err != nil {
			return core.Request{}, fmt.Errorf("frames ref %s: %w", req.FramesRef, err)
		}
		req.Frames = frames
		req.FramesRef = ""
	}
	if req.SilhouettesRef != "" {
		if len(req.Silhouettes) > 0 {
			return core.Request{}, fmt.Errorf("artifacts: request carries both inline silhouettes and silhouettes ref %s", req.SilhouettesRef)
		}
		blob, err := r.Artifact(req.SilhouettesRef)
		if err != nil {
			return core.Request{}, fmt.Errorf("silhouettes ref: %w", err)
		}
		bg, sils, err := DecodeSilhouettes(blob)
		if err != nil {
			return core.Request{}, fmt.Errorf("silhouettes ref %s: %w", req.SilhouettesRef, err)
		}
		req.Silhouettes = sils
		if req.Background == nil {
			req.Background = bg
		}
		req.SilhouettesRef = ""
	}
	if req.PosesRef != "" {
		if len(req.Poses) > 0 {
			return core.Request{}, fmt.Errorf("artifacts: request carries both inline poses and poses ref %s", req.PosesRef)
		}
		blob, err := r.Artifact(req.PosesRef)
		if err != nil {
			return core.Request{}, fmt.Errorf("poses ref: %w", err)
		}
		poses, dims, err := DecodePoses(blob)
		if err != nil {
			return core.Request{}, fmt.Errorf("poses ref %s: %w", req.PosesRef, err)
		}
		req.Poses = poses
		req.Dimensions = dims
		req.PosesRef = ""
	}
	return req, nil
}
