// Package track analyses an estimated pose sequence over time: centroid and
// joint trajectories, takeoff and landing detection, phase segmentation
// (initiation / flight / landing), and jump-distance measurement. It backs
// Section 5's "track the movement of the jumper" and supplies the stage
// windows that the scoring rules of Section 4 are evaluated over.
package track

import (
	"errors"
	"fmt"
	"math"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// Phase labels one frame of the jump.
type Phase int

// Phases of a standing long jump. Enum starts at one so the zero value is
// invalid.
const (
	PhaseInitiation Phase = iota + 1
	PhaseFlight
	PhaseLanding
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseInitiation:
		return "initiation"
	case PhaseFlight:
		return "flight"
	case PhaseLanding:
		return "landing"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Window is an inclusive frame index range.
type Window struct {
	From, To int
}

// Len returns the number of frames in the window.
func (w Window) Len() int { return w.To - w.From + 1 }

// Contains reports whether frame k falls inside the window.
func (w Window) Contains(k int) bool { return k >= w.From && k <= w.To }

// Analysis is the result of tracking a pose sequence.
type Analysis struct {
	// Phases labels every frame.
	Phases []Phase
	// TakeoffFrame is the first airborne frame; LandingFrame the first
	// frame of renewed ground contact.
	TakeoffFrame, LandingFrame int
	// Initiation and AirLanding are the scoring windows derived from the
	// phases (paper Section 4 uses fixed windows; see FixedWindows).
	Initiation, AirLanding Window
	// JumpDistancePx is the ankle displacement from takeoff stance to
	// landing stance in pixels; JumpDistanceM its metric conversion.
	JumpDistancePx float64
	JumpDistanceM  float64
	// ApexRisePx is the maximum trunk-centre rise above standing height
	// during flight.
	ApexRisePx float64
	// AnkleTrajectory and CentreTrajectory are per-frame positions.
	AnkleTrajectory  []imaging.Vec2
	CentreTrajectory []imaging.Vec2
}

// Tracker derives jump analyses from pose sequences.
type Tracker struct {
	dims stickmodel.Dimensions
	// pxPerMeter calibrates distance; ≤0 leaves metric fields zero.
	pxPerMeter float64
	// groundTol is the height in pixels above the stance ankle level at
	// which a foot still counts as grounded.
	groundTol float64
}

// NewTracker builds a tracker for the given body dimensions.
// pxPerMeter ≤ 0 disables metric conversion.
func NewTracker(dims stickmodel.Dimensions, pxPerMeter float64) *Tracker {
	return &Tracker{dims: dims, pxPerMeter: pxPerMeter, groundTol: 3}
}

// ErrTooShort is returned for sequences with fewer than four frames.
var ErrTooShort = errors.New("track: sequence too short")

// Analyze tracks the sequence and segments the jump phases. It detects
// takeoff as the first frame where the ankle rises more than groundTol
// above its stance level and landing as the first subsequent frame where it
// returns within groundTol.
func (t *Tracker) Analyze(poses []stickmodel.Pose) (*Analysis, error) {
	n := len(poses)
	if n < 4 {
		return nil, ErrTooShort
	}
	a := &Analysis{
		Phases:           make([]Phase, n),
		AnkleTrajectory:  make([]imaging.Vec2, n),
		CentreTrajectory: make([]imaging.Vec2, n),
	}
	for k, p := range poses {
		j := p.Joints(t.dims)
		a.AnkleTrajectory[k] = j[stickmodel.JointAnkle]
		a.CentreTrajectory[k] = imaging.Vec2{X: p.X, Y: p.Y}
	}

	// Stance ankle level: median of the first quarter of the clip (the
	// jumper is standing or crouching with planted feet).
	q := n / 4
	if q < 2 {
		q = 2
	}
	levels := make([]float64, 0, q)
	for k := 0; k < q; k++ {
		levels = append(levels, a.AnkleTrajectory[k].Y)
	}
	ground := medianF(levels)

	takeoff, landing := -1, -1
	for k := 1; k < n; k++ {
		airborne := a.AnkleTrajectory[k].Y < ground-t.groundTol
		if takeoff < 0 {
			if airborne {
				takeoff = k
			}
			continue
		}
		if landing < 0 && !airborne {
			landing = k
			break
		}
	}
	// Degenerate clips (no flight detected): fall back to fixed windows.
	if takeoff < 0 {
		takeoff = n / 2
	}
	if landing < 0 || landing <= takeoff {
		landing = min(takeoff+max(n/5, 1), n-1)
	}
	a.TakeoffFrame, a.LandingFrame = takeoff, landing

	for k := 0; k < n; k++ {
		switch {
		case k < takeoff:
			a.Phases[k] = PhaseInitiation
		case k < landing:
			a.Phases[k] = PhaseFlight
		default:
			a.Phases[k] = PhaseLanding
		}
	}
	a.Initiation = Window{From: 0, To: takeoff - 1}
	a.AirLanding = Window{From: takeoff, To: n - 1}

	// Jump distance: ankle x displacement between stance and landing rest.
	start := a.AnkleTrajectory[0].X
	end := a.AnkleTrajectory[n-1].X
	a.JumpDistancePx = math.Abs(end - start)
	if t.pxPerMeter > 0 {
		a.JumpDistanceM = a.JumpDistancePx / t.pxPerMeter
	}

	// Apex rise: centre height gain relative to the first frame.
	base := a.CentreTrajectory[0].Y
	for k := takeoff; k < landing && k < n; k++ {
		rise := base - a.CentreTrajectory[k].Y
		if rise > a.ApexRisePx {
			a.ApexRisePx = rise
		}
	}
	return a, nil
}

// FixedWindows returns the paper's stage windows for an n-frame clip:
// initiation = frames 1..10 and air/landing = 11..20 in the paper's 1-based
// numbering, scaled proportionally for other clip lengths.
func FixedWindows(n int) (initiation, airLanding Window) {
	if n <= 1 {
		return Window{0, 0}, Window{0, 0}
	}
	half := n / 2
	return Window{From: 0, To: half - 1}, Window{From: half, To: n - 1}
}

func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
