package track

import (
	"math"
	"testing"

	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
)

func truthClip(t *testing.T) (*synth.Video, []stickmodel.Pose) {
	t.Helper()
	p := synth.DefaultJumpParams()
	v, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return v, v.Truth
}

func TestAnalyzeDetectsFlightWindow(t *testing.T) {
	v, poses := truthClip(t)
	tr := NewTracker(v.Dims, v.Params.PxPerMeter())
	a, err := tr.Analyze(poses)
	if err != nil {
		t.Fatal(err)
	}
	// The kinematic script leaves the ground around 44% and lands around
	// 72% of the clip (synth timeline constants).
	n := len(poses)
	wantTakeoff := float64(n) * 0.44
	wantLanding := float64(n) * 0.72
	if math.Abs(float64(a.TakeoffFrame)-wantTakeoff) > 2.5 {
		t.Errorf("takeoff frame %d, want ~%.0f", a.TakeoffFrame, wantTakeoff)
	}
	if math.Abs(float64(a.LandingFrame)-wantLanding) > 2.5 {
		t.Errorf("landing frame %d, want ~%.0f", a.LandingFrame, wantLanding)
	}
	if a.TakeoffFrame >= a.LandingFrame {
		t.Error("takeoff must precede landing")
	}
}

func TestAnalyzeJumpDistance(t *testing.T) {
	v, poses := truthClip(t)
	tr := NewTracker(v.Dims, v.Params.PxPerMeter())
	a, err := tr.Analyze(poses)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.JumpDistancePx-v.Params.JumpPx) > 3 {
		t.Errorf("distance %.1f px, want ~%.1f", a.JumpDistancePx, v.Params.JumpPx)
	}
	wantM := v.Params.JumpPx / v.Params.PxPerMeter()
	if math.Abs(a.JumpDistanceM-wantM) > 0.1 {
		t.Errorf("distance %.2f m, want ~%.2f", a.JumpDistanceM, wantM)
	}
}

func TestAnalyzeNoMetricWithoutCalibration(t *testing.T) {
	v, poses := truthClip(t)
	tr := NewTracker(v.Dims, 0)
	a, err := tr.Analyze(poses)
	if err != nil {
		t.Fatal(err)
	}
	if a.JumpDistanceM != 0 {
		t.Error("metric distance must stay zero without calibration")
	}
	if a.JumpDistancePx == 0 {
		t.Error("pixel distance must still be measured")
	}
}

func TestAnalyzeApexRise(t *testing.T) {
	v, poses := truthClip(t)
	tr := NewTracker(v.Dims, 0)
	a, err := tr.Analyze(poses)
	if err != nil {
		t.Fatal(err)
	}
	if a.ApexRisePx < v.Params.ApexRise*0.4 {
		t.Errorf("apex rise %.1f px too small (param %.1f)", a.ApexRisePx, v.Params.ApexRise)
	}
}

func TestAnalyzePhasesPartitionFrames(t *testing.T) {
	v, poses := truthClip(t)
	tr := NewTracker(v.Dims, 0)
	a, err := tr.Analyze(poses)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Phases) != len(poses) {
		t.Fatal("phase per frame missing")
	}
	// Phases must be monotone: initiation* flight* landing*.
	stage := 0
	order := map[Phase]int{PhaseInitiation: 0, PhaseFlight: 1, PhaseLanding: 2}
	for k, ph := range a.Phases {
		o, ok := order[ph]
		if !ok {
			t.Fatalf("frame %d has invalid phase %v", k, ph)
		}
		if o < stage {
			t.Fatalf("phase regressed at frame %d", k)
		}
		stage = o
	}
	if a.Initiation.Len() <= 0 || a.AirLanding.Len() <= 0 {
		t.Error("windows must be non-empty")
	}
	if a.AirLanding.To != len(poses)-1 {
		t.Error("air/landing window must extend to the last frame")
	}
}

func TestAnalyzeTooShort(t *testing.T) {
	v, _ := truthClip(t)
	tr := NewTracker(v.Dims, 0)
	if _, err := tr.Analyze(v.Truth[:3]); err == nil {
		t.Error("expected ErrTooShort")
	}
}

func TestAnalyzeNoFlightFallback(t *testing.T) {
	// A static standing pose has no flight; detection must fall back to
	// sane windows rather than fail.
	v, _ := truthClip(t)
	static := make([]stickmodel.Pose, 12)
	for i := range static {
		static[i] = v.Truth[0]
	}
	tr := NewTracker(v.Dims, 0)
	a, err := tr.Analyze(static)
	if err != nil {
		t.Fatal(err)
	}
	if a.TakeoffFrame <= 0 || a.LandingFrame <= a.TakeoffFrame {
		t.Errorf("fallback windows broken: takeoff %d landing %d", a.TakeoffFrame, a.LandingFrame)
	}
}

func TestFixedWindows(t *testing.T) {
	init, air := FixedWindows(20)
	if init != (Window{From: 0, To: 9}) || air != (Window{From: 10, To: 19}) {
		t.Errorf("FixedWindows(20) = %+v, %+v", init, air)
	}
	init, air = FixedWindows(21)
	if init.To+1 != air.From || air.To != 20 {
		t.Errorf("odd-length windows wrong: %+v %+v", init, air)
	}
	if i, a := FixedWindows(1); i.Len() < 1 || a.Len() < 1 {
		t.Errorf("degenerate windows: %+v %+v", i, a)
	}
}

func TestWindowHelpers(t *testing.T) {
	w := Window{From: 3, To: 7}
	if w.Len() != 5 {
		t.Errorf("Len = %d", w.Len())
	}
	if !w.Contains(3) || !w.Contains(7) || w.Contains(8) || w.Contains(2) {
		t.Error("Contains wrong")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseInitiation.String() != "initiation" || PhaseFlight.String() != "flight" ||
		PhaseLanding.String() != "landing" {
		t.Error("phase names wrong")
	}
	if Phase(0).String() == "" {
		t.Error("invalid phase must still render")
	}
}
