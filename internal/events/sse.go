// Server-sent-events wire format for job events, shared by the HTTP server
// (writer) and the remote dispatcher's stream proxy plus tests (reader).
//
// One event is one SSE frame:
//
//	id: <seq>          the per-job sequence number — the resume token a
//	                   client sends back as Last-Event-ID on reconnect
//	event: <type>      the event type (queued, stage, done, ...)
//	data: <json>       the Event document, compact (single line)
//
// Heartbeats are comment lines (": hb") that keep idle connections alive
// through proxies without delivering an event.
package events

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteFrame writes one event as an SSE frame. The event document is
// marshalled compact, so data is always a single line.
func WriteFrame(w io.Writer, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("events: encode frame: %w", err)
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

// WriteHeartbeat writes the keep-alive comment frame.
func WriteHeartbeat(w io.Writer) error {
	_, err := io.WriteString(w, ": hb\n\n")
	return err
}

// Frame is one parsed SSE frame.
type Frame struct {
	ID    string
	Event string
	Data  []byte
}

// DecodeEvent unmarshals the frame's data into an Event.
func (f Frame) DecodeEvent() (Event, error) {
	var e Event
	if err := json.Unmarshal(f.Data, &e); err != nil {
		return Event{}, fmt.Errorf("events: decode frame data: %w", err)
	}
	return e, nil
}

// Seq parses the frame id as a sequence number (0 when absent/malformed).
func (f Frame) Seq() uint64 {
	n, err := strconv.ParseUint(f.ID, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// FrameReader incrementally parses an SSE byte stream into frames.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader wraps an SSE response body.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReader(r)}
}

// Next returns the next complete frame, skipping heartbeat comments. It
// returns the reader's error — io.EOF on a clean close, the transport
// error on a cut connection — once no further frame can be assembled; a
// frame truncated by the cut is discarded (SSE frames are only dispatched
// at their terminating blank line).
func (fr *FrameReader) Next() (Frame, error) {
	var f Frame
	have := false
	for {
		line, err := fr.br.ReadString('\n')
		if err != nil {
			return Frame{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if have {
				return f, nil
			}
			continue
		}
		if strings.HasPrefix(line, ":") {
			continue // comment / heartbeat
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			f.ID = value
			have = true
		case "event":
			f.Event = value
			have = true
		case "data":
			if len(f.Data) > 0 {
				f.Data = append(f.Data, '\n')
			}
			f.Data = append(f.Data, value...)
			have = true
		}
	}
}
