package events

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

// TestSSERoundTrip writes frames (with interleaved heartbeats) and parses
// them back: ids, types and documents must survive the wire.
func TestSSERoundTrip(t *testing.T) {
	at := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	in := []Event{
		{Seq: 1, Type: TypeQueued, JobID: "a", At: at, State: "queued"},
		{Seq: 2, Type: TypeStage, JobID: "a", At: at, State: "running", Stage: "segmentation"},
		{Seq: 3, Type: TypeDone, JobID: "a", At: at, State: "done", Result: json.RawMessage(`{"frames":20}`)},
	}
	var buf bytes.Buffer
	for i, e := range in {
		if err := WriteFrame(&buf, e); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := WriteHeartbeat(&buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	fr := NewFrameReader(&buf)
	for i, want := range in {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Seq() != want.Seq || f.Event != string(want.Type) {
			t.Errorf("frame %d: id=%s event=%s, want %d/%s", i, f.ID, f.Event, want.Seq, want.Type)
		}
		got, err := f.DecodeEvent()
		if err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if got.Seq != want.Seq || got.Type != want.Type || got.Stage != want.Stage ||
			got.State != want.State || !got.At.Equal(want.At) || string(got.Result) != string(want.Result) {
			t.Errorf("frame %d: %+v, want %+v", i, got, want)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

// TestFrameReaderDiscardsTruncatedFrame: a frame cut before its blank line
// must not be delivered (a reconnecting client resumes from the last id it
// actually received).
func TestFrameReaderDiscardsTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Event{Seq: 1, Type: TypeQueued, JobID: "a"}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("id: 2\nevent: running\ndata: {\"seq\":2") // cut mid-frame
	fr := NewFrameReader(&buf)
	if f, err := fr.Next(); err != nil || f.Seq() != 1 {
		t.Fatalf("first frame: %+v, %v", f, err)
	}
	if f, err := fr.Next(); err == nil {
		t.Fatalf("truncated frame was delivered: %+v", f)
	}
}

// TestFrameReaderCRLFAndComments tolerates CRLF line endings and comment
// lines, per the SSE spec.
func TestFrameReaderCRLFAndComments(t *testing.T) {
	raw := ": welcome\r\nid: 7\r\nevent: stage\r\ndata: {\"seq\":7,\"type\":\"stage\"}\r\n\r\n"
	fr := NewFrameReader(strings.NewReader(raw))
	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq() != 7 || f.Event != "stage" {
		t.Errorf("frame: %+v", f)
	}
}
