// Package events is the in-process job event bus behind the streaming
// surface: the job manager (and the remote dispatcher) publish every job
// lifecycle transition and per-stage progress tick into a Hub, and
// subscribers — the server's server-sent-events routes, the library's
// JobQueue.Watch, dashboards on the global feed — consume them without
// polling the job table.
//
// Design constraints, in order:
//
//   - publishing NEVER blocks: the analysis pipeline must not stall because
//     a web client reads its event stream slowly. Every subscriber owns a
//     bounded pending-event buffer; a subscriber that falls behind is
//     resynced — its buffer collapses to a single snapshot of the job's
//     latest state (per-job streams) or a resync marker counting the
//     dropped events (the global feed) — and deltas continue from there;
//   - per-job sequence numbers are monotonic from 1 and stamp every event,
//     so a dropped connection resumes exactly where it left off
//     (Last-Event-ID over SSE): Subscribe(job, afterSeq) replays the
//     retained history after afterSeq, or starts with a snapshot when the
//     gap is no longer covered;
//   - memory is bounded: per-job history is a small ring, subscriber
//     buffers are rings, and a job's state leaves the hub with its
//     eviction event.
//
// The hub is pure data structure — no goroutines — so constructing one per
// job manager is free and Close is immediate.
package events

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Type names one kind of job event.
type Type string

// Event types. The lifecycle types mirror the job states; stage marks
// per-stage pipeline progress of a running job; snapshot and resync are
// synthetic events the hub (or a proxying dispatcher) injects when a
// subscriber cannot be given the full delta stream.
const (
	// TypeQueued: the job was accepted into the queue.
	TypeQueued Type = "queued"
	// TypeRunning: a worker picked the job up.
	TypeRunning Type = "running"
	// TypeStage: the running job entered a pipeline stage (Stage field).
	TypeStage Type = "stage"
	// TypeDone: the job finished; the SSE layer embeds the result document.
	TypeDone Type = "done"
	// TypeFailed: the job failed; Error carries the message.
	TypeFailed Type = "failed"
	// TypeEvicted: the finished job's record was dropped (TTL).
	TypeEvicted Type = "evicted"
	// TypeSnapshot: a synthetic catch-up event carrying the job's latest
	// state in place of deltas the subscriber can no longer receive (slow
	// consumer resync, Last-Event-ID gap, poll-backed fallback streams).
	TypeSnapshot Type = "snapshot"
	// TypeResync: a marker on the global feed that Dropped events were
	// discarded for this subscriber; dashboards should re-list via the
	// jobs history endpoint.
	TypeResync Type = "resync"
)

// Event is one job event. Seq is monotonic per job starting at 1 (assigned
// by the hub on Publish) and doubles as the SSE resume token; State is the
// job's lifecycle state after the event; Result is populated only on the
// SSE wire, where the serving layer embeds the finished response document
// into the terminal event — the hub itself never stores result payloads.
type Event struct {
	Seq     uint64          `json:"seq"`
	Type    Type            `json:"type"`
	JobID   string          `json:"job_id,omitempty"`
	At      time.Time       `json:"at"`
	State   string          `json:"state,omitempty"`
	Stage   string          `json:"stage,omitempty"`
	Error   string          `json:"error,omitempty"`
	Dropped int             `json:"dropped,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the event ends a job's stream: a terminal
// lifecycle event, or a snapshot of an already-terminal job.
func (e Event) Terminal() bool {
	switch e.Type {
	case TypeDone, TypeFailed, TypeEvicted:
		return true
	case TypeSnapshot:
		return e.State == "done" || e.State == "failed"
	}
	return false
}

// Sentinel errors.
var (
	// ErrClosed marks a subscription whose hub shut down (after its buffer
	// drained) or that was closed by its owner.
	ErrClosed = errors.New("events: subscription closed")
	// ErrTooManySubscribers is the backpressure signal of Subscribe: the
	// hub is at its subscriber limit. Retryable — clients should back off.
	ErrTooManySubscribers = errors.New("events: subscriber limit reached, retry later")
)

// Config parameterises a Hub. The zero value of any field takes its
// DefaultConfig value, so the zero Config is usable as-is.
type Config struct {
	// SubscriberBuffer bounds each subscriber's pending-event buffer; a
	// subscriber this far behind is resynced instead of blocking Publish.
	// Minimum 2 (a snapshot plus one delta).
	SubscriberBuffer int
	// MaxSubscribers caps concurrent subscriptions; Subscribe returns
	// ErrTooManySubscribers beyond it.
	MaxSubscribers int
	// HistoryPerJob bounds the per-job event ring kept for Last-Event-ID
	// resume; a resume past the retained window starts with a snapshot.
	HistoryPerJob int
}

// DefaultConfig returns a small service-oriented configuration.
func DefaultConfig() Config {
	return Config{SubscriberBuffer: 256, MaxSubscribers: 1024, HistoryPerJob: 128}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.SubscriberBuffer == 0 {
		c.SubscriberBuffer = def.SubscriberBuffer
	}
	if c.MaxSubscribers == 0 {
		c.MaxSubscribers = def.MaxSubscribers
	}
	if c.HistoryPerJob == 0 {
		c.HistoryPerJob = def.HistoryPerJob
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.SubscriberBuffer < 2 {
		return fmt.Errorf("events: SubscriberBuffer must be >= 2, got %d", c.SubscriberBuffer)
	}
	if c.MaxSubscribers < 1 || c.HistoryPerJob < 1 {
		return fmt.Errorf("events: MaxSubscribers and HistoryPerJob must be >= 1")
	}
	return nil
}

// jobState is the hub's per-job record: the monotonic sequence counter,
// the latest event (the snapshot source) and the retained history — a
// circular buffer (start is the oldest slot once full), because sliding a
// full slice on every publish would cost O(HistoryPerJob) inside the two
// hottest locks in the system (the hub's, under the job manager's).
type jobState struct {
	seq     uint64
	last    Event
	history []Event
	start   int // index of the oldest retained event once len == cap
}

// histLen reports how many events are retained.
func (js *jobState) histLen() int { return len(js.history) }

// histAppend records one event, overwriting the oldest once full.
func (js *jobState) histAppend(e Event, max int) {
	if len(js.history) < max {
		js.history = append(js.history, e)
		return
	}
	js.history[js.start] = e
	js.start = (js.start + 1) % len(js.history)
}

// histAt returns the i-th retained event, oldest first.
func (js *jobState) histAt(i int) Event {
	return js.history[(js.start+i)%len(js.history)]
}

// Hub fans published job events out to subscribers. All methods are safe
// for concurrent use; Publish never blocks.
type Hub struct {
	cfg Config

	// dropped counts events discarded by the never-block resync policy
	// across all subscribers since the hub was built — the saturation
	// signal exported as slj_events_dropped_total.
	dropped atomic.Uint64

	mu     sync.Mutex
	jobs   map[string]*jobState
	subs   map[*Subscription]struct{}
	closed bool
}

// Dropped returns the number of events discarded because a subscriber's
// buffer was full (each collapsed into a snapshot or resync marker).
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// NewHub builds a hub; zero Config fields take their defaults.
func NewHub(cfg Config) *Hub {
	cfg = cfg.withDefaults()
	return &Hub{
		cfg:  cfg,
		jobs: make(map[string]*jobState),
		subs: make(map[*Subscription]struct{}),
	}
}

// snapshotOf derives the synthetic catch-up event from a job's latest
// event: same sequence number (resume continues from it), latest state.
func snapshotOf(last Event) Event {
	return Event{
		Seq:   last.Seq,
		Type:  TypeSnapshot,
		JobID: last.JobID,
		At:    last.At,
		State: last.State,
		Stage: last.Stage,
		Error: last.Error,
	}
}

// Publish stamps the event with the job's next sequence number, records it
// in the job's history, and fans it out to every matching subscriber. It
// never blocks: a full subscriber is resynced (see package doc). An
// eviction event retires the job's hub state after delivery.
func (h *Hub) Publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || e.JobID == "" {
		return
	}
	js := h.jobs[e.JobID]
	if js == nil {
		js = &jobState{}
		h.jobs[e.JobID] = js
	}
	js.seq++
	e.Seq = js.seq
	e.Result = nil // the hub never retains result payloads
	js.last = e
	js.histAppend(e, h.cfg.HistoryPerJob)
	if e.Type == TypeEvicted {
		delete(h.jobs, e.JobID)
	}
	for sub := range h.subs {
		if sub.jobID == "" || sub.jobID == e.JobID {
			sub.push(e)
		}
	}
}

// Snapshot returns the synthetic catch-up event for a job the hub knows,
// or ok=false for unknown (never published or already evicted) jobs.
func (h *Hub) Snapshot(jobID string) (Event, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	js, ok := h.jobs[jobID]
	if !ok {
		return Event{}, false
	}
	return snapshotOf(js.last), true
}

// Subscribe registers a subscriber. jobID selects one job's stream; ""
// subscribes to the global feed (every job, live only — afterSeq is
// ignored there). For per-job streams, afterSeq resumes after that
// sequence number: the retained history after it is replayed, and a gap —
// or a sequence regression after a restart — starts with a snapshot.
func (h *Hub) Subscribe(jobID string, afterSeq uint64) (*Subscription, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if len(h.subs) >= h.cfg.MaxSubscribers {
		return nil, ErrTooManySubscribers
	}
	sub := &Subscription{
		hub:    h,
		jobID:  jobID,
		max:    h.cfg.SubscriberBuffer,
		notify: make(chan struct{}, 1),
	}
	if jobID != "" {
		if js, ok := h.jobs[jobID]; ok {
			oldest := js.seq - uint64(js.histLen()) + 1
			switch {
			case afterSeq == js.seq:
				// Caught up exactly. For a live job that means deltas
				// only — but a client resuming at a *terminal* event
				// (e.g. an EventSource auto-reconnecting after the server
				// closed its completed stream) must get the terminal
				// snapshot back, so its watch closes instead of idling a
				// subscriber slot until TTL eviction.
				if snap := snapshotOf(js.last); snap.Terminal() {
					sub.buf = append(sub.buf, snap)
				}
			case afterSeq > js.seq:
				// The client is ahead of this hub (sequence regression —
				// typically a restart reset the counters): resync.
				sub.buf = append(sub.buf, snapshotOf(js.last))
			case afterSeq+1 >= oldest:
				for i := 0; i < js.histLen(); i++ {
					if ev := js.histAt(i); ev.Seq > afterSeq {
						sub.buf = append(sub.buf, ev)
					}
				}
			default:
				// The gap is past the retained window: snapshot + delta.
				sub.buf = append(sub.buf, snapshotOf(js.last))
			}
			if len(sub.buf) > sub.max {
				sub.buf = []Event{snapshotOf(js.last)}
			}
		}
	}
	h.subs[sub] = struct{}{}
	return sub, nil
}

// Subscribers reports the current subscription count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Close shuts the hub down: registered subscriptions drain their buffered
// events and then report ErrClosed; later Publish calls are dropped.
// Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscription, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	for _, sub := range subs {
		sub.markClosed()
	}
}

// Subscription is one subscriber's bounded view of the event stream.
type Subscription struct {
	hub    *Hub
	jobID  string // "" = global feed
	max    int
	notify chan struct{}

	mu     sync.Mutex
	buf    []Event
	closed bool
}

// push appends one event, resyncing instead of blocking when the buffer is
// full. Called with the hub lock held (the publisher's goroutine).
func (s *Subscription) push(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.buf) >= s.max {
		if s.jobID != "" {
			// Per-job stream: the newest event subsumes the backlog —
			// collapse to its snapshot form and continue with deltas.
			s.hub.dropped.Add(uint64(len(s.buf)))
			s.buf = append(s.buf[:0], snapshotOf(e))
			s.wake()
			return
		}
		// Global feed: keep a resync marker at the front counting the
		// discarded events; dashboards re-list instead of replaying.
		if s.buf[0].Type == TypeResync {
			s.buf[0].Dropped++
			s.buf = append(s.buf[:1], s.buf[2:]...)
			s.hub.dropped.Add(1)
		} else {
			marker := Event{Type: TypeResync, At: e.At, Dropped: 2}
			s.buf = append([]Event{marker}, s.buf[2:]...)
			s.hub.dropped.Add(2)
		}
	}
	s.buf = append(s.buf, e)
	s.wake()
}

// wake nudges a Next call blocked on an empty buffer. Caller holds s.mu or
// is otherwise done mutating.
func (s *Subscription) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next returns the next event, blocking until one arrives, the context is
// cancelled, or the subscription is closed (ErrClosed after the buffer
// drains).
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	for {
		s.mu.Lock()
		if len(s.buf) > 0 {
			e := s.buf[0]
			s.buf = s.buf[1:]
			s.mu.Unlock()
			return e, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, ErrClosed
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
}

// Close unregisters the subscription; a blocked Next returns ErrClosed.
func (s *Subscription) Close() {
	s.hub.mu.Lock()
	delete(s.hub.subs, s)
	s.hub.mu.Unlock()
	s.markClosed()
}

// markClosed flags the subscription closed and wakes any blocked reader.
func (s *Subscription) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wake()
}
