package events

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collect drains n events from the subscription with a deadline.
func collect(t *testing.T, sub *Subscription, n int) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out := make([]Event, 0, n)
	for len(out) < n {
		e, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next after %d events: %v", len(out), err)
		}
		out = append(out, e)
	}
	return out
}

func TestPerJobSequenceMonotonic(t *testing.T) {
	h := NewHub(Config{})
	sub, err := h.Subscribe("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Publish(Event{Type: TypeQueued, JobID: "a", State: "queued"})
	h.Publish(Event{Type: TypeQueued, JobID: "b", State: "queued"}) // other job: own counter
	h.Publish(Event{Type: TypeRunning, JobID: "a", State: "running"})
	h.Publish(Event{Type: TypeStage, JobID: "a", State: "running", Stage: "pose"})

	got := collect(t, sub, 3)
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.JobID != "a" {
			t.Errorf("event %d leaked from job %s", i, e.JobID)
		}
	}
	if got[2].Stage != "pose" || got[2].Type != TypeStage {
		t.Errorf("stage event: %+v", got[2])
	}
}

func TestResumeReplaysHistoryAfterSeq(t *testing.T) {
	h := NewHub(Config{})
	for i := 0; i < 5; i++ {
		h.Publish(Event{Type: TypeStage, JobID: "a", State: "running", Stage: fmt.Sprintf("s%d", i)})
	}
	sub, err := h.Subscribe("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, sub, 3)
	for i, e := range got {
		if want := uint64(3 + i); e.Seq != want {
			t.Errorf("replayed event %d: seq %d, want %d", i, e.Seq, want)
		}
	}
}

func TestResumePastRetainedWindowSnapshots(t *testing.T) {
	h := NewHub(Config{HistoryPerJob: 2, SubscriberBuffer: 8, MaxSubscribers: 8})
	for i := 0; i < 6; i++ {
		h.Publish(Event{Type: TypeStage, JobID: "a", State: "running", Stage: fmt.Sprintf("s%d", i)})
	}
	// History retains seqs 5..6 only; resuming after 1 must snapshot.
	sub, err := h.Subscribe("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, sub, 1)
	if got[0].Type != TypeSnapshot || got[0].Seq != 6 || got[0].Stage != "s5" {
		t.Errorf("expected snapshot at seq 6, got %+v", got[0])
	}
}

// TestResumeAtTerminalSeqClosesImmediately: an EventSource reconnecting
// with the terminal event's own sequence number (the server closed its
// completed stream) must get the terminal snapshot back — not an idle
// subscription pinning a stream slot until eviction.
func TestResumeAtTerminalSeqClosesImmediately(t *testing.T) {
	h := NewHub(Config{})
	h.Publish(Event{Type: TypeQueued, JobID: "a", State: "queued"})
	h.Publish(Event{Type: TypeDone, JobID: "a", State: "done"})
	sub, err := h.Subscribe("a", 2) // exactly the terminal seq
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, sub, 1)
	if got[0].Type != TypeSnapshot || !got[0].Terminal() || got[0].Seq != 2 {
		t.Fatalf("terminal resume: %+v", got[0])
	}
	// A live (non-terminal) job caught up exactly still gets deltas only.
	h.Publish(Event{Type: TypeRunning, JobID: "b", State: "running"})
	sub2, err := h.Subscribe("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if e, err := sub2.Next(ctx); err == nil {
		t.Fatalf("live caught-up subscription delivered %+v, want silence", e)
	}
}

func TestResumeAfterSeqRegressionSnapshots(t *testing.T) {
	h := NewHub(Config{})
	h.Publish(Event{Type: TypeDone, JobID: "a", State: "done"})
	// The client saw seq 9 from a previous process; this hub is at 1.
	sub, err := h.Subscribe("a", 9)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, sub, 1)
	if got[0].Type != TypeSnapshot || got[0].State != "done" {
		t.Errorf("expected terminal snapshot, got %+v", got[0])
	}
	if !got[0].Terminal() {
		t.Error("terminal snapshot must report Terminal()")
	}
}

func TestSlowPerJobSubscriberResyncs(t *testing.T) {
	h := NewHub(Config{SubscriberBuffer: 4, MaxSubscribers: 4, HistoryPerJob: 64})
	sub, err := h.Subscribe("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody reads: overflow the 4-slot buffer with stage chatter. The
	// backlog must collapse to a snapshot of the latest state.
	for i := 0; i < 20; i++ {
		h.Publish(Event{Type: TypeStage, JobID: "a", State: "running", Stage: fmt.Sprintf("s%d", i)})
	}
	got := collect(t, sub, 1)
	if got[0].Type != TypeSnapshot {
		t.Fatalf("overflowed buffer must open with a snapshot, got %+v", got[0])
	}
	// Deltas after the snapshot stay monotonic and reach the latest event.
	last := got[0].Seq
	for last < 20 {
		e := collect(t, sub, 1)[0]
		if e.Seq <= last {
			t.Fatalf("stream went backwards: %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
	h.Publish(Event{Type: TypeDone, JobID: "a", State: "done"})
	rest := collect(t, sub, 1)
	if rest[0].Type != TypeDone || rest[0].Seq != 21 {
		t.Errorf("delta after snapshot: %+v", rest[0])
	}
	// A terminal event landing on a full buffer collapses to a terminal
	// snapshot — the subscriber still learns how the job ended.
	sub2, err := h.Subscribe("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	// 8 stage events leave the 4-slot buffer exactly full (collapse at the
	// 5th, refill through the 8th), so the failed event lands on a full
	// buffer and must collapse to a terminal snapshot.
	for i := 0; i < 8; i++ {
		h.Publish(Event{Type: TypeStage, JobID: "b", State: "running", Stage: fmt.Sprintf("s%d", i)})
	}
	h.Publish(Event{Type: TypeFailed, JobID: "b", State: "failed", Error: "boom"})
	term := collect(t, sub2, 1)
	if term[0].Type != TypeSnapshot || !term[0].Terminal() || term[0].Error != "boom" {
		t.Errorf("terminal collapse: %+v", term[0])
	}
}

func TestSlowFirehoseSubscriberGetsResyncMarker(t *testing.T) {
	h := NewHub(Config{SubscriberBuffer: 4, MaxSubscribers: 4, HistoryPerJob: 8})
	sub, err := h.Subscribe("", 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		h.Publish(Event{Type: TypeQueued, JobID: fmt.Sprintf("j%d", i), State: "queued"})
	}
	got := collect(t, sub, 4)
	if got[0].Type != TypeResync || got[0].Dropped == 0 {
		t.Fatalf("expected a resync marker with a drop count, got %+v", got[0])
	}
	delivered := len(got) - 1
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	for {
		if _, err := sub.Next(ctx); err != nil {
			break
		}
		delivered++
	}
	if got[0].Dropped+delivered != n {
		t.Errorf("dropped %d + delivered %d != published %d", got[0].Dropped, delivered, n)
	}
}

func TestSubscriberLimit(t *testing.T) {
	h := NewHub(Config{MaxSubscribers: 2, SubscriberBuffer: 4, HistoryPerJob: 4})
	s1, err1 := h.Subscribe("", 0)
	_, err2 := h.Subscribe("", 0)
	if err1 != nil || err2 != nil {
		t.Fatalf("first two subscriptions: %v, %v", err1, err2)
	}
	if _, err := h.Subscribe("", 0); !errors.Is(err, ErrTooManySubscribers) {
		t.Fatalf("third subscription: %v, want ErrTooManySubscribers", err)
	}
	s1.Close()
	if _, err := h.Subscribe("", 0); err != nil {
		t.Fatalf("subscription after a Close: %v", err)
	}
}

func TestEvictionRetiresJobState(t *testing.T) {
	h := NewHub(Config{})
	h.Publish(Event{Type: TypeDone, JobID: "a", State: "done"})
	if _, ok := h.Snapshot("a"); !ok {
		t.Fatal("job state missing before eviction")
	}
	sub, _ := h.Subscribe("a", 0)
	h.Publish(Event{Type: TypeEvicted, JobID: "a", State: "done"})
	if _, ok := h.Snapshot("a"); ok {
		t.Error("job state must leave the hub with its eviction")
	}
	got := collect(t, sub, 2)
	if got[1].Type != TypeEvicted || !got[1].Terminal() {
		t.Errorf("eviction event: %+v", got[1])
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	h := NewHub(Config{})
	sub, _ := h.Subscribe("a", 0)
	h.Publish(Event{Type: TypeQueued, JobID: "a", State: "queued"})
	h.Close()
	ctx := context.Background()
	if e, err := sub.Next(ctx); err != nil || e.Type != TypeQueued {
		t.Fatalf("buffered event after Close: %+v, %v", e, err)
	}
	if _, err := sub.Next(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained subscription: %v, want ErrClosed", err)
	}
	h.Close() // idempotent
}

func TestNextHonoursContext(t *testing.T) {
	h := NewHub(Config{})
	sub, _ := h.Subscribe("a", 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next on silence: %v, want deadline exceeded", err)
	}
}

// TestConcurrentPublishSubscribe exercises the hub under -race: several
// publishers, per-job and firehose subscribers churning concurrently.
func TestConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub(Config{SubscriberBuffer: 64, MaxSubscribers: 64, HistoryPerJob: 16})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Publish(Event{Type: TypeStage, JobID: fmt.Sprintf("job-%d", p), State: "running"})
			}
			h.Publish(Event{Type: TypeDone, JobID: fmt.Sprintf("job-%d", p), State: "done"})
		}(p)
	}
	var readers sync.WaitGroup
	for s := 0; s < 8; s++ {
		jobID := fmt.Sprintf("job-%d", s%4)
		if s >= 4 {
			jobID = "" // firehose
		}
		sub, err := h.Subscribe(jobID, 0)
		if err != nil {
			t.Fatal(err)
		}
		readers.Add(1)
		go func(sub *Subscription, perJob bool) {
			defer readers.Done()
			defer sub.Close()
			last := uint64(0)
			for {
				e, err := sub.Next(ctx)
				if err != nil {
					return
				}
				if perJob {
					if e.Seq < last {
						t.Errorf("per-job stream went backwards: %d after %d", e.Seq, last)
						return
					}
					last = e.Seq
					if e.Terminal() {
						return
					}
				}
			}
		}(sub, jobID != "")
	}
	wg.Wait()
	h.Close()
	readers.Wait()
}
