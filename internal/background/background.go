// Package background implements Step 1 and Step 2 of the paper's
// segmentation pipeline: estimating the static background of a video
// sequence by temporal change detection, and subtracting that background
// from each frame to obtain a raw foreground mask.
//
// Besides the paper's change-detection estimator, the package provides
// median and running-mean estimators used as ablation baselines
// (experiment A2 in DESIGN.md).
package background

import (
	"errors"
	"fmt"
	"math"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

// ErrNoFrames is returned when an estimator receives an empty sequence.
var ErrNoFrames = errors.New("background: no frames")

// Estimator builds a background image from a frame sequence.
type Estimator interface {
	// Estimate returns the background for the given video sequence.
	// All frames must share one size.
	Estimate(frames []*imaging.Image) (*imaging.Image, error)
}

// ChangeDetection is the paper's Step 1 estimator: "pixels with a very small
// change in two consecutive frames are saved as part of the background",
// scanned from the first pair to the last pair. The background value of a
// pixel is the per-channel median of its stable observations — a median
// rather than a mean so that a subject standing still for a few frames
// cannot bleed into the estimate (ghosting). Pixels that are never stable
// fall back to a temporal median over all frames so the estimator is total.
type ChangeDetection struct {
	// StabilityThreshold is the maximum per-channel intensity change between
	// consecutive frames for a pixel to count as background (paper: "very
	// small change"). Values ≤ 0 select the calibrated default.
	StabilityThreshold int
}

// DefaultStabilityThreshold is the calibrated "very small change" bound
// (DESIGN.md §7).
const DefaultStabilityThreshold = 6

var _ Estimator = (*ChangeDetection)(nil)

// Estimate implements Estimator.
func (c *ChangeDetection) Estimate(frames []*imaging.Image) (*imaging.Image, error) {
	if len(frames) == 0 {
		return nil, ErrNoFrames
	}
	if err := checkSameSize(frames); err != nil {
		return nil, err
	}
	if len(frames) == 1 {
		return frames[0].Clone(), nil
	}
	tau := c.StabilityThreshold
	if tau <= 0 {
		tau = DefaultStabilityThreshold
	}

	w, h := frames[0].W, frames[0].H
	n := w * h
	// stable[i] holds the colours observed at pixel i whenever consecutive
	// frames agreed within tau. Bounded by the number of frame pairs.
	stable := make([][]imaging.Color, n)

	for k := 0; k+1 < len(frames); k++ {
		a, b := frames[k], frames[k+1]
		for i := 0; i < n; i++ {
			if a.Pix[i].MaxChanDiff(b.Pix[i]) <= tau {
				stable[i] = append(stable[i], b.Pix[i])
			}
		}
	}

	bg := imaging.NewImage(w, h)
	var unstable []int
	rs := make([]uint8, 0, len(frames))
	gs := make([]uint8, 0, len(frames))
	bs := make([]uint8, 0, len(frames))
	for i := 0; i < n; i++ {
		if len(stable[i]) == 0 {
			unstable = append(unstable, i)
			continue
		}
		rs, gs, bs = rs[:0], gs[:0], bs[:0]
		for _, c := range stable[i] {
			rs = append(rs, c.R)
			gs = append(gs, c.G)
			bs = append(bs, c.B)
		}
		bg.Pix[i] = imaging.Color{R: medianU8(rs), G: medianU8(gs), B: medianU8(bs)}
	}
	if len(unstable) > 0 {
		med := medianPixels(frames, unstable)
		for j, i := range unstable {
			bg.Pix[i] = med[j]
		}
	}
	return bg, nil
}

// Median estimates the background as the per-pixel temporal median. It is a
// strong classical baseline used in ablation A2.
type Median struct{}

var _ Estimator = (*Median)(nil)

// Estimate implements Estimator.
func (Median) Estimate(frames []*imaging.Image) (*imaging.Image, error) {
	if len(frames) == 0 {
		return nil, ErrNoFrames
	}
	if err := checkSameSize(frames); err != nil {
		return nil, err
	}
	w, h := frames[0].W, frames[0].H
	n := w * h
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	med := medianPixels(frames, idx)
	bg := imaging.NewImage(w, h)
	copy(bg.Pix, med)
	return bg, nil
}

// RunningMean estimates the background as an exponentially weighted running
// mean with learning rate Alpha in (0,1]. Ablation baseline: it smears the
// moving object into the background, which the harness quantifies.
type RunningMean struct {
	// Alpha is the per-frame learning rate; values ≤ 0 select 0.1.
	Alpha float64
}

var _ Estimator = (*RunningMean)(nil)

// Estimate implements Estimator.
func (r *RunningMean) Estimate(frames []*imaging.Image) (*imaging.Image, error) {
	if len(frames) == 0 {
		return nil, ErrNoFrames
	}
	if err := checkSameSize(frames); err != nil {
		return nil, err
	}
	alpha := r.Alpha
	if alpha <= 0 {
		alpha = 0.1
	}
	w, h := frames[0].W, frames[0].H
	n := w * h
	accR := make([]float64, n)
	accG := make([]float64, n)
	accB := make([]float64, n)
	for i, p := range frames[0].Pix {
		accR[i], accG[i], accB[i] = float64(p.R), float64(p.G), float64(p.B)
	}
	for _, f := range frames[1:] {
		for i, p := range f.Pix {
			accR[i] += alpha * (float64(p.R) - accR[i])
			accG[i] += alpha * (float64(p.G) - accG[i])
			accB[i] += alpha * (float64(p.B) - accB[i])
		}
	}
	bg := imaging.NewImage(w, h)
	for i := range bg.Pix {
		bg.Pix[i] = imaging.Color{R: uint8(accR[i] + 0.5), G: uint8(accG[i] + 0.5), B: uint8(accB[i] + 0.5)}
	}
	return bg, nil
}

// DefaultSubtractThreshold is the calibrated foreground threshold for
// Subtract (DESIGN.md §7).
const DefaultSubtractThreshold = 28

// Subtract implements Step 2: pixels whose max-channel difference from the
// background exceeds threshold become foreground. threshold ≤ 0 selects the
// calibrated default.
func Subtract(frame, bg *imaging.Image, threshold int) (*imaging.Mask, error) {
	if !frame.SameSize(bg) {
		return nil, fmt.Errorf("subtract %dx%d vs %dx%d: %w",
			frame.W, frame.H, bg.W, bg.H, imaging.ErrSizeMismatch)
	}
	if threshold <= 0 {
		threshold = DefaultSubtractThreshold
	}
	m := imaging.NewMask(frame.W, frame.H)
	for i := range frame.Pix {
		if frame.Pix[i].MaxChanDiff(bg.Pix[i]) > threshold {
			m.Bits[i] = true
		}
	}
	return m, nil
}

// RMSE returns the root-mean-square error between two images over all
// channels; the harness uses it to compare estimated and true backgrounds.
func RMSE(a, b *imaging.Image) (float64, error) {
	if !a.SameSize(b) {
		return 0, fmt.Errorf("rmse: %w", imaging.ErrSizeMismatch)
	}
	var sum float64
	for i := range a.Pix {
		dr := float64(a.Pix[i].R) - float64(b.Pix[i].R)
		dg := float64(a.Pix[i].G) - float64(b.Pix[i].G)
		db := float64(a.Pix[i].B) - float64(b.Pix[i].B)
		sum += dr*dr + dg*dg + db*db
	}
	n := float64(len(a.Pix) * 3)
	return math.Sqrt(sum / n), nil
}

func checkSameSize(frames []*imaging.Image) error {
	for i, f := range frames[1:] {
		if !frames[0].SameSize(f) {
			return fmt.Errorf("frame %d is %dx%d, frame 0 is %dx%d: %w",
				i+1, f.W, f.H, frames[0].W, frames[0].H, imaging.ErrSizeMismatch)
		}
	}
	return nil
}

// medianPixels returns the per-pixel temporal median colour for the given
// pixel indices.
func medianPixels(frames []*imaging.Image, idx []int) []imaging.Color {
	out := make([]imaging.Color, len(idx))
	rs := make([]uint8, len(frames))
	gs := make([]uint8, len(frames))
	bs := make([]uint8, len(frames))
	for j, i := range idx {
		for k, f := range frames {
			rs[k], gs[k], bs[k] = f.Pix[i].R, f.Pix[i].G, f.Pix[i].B
		}
		out[j] = imaging.Color{R: medianU8(rs), G: medianU8(gs), B: medianU8(bs)}
	}
	return out
}

// medianU8 computes the median via a 256-bin counting pass, O(n+256),
// without mutating its input.
func medianU8(v []uint8) uint8 {
	var hist [256]int
	for _, x := range v {
		hist[x]++
	}
	half := (len(v) + 1) / 2
	run := 0
	for i, c := range hist {
		run += c
		if run >= half {
			return uint8(i)
		}
	}
	return 0
}
