package background

import (
	"math/rand"
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

// movingBoxSequence renders a static scene with a box marching across it,
// the canonical workload for background estimation.
func movingBoxSequence(n, w, h int, noise float64, seed int64) (frames []*imaging.Image, scene *imaging.Image) {
	rng := rand.New(rand.NewSource(seed))
	scene = imaging.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			scene.Set(x, y, imaging.Color{R: uint8(100 + x%20), G: uint8(120 + y%10), B: 90})
		}
	}
	for k := 0; k < n; k++ {
		f := scene.Clone()
		bx := 4 + k*3
		imaging.FillRect(f, imaging.Rect{X0: bx, Y0: h / 3, X1: bx + 8, Y1: h/3 + 12}, imaging.Red)
		if noise > 0 {
			for i := range f.Pix {
				d := int(rng.NormFloat64() * noise)
				c := f.Pix[i]
				f.Pix[i] = imaging.Color{
					R: clamp8(int(c.R) + d), G: clamp8(int(c.G) + d), B: clamp8(int(c.B) + d),
				}
			}
		}
		frames = append(frames, f)
	}
	return frames, scene
}

func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func TestChangeDetectionRecoversScene(t *testing.T) {
	frames, scene := movingBoxSequence(16, 64, 48, 1.2, 1)
	est := &ChangeDetection{}
	bg, err := est.Estimate(frames)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := RMSE(bg, scene)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 8 {
		t.Errorf("background RMSE = %.2f, want <= 8", rmse)
	}
}

func TestChangeDetectionGhostResistance(t *testing.T) {
	// The box sits still for the first 5 frames, then moves away. The
	// median-of-stable estimator must not keep the box (ghost) in the
	// background.
	scene := imaging.NewImageFilled(40, 30, imaging.Color{R: 100, G: 100, B: 100})
	var frames []*imaging.Image
	for k := 0; k < 14; k++ {
		f := scene.Clone()
		if k < 5 {
			imaging.FillRect(f, imaging.Rect{X0: 10, Y0: 10, X1: 18, Y1: 20}, imaging.Red)
		}
		frames = append(frames, f)
	}
	bg, err := (&ChangeDetection{}).Estimate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if bg.At(14, 15).MaxChanDiff(scene.At(14, 15)) > 10 {
		t.Errorf("ghost in background: %v", bg.At(14, 15))
	}
}

func TestChangeDetectionSingleFrame(t *testing.T) {
	frames, _ := movingBoxSequence(1, 16, 16, 0, 1)
	bg, err := (&ChangeDetection{}).Estimate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bg.SameSize(frames[0]) {
		t.Error("single-frame estimate must echo the frame")
	}
}

func TestEstimatorsRejectEmptyAndMismatched(t *testing.T) {
	ests := []Estimator{&ChangeDetection{}, Median{}, &RunningMean{}}
	for _, est := range ests {
		if _, err := est.Estimate(nil); err == nil {
			t.Errorf("%T: expected error for empty input", est)
		}
		frames := []*imaging.Image{imaging.NewImage(4, 4), imaging.NewImage(5, 4)}
		if _, err := est.Estimate(frames); err == nil {
			t.Errorf("%T: expected size mismatch error", est)
		}
	}
}

func TestMedianEstimator(t *testing.T) {
	frames, scene := movingBoxSequence(15, 48, 36, 0, 2)
	bg, err := Median{}.Estimate(frames)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := RMSE(bg, scene)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 6 {
		t.Errorf("median RMSE = %.2f, want <= 6", rmse)
	}
}

func TestRunningMeanSmearsMovingObject(t *testing.T) {
	// The running mean is the weak baseline: it must show a higher error
	// than the median on the same sequence (the ablation A2 shape).
	frames, scene := movingBoxSequence(15, 48, 36, 0, 3)
	mean, err := (&RunningMean{Alpha: 0.3}).Estimate(frames)
	if err != nil {
		t.Fatal(err)
	}
	med, err := Median{}.Estimate(frames)
	if err != nil {
		t.Fatal(err)
	}
	rmseMean, _ := RMSE(mean, scene)
	rmseMed, _ := RMSE(med, scene)
	if rmseMean <= rmseMed {
		t.Errorf("running mean RMSE %.2f should exceed median %.2f", rmseMean, rmseMed)
	}
}

func TestSubtract(t *testing.T) {
	bg := imaging.NewImageFilled(20, 20, imaging.Gray5)
	frame := bg.Clone()
	imaging.FillRect(frame, imaging.Rect{X0: 5, Y0: 5, X1: 9, Y1: 9}, imaging.Red)
	m, err := Subtract(frame, bg, 28)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 25 {
		t.Errorf("foreground = %d px, want 25", m.Count())
	}
	if !m.At(7, 7) || m.At(0, 0) {
		t.Error("foreground location wrong")
	}
}

func TestSubtractThresholdBehaviour(t *testing.T) {
	bg := imaging.NewImageFilled(4, 4, imaging.Color{R: 100, G: 100, B: 100})
	frame := imaging.NewImageFilled(4, 4, imaging.Color{R: 120, G: 100, B: 100})
	m, err := Subtract(frame, bg, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Empty() {
		t.Error("20-level change under threshold 25 must not trigger")
	}
	m, err = Subtract(frame, bg, 15)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 16 {
		t.Error("20-level change over threshold 15 must trigger everywhere")
	}
	// Threshold <= 0 selects the calibrated default.
	if _, err := Subtract(frame, bg, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSubtractSizeMismatch(t *testing.T) {
	if _, err := Subtract(imaging.NewImage(3, 3), imaging.NewImage(4, 4), 10); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestRMSE(t *testing.T) {
	a := imaging.NewImageFilled(2, 2, imaging.Color{R: 10, G: 10, B: 10})
	b := imaging.NewImageFilled(2, 2, imaging.Color{R: 13, G: 6, B: 10})
	got, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// per-pixel squared error = 9 + 16 + 0 = 25; mean over 3 channels.
	want := 2.886751 // sqrt(25/3)
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE(a, imaging.NewImage(3, 3)); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestMedianU8(t *testing.T) {
	tests := []struct {
		in   []uint8
		want uint8
	}{
		{[]uint8{5}, 5},
		{[]uint8{1, 2, 3}, 2},
		{[]uint8{1, 2, 3, 4}, 2},
		{[]uint8{9, 9, 0, 0, 9}, 9},
		{[]uint8{255, 0, 128}, 128},
	}
	for _, tt := range tests {
		if got := medianU8(tt.in); got != tt.want {
			t.Errorf("medianU8(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}
