package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/jobs"
)

// entryID builds a deterministic 16-hex id from an index.
func entryID(i int) string { return string([]byte{'a' + byte(i%26)}) + "0000000000000001"[:15] }

// rawPayload marshals a payload the way the Manager does before Append.
func rawPayload(t *testing.T, p jobs.Payload) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func openT(t *testing.T, path string, cfg Config) *Journal {
	t.Helper()
	j, err := Open(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j
}

func replayAll(t *testing.T, j *Journal) []jobs.JournalEntry {
	t.Helper()
	var out []jobs.JournalEntry
	if err := j.Replay(func(e jobs.JournalEntry) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAppendReplayRoundTrip: records come back in order with payloads,
// results and timestamps intact across a close/reopen.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j := openT(t, path, Config{})

	at := time.Date(2026, 7, 28, 12, 0, 0, 123456789, time.UTC)
	p := jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: "abc", Stages: "segmentation"}
	recs := []jobs.JournalEntry{
		{Op: jobs.OpSubmit, ID: "job1", At: at, Payload: rawPayload(t, p)},
		{Op: jobs.OpRunning, ID: "job1", At: at.Add(time.Second)},
		{Op: jobs.OpDone, ID: "job1", At: at.Add(2 * time.Second), Result: json.RawMessage(`{"score":"7/7"}`)},
		{Op: jobs.OpSubmit, ID: "job2", At: at.Add(3 * time.Second), Payload: rawPayload(t, p)},
		{Op: jobs.OpFailed, ID: "job2", At: at.Add(4 * time.Second), Error: "boom"},
	}
	for _, e := range recs {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, path, Config{})
	got := replayAll(t, j2)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, e := range got {
		if e.Op != recs[i].Op || e.ID != recs[i].ID || !e.At.Equal(recs[i].At) {
			t.Errorf("record %d = %+v, want %+v", i, e, recs[i])
		}
	}
	var gotP jobs.Payload
	if err := json.Unmarshal(got[0].Payload, &gotP); err != nil || gotP.CacheKey != "abc" {
		t.Errorf("submit payload lost (%v): %s", err, got[0].Payload)
	}
	if string(got[2].Result) != `{"score":"7/7"}` {
		t.Errorf("done result lost: %s", got[2].Result)
	}
	if got[4].Error != "boom" {
		t.Errorf("failure text lost: %q", got[4].Error)
	}
}

// TestTornFinalRecordTruncated: a half-written final line (no terminating
// newline / broken JSON) is dropped on Open, replay sees only complete
// records, and the next append lands on a clean line boundary.
func TestTornFinalRecordTruncated(t *testing.T) {
	for _, tear := range []string{`{"op":"do`, `{"op":"done","id":"job9"}` + "garbage"} {
		path := filepath.Join(t.TempDir(), "jobs.journal")
		j := openT(t, path, Config{})
		if err := j.Append(jobs.JournalEntry{Op: jobs.OpSubmit, ID: "job1", At: time.Now(), Payload: rawPayload(t, jobs.Payload{Kind: jobs.KindAnalysis})}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tear); err != nil {
			t.Fatal(err)
		}
		f.Close()

		j2 := openT(t, path, Config{})
		got := replayAll(t, j2)
		if len(got) != 1 || got[0].ID != "job1" {
			t.Fatalf("tear %q: replay = %+v, want the single complete record", tear, got)
		}
		// Appends after recovery stay parseable.
		if err := j2.Append(jobs.JournalEntry{Op: jobs.OpRunning, ID: "job1", At: time.Now()}); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, j2); len(got) != 2 {
			t.Fatalf("tear %q: post-recovery append unreadable: %+v", tear, got)
		}
	}
}

// TestMidFileCorruptionErrors: garbage followed by more records is real
// corruption, not a torn tail, and Open must refuse it.
func TestMidFileCorruptionErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	if err := os.WriteFile(path, []byte("not json\n{\"op\":\"evict\",\"id\":\"x\",\"at\":\"2026-01-01T00:00:00Z\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Config{}); err == nil {
		t.Fatal("Open must reject mid-file corruption")
	}
}

// TestRotation: the active segment seals at the size bound and replay
// crosses the segment boundary in order.
func TestRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j := openT(t, path, Config{MaxSegmentBytes: 256, CompactMinRecords: 1 << 30})

	for i := 0; i < 16; i++ {
		if err := j.Append(jobs.JournalEntry{Op: jobs.OpSubmit, ID: entryID(i), At: time.Now(), Payload: rawPayload(t, jobs.Payload{Kind: jobs.KindAnalysis})}); err != nil {
			t.Fatal(err)
		}
	}
	// Maintenance is deferred off the cheap-append path; Sync applies it.
	must(t, j.Sync())
	if _, err := os.Stat(sealedPath(path)); err != nil {
		t.Fatalf("no sealed segment after %d appends past the bound: %v", 16, err)
	}
	got := replayAll(t, j)
	if len(got) != 16 {
		t.Fatalf("replay across segments = %d records, want 16", len(got))
	}
	for i, e := range got {
		if e.ID != entryID(i) {
			t.Fatalf("record %d out of order: %s", i, e.ID)
		}
	}

	// Reopen mid-rotation state: both segments replayed.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openT(t, path, Config{MaxSegmentBytes: 256, CompactMinRecords: 1 << 30})
	if got := replayAll(t, j2); len(got) != 16 {
		t.Fatalf("reopened replay = %d records, want 16", len(got))
	}
}

// TestCompaction: once evictions push the dead ratio past the threshold,
// the log is rewritten with only live records and shrinks on disk.
func TestCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j := openT(t, path, Config{CompactRatio: 0.5, CompactMinRecords: 4})

	// 8 jobs submitted and finished, then 7 evicted: dead ratio crosses
	// 0.5 and compaction must fire.
	at := time.Now()
	for i := 0; i < 8; i++ {
		id := entryID(i)
		must(t, j.Append(jobs.JournalEntry{Op: jobs.OpSubmit, ID: id, At: at, Payload: rawPayload(t, jobs.Payload{Kind: jobs.KindAnalysis})}))
		must(t, j.Append(jobs.JournalEntry{Op: jobs.OpDone, ID: id, At: at, Result: json.RawMessage(`{}`)}))
	}
	before := j.Stats().ActiveBytes
	for i := 1; i < 8; i++ {
		must(t, j.Append(jobs.JournalEntry{Op: jobs.OpEvict, ID: entryID(i), At: at}))
	}
	// Evict appends defer maintenance (they run under the Manager lock);
	// the next terminal append or Sync applies it.
	must(t, j.Sync())
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 7/8 evictions: %+v", st)
	}
	if st.DeadRecords != 0 {
		t.Errorf("dead records survive compaction: %+v", st)
	}
	if st.ActiveBytes >= before {
		t.Errorf("log did not shrink: %d -> %d bytes", before, st.ActiveBytes)
	}
	// Only the live job remains; the evicted ones are gone from replay.
	got := replayAll(t, j)
	for _, e := range got {
		if e.ID != entryID(0) {
			t.Fatalf("evicted job %s survived compaction", e.ID)
		}
	}
	if len(got) != 2 {
		t.Fatalf("live job has %d records, want submit+done", len(got))
	}

	// And the compacted log reopens clean.
	must(t, j.Close())
	j2 := openT(t, path, Config{})
	if got := replayAll(t, j2); len(got) != 2 {
		t.Fatalf("compacted log reopened with %d records, want 2", len(got))
	}
}

// TestCompactionFoldsSealedSegment: when both segments exist, compaction
// folds them into a single live-only active file.
func TestCompactionFoldsSealedSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	// CompactMinRecords 1: even the trailing evict records (dead by
	// definition) stay above the floor, so the final eviction compacts the
	// log down to nothing.
	j := openT(t, path, Config{MaxSegmentBytes: 200, CompactRatio: 0.5, CompactMinRecords: 1})

	at := time.Now()
	for i := 0; i < 8; i++ {
		id := entryID(i)
		must(t, j.Append(jobs.JournalEntry{Op: jobs.OpSubmit, ID: id, At: at, Payload: rawPayload(t, jobs.Payload{Kind: jobs.KindAnalysis})}))
		must(t, j.Append(jobs.JournalEntry{Op: jobs.OpDone, ID: id, At: at, Result: json.RawMessage(`{}`)}))
	}
	for i := 0; i < 8; i++ {
		must(t, j.Append(jobs.JournalEntry{Op: jobs.OpEvict, ID: entryID(i), At: at}))
	}
	must(t, j.Sync())
	if j.Stats().Compactions == 0 {
		t.Fatal("expected at least one compaction")
	}
	if _, err := os.Stat(sealedPath(path)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("sealed segment survives compaction: %v", err)
	}
	if got := replayAll(t, j); len(got) != 0 {
		t.Errorf("all jobs evicted but %d records replayed", len(got))
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
