package journal_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/journal"
	"github.com/sljmotion/sljmotion/internal/server"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// severableJournal simulates a crash: a real process death stops appends
// reaching the file at one instant, but in-process the abandoned Manager's
// goroutines keep running and would otherwise journal their completions.
// Severing drops every later append, so the file is frozen exactly at the
// crash point while the test proceeds.
type severableJournal struct {
	inner jobs.Journal
	mu    sync.Mutex
	dead  bool
}

func (s *severableJournal) sever() {
	s.mu.Lock()
	s.dead = true
	s.mu.Unlock()
}

func (s *severableJournal) Append(e jobs.JournalEntry) error {
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if dead {
		return nil
	}
	return s.inner.Append(e)
}

func (s *severableJournal) Replay(fn func(e jobs.JournalEntry) error) error {
	return s.inner.Replay(fn)
}

func (s *severableJournal) Sync() error {
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if dead {
		return nil
	}
	return s.inner.Sync()
}

// clip generates a deterministic synthetic jump with the given seed.
func clip(t *testing.T, seed int64) *synth.Video {
	t.Helper()
	params := synth.DefaultJumpParams()
	params.Seed = seed
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// jobStatusOf fetches GET /v1/jobs/{id} as a raw map for field comparison.
func jobStatusOf(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status of %s: %d", id, resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestCrashRecoveryEndToEnd is the acceptance test of the journal: a
// server whose Manager is journal-backed crashes (dropped without Close)
// with one job finished, one running and two queued; a new server opened
// over the same journal — which additionally suffered a torn final record
// — serves the finished result byte-identically WITHOUT re-running the
// pipeline, and re-executes the three interrupted jobs to results
// byte-identical to an un-journaled reference server.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline recovery run in -short mode")
	}
	cfg := e2etest.Config()
	vDone, vFull, vQ1, vQ2 := clip(t, 1), clip(t, 2), clip(t, 3), clip(t, 4)

	// Reference: the same stack, no journal — the identity baseline.
	ref, err := server.NewWithOptions(cfg, nil, server.Options{
		Workers: 1, QueueSize: 8, ResultTTL: time.Hour, CacheEntries: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	refSrv := httptest.NewServer(ref.Handler())
	defer func() {
		refSrv.Close()
		_ = ref.Close(context.Background())
	}()
	refDone := e2etest.SubmitAndFetch(t, refSrv.URL, vDone)
	refQ1 := e2etest.SubmitAndFetch(t, refSrv.URL, vQ1)
	refQ2 := e2etest.SubmitAndFetch(t, refSrv.URL, vQ2)
	fullDoc, _, code := e2etest.Submit(t, refSrv.URL, vFull, "", false)
	if code != http.StatusAccepted {
		t.Fatalf("reference full submit: %d", code)
	}
	refFull := e2etest.PollResult(t, refSrv.URL, fullDoc.ResultURL, 2*time.Minute)

	// Phase 1: the journal-backed server. One worker so the full-pipeline
	// job occupies it while the two fast ones queue behind.
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jrn1, err := journal.Open(path, journal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sev := &severableJournal{inner: jrn1}
	s1, err := server.NewWithOptions(cfg, nil, server.Options{
		Workers: 1, QueueSize: 8, ResultTTL: time.Hour, CacheEntries: 0,
		Journal: sev,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())

	// One finished job, with its pre-crash bytes and status captured.
	doneDoc, _, code := e2etest.Submit(t, hs1.URL, vDone, "segmentation", true)
	if code != http.StatusAccepted {
		t.Fatalf("done-clip submit: %d", code)
	}
	preDone := e2etest.PollResult(t, hs1.URL, doneDoc.ResultURL, 30*time.Second)
	if string(e2etest.StripVolatile(t, preDone)) != string(e2etest.StripVolatile(t, refDone)) {
		t.Fatalf("journal-backed result differs before any crash:\n%s\nvs\n%s", preDone, refDone)
	}
	doneStatus := jobStatusOf(t, hs1.URL, doneDoc.ID)

	// The slow full-pipeline job plus two queued fast ones.
	runDoc, _, code := e2etest.Submit(t, hs1.URL, vFull, "", false)
	if code != http.StatusAccepted {
		t.Fatalf("full submit: %d", code)
	}
	q1Doc, _, code := e2etest.Submit(t, hs1.URL, vQ1, "segmentation", true)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit 1: %d", code)
	}
	q2Doc, _, code := e2etest.Submit(t, hs1.URL, vQ2, "segmentation", true)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit 2: %d", code)
	}

	// Crash. Make the accepted submissions durable (the crash point is
	// after the OS has them), freeze the file, and tear its final record
	// the way a mid-append power cut would.
	if err := sev.Sync(); err != nil {
		t.Fatal(err)
	}
	sev.sever()
	hs1.Close() // the Manager is abandoned: no Close, no drain
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"` + runDoc.ID + `","at":"2026-0`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 2: a fresh server over the same journal.
	jrn2, err := journal.Open(path, journal.DefaultConfig())
	if err != nil {
		t.Fatalf("reopen over torn journal: %v", err)
	}
	defer jrn2.Close()
	s2, err := server.NewWithOptions(cfg, nil, server.Options{
		Workers: 1, QueueSize: 8, ResultTTL: time.Hour, CacheEntries: 0,
		Journal: jrn2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer func() {
		hs2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Close(ctx)
	}()

	// The finished job: immediately pollable, byte-identical, original
	// timestamps — and served without re-running the pipeline.
	restored := e2etest.PollResult(t, hs2.URL, "/v1/jobs/"+doneDoc.ID+"/result", 5*time.Second)
	if string(restored) != string(preDone) {
		t.Fatalf("restored result differs from the pre-crash bytes:\n%s\nvs\n%s", restored, preDone)
	}
	restoredStatus := jobStatusOf(t, hs2.URL, doneDoc.ID)
	for _, field := range []string{"created_at", "started_at", "finished_at", "state"} {
		if restoredStatus[field] != doneStatus[field] {
			t.Errorf("restored %s = %v, want original %v", field, restoredStatus[field], doneStatus[field])
		}
	}

	// The interrupted jobs re-run to byte-identical results under their
	// original ids.
	gotFull := e2etest.PollResult(t, hs2.URL, "/v1/jobs/"+runDoc.ID+"/result", 2*time.Minute)
	if string(e2etest.StripVolatile(t, gotFull)) != string(e2etest.StripVolatile(t, refFull)) {
		t.Fatalf("re-executed full-pipeline result differs:\n%.200s\nvs\n%.200s", gotFull, refFull)
	}
	gotQ1 := e2etest.PollResult(t, hs2.URL, "/v1/jobs/"+q1Doc.ID+"/result", 30*time.Second)
	gotQ2 := e2etest.PollResult(t, hs2.URL, "/v1/jobs/"+q2Doc.ID+"/result", 30*time.Second)
	if string(e2etest.StripVolatile(t, gotQ1)) != string(e2etest.StripVolatile(t, refQ1)) ||
		string(e2etest.StripVolatile(t, gotQ2)) != string(e2etest.StripVolatile(t, refQ2)) {
		t.Fatal("re-executed queued results differ from the reference")
	}

	// Exactly the three interrupted jobs ran after restart: the restored
	// result never touched the pipeline (no cache is configured, so the
	// journal is the only thing that could have served it).
	clips, _, _ := e2etest.MetricsOf(t, hs2.URL)
	if clips != 3 {
		t.Errorf("clips analyzed after restart = %d, want 3 (the interrupted jobs only)", clips)
	}

	// The history endpoint sees all four jobs as done.
	resp, err := http.Get(hs2.URL + "/v1/jobs?state=done")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Jobs  []jobs.Status `json:"jobs"`
		Count int           `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Count != 4 {
		t.Errorf("done history = %d jobs, want 4", listing.Count)
	}
}
