// Package journal is the file-backed implementation of the jobs.Journal
// seam: an append-only JSON-lines write-ahead log of job lifecycle records
// (DESIGN.md §11). The paper's Section 6 web system only works if an
// upload survives the service it was uploaded to — with every queued and
// finished job living in the Manager's in-memory table, a restart of
// slj-serve silently dropped user clips mid-analysis. Journaling every
// submission (with its full serializable payload), every state transition
// and every TTL eviction makes the table reconstructible: jobs.New replays
// the log on startup, re-enqueueing interrupted work and restoring
// terminal results with their original timestamps.
//
// Layout on disk: one record per line, each a jobs.JournalEntry as JSON.
// The log is at most two files — the active segment at the configured path
// and one sealed segment at path+".1". When the active segment outgrows
// MaxSegmentBytes it is sealed (renamed) and a fresh active segment
// starts; when the dead-record ratio (records of evicted jobs) passes
// CompactRatio, both segments are rewritten keeping only live records, so
// the log stays bounded under TTL churn instead of growing forever.
//
// Durability policy: terminal records (done/failed) are fsynced unless
// DisableTerminalFsync is set — losing a submit record costs at most an
// acknowledged id, losing a running record nothing, and losing a done
// record one re-execution, but a result served to a client must never
// evaporate across a crash. Sync flushes everything (graceful shutdown).
// A torn final record — the crash arrived mid-write — is detected on Open
// and truncated away, so recovery never trips over a half-line.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/obs"
)

// Durability latency histograms feeding the Prometheus export: the append
// covers encode+write (plus any policy fsync/compaction it triggered),
// the fsync histogram isolates the flush+fsync syscall pair — the number
// the ROADMAP's group-commit item needs a baseline for.
var (
	appendSeconds = obs.Default.Histogram("slj_journal_append_seconds",
		"Journal record append time (encode + buffered write + any policy fsync), in seconds.", obs.IOBuckets)
	fsyncSeconds = obs.Default.Histogram("slj_journal_fsync_seconds",
		"Journal flush+fsync time, in seconds.", obs.IOBuckets)
)

// Config parameterises a Journal.
type Config struct {
	// DisableTerminalFsync skips the fsync after terminal (done/failed)
	// appends. The zero Config keeps the fsync — like every other field,
	// the zero value is the safe production policy; disabling is an
	// explicit trade of the durability contract for throughput (benches,
	// best-effort deployments).
	DisableTerminalFsync bool
	// MaxSegmentBytes seals the active segment once it grows past this
	// size; 0 uses DefaultConfig's bound.
	MaxSegmentBytes int64
	// CompactRatio triggers compaction once dead records (those belonging
	// to evicted jobs) make up at least this fraction of all records;
	// 0 uses DefaultConfig's ratio.
	CompactRatio float64
	// CompactMinRecords suppresses compaction below this record count so
	// tiny logs are not endlessly rewritten; 0 uses DefaultConfig's floor.
	CompactMinRecords int
}

// DefaultConfig returns the production policy: terminal fsync on, 64 MiB
// segments, compaction once half the records are dead.
func DefaultConfig() Config {
	return Config{
		MaxSegmentBytes:   64 << 20,
		CompactRatio:      0.5,
		CompactMinRecords: 128,
	}
}

// Journal is a file-backed jobs.Journal. All methods are safe for
// concurrent use, though in practice the owning Manager serialises them.
type Journal struct {
	cfg  Config
	path string // active segment; the sealed segment is path+".1"

	mu         sync.Mutex
	f          *os.File
	w          *bufio.Writer
	activeSize int64
	closed     bool

	// live tracks per-job record counts so compaction knows the dead
	// ratio without re-reading the files: evicting a job turns all its
	// records (plus the evict record itself) dead at once.
	live        map[string]int
	liveRecs    int
	deadRecs    int
	compactions int
}

// The journal is the canonical jobs.Journal.
var _ jobs.Journal = (*Journal)(nil)

// sealedPath is the sealed-segment suffix.
func sealedPath(path string) string { return path + ".1" }

// Open opens (or creates) the journal at path. Existing segments are
// scanned to rebuild the live/dead bookkeeping, and a torn final record in
// the active segment — a crash mid-append — is truncated away so new
// appends start on a clean line boundary.
func Open(path string, cfg Config) (*Journal, error) {
	def := DefaultConfig()
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = def.MaxSegmentBytes
	}
	if cfg.CompactRatio <= 0 {
		cfg.CompactRatio = def.CompactRatio
	}
	if cfg.CompactMinRecords <= 0 {
		cfg.CompactMinRecords = def.CompactMinRecords
	}
	j := &Journal{cfg: cfg, path: path, live: make(map[string]int)}

	// Sealed segment: count records; torn tails cannot occur here short of
	// external damage, and a truncated tail is simply ignored on replay.
	if err := readSegment(sealedPath(path), func(e jobs.JournalEntry) error {
		j.countLocked(e)
		return nil
	}); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	valid, err := scanValidPrefix(f, func(e jobs.JournalEntry) error {
		j.countLocked(e)
		return nil
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (if any) and position appends after the last
	// complete record.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.activeSize = valid
	return j, nil
}

// countLocked applies one record to the live/dead bookkeeping.
func (j *Journal) countLocked(e jobs.JournalEntry) {
	if e.Op == jobs.OpEvict {
		j.deadRecs += j.live[e.ID] + 1
		j.liveRecs -= j.live[e.ID]
		delete(j.live, e.ID)
		return
	}
	j.live[e.ID]++
	j.liveRecs++
}

// Append writes one record, applies the fsync policy, and rotates or
// compacts when the thresholds say so.
func (j *Journal) Append(e jobs.JournalEntry) error {
	defer func(start time.Time) {
		appendSeconds.Observe(time.Since(start).Seconds())
	}(time.Now())
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errClosed
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	raw = append(raw, '\n')
	n, err := j.w.Write(raw)
	j.activeSize += int64(n)
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.countLocked(e)
	// Rotation/compaction runs only on terminal appends (and Sync): the
	// Manager issues those outside its table lock, while the cheap
	// running/evict appends happen inside it — a multi-segment rewrite
	// must never stall every concurrent poller behind that lock. Evict-
	// driven dead records therefore wait for the next completion or Sync,
	// which bounds the deferral to one job's lifetime on an active
	// manager.
	if e.Op.Terminal() {
		if !j.cfg.DisableTerminalFsync {
			if err := j.syncLocked(); err != nil {
				return err
			}
		}
		return j.maintainLocked()
	}
	return nil
}

// maintainLocked applies rotation and compaction policy after an append.
// Caller holds mu.
func (j *Journal) maintainLocked() error {
	total := j.liveRecs + j.deadRecs
	if total >= j.cfg.CompactMinRecords &&
		float64(j.deadRecs) >= j.cfg.CompactRatio*float64(total) {
		return j.compactLocked()
	}
	if j.activeSize < j.cfg.MaxSegmentBytes {
		return nil
	}
	_, err := os.Stat(sealedPath(j.path))
	switch {
	case err == nil:
		// Both segments full: folding them into one live-only file is the
		// only way to keep the two-segment invariant.
		return j.compactLocked()
	case errors.Is(err, os.ErrNotExist):
		return j.rotateLocked()
	default:
		// A transient Stat failure must NOT select rotation: rotating
		// renames the active file over the sealed path, and clobbering a
		// sealed segment we merely failed to stat would silently discard
		// its records. Surface the error and retry on a later append.
		return fmt.Errorf("journal: stat sealed segment: %w", err)
	}
}

// rotateLocked seals the active segment and starts a fresh one. Caller
// holds mu.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(j.path, sealedPath(j.path)); err != nil {
		return err
	}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.activeSize = 0
	return nil
}

// compactLocked rewrites both segments keeping only records of live
// (non-evicted) jobs: stream sealed + active through a filter into a
// temporary file, fsync it, rename it over the active path, then drop the
// sealed segment. The rename order is crash-safe — a crash between the two
// steps leaves duplicate records across segments, which replay tolerates
// (duplicate submits are ignored, repeated transitions idempotent).
// Caller holds mu.
func (j *Journal) compactLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	tmpPath := j.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	var size int64
	keep := func(e jobs.JournalEntry) error {
		if _, ok := j.live[e.ID]; !ok {
			return nil // evicted job: every record of it is dead
		}
		raw, err := json.Marshal(e)
		if err != nil {
			return err
		}
		n, err := w.Write(append(raw, '\n'))
		size += int64(n)
		return err
	}
	err = readSegment(sealedPath(j.path), keep)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := readSegment(j.path, keep); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		return err
	}
	if err := os.Remove(sealedPath(j.path)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.activeSize = size
	j.deadRecs = 0
	j.compactions++
	return nil
}

// Replay streams every record — sealed segment first, then active — into
// fn in append order. A torn tail in either file ends that file's stream
// cleanly (Open already truncated the active one; a sealed tear can only
// come from external damage).
func (j *Journal) Replay(fn func(e jobs.JournalEntry) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := readSegment(sealedPath(j.path), fn); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return readSegment(j.path, fn)
}

// Sync flushes buffered appends, fsyncs the active segment, and applies
// any deferred rotation/compaction (see Append).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errClosed
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	return j.maintainLocked()
}

// syncLocked flushes and fsyncs. Caller holds mu.
func (j *Journal) syncLocked() error {
	defer func(start time.Time) {
		fsyncSeconds.Observe(time.Since(start).Seconds())
	}(time.Now())
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.syncLocked(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Metrics is a point-in-time snapshot of the journal's bookkeeping.
type Metrics struct {
	LiveRecords int   `json:"live_records"`
	DeadRecords int   `json:"dead_records"`
	ActiveBytes int64 `json:"active_bytes"`
	Compactions int   `json:"compactions"`
}

// Stats snapshots the journal bookkeeping (tests, operators).
func (j *Journal) Stats() Metrics {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Metrics{
		LiveRecords: j.liveRecs,
		DeadRecords: j.deadRecs,
		ActiveBytes: j.activeSize,
		Compactions: j.compactions,
	}
}

// errClosed rejects use after Close.
var errClosed = errors.New("journal: closed")

// readSegment streams one segment file into fn, stopping cleanly at a torn
// final record. Returns os.ErrNotExist (wrapped) when the file is absent.
func readSegment(path string, fn func(e jobs.JournalEntry) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = scanValidPrefix(f, fn)
	return err
}

// scanValidPrefix reads complete records from r (positioned at the start)
// into fn and returns the byte offset just past the last complete record.
// An undecodable or unterminated final line is a torn write: it is not
// passed to fn and not counted into the returned offset. Garbage that is
// *followed* by further records is real corruption and errors out.
func scanValidPrefix(r io.Reader, fn func(e jobs.JournalEntry) error) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var off int64
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the final append never completed.
			return off, nil
		}
		if err != nil {
			return off, fmt.Errorf("journal: read: %w", err)
		}
		var e jobs.JournalEntry
		if uerr := json.Unmarshal(line, &e); uerr != nil {
			// A broken line can only be tolerated as the torn tail; if
			// complete records follow, the file is corrupt, not torn.
			if _, perr := br.Peek(1); perr == io.EOF {
				return off, nil
			}
			return off, fmt.Errorf("journal: corrupt record at offset %d: %w", off, uerr)
		}
		off += int64(len(line))
		if err := fn(e); err != nil {
			return off, err
		}
	}
}
