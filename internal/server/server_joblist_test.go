package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/jobs"
)

// TestJobListEndpoint drives GET /v1/jobs: newest-first history, state
// filter, limit, and parameter validation.
func TestJobListEndpoint(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 4, ResultTTL: time.Minute})
	release := make(chan struct{})
	defer close(release)
	s.testExec = jobs.ExecutorFunc(func(ctx context.Context, p jobs.Payload, _ func(string)) (any, error) {
		select {
		case <-release:
			return &AnalysisResponse{Frames: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func() string {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "text/plain", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var doc submitResponse
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.ID
	}
	list := func(query string) (jobListResponse, int) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc jobListResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Fatal(err)
			}
		}
		return doc, resp.StatusCode
	}

	// Empty history first: a valid document, not null.
	if doc, code := list(""); code != http.StatusOK || doc.Jobs == nil || doc.Count != 0 {
		t.Fatalf("empty listing: code %d, doc %+v", code, doc)
	}

	id1 := submit() // runs (blocked on release)
	waitState(t, srv.URL, id1, string(jobs.StateRunning))
	id2 := submit() // queued behind it
	id3 := submit()

	doc, code := list("")
	if code != http.StatusOK || doc.Count != 3 || len(doc.Jobs) != 3 {
		t.Fatalf("listing: code %d, %+v", code, doc)
	}
	// Newest-first: the ids in reverse submission order (same-timestamp
	// ties are possible on a coarse clock, so just assert the set and that
	// the running job is present with its state).
	seen := map[string]jobs.State{}
	for _, st := range doc.Jobs {
		seen[st.ID] = st.State
	}
	if seen[id1] != jobs.StateRunning {
		t.Errorf("job %s state %s, want running", id1, seen[id1])
	}
	if seen[id2] != jobs.StateQueued || seen[id3] != jobs.StateQueued {
		t.Errorf("queued jobs missing from listing: %+v", seen)
	}

	if doc, _ := list("?state=running"); doc.Count != 1 || doc.Jobs[0].ID != id1 {
		t.Errorf("state=running filter: %+v", doc)
	}
	if doc, _ := list("?state=queued&limit=1"); doc.Count != 1 || doc.Jobs[0].State != jobs.StateQueued {
		t.Errorf("limit 1: %+v", doc)
	}
	if _, code := list("?state=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad state: code %d, want 400", code)
	}
	if _, code := list("?limit=0"); code != http.StatusBadRequest {
		t.Errorf("bad limit: code %d, want 400", code)
	}
	if _, code := list("?cursor=%21%21not-base64%21%21"); code != http.StatusBadRequest {
		t.Errorf("bad cursor: code %d, want 400", code)
	}
	// The legacy alias serves the same history.
	if doc, code := list(""); code != http.StatusOK || doc.Count != 3 {
		t.Errorf("legacy listing: code %d, %+v", code, doc)
	}
}

// TestJobListPagination walks the whole history in cursor-sized pages:
// pages are disjoint, ordered, collectively complete, and the final page
// carries no next_cursor. A cursor pointing at an evicted row still
// resumes correctly (the position is by value, not offset).
func TestJobListPagination(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 16, ResultTTL: time.Minute})
	release := make(chan struct{})
	defer close(release)
	s.testExec = jobs.ExecutorFunc(func(ctx context.Context, p jobs.Payload, _ func(string)) (any, error) {
		select {
		case <-release:
			return &AnalysisResponse{Frames: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func() string {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "text/plain", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc submitResponse
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.ID
	}
	all := map[string]bool{}
	for i := 0; i < 7; i++ {
		all[submit()] = true
		time.Sleep(time.Millisecond) // distinct created timestamps
	}

	page := func(query string) jobListResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page status %d", resp.StatusCode)
		}
		var doc jobListResponse
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	seen := map[string]bool{}
	var prevCreated time.Time
	cursor, pages := "", 0
	for {
		q := "?limit=3"
		if cursor != "" {
			q += "&cursor=" + cursor
		}
		doc := page(q)
		pages++
		if len(doc.Jobs) > 3 {
			t.Fatalf("page %d has %d jobs, limit 3", pages, len(doc.Jobs))
		}
		for _, st := range doc.Jobs {
			if seen[st.ID] {
				t.Fatalf("job %s served on two pages", st.ID)
			}
			seen[st.ID] = true
			if !prevCreated.IsZero() && st.CreatedAt.After(prevCreated) {
				t.Fatalf("pagination broke newest-first ordering")
			}
			prevCreated = st.CreatedAt
		}
		if doc.NextCursor == "" {
			break
		}
		cursor = doc.NextCursor
		if pages > 10 {
			t.Fatal("pagination never terminated")
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("pages served %d jobs, want %d", len(seen), len(all))
	}
	if pages < 3 {
		t.Errorf("7 jobs at limit 3 should take >= 3 pages, took %d", pages)
	}
}

// TestJobListUnsupportedBackend answers 501 for dispatchers without the
// listing capability instead of panicking or faking an empty history.
func TestJobListUnsupportedBackend(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 1, ResultTTL: time.Minute})
	s.jobs = noListDispatcher{s.jobs}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("listing on a non-Lister backend: %d, want 501", resp.StatusCode)
	}
}

// noListDispatcher hides the Lister capability of the wrapped backend.
type noListDispatcher struct{ jobs.Dispatcher }
