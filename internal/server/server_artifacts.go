// Artifact store and clip-ingest session routes (DESIGN.md §14).
//
// The artifact surface is content-addressed and versioned-only:
//
//	POST /v1/artifacts            store one typed blob → {hash, kind, bytes}
//	GET  /v1/artifacts/{hash}     fetch a blob (worker pull protocol)
//
// The ingest surface streams a clip in ordered chunks:
//
//	POST /v1/clips                open a session → clip id + URLs
//	GET  /v1/clips/{id}           session progress
//	PUT  /v1/clips/{id}/frames    append chunk N (multipart frames + chunk=N)
//	POST /v1/clips/{id}/seal      close → frames + silhouettes hashes
//
// A sealed clip's frames hash is accepted anywhere a frame list is today:
// POST /v1/analyze or /v1/jobs with an application/json body naming it
// (requestFromJSON). Errors clients must react to programmatically carry a
// stable code in the shared envelope: session_not_found, session_sealed,
// chunk_out_of_order, artifact_not_found.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/sljmotion/sljmotion/internal/artifacts"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// ArtifactKindHeader carries the typed kind of a served artifact blob.
const ArtifactKindHeader = "X-SLJ-Artifact-Kind"

// resolver returns the Resolver for payloads that may reference artifacts
// this node does not hold: the local store alone when no origin is known,
// otherwise the pull-through resolver against the originating front end.
func (s *Server) resolver(origin string) artifacts.Resolver {
	if origin == "" {
		return s.artifacts
	}
	return &artifacts.HTTPResolver{Local: s.artifacts, Origin: origin}
}

// artifactPutResponse acknowledges one stored blob.
type artifactPutResponse struct {
	Hash  string `json:"hash"`
	Kind  string `json:"kind"`
	Bytes int    `json:"bytes"`
}

// handleArtifactPut stores one typed artifact blob (POST /v1/artifacts).
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxUploadBytes)
	blob, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read artifact: %v", err))
		return
	}
	kind, ok := artifacts.KindOf(blob)
	if !ok {
		writeError(w, http.StatusBadRequest, "not an artifact blob (bad magic or kind)")
		return
	}
	hash, err := s.artifacts.Put(blob)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, artifactPutResponse{Hash: hash, Kind: string(kind), Bytes: len(blob)})
}

// handleArtifactGet serves one blob by hash (GET /v1/artifacts/{hash}) —
// the worker pull protocol, also usable by any client holding a hash.
//
// The route supports conditional and partial reads for very large clips:
// the strong ETag is the content hash itself (content-addressed storage
// makes revalidation exact — If-None-Match of the hash answers 304 with no
// body), and Range requests answer 206 with only the requested bytes.
// Memory misses with a spill tier stream straight from the spill file, so
// a ranged read of a multi-gigabyte clip never loads it into memory.
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/v1/artifacts/")
	if hash == "" || strings.Contains(hash, "/") {
		writeError(w, http.StatusNotFound, "not found")
		return
	}
	rs, kind, _, ok := s.artifacts.Open(hash)
	if !ok {
		writeErrorCode(w, http.StatusNotFound, "artifact_not_found",
			fmt.Sprintf("no artifact %s (expired, evicted, or never stored)", hash))
		return
	}
	if c, isCloser := rs.(io.Closer); isCloser {
		defer c.Close()
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(ArtifactKindHeader, string(kind))
	w.Header().Set("ETag", `"`+hash+`"`)
	// ServeContent handles If-None-Match (304), Range (206 + Content-Range,
	// including multi-range and 416), and Content-Length. The zero modtime
	// disables time-based validation — content addressing makes it moot.
	http.ServeContent(w, r, "", time.Time{}, rs)
}

// clipOpenResponse acknowledges one opened ingest session.
type clipOpenResponse struct {
	ClipID    string `json:"clip_id"`
	StatusURL string `json:"status_url"`
	FramesURL string `json:"frames_url"`
	SealURL   string `json:"seal_url"`
}

// handleClipOpen opens a chunked ingest session (POST /v1/clips).
func (s *Server) handleClipOpen(w http.ResponseWriter, r *http.Request) {
	sess, err := s.clips.Open()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	base := "/v1/clips/" + sess.ID()
	writeJSON(w, http.StatusCreated, clipOpenResponse{
		ClipID:    sess.ID(),
		StatusURL: base,
		FramesURL: base + "/frames",
		SealURL:   base + "/seal",
	})
}

// handleClipPath routes /v1/clips/{id}[/frames|/seal].
func (s *Server) handleClipPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/clips/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeError(w, http.StatusNotFound, "missing clip id")
		return
	}
	sess, ok := s.clips.Get(id)
	if !ok {
		writeErrorCode(w, http.StatusNotFound, "session_not_found",
			fmt.Sprintf("no ingest session %s (expired or never opened)", id))
		return
	}
	switch sub {
	case "":
		method(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, sess.Status())
		})(w, r)
	case "frames":
		method(http.MethodPut, func(w http.ResponseWriter, r *http.Request) {
			s.handleClipFrames(w, r, sess)
		})(w, r)
	case "seal":
		method(http.MethodPost, func(w http.ResponseWriter, r *http.Request) {
			s.handleClipSeal(w, sess)
		})(w, r)
	default:
		writeError(w, http.StatusNotFound, "not found")
	}
}

// handleClipFrames appends one chunk of PPM frames to an ingest session
// (PUT /v1/clips/{id}/frames, multipart: frames files + chunk=N).
func (s *Server) handleClipFrames(w http.ResponseWriter, r *http.Request, sess *artifacts.Session) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxUploadBytes)
	if err := r.ParseMultipartForm(MaxUploadBytes); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parse upload: %v", err))
		return
	}
	defer func() {
		if r.MultipartForm != nil {
			_ = r.MultipartForm.RemoveAll()
		}
	}()
	cv := r.FormValue("chunk")
	chunk, err := strconv.Atoi(cv)
	if err != nil || chunk < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("chunk %q is not a non-negative integer", cv))
		return
	}
	frames, err := framesFromUpload(r.MultipartForm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := sess.Append(chunk, frames); err != nil {
		var oo *artifacts.OutOfOrderError
		switch {
		case errors.As(err, &oo):
			writeErrorCode(w, http.StatusConflict, "chunk_out_of_order", err.Error())
		case errors.Is(err, artifacts.ErrSessionSealed):
			writeErrorCode(w, http.StatusConflict, "session_sealed", err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

// handleClipSeal closes an ingest session (POST /v1/clips/{id}/seal).
// Idempotent: resealing answers the same document.
func (s *Server) handleClipSeal(w http.ResponseWriter, sess *artifacts.Session) {
	doc, err := sess.Seal()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// analyzeJSON is the application/json request body of POST /v1/analyze and
// POST /v1/jobs: artifacts by content hash instead of a multipart upload.
type analyzeJSON struct {
	FramesRef      string    `json:"frames_ref"`
	SilhouettesRef string    `json:"silhouettes_ref"`
	PosesRef       string    `json:"poses_ref"`
	ManualFirst    *poseJSON `json:"manual_first"`
	Stages         string    `json:"stages"`
	Poses          bool      `json:"poses"`
	Silhouettes    bool      `json:"silhouettes"`
}

// poseJSON is the manual first-frame stick figure in JSON requests.
type poseJSON struct {
	X   float64   `json:"x"`
	Y   float64   `json:"y"`
	Rho []float64 `json:"rho"`
}

// requestFromJSON parses a by-reference analysis request. At least one
// artifact reference is required — inline artifacts belong to the
// multipart route. Unlike multipart uploads, by-reference requests may
// enter the pipeline mid-way: a silhouettes or poses artifact carries
// exactly the state a pose- or tracking-stage entry needs.
func requestFromJSON(w http.ResponseWriter, r *http.Request) (core.Request, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20) // hashes + options only
	var doc analyzeJSON
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return core.Request{}, false
	}
	if doc.FramesRef == "" && doc.SilhouettesRef == "" && doc.PosesRef == "" {
		writeError(w, http.StatusBadRequest,
			"a JSON analysis request needs at least one artifact reference (frames_ref, silhouettes_ref or poses_ref)")
		return core.Request{}, false
	}
	req := core.Request{
		FramesRef:          doc.FramesRef,
		SilhouettesRef:     doc.SilhouettesRef,
		PosesRef:           doc.PosesRef,
		IncludePoses:       doc.Poses,
		IncludeSilhouettes: doc.Silhouettes,
	}
	if doc.ManualFirst != nil {
		if len(doc.ManualFirst.Rho) != stickmodel.NumSticks {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("manual_first.rho needs %d angles, got %d", stickmodel.NumSticks, len(doc.ManualFirst.Rho)))
			return core.Request{}, false
		}
		req.ManualFirst = stickmodel.Pose{X: doc.ManualFirst.X, Y: doc.ManualFirst.Y}
		copy(req.ManualFirst.Rho[:], doc.ManualFirst.Rho)
	}
	if doc.Stages != "" {
		sel, err := core.ParseStageSelection(doc.Stages)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return core.Request{}, false
		}
		req.Stages = sel
	}
	return req, true
}
