// Fleet administration and successor-replica intake: the HTTP half of the
// elastic dispatch membership (internal/dispatch).
//
// A front end whose job backend implements jobs.FleetManager (the remote
// dispatcher) exposes runtime topology control:
//
//	GET  /v1/fleet          current membership (epoch + per-node state)
//	POST /v1/fleet/nodes    {"url": ..., "weight": n} — join after a
//	                        passing health probe (502 on probe failure)
//	POST /v1/fleet/drain    {"url": ...} — stop routing new keys; the node
//	                        is removed once its running jobs finish
//	POST /v1/fleet/remove   {"url": ...} — drop immediately (force path)
//
// Worker nodes additionally accept successor-replication pushes:
//
//	POST /v1/worker/replica {"key": <hex cache key>, "response": {...}}
//
// storing the pushed response document in the node's result cache so a
// failover re-hash of the same key is answered without recomputing. The
// intake trusts its fleet peers — it sits on the worker surface, the same
// trust domain as POST /v1/worker/jobs (DESIGN.md §16).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/obs"
)

// fleetManager unwraps the backend's fleet capability.
func (s *Server) fleetManager(w http.ResponseWriter) (jobs.FleetManager, bool) {
	fm, ok := s.jobs.(jobs.FleetManager)
	if !ok {
		writeError(w, http.StatusNotImplemented, "fleet management is not supported by this backend")
		return nil, false
	}
	return fm, true
}

// handleFleet serves GET /v1/fleet: the membership view plus the
// observability rollup — the fleet-wide SLO document and, when the
// backend federates member metrics, its scrape bookkeeping (from cache
// only; listing the fleet must never trigger a scrape sweep).
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	fm, ok := s.fleetManager(w)
	if !ok {
		return
	}
	view := fm.Fleet()
	doc := map[string]any{
		"epoch": view.Epoch,
		"nodes": view.Nodes,
		"slo":   s.slo.Doc(),
	}
	if fs, ok := s.jobs.(interface{ FederationStats() jobs.FederationStats }); ok {
		doc["federation"] = fs.FederationStats()
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleFleetMetrics serves GET /v1/fleet/metrics: the merged Prometheus
// exposition of every fleet member, each sample labelled with its node.
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	mf, ok := s.jobs.(jobs.MetricsFederator)
	if !ok {
		writeError(w, http.StatusNotImplemented, "metrics federation is not supported by this backend")
		return
	}
	merged, _, err := mf.FederatedMetrics()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("federate metrics: %v", err))
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	w.Write(merged)
}

// fleetNodeDoc is the request body of the fleet mutation routes.
type fleetNodeDoc struct {
	URL    string `json:"url"`
	Weight int    `json:"weight,omitempty"`
}

// decodeFleetNode parses one mutation body.
func decodeFleetNode(w http.ResponseWriter, r *http.Request) (fleetNodeDoc, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	var doc fleetNodeDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode fleet request: %v", err))
		return fleetNodeDoc{}, false
	}
	if doc.URL == "" {
		writeError(w, http.StatusBadRequest, "missing node url")
		return fleetNodeDoc{}, false
	}
	return doc, true
}

// handleFleetJoin serves POST /v1/fleet/nodes: the worker registration
// endpoint. The node is admitted only after its health probe passes.
func (s *Server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	fm, ok := s.fleetManager(w)
	if !ok {
		return
	}
	doc, ok := decodeFleetNode(w, r)
	if !ok {
		return
	}
	view, err := fm.JoinNode(doc.URL, doc.Weight)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	s.log.Info("fleet join", "node", doc.URL, "weight", doc.Weight, "epoch", view.Epoch)
	writeJSON(w, http.StatusOK, view)
}

// handleFleetDrain serves POST /v1/fleet/drain.
func (s *Server) handleFleetDrain(w http.ResponseWriter, r *http.Request) {
	fm, ok := s.fleetManager(w)
	if !ok {
		return
	}
	doc, ok := decodeFleetNode(w, r)
	if !ok {
		return
	}
	view, err := fm.DrainNode(doc.URL)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	s.log.Info("fleet drain", "node", doc.URL, "epoch", view.Epoch)
	writeJSON(w, http.StatusOK, view)
}

// handleFleetRemove serves POST /v1/fleet/remove.
func (s *Server) handleFleetRemove(w http.ResponseWriter, r *http.Request) {
	fm, ok := s.fleetManager(w)
	if !ok {
		return
	}
	doc, ok := decodeFleetNode(w, r)
	if !ok {
		return
	}
	view, err := fm.RemoveNode(doc.URL)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	s.log.Info("fleet remove", "node", doc.URL, "epoch", view.Epoch)
	writeJSON(w, http.StatusOK, view)
}

// writeFleetError maps the jobs fleet sentinels onto HTTP statuses.
func writeFleetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrNodeUnknown):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrNodeUnhealthy):
		writeError(w, http.StatusBadGateway, err.Error())
	case errors.Is(err, jobs.ErrLastNode):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// replicaDoc is the body of POST /v1/worker/replica.
type replicaDoc struct {
	Key      string          `json:"key"`
	Response json.RawMessage `json:"response"`
}

// handleWorkerReplica accepts one replicated result: the pushed response
// document is decoded and stored in this node's result cache under the
// pushed key, exactly as if this node had computed it. Storing the decoded
// struct (not the raw bytes) keeps the cache homogeneous — every later
// reader re-serialises through writeJSON, so a replicated answer is
// byte-identical to a locally computed one. A node without a result cache
// accepts and drops the push (204 either way: replication is best-effort).
func (s *Server) handleWorkerReplica(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
	var doc replicaDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode replica: %v", err))
		return
	}
	key, ok := cache.ParseKey(doc.Key)
	if !ok {
		writeError(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	if len(doc.Response) == 0 {
		writeError(w, http.StatusBadRequest, "missing response document")
		return
	}
	var resp AnalysisResponse
	if err := json.Unmarshal(doc.Response, &resp); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode replica response: %v", err))
		return
	}
	s.replMu.Lock()
	s.replicaReceived++
	s.replMu.Unlock()
	if s.cache != nil {
		s.cache.Put(key, &resp)
		s.replMu.Lock()
		s.replicaStored++
		s.replMu.Unlock()
		s.log.Debug("replica stored", "key", doc.Key)
	}
	w.WriteHeader(http.StatusNoContent)
}

// onCacheStore is the result cache's write-through hook: a fill whose key
// belongs to an in-flight job with a replica target is mirrored there. The
// replica intake's own Puts find no registered target and stay local — no
// replication cascade.
func (s *Server) onCacheStore(k cache.Key, v any) {
	s.replMu.Lock()
	target, ok := s.replTargets[k]
	s.replMu.Unlock()
	if !ok || target == "" {
		return
	}
	resp, isResp := v.(*AnalysisResponse)
	if !isResp {
		return
	}
	doc, err := json.Marshal(resp)
	if err != nil {
		return
	}
	s.replica.ReplicateResult(target, k.String(), doc)
}

// onArtifactStore is the artifact store's write-through hook: a blob stored
// while replicating jobs are in flight (a worker pull mid-resolution, an
// ingest append) is mirrored to every active target. The sink deduplicates
// per target and hash, so overlapping jobs cost one push.
func (s *Server) onArtifactStore(hash string, blob []byte) {
	s.replMu.Lock()
	targets := make([]string, 0, len(s.replActive))
	for t := range s.replActive {
		targets = append(targets, t)
	}
	s.replMu.Unlock()
	for _, t := range targets {
		s.replica.ReplicateArtifact(t, hash, blob)
	}
}

// replicationMetrics is the /v1/metrics "replication" section, present only
// on nodes wired with a replica sink.
type replicationMetrics struct {
	Push            jobs.ReplicaMetrics `json:"push"`
	ResultsReceived uint64              `json:"results_received"`
	ResultsStored   uint64              `json:"results_stored"`
}

// replicationSnapshot builds the metrics section; ok is false without a
// sink (the JSON document stays byte-compatible with earlier releases).
func (s *Server) replicationSnapshot() (replicationMetrics, bool) {
	if s.replica == nil {
		return replicationMetrics{}, false
	}
	s.replMu.Lock()
	rec, stored := s.replicaReceived, s.replicaStored
	s.replMu.Unlock()
	return replicationMetrics{
		Push:            s.replica.ReplicaMetrics(),
		ResultsReceived: rec,
		ResultsStored:   stored,
	}, true
}
