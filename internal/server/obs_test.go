package server

// Tests for the observability surface: the /v1/jobs/{id}/trace span tree,
// the Prometheus text exposition (a conformance lint over the scrape), and
// the byte-compatibility pin of the default JSON /v1/metrics document.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// metricsJSONGolden pins the exact bytes of GET /v1/metrics for a fresh
// server with Workers:2 QueueSize:4 CacheEntries:8 (TTLs 15m). The JSON
// document is the scrape format of record since PR 2; the Prometheus
// exposition rides on ?format=prometheus only, and this golden is the
// regression tripwire for any accidental change to the default bytes —
// field renames, ordering, indentation, new keys.
const metricsJSONGolden = `{
  "artifacts": {
    "blobs": 0,
    "bytes": 0,
    "capacity_blobs": 256,
    "capacity_bytes": 536870912,
    "hits": 0,
    "misses": 0,
    "stored": 0,
    "evicted_ttl": 0,
    "evicted_lru": 0,
    "spill_writes": 0,
    "spill_reads": 0,
    "pulls": 0,
    "pull_failures": 0
  },
  "cache": {
    "entries": 0,
    "capacity": 8,
    "hits": 0,
    "misses": 0,
    "stored": 0,
    "evicted_ttl": 0,
    "evicted_lru": 0
  },
  "clip_sessions": {
    "open": 0,
    "opened": 0,
    "sealed": 0,
    "expired": 0,
    "frames_ingested": 0,
    "eager_segmented": 0,
    "eager_reused": 0,
    "eager_resegmented": 0
  },
  "clips_analyzed": 0,
  "ga": {
    "fitness_memo_hits": 0,
    "fitness_memo_misses": 0
  },
  "jobs": {
    "workers": 2,
    "queue_capacity": 4,
    "queue_depth": 0,
    "running": 0,
    "jobs_submitted": 0,
    "jobs_rejected": 0,
    "jobs_completed": 0,
    "jobs_failed": 0,
    "jobs_evicted": 0,
    "run_latency": {
      "count": 0,
      "mean_ms": 0,
      "p50_ms": 0,
      "p95_ms": 0,
      "max_ms": 0
    },
    "queue_wait": {
      "count": 0,
      "mean_ms": 0,
      "p50_ms": 0,
      "p95_ms": 0,
      "max_ms": 0
    }
  }
}
`

func TestMetricsJSONByteCompat(t *testing.T) {
	// The GA counters are process-wide; zero them so analyses run by
	// earlier tests in this package cannot bleed into the pinned document.
	pose.ResetGAMetrics()
	s := fastServerWithOptions(t, Options{
		Workers: 2, QueueSize: 4, ResultTTL: 15 * time.Minute,
		CacheEntries: 8, CacheTTL: 15 * time.Minute,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// No format parameter and format=json must serve identical bytes: the
	// parameter only exists to divert to the Prometheus exposition.
	for _, q := range []string{"", "?format=json"} {
		resp, err := http.Get(srv.URL + "/v1/metrics" + q)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/metrics%s: %d", q, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type %q, want application/json", ct)
		}
		if string(raw) != metricsJSONGolden {
			t.Errorf("JSON metrics document diverged from the pinned bytes (query %q):\ngot:\n%s\nwant:\n%s", q, raw, metricsJSONGolden)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format answered %d, want 400", resp.StatusCode)
	}
}

var hexID = regexp.MustCompile(`^[0-9a-f]+$`)

// walkSpans visits every span of the tree depth-first.
func walkSpans(s *obs.SpanDoc, fn func(*obs.SpanDoc)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		walkSpans(c, fn)
	}
}

// childNamed returns the first direct child with the given name.
func childNamed(s *obs.SpanDoc, name string) *obs.SpanDoc {
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func TestJobTraceRoute(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}

	doc, raw, code := e2etest.Submit(t, srv.URL, v, "segmentation", true)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, raw)
	}
	e2etest.PollResult(t, srv.URL, doc.ResultURL, 30*time.Second)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + doc.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace route: %d", resp.StatusCode)
	}
	var trace obs.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}

	if trace.JobID != doc.ID {
		t.Errorf("trace job_id = %q, want %q", trace.JobID, doc.ID)
	}
	if len(trace.TraceID) != 32 || !hexID.MatchString(trace.TraceID) {
		t.Errorf("trace_id %q is not 32 hex chars", trace.TraceID)
	}
	root := trace.Root
	if root == nil || root.Name != "job" {
		t.Fatalf("root span = %+v, want name \"job\"", root)
	}

	// Structural invariants: ids well-formed, parent links coherent, and —
	// the job being done — no span still in flight.
	walkSpans(root, func(s *obs.SpanDoc) {
		if len(s.SpanID) != 16 || !hexID.MatchString(s.SpanID) {
			t.Errorf("span %q id %q is not 16 hex chars", s.Name, s.SpanID)
		}
		if s.InFlight {
			t.Errorf("span %q still in flight on a finished job", s.Name)
		}
		for _, c := range s.Children {
			if c.ParentID != s.SpanID {
				t.Errorf("span %q parent_id %q, want %q", c.Name, c.ParentID, s.SpanID)
			}
			if c.StartUnixNS < s.StartUnixNS {
				t.Errorf("span %q starts before its parent %q", c.Name, s.Name)
			}
		}
	})

	wait := childNamed(root, "queue_wait")
	run := childNamed(root, "run")
	publish := childNamed(root, "publish")
	if wait == nil || run == nil || publish == nil {
		t.Fatalf("root children %v, want queue_wait + run + publish", spanNames(root.Children))
	}
	// No journal is configured, so no append span may appear.
	if childNamed(root, "journal_append") != nil {
		t.Error("journal_append span present without a journal")
	}
	if childNamed(run, "segmentation") == nil {
		t.Errorf("run children %v, want the segmentation stage span", spanNames(run.Children))
	}

	// The acceptance bound: the root covers exactly the job's lifecycle,
	// so its duration matches the status document's queue_wait_ms + run_ms
	// (plus the publish tail) within scheduling tolerance.
	var st struct {
		QueueWaitMS float64 `json:"queue_wait_ms"`
		RunMS       float64 `json:"run_ms"`
	}
	sresp, err := http.Get(srv.URL + "/v1/jobs/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	sum := st.QueueWaitMS + st.RunMS
	if root.DurationMS < sum-1 || root.DurationMS > sum+500 {
		t.Errorf("root duration %.2fms vs queue_wait+run %.2fms: outside [-1ms, +500ms]", root.DurationMS, sum)
	}
	if run.DurationMS > root.DurationMS || wait.DurationMS > root.DurationMS {
		t.Errorf("child durations (wait %.2f, run %.2f) exceed the root's %.2f", wait.DurationMS, run.DurationMS, root.DurationMS)
	}

	// Unknown ids answer 404 like every other job route.
	nresp, err := http.Get(srv.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nresp.Body)
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: %d, want 404", nresp.StatusCode)
	}
}

func spanNames(spans []*obs.SpanDoc) []string {
	var names []string
	for _, s := range spans {
		names = append(names, s.Name)
	}
	return names
}

// TestPrometheusConformance lints the whole scrape against the text
// exposition format via the shared obs.LintExposition grammar (the same
// lint CI runs over the federated fleet scrape): well-formed names and
// labels, HELP/TYPE exactly once per family and before its samples,
// counters named *_total, histogram buckets cumulative and monotone with
// the +Inf bucket equal to _count, and every promised family present —
// including the SLO burn-rate and component-health gauges added with the
// fleet observability plane.
func TestPrometheusConformance(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	// One finished job populates the queue-wait, run and stage histograms.
	e2etest.SubmitAndFetch(t, srv.URL, v)

	resp, err := http.Get(srv.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type %q, want %q", ct, obs.ContentType)
	}

	res := obs.LintExposition(raw, []string{
		"slj_clips_analyzed_total", "slj_jobs_submitted_total", "slj_jobs_queue_depth",
		"slj_cache_hits_total", "slj_cache_evicted_total", "slj_events_dropped_total",
		"slj_job_queue_wait_seconds", "slj_job_run_seconds", "slj_stage_seconds",
		"slj_runtime_goroutines", "slj_runtime_gc_cycles_total",
		"slj_artifacts_blobs", "slj_artifacts_bytes", "slj_artifact_hits_total",
		"slj_artifact_misses_total", "slj_artifact_evicted_total",
		"slj_artifact_pulls_total", "slj_artifact_pull_failures_total",
		"slj_clip_sessions_open", "slj_clip_sessions_sealed_total",
		"slj_clip_frames_ingested_total", "slj_clip_eager_reused_total",
		"slj_dispatch_failovers_total", "slj_dispatch_membership_epoch",
		"slj_slo_objective_latency_seconds", "slj_slo_target_ratio",
		"slj_slo_error_budget_burn", "slj_health_component_ok",
	})
	for _, issue := range res.Issues {
		t.Error(issue)
	}

	// Beyond the grammar: the scrape must carry histogram series and the
	// run-latency histogram must have recorded the finished job above.
	histograms := false
	for _, typ := range res.Types {
		if typ == "histogram" {
			histograms = true
		}
	}
	if !histograms {
		t.Fatal("no histogram series in the scrape")
	}
	runObserved := false
	for _, s := range res.Samples {
		if s.Name == "slj_job_run_seconds_count" && s.Value >= 1 {
			runObserved = true
		}
	}
	if !runObserved {
		t.Error("slj_job_run_seconds has no observations after a finished job")
	}

	// The burn-rate gauge is windowed: both SLO windows must be exposed,
	// and every component-health gauge must read ok (1) on a fresh single
	// node with nothing stalled.
	windows := map[string]bool{}
	for _, s := range res.Samples {
		switch s.Name {
		case "slj_slo_error_budget_burn":
			windows[s.Labels["window"]] = true
		case "slj_health_component_ok":
			if s.Value != 1 {
				t.Errorf("component %q reads %v, want 1 (ok) on a healthy server", s.Labels["component"], s.Value)
			}
		}
	}
	if !windows["5m"] || !windows["1h"] {
		t.Errorf("slj_slo_error_budget_burn windows %v, want both 5m and 1h", windows)
	}
}
