package server

// Tests for the observability surface: the /v1/jobs/{id}/trace span tree,
// the Prometheus text exposition (a conformance lint over the scrape), and
// the byte-compatibility pin of the default JSON /v1/metrics document.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// metricsJSONGolden pins the exact bytes of GET /v1/metrics for a fresh
// server with Workers:2 QueueSize:4 CacheEntries:8 (TTLs 15m). The JSON
// document is the scrape format of record since PR 2; the Prometheus
// exposition rides on ?format=prometheus only, and this golden is the
// regression tripwire for any accidental change to the default bytes —
// field renames, ordering, indentation, new keys.
const metricsJSONGolden = `{
  "artifacts": {
    "blobs": 0,
    "bytes": 0,
    "capacity_blobs": 256,
    "capacity_bytes": 536870912,
    "hits": 0,
    "misses": 0,
    "stored": 0,
    "evicted_ttl": 0,
    "evicted_lru": 0,
    "spill_writes": 0,
    "spill_reads": 0,
    "pulls": 0,
    "pull_failures": 0
  },
  "cache": {
    "entries": 0,
    "capacity": 8,
    "hits": 0,
    "misses": 0,
    "stored": 0,
    "evicted_ttl": 0,
    "evicted_lru": 0
  },
  "clip_sessions": {
    "open": 0,
    "opened": 0,
    "sealed": 0,
    "expired": 0,
    "frames_ingested": 0,
    "eager_segmented": 0,
    "eager_reused": 0,
    "eager_resegmented": 0
  },
  "clips_analyzed": 0,
  "ga": {
    "fitness_memo_hits": 0,
    "fitness_memo_misses": 0
  },
  "jobs": {
    "workers": 2,
    "queue_capacity": 4,
    "queue_depth": 0,
    "running": 0,
    "jobs_submitted": 0,
    "jobs_rejected": 0,
    "jobs_completed": 0,
    "jobs_failed": 0,
    "jobs_evicted": 0,
    "run_latency": {
      "count": 0,
      "mean_ms": 0,
      "p50_ms": 0,
      "p95_ms": 0,
      "max_ms": 0
    },
    "queue_wait": {
      "count": 0,
      "mean_ms": 0,
      "p50_ms": 0,
      "p95_ms": 0,
      "max_ms": 0
    }
  }
}
`

func TestMetricsJSONByteCompat(t *testing.T) {
	// The GA counters are process-wide; zero them so analyses run by
	// earlier tests in this package cannot bleed into the pinned document.
	pose.ResetGAMetrics()
	s := fastServerWithOptions(t, Options{
		Workers: 2, QueueSize: 4, ResultTTL: 15 * time.Minute,
		CacheEntries: 8, CacheTTL: 15 * time.Minute,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// No format parameter and format=json must serve identical bytes: the
	// parameter only exists to divert to the Prometheus exposition.
	for _, q := range []string{"", "?format=json"} {
		resp, err := http.Get(srv.URL + "/v1/metrics" + q)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/metrics%s: %d", q, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type %q, want application/json", ct)
		}
		if string(raw) != metricsJSONGolden {
			t.Errorf("JSON metrics document diverged from the pinned bytes (query %q):\ngot:\n%s\nwant:\n%s", q, raw, metricsJSONGolden)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format answered %d, want 400", resp.StatusCode)
	}
}

var hexID = regexp.MustCompile(`^[0-9a-f]+$`)

// walkSpans visits every span of the tree depth-first.
func walkSpans(s *obs.SpanDoc, fn func(*obs.SpanDoc)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		walkSpans(c, fn)
	}
}

// childNamed returns the first direct child with the given name.
func childNamed(s *obs.SpanDoc, name string) *obs.SpanDoc {
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func TestJobTraceRoute(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}

	doc, raw, code := e2etest.Submit(t, srv.URL, v, "segmentation", true)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, raw)
	}
	e2etest.PollResult(t, srv.URL, doc.ResultURL, 30*time.Second)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + doc.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace route: %d", resp.StatusCode)
	}
	var trace obs.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}

	if trace.JobID != doc.ID {
		t.Errorf("trace job_id = %q, want %q", trace.JobID, doc.ID)
	}
	if len(trace.TraceID) != 32 || !hexID.MatchString(trace.TraceID) {
		t.Errorf("trace_id %q is not 32 hex chars", trace.TraceID)
	}
	root := trace.Root
	if root == nil || root.Name != "job" {
		t.Fatalf("root span = %+v, want name \"job\"", root)
	}

	// Structural invariants: ids well-formed, parent links coherent, and —
	// the job being done — no span still in flight.
	walkSpans(root, func(s *obs.SpanDoc) {
		if len(s.SpanID) != 16 || !hexID.MatchString(s.SpanID) {
			t.Errorf("span %q id %q is not 16 hex chars", s.Name, s.SpanID)
		}
		if s.InFlight {
			t.Errorf("span %q still in flight on a finished job", s.Name)
		}
		for _, c := range s.Children {
			if c.ParentID != s.SpanID {
				t.Errorf("span %q parent_id %q, want %q", c.Name, c.ParentID, s.SpanID)
			}
			if c.StartUnixNS < s.StartUnixNS {
				t.Errorf("span %q starts before its parent %q", c.Name, s.Name)
			}
		}
	})

	wait := childNamed(root, "queue_wait")
	run := childNamed(root, "run")
	publish := childNamed(root, "publish")
	if wait == nil || run == nil || publish == nil {
		t.Fatalf("root children %v, want queue_wait + run + publish", spanNames(root.Children))
	}
	// No journal is configured, so no append span may appear.
	if childNamed(root, "journal_append") != nil {
		t.Error("journal_append span present without a journal")
	}
	if childNamed(run, "segmentation") == nil {
		t.Errorf("run children %v, want the segmentation stage span", spanNames(run.Children))
	}

	// The acceptance bound: the root covers exactly the job's lifecycle,
	// so its duration matches the status document's queue_wait_ms + run_ms
	// (plus the publish tail) within scheduling tolerance.
	var st struct {
		QueueWaitMS float64 `json:"queue_wait_ms"`
		RunMS       float64 `json:"run_ms"`
	}
	sresp, err := http.Get(srv.URL + "/v1/jobs/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	sum := st.QueueWaitMS + st.RunMS
	if root.DurationMS < sum-1 || root.DurationMS > sum+500 {
		t.Errorf("root duration %.2fms vs queue_wait+run %.2fms: outside [-1ms, +500ms]", root.DurationMS, sum)
	}
	if run.DurationMS > root.DurationMS || wait.DurationMS > root.DurationMS {
		t.Errorf("child durations (wait %.2f, run %.2f) exceed the root's %.2f", wait.DurationMS, run.DurationMS, root.DurationMS)
	}

	// Unknown ids answer 404 like every other job route.
	nresp, err := http.Get(srv.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nresp.Body)
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: %d, want 404", nresp.StatusCode)
	}
}

func spanNames(spans []*obs.SpanDoc) []string {
	var names []string
	for _, s := range spans {
		names = append(names, s.Name)
	}
	return names
}

var (
	promMetricRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRE  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
	promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// labelKey canonicalizes the label set minus `le`, for bucket grouping.
func (s promSample) labelKey() string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// TestPrometheusConformance lints the whole scrape against the text
// exposition format: well-formed names and labels, HELP/TYPE exactly once
// per family and before its samples, counters named *_total, histogram
// buckets cumulative and monotone with the +Inf bucket equal to _count.
func TestPrometheusConformance(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	// One finished job populates the queue-wait, run and stage histograms.
	e2etest.SubmitAndFetch(t, srv.URL, v)

	resp, err := http.Get(srv.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type %q, want %q", ct, obs.ContentType)
	}

	types := map[string]string{} // family -> counter|gauge|histogram
	helps := map[string]bool{}
	var samples []promSample
	for i, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !promMetricRE.MatchString(parts[0]) {
				t.Errorf("line %d: malformed HELP name %q", i+1, parts[0])
			}
			if helps[parts[0]] {
				t.Errorf("line %d: duplicate HELP for %s", i+1, parts[0])
			}
			helps[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !promMetricRE.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed TYPE line %q", i+1, line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("line %d: unknown type %q", i+1, typ)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, name)
			}
			if !helps[name] {
				t.Errorf("line %d: TYPE %s has no preceding HELP", i+1, name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: counter %s not named *_total", i+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unexpected comment %q", i+1, line)
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		s := promSample{name: m[1], labels: map[string]string{}}
		for _, kv := range promLabelRE.FindAllStringSubmatch(m[2], -1) {
			s.labels[kv[1]] = kv[2]
		}
		val, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value %q", i+1, m[3])
		}
		s.value = val

		// Every sample must follow a TYPE for its family (histogram
		// samples carry the _bucket/_sum/_count suffixes).
		family := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.name, suf)
			if types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Errorf("line %d: sample %s precedes (or lacks) its TYPE declaration", i+1, s.name)
		}
		samples = append(samples, s)
	}

	// Histogram shape: buckets monotone non-decreasing in le order, the
	// +Inf bucket present and equal to the series' _count.
	buckets := map[string][]promSample{} // family|labelKey -> bucket samples
	counts := map[string]float64{}
	for _, s := range samples {
		if base := strings.TrimSuffix(s.name, "_bucket"); base != s.name && types[base] == "histogram" {
			key := base + "|" + s.labelKey()
			buckets[key] = append(buckets[key], s)
		}
		if base := strings.TrimSuffix(s.name, "_count"); base != s.name && types[base] == "histogram" {
			counts[base+"|"+s.labelKey()] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram series in the scrape")
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return leBound(t, bs[i]) < leBound(t, bs[j]) })
		var prev float64
		for _, b := range bs {
			if b.value < prev {
				t.Errorf("series %s: bucket counts not monotone (%.0f after %.0f)", key, b.value, prev)
			}
			prev = b.value
		}
		last := bs[len(bs)-1]
		if le := last.labels["le"]; le != "+Inf" {
			t.Errorf("series %s: final bucket le=%q, want +Inf", key, le)
		}
		cnt, ok := counts[key]
		if !ok {
			t.Errorf("series %s: no _count sample", key)
		} else if last.value != cnt {
			t.Errorf("series %s: +Inf bucket %.0f != count %.0f", key, last.value, cnt)
		}
	}

	// The families the document promises must actually be there, with at
	// least one observation in the latency histograms after the job above.
	for _, want := range []string{
		"slj_clips_analyzed_total", "slj_jobs_submitted_total", "slj_jobs_queue_depth",
		"slj_cache_hits_total", "slj_cache_evicted_total", "slj_events_dropped_total",
		"slj_job_queue_wait_seconds", "slj_job_run_seconds", "slj_stage_seconds",
		"slj_runtime_goroutines", "slj_runtime_gc_cycles_total",
		"slj_artifacts_blobs", "slj_artifacts_bytes", "slj_artifact_hits_total",
		"slj_artifact_misses_total", "slj_artifact_evicted_total",
		"slj_artifact_pulls_total", "slj_artifact_pull_failures_total",
		"slj_clip_sessions_open", "slj_clip_sessions_sealed_total",
		"slj_clip_frames_ingested_total", "slj_clip_eager_reused_total",
		"slj_dispatch_failovers_total", "slj_dispatch_membership_epoch",
	} {
		if _, ok := types[want]; !ok {
			t.Errorf("family %s missing from the scrape", want)
		}
	}
	for key, cnt := range counts {
		if strings.HasPrefix(key, "slj_job_run_seconds|") && cnt < 1 {
			t.Errorf("series %s has no observations after a finished job", key)
		}
	}
}

// leBound parses a bucket's le label as its sort key.
func leBound(t *testing.T, s promSample) float64 {
	t.Helper()
	le := s.labels["le"]
	if le == "+Inf" {
		return 1e308
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bucket of %s: unparseable le %q", s.name, le)
	}
	return v
}
