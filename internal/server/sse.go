// Server-sent-events routes: the streaming face of the job pipeline.
//
//	GET /v1/jobs/{id}/events   one job's lifecycle + per-stage progress
//	GET /v1/events             the global feed of every job (dashboards)
//
// Both routes speak the SSE wire format of internal/events: every frame
// carries the per-job sequence number as its id, so a client that loses
// the connection resumes exactly where it stopped by sending the standard
// Last-Event-ID header (or ?after=N) on reconnect. Keep-alive comments
// flow on EventHeartbeat. The terminal frame of a done job embeds the
// result document, byte-equivalent (up to JSON whitespace) to
// GET /v1/jobs/{id}/result — a streaming client never needs a single
// status poll.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/jobs"
)

// afterSeq extracts the resume position: the standard Last-Event-ID
// header, or the ?after= query parameter (curl-friendly).
func afterSeq(r *http.Request) (uint64, error) {
	token := r.Header.Get("Last-Event-ID")
	if qv := r.URL.Query().Get("after"); token == "" && qv != "" {
		token = qv
	}
	if token == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(token, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("resume position %q is not a sequence number", token)
	}
	return n, nil
}

// acquireStream counts one event-stream client against the subscriber
// limit; ok=false means the server is at capacity.
func (s *Server) acquireStream() bool {
	if s.streams.Add(1) > int64(s.streamLimit) {
		s.streams.Add(-1)
		return false
	}
	return true
}

func (s *Server) releaseStream() { s.streams.Add(-1) }

// handleJobEvents streams one job's events (GET /v1/jobs/{id}/events).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	watcher, ok := s.jobs.(jobs.Watcher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "event streaming is not supported by this backend")
		return
	}
	after, err := afterSeq(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.acquireStream() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "event subscriber limit reached, retry later")
		return
	}
	defer s.releaseStream()
	ch, err := watcher.Watch(r.Context(), id, after)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, events.ErrTooManySubscribers):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	s.streamSSE(w, r, ch, id)
}

// handleEventFeed streams the global job feed (GET /v1/events). The
// optional state= parameter keeps only events whose post-event lifecycle
// state matches (resync markers always pass — they mean "you missed
// some"). The feed is live-only: there is no cross-job resume position,
// so Last-Event-ID is not honoured here.
func (s *Server) handleEventFeed(w http.ResponseWriter, r *http.Request) {
	src, ok := s.jobs.(jobs.EventSource)
	if !ok {
		writeError(w, http.StatusNotImplemented, "event streaming is not supported by this backend")
		return
	}
	state := r.URL.Query().Get("state")
	if state != "" {
		switch jobs.State(state) {
		case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed:
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown state %q; use queued, running, done or failed", state))
			return
		}
	}
	if !s.acquireStream() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "event subscriber limit reached, retry later")
		return
	}
	defer s.releaseStream()
	sub, err := src.EventHub().Subscribe("", 0)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer sub.Close()

	// Bridge the subscription into a channel so the firehose shares the
	// per-job streaming loop (heartbeats, flush discipline).
	ctx := r.Context()
	ch := make(chan events.Event, 16)
	go func() {
		defer close(ch)
		for {
			e, err := sub.Next(ctx)
			if err != nil {
				return
			}
			if state != "" && e.State != state && e.Type != events.TypeResync {
				continue
			}
			select {
			case ch <- e:
			case <-ctx.Done():
				return
			}
		}
	}()
	s.streamSSE(w, r, ch, "")
}

// streamSSE writes events from ch as SSE frames until the channel closes
// or the client disconnects, heartbeating while idle. For per-job streams
// (id != ""), a terminal done event without an embedded result gets the
// finished response document attached, so the stream's last frame carries
// the same data the result route serves.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, ch <-chan events.Event, id string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // SSE must not be proxy-buffered
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb.C:
			if events.WriteHeartbeat(w) != nil {
				return
			}
			flusher.Flush()
		case e, ok := <-ch:
			if !ok {
				return
			}
			// Terminal done events (including a terminal snapshot of a
			// done job) carry the result document.
			if id != "" && e.Terminal() && len(e.Result) == 0 &&
				e.Type != events.TypeFailed && e.Type != events.TypeEvicted && e.State != string(jobs.StateFailed) {
				e.Result = s.resultDocument(id)
			}
			if events.WriteFrame(w, e) != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// resultDocument fetches a finished job's result and renders it compact —
// the embedded form of the terminal event. Nil when the result is not
// (or no longer) available; the client falls back to the result route.
func (s *Server) resultDocument(id string) json.RawMessage {
	val, err := s.jobs.Result(id)
	if err != nil {
		return nil
	}
	raw, err := json.Marshal(val)
	if err != nil {
		return nil
	}
	return raw
}
