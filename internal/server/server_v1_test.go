package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// metricsDoc mirrors the /v1/metrics document for tests.
type metricsDoc struct {
	ClipsAnalyzed int           `json:"clips_analyzed"`
	Jobs          jobs.Metrics  `json:"jobs"`
	Cache         cache.Metrics `json:"cache"`
}

func getMetrics(t *testing.T, base string) metricsDoc {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestMethodNotAllowedEverywhere drives every route — versioned and legacy
// — with a wrong method and expects 405, an Allow header and the JSON
// error envelope.
func TestMethodNotAllowedEverywhere(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()

	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/analyze", "POST"},
		{http.MethodGet, "/v1/analyze", "POST"},
		{http.MethodDelete, "/v1/analyze", "POST"},
		{http.MethodDelete, "/jobs", "GET, POST"},
		{http.MethodDelete, "/v1/jobs", "GET, POST"},
		{http.MethodPost, "/jobs/deadbeef", "GET"},
		{http.MethodPost, "/v1/jobs/deadbeef/result", "GET"},
		{http.MethodPost, "/v1/jobs/deadbeef/events", "GET"},
		{http.MethodDelete, "/v1/jobs/deadbeef/events", "GET"},
		{http.MethodPost, "/v1/events", "GET"},
		{http.MethodPut, "/v1/events", "GET"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodPost, "/v1/metrics", "GET"},
		{http.MethodPut, "/rules", "GET"},
		{http.MethodPut, "/v1/rules", "GET"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodPost, "/v1/healthz", "GET"},
		{http.MethodPost, "/", "GET"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
			continue
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
		var doc errorResponse
		if err := json.Unmarshal(raw, &doc); err != nil || doc.Error == "" {
			t.Errorf("%s %s: body is not the error envelope: %s", c.method, c.path, raw)
		}
	}
}

// TestV1AliasesServeSameDocuments spot-checks that the versioned read-only
// routes serve the same documents as their legacy aliases.
func TestV1AliasesServeSameDocuments(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	for _, path := range []string{"/rules", "/metrics", "/healthz"} {
		get := func(p string) []byte {
			resp, err := http.Get(srv.URL + p)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", p, resp.StatusCode)
			}
			raw, _ := io.ReadAll(resp.Body)
			return raw
		}
		if legacy, v1 := get(path), get("/v1"+path); !bytes.Equal(legacy, v1) {
			t.Errorf("%s and /v1%s disagree:\n%s\nvs\n%s", path, path, legacy, v1)
		}
	}
}

// TestV1SegmentationOnly runs a stages=segmentation request: no GA, fast,
// and the response carries silhouettes but no scoring fields.
func TestV1SegmentationOnly(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()

	body, ctype := clipUploadStaged(t, v, "segmentation", true)
	resp, err := http.Post(srv.URL+"/v1/analyze", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var doc AnalysisResponse
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Stages) != 1 || doc.Stages[0] != "segmentation" {
		t.Errorf("stages = %v", doc.Stages)
	}
	if len(doc.Silhouettes) != len(v.Frames) {
		t.Fatalf("silhouettes = %d, want %d", len(doc.Silhouettes), len(v.Frames))
	}
	sil := doc.Silhouettes[0]
	if sil.W != v.Frames[0].W || sil.H != v.Frames[0].H || sil.Area == 0 {
		t.Errorf("silhouette doc: %+v", sil)
	}
	packed, err := base64.StdEncoding.DecodeString(sil.Mask)
	if err != nil {
		t.Fatalf("mask_b64: %v", err)
	}
	if len(packed) != (sil.W*sil.H+7)/8 {
		t.Errorf("mask bytes = %d, want %d", len(packed), (sil.W*sil.H+7)/8)
	}
	ones := 0
	for _, b := range packed {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != sil.Area {
		t.Errorf("mask popcount %d != area %d", ones, sil.Area)
	}
	if doc.Score != "" || doc.Rules != nil || doc.Phases != nil {
		t.Errorf("scoring fields leaked into a segmentation-only response: %s", raw)
	}
}

func TestV1RejectsBadStages(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	for _, stages := range []string{"warp", "pose..segmentation", "tracking..scoring"} {
		body, ctype := clipUploadStaged(t, v, stages, false)
		resp, err := http.Post(srv.URL+"/v1/analyze", ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("stages=%q: status %d, want 400 (%s)", stages, resp.StatusCode, raw)
		}
	}
}

// clipUploadStaged builds the canonical clip upload with stage selection
// and silhouette shaping fields.
func clipUploadStaged(t *testing.T, v *synth.Video, stages string, silhouettes bool) (*bytes.Buffer, string) {
	t.Helper()
	fields := map[string]string{"stages": stages}
	if silhouettes {
		fields["silhouettes"] = "1"
	}
	return buildClipUpload(t, v, fields)
}

// buildClipUpload builds the canonical multipart clip upload plus extra
// form fields (empty values are skipped).
func buildClipUpload(t *testing.T, v *synth.Video, fields map[string]string) (*bytes.Buffer, string) {
	t.Helper()
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for k, f := range v.Frames {
		fw, err := mw.CreateFormFile("frames", clipio.FrameName(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, f); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("truth", "truth.txt")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(fw, "0 %.2f %.2f", manual.X, manual.Y)
	for l := 0; l < 8; l++ {
		fmt.Fprintf(fw, " %.2f", manual.Rho[l])
	}
	fmt.Fprintln(fw)
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if fields[k] == "" {
			continue
		}
		if err := mw.WriteField(k, fields[k]); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return &body, mw.FormDataContentType()
}

// TestCacheHitSyncAnalyze resubmits an identical clip to /v1/analyze and
// expects the cached response: byte-identical body, hit/miss counters, and
// no second pipeline run (clips_analyzed stays at 1).
func TestCacheHitSyncAnalyze(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()

	post := func() []byte {
		body, ctype := buildClipUpload(t, v, map[string]string{"stages": "segmentation", "silhouettes": "1"})
		resp, err := http.Post(srv.URL+"/v1/analyze", ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		return raw
	}
	first := post()
	second := post()
	if !bytes.Equal(first, second) {
		t.Error("cached response differs from the original")
	}
	m := getMetrics(t, srv.URL)
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("cache counters: %+v", m.Cache)
	}
	if m.ClipsAnalyzed != 1 {
		t.Errorf("clips_analyzed = %d, want 1 (second request served from cache)", m.ClipsAnalyzed)
	}
}

// TestCacheHitJobsNoEnqueue is the acceptance test of the cache path: a
// byte-identical clip resubmitted to POST /v1/jobs is answered 200 with
// the stored AnalysisResponse — no job is enqueued — and the synchronous,
// asynchronous and cached responses are byte-identical.
func TestCacheHitJobsNoEnqueue(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()

	// Async reference run (cache miss → job).
	body, ctype := buildClipUpload(t, v, map[string]string{"poses": "1"})
	jresp, err := http.Post(srv.URL+"/v1/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(jresp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", jresp.StatusCode)
	}
	if !strings.HasPrefix(sub.StatusURL, "/v1/jobs/") {
		t.Errorf("v1 submit must return v1 poll URLs, got %q", sub.StatusURL)
	}
	waitState(t, srv.URL, sub.ID, string(jobs.StateDone))
	rresp, err := http.Get(srv.URL + sub.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	asyncRaw, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", rresp.StatusCode, asyncRaw)
	}

	before := getMetrics(t, srv.URL)
	if before.Jobs.Submitted != 1 {
		t.Fatalf("expected exactly one submitted job, got %+v", before.Jobs)
	}

	// Byte-identical resubmission: answered from the cache, not enqueued.
	body, ctype = buildClipUpload(t, v, map[string]string{"poses": "1"})
	cresp, err := http.Post(srv.URL+"/v1/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	cachedRaw, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit must answer 200, got %d: %s", cresp.StatusCode, cachedRaw)
	}
	if !bytes.Equal(cachedRaw, asyncRaw) {
		t.Errorf("cached response differs from the async result:\n%s\nvs\n%s", cachedRaw, asyncRaw)
	}
	var cachedDoc, asyncDoc AnalysisResponse
	if err := json.Unmarshal(cachedRaw, &cachedDoc); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(asyncRaw, &asyncDoc); err != nil {
		t.Fatal(err)
	}
	if len(cachedDoc.Poses) != len(v.Frames) || cachedDoc.Score != asyncDoc.Score {
		t.Errorf("cached document incomplete: %+v", cachedDoc)
	}

	// The synchronous route is answered from the same entry, byte-identical.
	body, ctype = buildClipUpload(t, v, map[string]string{"poses": "1"})
	sresp, err := http.Post(srv.URL+"/v1/analyze", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	syncRaw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d", sresp.StatusCode)
	}
	if !bytes.Equal(syncRaw, asyncRaw) {
		t.Error("sync response differs from the async/cached result")
	}

	after := getMetrics(t, srv.URL)
	if after.Jobs.Submitted != 1 {
		t.Errorf("resubmission enqueued a job: %+v", after.Jobs)
	}
	if after.Cache.Hits != 2 || after.Cache.Misses != 1 {
		t.Errorf("cache counters: %+v", after.Cache)
	}
	if after.ClipsAnalyzed != 1 {
		t.Errorf("clips_analyzed = %d, want 1", after.ClipsAnalyzed)
	}
}

// TestRequestKeyFingerprints pins the cache-key identity rules: identical
// requests collide; any change to the clip, the manual pose, the analyzer
// config, the stage selection or the response shape separates them.
func TestRequestKeyFingerprints(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	base := core.Request{Frames: v.Frames, ManualFirst: manual}
	cfgFP := configFingerprint(core.DefaultConfig())

	if requestKey(cfgFP, base) != requestKey(cfgFP, base) {
		t.Fatal("identical requests must share a key")
	}

	// Config fingerprint invalidation.
	cfg2 := core.DefaultConfig()
	cfg2.Pose.Population += 1
	if requestKey(configFingerprint(cfg2), base) == requestKey(cfgFP, base) {
		t.Error("a config change must invalidate the key")
	}
	cfg3 := core.DefaultConfig()
	cfg3.Segmentation.SubtractThreshold += 1
	if requestKey(configFingerprint(cfg3), base) == requestKey(cfgFP, base) {
		t.Error("a segmentation config change must invalidate the key")
	}

	// One pixel.
	v2, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	v2.Frames[3].Pix[7].G ^= 1
	if requestKey(cfgFP, core.Request{Frames: v2.Frames, ManualFirst: manual}) == requestKey(cfgFP, base) {
		t.Error("a pixel change must invalidate the key")
	}

	// Manual pose.
	manual2 := manual
	manual2.Rho[2] += 0.25
	if requestKey(cfgFP, core.Request{Frames: v.Frames, ManualFirst: manual2}) == requestKey(cfgFP, base) {
		t.Error("a manual-pose change must invalidate the key")
	}

	// Stage selection and response shaping.
	staged := base
	staged.Stages = core.OnlyStage(core.StageSegmentation)
	if requestKey(cfgFP, staged) == requestKey(cfgFP, base) {
		t.Error("a stage-selection change must invalidate the key")
	}
	shaped := base
	shaped.IncludePoses = true
	if requestKey(cfgFP, shaped) == requestKey(cfgFP, base) {
		t.Error("a response-shaping change must invalidate the key")
	}

	// An explicit full range is the same identity as the default.
	full := base
	full.Stages = core.AllStages()
	if requestKey(cfgFP, full) != requestKey(cfgFP, base) {
		t.Error("explicit full range must share the default's key")
	}
}

// TestCacheTTLExpiryServerLevel wires a tiny-TTL cache into the server and
// checks that an expired entry falls back to a miss.
func TestCacheTTLExpiryServerLevel(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Pose.Population = 40
	cfg.Pose.Generations = 40
	cfg.Pose.Patience = 10
	cfg.Pose.RefineRounds = 1
	opts := DefaultOptions()
	opts.CacheTTL = 50 * time.Millisecond
	s, err := NewWithOptions(cfg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	post := func() {
		body, ctype := buildClipUpload(t, v, map[string]string{"stages": "segmentation"})
		resp, err := http.Post(srv.URL+"/v1/analyze", ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	post()
	time.Sleep(120 * time.Millisecond) // past the TTL
	post()
	m := getMetrics(t, srv.URL)
	if m.Cache.Hits != 0 || m.Cache.Misses != 2 {
		t.Errorf("expired entry should miss: %+v", m.Cache)
	}
	if m.ClipsAnalyzed != 2 {
		t.Errorf("clips_analyzed = %d, want 2", m.ClipsAnalyzed)
	}
}
