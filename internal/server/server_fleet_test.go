// Fleet-elasticity end-to-end tests: runtime join/drain over HTTP against a
// live dispatcher, the successor-replica intake, and the chaos scenario the
// design promises — kill a replicated worker and the job's result survives
// on its ring successor, byte-identical, with zero recomputation
// (DESIGN.md §16).
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/dispatch"
	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// fleetWorker starts one worker node with a result cache and the
// successor-replication sink wired, returning both the in-process server
// (for white-box assertions) and its HTTP face.
func fleetWorker(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	opts := DefaultOptions()
	opts.Worker = true
	repl := dispatch.NewReplicator(nil)
	t.Cleanup(repl.Close)
	opts.Replicator = repl
	s := fastServerWithOptions(t, opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// fleetFront starts a dispatching front end over the given worker URLs. Its
// own result cache is disabled so every submission actually dispatches.
func fleetFront(t *testing.T, replicate bool, health time.Duration, workers ...string) (*dispatch.Remote, *httptest.Server) {
	t.Helper()
	dcfg := dispatch.DefaultConfig()
	dcfg.Nodes = workers
	dcfg.HealthInterval = health
	dcfg.Replicate = replicate
	d, err := dispatch.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.CacheEntries = 0
	opts.Dispatcher = d
	s := fastServerWithOptions(t, opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return d, hs
}

// postJSON is a tiny helper for the fleet mutation routes.
func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

// TestFleetRoutesUnsupportedBackend: an in-process queue has no runtime
// membership; the fleet surface answers 501, never panics.
func TestFleetRoutesUnsupportedBackend(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("GET /v1/fleet on the in-process backend: %d, want 501", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/fleet/nodes", map[string]string{"url": "http://x"})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("POST /v1/fleet/nodes on the in-process backend: %d, want 501", resp.StatusCode)
	}
}

// TestFleetLiveJoinAndDrain drives a topology change over HTTP against a
// running fleet: a second worker joins at runtime, the original drains out
// without any restart, and the next job completes on the joined node.
func TestFleetLiveJoinAndDrain(t *testing.T) {
	w1, w1hs := fleetWorker(t)
	w2, w2hs := fleetWorker(t)
	_, front := fleetFront(t, false, 100*time.Millisecond, w1hs.URL)

	// A dead URL is refused at the probe, membership untouched.
	resp, body := postJSON(t, front.URL+"/v1/fleet/nodes", map[string]string{"url": "http://127.0.0.1:1"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("join of an unreachable node: %d %s, want 502", resp.StatusCode, body)
	}

	// Live join of w2.
	resp, body = postJSON(t, front.URL+"/v1/fleet/nodes", map[string]any{"url": w2hs.URL, "weight": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %s", resp.StatusCode, body)
	}
	var view struct {
		Epoch uint64 `json:"epoch"`
		Nodes []struct {
			URL      string `json:"url"`
			Weight   int    `json:"weight"`
			Draining bool   `json:"draining,omitempty"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(body, &view); err != nil || len(view.Nodes) != 2 {
		t.Fatalf("join view: %v %s", err, body)
	}

	// Drain w1: immediately out of the ring, removed once nothing pends.
	resp, body = postJSON(t, front.URL+"/v1/fleet/drain", map[string]string{"url": w1hs.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(front.URL + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		body, _ = readAllAndClose(r)
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("fleet view: %v %s", err, body)
		}
		if len(view.Nodes) == 1 && view.Nodes[0].URL == w2hs.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained node never left the membership: %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The runtime-joined worker is the only member left: the next job must
	// complete there, and the drained worker must see nothing — without
	// either worker ever restarting.
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	e2etest.SubmitAndFetch(t, front.URL, v)
	if got := w2.jobs.Metrics().Submitted; got == 0 {
		t.Error("runtime-joined worker received no jobs")
	}
	if got := w1.jobs.Metrics().Submitted; got != 0 {
		t.Errorf("drained worker still received %d jobs", got)
	}
}

// readAllAndClose drains one response body.
func readAllAndClose(r *http.Response) ([]byte, error) {
	defer r.Body.Close()
	buf := new(bytes.Buffer)
	_, err := buf.ReadFrom(r.Body)
	return buf.Bytes(), err
}

// TestReplicaIntakeStoresResult: a pushed replica lands in the node's
// result cache under the pushed key and is counted in the replication
// metrics section.
func TestReplicaIntakeStoresResult(t *testing.T) {
	w, whs := fleetWorker(t)

	key := strings.Repeat("ab", 32) // any well-formed 32-byte hex key
	doc := map[string]any{
		"key":      key,
		"response": json.RawMessage(`{"advice":["replicated"]}`),
	}
	resp, body := postJSON(t, whs.URL+"/v1/worker/replica", doc)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("replica push: %d %s", resp.StatusCode, body)
	}

	k, ok := cache.ParseKey(key)
	if !ok {
		t.Fatal("test key malformed")
	}
	if _, hit := w.cache.Get(k); !hit {
		t.Error("replicated result not in the cache")
	}

	r, err := http.Get(whs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = readAllAndClose(r)
	var m struct {
		Replication *struct {
			ResultsReceived uint64 `json:"results_received"`
			ResultsStored   uint64 `json:"results_stored"`
		} `json:"replication"`
	}
	if err := json.Unmarshal(body, &m); err != nil || m.Replication == nil {
		t.Fatalf("metrics replication section missing: %v %s", err, body)
	}
	if m.Replication.ResultsReceived != 1 || m.Replication.ResultsStored != 1 {
		t.Errorf("replication counters %+v, want received=1 stored=1", m.Replication)
	}

	// Malformed key: rejected, nothing stored.
	resp, _ = postJSON(t, whs.URL+"/v1/worker/replica", map[string]any{
		"key": "zz", "response": json.RawMessage(`{}`),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed replica key: %d, want 400", resp.StatusCode)
	}
}

// TestChaosKillReplicatedWorker is the acceptance pin: under -replicate, a
// worker that dies after finishing a job costs nothing — the identical
// resubmission fails over to the ring successor, which answers from its
// replicated cache byte-identically, without executing a single job.
func TestChaosKillReplicatedWorker(t *testing.T) {
	w1, w1hs := fleetWorker(t)
	w2, w2hs := fleetWorker(t)
	d, front := fleetFront(t, true, time.Hour, w1hs.URL, w2hs.URL)

	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	raw1 := e2etest.SubmitAndFetch(t, front.URL, v)

	// Identify who ran it and who holds the replica.
	runner, runnerHS, survivor := w1, w1hs, w2
	survivorHS := w2hs
	if w1.jobs.Metrics().Submitted == 0 {
		runner, runnerHS, survivor, survivorHS = w2, w2hs, w1, w1hs
	}
	if runner.jobs.Metrics().Submitted == 0 {
		t.Fatal("no worker executed the job")
	}

	// Replication is asynchronous; wait for the push to land.
	deadline := time.Now().Add(10 * time.Second)
	for survivor.cache.Metrics().Stored == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica never reached the successor")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Kill the worker that computed the result.
	runnerHS.Close()

	// The identical clip resubmitted: the dispatcher re-hashes past the
	// dead primary and the successor answers from its replicated cache.
	raw2 := e2etest.SubmitAndFetch(t, front.URL, v)
	if !bytes.Equal(e2etest.StripVolatile(t, raw1), e2etest.StripVolatile(t, raw2)) {
		t.Error("failover result differs from the original document")
	}

	// Zero recompute: the successor never enqueued or executed anything —
	// it answered purely from the replicated cache entry.
	if got := survivor.jobs.Metrics().Submitted; got != 0 {
		t.Errorf("successor executed %d jobs, want 0 (replica cache hit)", got)
	}
	r, err := http.Get(survivorHS.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAllAndClose(r)
	var hz struct {
		ClipsAnalyzed int `json:"clips_analyzed"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz: %v %s", err, body)
	}
	if hz.ClipsAnalyzed != 0 {
		t.Errorf("successor analyzed %d clips, want 0", hz.ClipsAnalyzed)
	}
	if d.Metrics().Failovers == 0 {
		t.Error("dispatcher counted no failovers")
	}
}
