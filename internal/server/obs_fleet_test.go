// Fleet observability end-to-end tests: the federated cluster scrape at
// GET /v1/fleet/metrics passes the conformance lint with every member
// labelled, the /v1/fleet rollup carries the SLO and federation sections,
// and the deep-health document degrades componentwise under an induced
// queue stall while the HTTP status stays 200.
package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/synth"
)

func TestFleetMetricsFederationConformance(t *testing.T) {
	_, w1hs := fleetWorker(t)
	_, w2hs := fleetWorker(t)
	// An hour-long health interval forces FederatedMetrics through its
	// synchronous stale-refresh path — federation must not depend on the
	// background loop having ticked.
	_, front := fleetFront(t, false, time.Hour, w1hs.URL, w2hs.URL)

	// One finished job gives the workers real histogram and SLO samples.
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	doc, raw, code := e2etest.Submit(t, front.URL, v, "segmentation", true)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, raw)
	}
	e2etest.PollResult(t, front.URL, doc.ResultURL, 30*time.Second)

	resp, err := http.Get(front.URL + "/v1/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	merged, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet/metrics: %d: %s", resp.StatusCode, merged)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type %q, want %q", ct, obs.ContentType)
	}

	// The acceptance bound: the merged cluster scrape obeys the same
	// conformance grammar as a single node's, and carries the SLO
	// burn-rate and component-health families from every member.
	res := obs.LintExposition(merged, []string{
		"slj_fleet_members", "slj_fleet_scrape_ok",
		"slj_jobs_submitted_total", "slj_job_run_seconds",
		"slj_slo_error_budget_burn", "slj_slo_objective_latency_seconds",
		"slj_health_component_ok",
	})
	if len(res.Issues) != 0 {
		t.Fatalf("federated scrape fails the conformance lint:\n%s", strings.Join(res.Issues, "\n"))
	}

	nodesSeen := map[string]bool{}
	scrapeOK := map[string]float64{}
	burnNodes := map[string]bool{}
	for _, s := range res.Samples {
		if n := s.Labels["node"]; n != "" {
			nodesSeen[n] = true
		}
		switch s.Name {
		case "slj_fleet_members":
			if s.Value != 2 {
				t.Errorf("slj_fleet_members = %v, want 2", s.Value)
			}
		case "slj_fleet_scrape_ok":
			scrapeOK[s.Labels["node"]] = s.Value
		case "slj_slo_error_budget_burn":
			burnNodes[s.Labels["node"]] = true
		}
	}
	for _, u := range []string{w1hs.URL, w2hs.URL} {
		if !nodesSeen[u] {
			t.Errorf("member %s absent from the federated scrape", u)
		}
		if scrapeOK[u] != 1 {
			t.Errorf("scrape_ok[%s] = %v, want 1", u, scrapeOK[u])
		}
		if !burnNodes[u] {
			t.Errorf("member %s contributes no burn-rate gauge", u)
		}
	}

	// The /v1/fleet rollup gains the SLO and federation sections beside
	// the membership view it always served.
	resp, err = http.Get(front.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fleet struct {
		Epoch *uint64 `json:"epoch"`
		Nodes []struct {
			URL string `json:"url"`
		} `json:"nodes"`
		SLO        *obs.SLODoc `json:"slo"`
		Federation *struct {
			NodesScraped int `json:"nodes_scraped"`
		} `json:"federation"`
	}
	err = json.NewDecoder(resp.Body).Decode(&fleet)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Epoch == nil || len(fleet.Nodes) != 2 {
		t.Errorf("fleet rollup epoch/nodes = %v/%d, want both members", fleet.Epoch, len(fleet.Nodes))
	}
	if fleet.SLO == nil {
		t.Error("fleet rollup has no slo section")
	} else if fleet.SLO.Jobs1h < 1 {
		t.Errorf("front-end SLO observed %d jobs, want >= 1 after the finished job", fleet.SLO.Jobs1h)
	}
	if fleet.Federation == nil {
		t.Error("fleet rollup has no federation section")
	} else if fleet.Federation.NodesScraped != 2 {
		t.Errorf("federation.nodes_scraped = %d, want 2", fleet.Federation.NodesScraped)
	}
}

// healthzDoc fetches and decodes the deep-health document, asserting the
// liveness contract: HTTP 200 regardless of the verdict.
func healthzDoc(t *testing.T, base string) (status string, components map[string]jobs.ComponentHealth) {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/healthz: %d, want 200 even when degraded", resp.StatusCode)
	}
	var doc struct {
		Status     string                          `json:"status"`
		Components map[string]jobs.ComponentHealth `json:"components"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Status, doc.Components
}

func TestHealthzDegradesOnQueueStall(t *testing.T) {
	// A single wedged worker: the first job blocks it forever, the second
	// sits queued past the stall threshold.
	release := make(chan struct{})
	mgr, err := jobs.New(jobs.Config{Workers: 1, QueueSize: 4, StallAfter: 150 * time.Millisecond},
		jobs.ExecutorFunc(func(ctx context.Context, _ jobs.Payload, _ func(string)) (any, error) {
			select {
			case <-release:
				return 1, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	opts := DefaultOptions()
	opts.Dispatcher = mgr
	s := fastServerWithOptions(t, opts)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	status, components := healthzDoc(t, srv.URL)
	if status != jobs.HealthOK {
		t.Fatalf("fresh server healthz status %q, want ok (components %+v)", status, components)
	}
	if c, ok := components["queue"]; !ok || c.Status != jobs.HealthOK {
		t.Fatalf("queue component on a fresh server = %+v, want ok", components)
	}
	if c, ok := components["slo"]; !ok || c.Status != jobs.HealthOK {
		t.Fatalf("slo component on a fresh server = %+v, want ok", components)
	}

	if _, err := mgr.Submit(jobs.Payload{Kind: jobs.KindAnalysis}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(jobs.Payload{Kind: jobs.KindAnalysis}); err != nil {
		t.Fatal(err)
	}

	// The stalled queue must flip exactly the queue component, and with it
	// the overall verdict — while the route keeps answering 200.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, components = healthzDoc(t, srv.URL)
		if q := components["queue"]; q.Status == jobs.HealthDegraded {
			if status != jobs.HealthDegraded {
				t.Errorf("overall status %q with a degraded queue component, want degraded", status)
			}
			if !strings.Contains(q.Reason, "stalled") {
				t.Errorf("queue reason %q does not mention the stall", q.Reason)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue component never degraded; last doc: status=%q components=%+v", status, components)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if c := components["slo"]; c.Status != jobs.HealthOK {
		t.Errorf("slo component degraded by a queue stall: %+v", c)
	}

	// Releasing the worker drains the queue and the verdict recovers.
	release <- struct{}{}
	release <- struct{}{}
	deadline = time.Now().Add(5 * time.Second)
	for {
		status, components = healthzDoc(t, srv.URL)
		if status == jobs.HealthOK && components["queue"].Status == jobs.HealthOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never recovered; last doc: status=%q components=%+v", status, components)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
