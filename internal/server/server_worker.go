// Worker-node intake: the HTTP half of the remote dispatch protocol.
//
// A front end running the fan-out dispatcher (internal/dispatch) does not
// re-upload multipart clips to worker nodes — it posts the serialized
// jobs.Payload it already built, and the worker node (slj-serve -worker)
// runs it through the exact same submit/poll lifecycle the front end would
// have used in-process:
//
//	POST /v1/worker/jobs   body: jobs.Payload JSON
//	  → 200 + AnalysisResponse   when the node's result cache already
//	                             holds the answer (X-SLJ-Cache: hit);
//	  → 202 + submit document    otherwise; poll GET /v1/jobs/{id} and
//	                             fetch GET /v1/jobs/{id}/result as usual;
//	  → 503 + Retry-After        on queue backpressure.
//
// Because the worker executes the payload through the same executor and
// response builder as the front end, the result document is byte-identical
// to the in-process path.
//
// A payload may name its bulk artifacts by content hash instead of
// carrying them inline (jobs.Payload.ByReference, marked by the
// X-SLJ-Artifact-Payload header). The intake resolves the references —
// from the node's own artifact store, pulling misses from the originating
// front end (payload.ArtifactOrigin) and caching them locally — before the
// cache lookup, so a by-hash resubmission still short-circuits here.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/sljmotion/sljmotion/internal/artifacts"
	"github.com/sljmotion/sljmotion/internal/jobs"
)

// CacheHeader marks worker responses served from the node's result cache.
const CacheHeader = "X-SLJ-Cache"

// payloadCap bounds one payload upload. An inline clip that fits the front
// end's upload cap grows ~4/3 under the payload's base64 frame encoding
// (plus JSON overhead), so inline payloads get double the configured cap —
// anything the front accepted must also fit here. A by-reference payload
// carries hashes instead of frames and needs no such headroom: it gets
// exactly the configured cap.
func (s *Server) payloadCap(r *http.Request) int64 {
	if r.Header.Get(jobs.ArtifactPayloadHeader) == "1" {
		return s.maxPayload
	}
	return 2 * s.maxPayload
}

// handleWorkerJobs accepts one serialized job payload from a remote
// dispatcher.
func (s *Server) handleWorkerJobs(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.payloadCap(r))
	var p jobs.Payload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode payload: %v", err))
		return
	}
	req, err := p.AnalysisRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if p.ByReference() {
		framesRef := req.FramesRef
		req, err = artifacts.ResolveRequest(s.resolver(p.ArtifactOrigin), req)
		if err != nil {
			writeResolveError(w, err)
			return
		}
		req = s.injectMemo(framesRef, req)
		// Stash the materialised request so the executor (and the keying
		// below) never re-resolves what this intake already pulled.
		p = p.WithResolved(req)
	}
	// Consult the node's own result cache under the node's own config
	// fingerprint — a hash-routed resubmission of an identical clip is
	// answered here without enqueueing anything.
	key, cached := s.lookup(req)
	if cached != nil {
		w.Header().Set(CacheHeader, "hit")
		writeJSON(w, http.StatusOK, cached)
		s.log.Debug("worker cache hit", "key", key.String())
		if s.replica != nil && p.ReplicaTarget != "" {
			// A hit bypasses the executor and its OnStore hook, but the
			// successor may still lack this entry (e.g. it was filled before
			// replication was enabled) — mirror it on the way out.
			if doc, err := json.Marshal(cached); err == nil {
				s.replica.ReplicateResult(p.ReplicaTarget, key.String(), doc)
			}
		}
		return
	}
	if err := req.Validate(s.cfg.Windows); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.submitPayload(w, r, p)
}
