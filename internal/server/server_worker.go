// Worker-node intake: the HTTP half of the remote dispatch protocol.
//
// A front end running the fan-out dispatcher (internal/dispatch) does not
// re-upload multipart clips to worker nodes — it posts the serialized
// jobs.Payload it already built, and the worker node (slj-serve -worker)
// runs it through the exact same submit/poll lifecycle the front end would
// have used in-process:
//
//	POST /v1/worker/jobs   body: jobs.Payload JSON
//	  → 200 + AnalysisResponse   when the node's result cache already
//	                             holds the answer (X-SLJ-Cache: hit);
//	  → 202 + submit document    otherwise; poll GET /v1/jobs/{id} and
//	                             fetch GET /v1/jobs/{id}/result as usual;
//	  → 503 + Retry-After        on queue backpressure.
//
// Because the worker executes the payload through the same executor and
// response builder as the front end, the result document is byte-identical
// to the in-process path.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/sljmotion/sljmotion/internal/jobs"
)

// CacheHeader marks worker responses served from the node's result cache.
const CacheHeader = "X-SLJ-Cache"

// maxPayloadBytes bounds one payload upload. A clip that fits the
// front end's MaxUploadBytes grows ~4/3 under the payload's base64 frame
// encoding (plus JSON overhead), so the intake allows double the raw cap —
// anything the front accepted must also fit here.
const maxPayloadBytes = 2 * MaxUploadBytes

// handleWorkerJobs accepts one serialized job payload from a remote
// dispatcher.
func (s *Server) handleWorkerJobs(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxPayloadBytes)
	var p jobs.Payload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode payload: %v", err))
		return
	}
	req, err := p.AnalysisRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Consult the node's own result cache under the node's own config
	// fingerprint — a hash-routed resubmission of an identical clip is
	// answered here without enqueueing anything.
	key, cached := s.lookup(req)
	if cached != nil {
		w.Header().Set(CacheHeader, "hit")
		writeJSON(w, http.StatusOK, cached)
		s.log.Debug("worker cache hit", "key", key.String())
		return
	}
	if err := req.Validate(s.cfg.Windows); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.submitPayload(w, r, p)
}
