// Range and conditional GET over /v1/artifacts/{hash} (DESIGN.md §14): the
// content hash doubles as a strong ETag, so revalidation is exact, and
// partial reads serve big clips without shipping the whole blob.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/sljmotion/sljmotion/internal/artifacts"
	"github.com/sljmotion/sljmotion/internal/imaging"
)

// storeTestArtifact puts one frames blob through the HTTP route, returning
// its hash and bytes.
func storeTestArtifact(t *testing.T, base string) (string, []byte) {
	t.Helper()
	f := imaging.NewImageFilled(16, 8, imaging.Color{R: 100, G: 100, B: 100})
	blob, err := artifacts.EncodeFrames([]*imaging.Image{f})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/artifacts", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("artifact put: %d", resp.StatusCode)
	}
	return artifacts.HashOf(blob), blob
}

func TestArtifactGetRangeAndConditional(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	hash, blob := storeTestArtifact(t, srv.URL)

	get := func(hdr map[string]string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/artifacts/"+hash, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	// Plain GET: full body, strong ETag, typed kind.
	resp, body := get(nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, blob) {
		t.Fatalf("full GET: %d, %d bytes", resp.StatusCode, len(body))
	}
	etag := `"` + hash + `"`
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("ETag %q, want %q", got, etag)
	}
	if got := resp.Header.Get(ArtifactKindHeader); got != string(artifacts.KindFrames) {
		t.Errorf("kind header %q", got)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(blob)) {
		t.Errorf("Content-Length %q, want %d", cl, len(blob))
	}

	// Range: a bounded slice answers 206 with the exact bytes and extent.
	resp, body = get(map[string]string{"Range": "bytes=2-9"})
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, blob[2:10]) {
		t.Fatalf("range 2-9: %d, %d bytes", resp.StatusCode, len(body))
	}
	wantCR := fmt.Sprintf("bytes 2-9/%d", len(blob))
	if got := resp.Header.Get("Content-Range"); got != wantCR {
		t.Errorf("Content-Range %q, want %q", got, wantCR)
	}

	// Suffix range: the final N bytes.
	resp, body = get(map[string]string{"Range": "bytes=-5"})
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, blob[len(blob)-5:]) {
		t.Fatalf("suffix range: %d, %d bytes", resp.StatusCode, len(body))
	}

	// Unsatisfiable range: 416.
	resp, _ = get(map[string]string{"Range": fmt.Sprintf("bytes=%d-", len(blob)+100)})
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("out-of-extent range: %d, want 416", resp.StatusCode)
	}

	// Conditional revalidation by hash: 304 with no body.
	resp, body = get(map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Errorf("If-None-Match(hash): %d with %d bytes, want empty 304", resp.StatusCode, len(body))
	}

	// A stale validator still gets the full document.
	resp, body = get(map[string]string{"If-None-Match": `"deadbeef"`})
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, blob) {
		t.Errorf("stale If-None-Match: %d, %d bytes", resp.StatusCode, len(body))
	}
}
