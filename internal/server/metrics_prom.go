// Prometheus text exposition for GET /v1/metrics?format=prometheus.
//
// The exposition composes three sources into one scrape:
//
//   - counter/gauge families derived from the same snapshot structs the
//     JSON document serves (jobs.Metrics, cache.Metrics, the event hub's
//     drop counter) — the numbers agree between the two formats by
//     construction;
//   - the process-wide histogram registry (obs.Default): queue wait, run
//     time, per-stage wall clock, journal append/fsync, dispatch round
//     trips, GA fitness evaluation;
//   - runtime gauges sampled from runtime/metrics (heap, GC, goroutines).
//
// Label cardinality is bounded by design (DESIGN.md §13): the only label
// values are the five pipeline stage names, worker-node URLs (deployment
// sized, not request sized) and two cache-eviction reasons. Nothing
// per-job or per-clip ever becomes a label.
package server

import (
	"net/http"
	"sort"

	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/pose"
)

// writePrometheus renders the full scrape document.
func (s *Server) writePrometheus(w http.ResponseWriter) {
	s.mu.Lock()
	analyzed := s.analyzed
	s.mu.Unlock()
	jm := s.jobs.Metrics()

	w.Header().Set("Content-Type", obs.ContentType)
	p := obs.NewPromWriter(w)

	p.Counter("slj_clips_analyzed_total",
		"Clips analysed since process start, across the sync and async routes.",
		float64(analyzed))

	p.Gauge("slj_jobs_workers", "Analysis worker pool size.", float64(jm.Workers))
	p.Gauge("slj_jobs_queue_capacity", "Job queue capacity beyond the running jobs.", float64(jm.QueueCapacity))
	p.Gauge("slj_jobs_queue_depth", "Jobs currently waiting in the queue.", float64(jm.QueueDepth))
	p.Gauge("slj_jobs_running", "Jobs currently executing.", float64(jm.Running))
	p.Counter("slj_jobs_submitted_total", "Jobs accepted into the queue.", float64(jm.Submitted))
	p.Counter("slj_jobs_rejected_total", "Submissions refused by a full queue.", float64(jm.Rejected))
	p.Counter("slj_jobs_completed_total", "Jobs finished successfully.", float64(jm.Completed))
	p.Counter("slj_jobs_failed_total", "Jobs finished in failure.", float64(jm.Failed))
	p.Counter("slj_jobs_evicted_total", "Finished jobs evicted after their result TTL.", float64(jm.Evicted))
	p.Counter("slj_journal_append_failures_total",
		"Journal appends that errored after the job was accepted (durability degraded).",
		float64(jm.JournalFailures))

	p.Counter("slj_dispatch_failovers_total",
		"Submissions or recoveries that landed on a node other than the key's primary.",
		float64(jm.Failovers))
	p.Gauge("slj_dispatch_membership_epoch",
		"Monotonic fleet membership epoch; increments on every ring rebuild.",
		float64(jm.MembershipEpoch))

	for _, n := range jm.Nodes {
		healthy := 0.0
		if n.Healthy {
			healthy = 1
		}
		draining := 0.0
		if n.Draining {
			draining = 1
		}
		p.Gauge("slj_dispatch_node_healthy", "Whether the worker node's last probe or submit succeeded.",
			healthy, "node", n.URL)
		p.Gauge("slj_dispatch_node_weight", "Consistent-hash weight of the worker node (vnode multiplier).",
			float64(n.Weight), "node", n.URL)
		p.Gauge("slj_dispatch_node_draining", "Whether the worker node is draining (no new keys routed).",
			draining, "node", n.URL)
		p.Counter("slj_dispatch_node_submitted_total", "Payloads accepted by the worker node.",
			float64(n.Submitted), "node", n.URL)
		p.Counter("slj_dispatch_node_rejected_total", "Backpressure (503) answers from the worker node.",
			float64(n.Rejected), "node", n.URL)
		p.Counter("slj_dispatch_node_completed_total", "Successful terminal results observed on the worker node.",
			float64(n.Completed), "node", n.URL)
		p.Counter("slj_dispatch_node_failed_total", "Failed terminal results observed on the worker node.",
			float64(n.Failed), "node", n.URL)
		p.Counter("slj_dispatch_node_cache_hits_total", "Submissions the worker node answered from its result cache.",
			float64(n.CacheHits), "node", n.URL)
	}

	if s.cache != nil {
		cm := s.cache.Metrics()
		p.Gauge("slj_cache_entries", "Entries currently in the result cache.", float64(cm.Entries))
		p.Gauge("slj_cache_capacity", "Result cache capacity.", float64(cm.Capacity))
		p.Counter("slj_cache_hits_total", "Result cache hits.", float64(cm.Hits))
		p.Counter("slj_cache_misses_total", "Result cache misses.", float64(cm.Misses))
		p.Counter("slj_cache_stored_total", "Responses stored in the result cache.", float64(cm.Stored))
		p.Counter("slj_cache_evicted_total", "Result cache evictions by reason.",
			float64(cm.EvictedTTL), "reason", "ttl")
		p.Counter("slj_cache_evicted_total", "Result cache evictions by reason.",
			float64(cm.EvictedLRU), "reason", "lru")
	}

	am := s.artifacts.Metrics()
	p.Gauge("slj_artifacts_blobs", "Blobs currently in the artifact store.", float64(am.Blobs))
	p.Gauge("slj_artifacts_bytes", "Bytes currently held by the artifact store.", float64(am.Bytes))
	p.Counter("slj_artifact_hits_total", "Artifact store lookups answered.", float64(am.Hits))
	p.Counter("slj_artifact_misses_total", "Artifact store lookups that found nothing.", float64(am.Misses))
	p.Counter("slj_artifact_stored_total", "Blobs stored in the artifact store.", float64(am.Stored))
	p.Counter("slj_artifact_evicted_total", "Artifact evictions by reason.",
		float64(am.EvictedTTL), "reason", "ttl")
	p.Counter("slj_artifact_evicted_total", "Artifact evictions by reason.",
		float64(am.EvictedLRU), "reason", "lru")
	p.Counter("slj_artifact_spill_writes_total", "Blobs written to the spill directory.", float64(am.SpillWrites))
	p.Counter("slj_artifact_spill_reads_total", "Memory misses served from the spill directory.", float64(am.SpillReads))
	p.Counter("slj_artifact_pulls_total",
		"Artifact pull round-trips to the originating front end (worker nodes).", float64(am.Pulls))
	p.Counter("slj_artifact_pull_failures_total", "Artifact pulls that failed.", float64(am.PullFailures))

	sm := s.clips.Metrics()
	p.Gauge("slj_clip_sessions_open", "Clip-ingest sessions currently open.", float64(sm.Open))
	p.Counter("slj_clip_sessions_opened_total", "Clip-ingest sessions opened.", float64(sm.Opened))
	p.Counter("slj_clip_sessions_sealed_total", "Clip-ingest sessions sealed.", float64(sm.Sealed))
	p.Counter("slj_clip_sessions_expired_total", "Clip-ingest sessions expired unsealed.", float64(sm.Expired))
	p.Counter("slj_clip_frames_ingested_total", "Frames appended across all ingest sessions.", float64(sm.FramesIngested))
	p.Counter("slj_clip_eager_segmented_total",
		"Frames speculatively segmented while their clip was still uploading.", float64(sm.EagerSegmented))
	p.Counter("slj_clip_eager_reused_total",
		"Speculative segmentations kept at seal (background tag matched).", float64(sm.EagerReused))
	p.Counter("slj_clip_eager_resegmented_total",
		"Frames re-segmented at seal (speculation missed or stale).", float64(sm.EagerResegmented))

	gm := pose.GAMetrics()
	p.Counter("slj_ga_fitness_memo_hits_total",
		"GA fitness scores answered from the cross-generation memo table.",
		float64(gm.FitnessMemoHits))
	p.Counter("slj_ga_fitness_memo_misses_total",
		"GA fitness scores actually evaluated (memo misses).",
		float64(gm.FitnessMemoMisses))

	if rm, ok := s.replicationSnapshot(); ok {
		p.Counter("slj_replica_results_pushed_total",
			"Result documents pushed to ring successors.", float64(rm.Push.Results))
		p.Counter("slj_replica_artifacts_pushed_total",
			"Artifact blobs pushed to ring successors.", float64(rm.Push.Artifacts))
		p.Counter("slj_replica_push_failures_total",
			"Replication pushes that failed after delivery was attempted.", float64(rm.Push.Failures))
		p.Counter("slj_replica_dropped_total",
			"Replication tasks dropped by the sink's bounded queue.", float64(rm.Push.Dropped))
		p.Counter("slj_replica_results_received_total",
			"Replicated result documents accepted from fleet peers.", float64(rm.ResultsReceived))
		p.Counter("slj_replica_results_stored_total",
			"Replicated result documents stored in the result cache.", float64(rm.ResultsStored))
	}

	if es, ok := s.jobs.(jobs.EventSource); ok {
		p.Counter("slj_events_dropped_total",
			"Events dropped by the hub's never-block policy (slow subscribers are resynced instead).",
			float64(es.EventHub().Dropped()))
	}

	s.slo.WritePrometheus(p)
	comps := s.componentHealth()
	names := make([]string, 0, len(comps))
	for name := range comps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := 0.0
		if comps[name].Status == jobs.HealthOK {
			v = 1
		}
		p.Gauge("slj_health_component_ok",
			"Whether the deep-health component reports ok (1) or degraded (0).",
			v, "component", name)
	}

	obs.Default.WritePrometheus(p)
	p.WriteRuntime()
	if err := p.Err(); err != nil {
		s.log.Warn("prometheus exposition write failed", "err", err)
	}
}
