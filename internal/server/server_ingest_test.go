package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/sljmotion/sljmotion/internal/artifacts"
	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// errorEnvelope is the service's JSON error document, code included.
type errorEnvelope struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// openClipHTTP opens an ingest session over HTTP.
func openClipHTTP(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/clips", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open clip: status %d: %s", resp.StatusCode, raw)
	}
	var doc struct {
		ClipID    string `json:"clip_id"`
		FramesURL string `json:"frames_url"`
		SealURL   string `json:"seal_url"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil || doc.ClipID == "" {
		t.Fatalf("open clip: malformed document: %s", raw)
	}
	if want := "/v1/clips/" + doc.ClipID + "/frames"; doc.FramesURL != want {
		t.Fatalf("frames_url = %q, want %q", doc.FramesURL, want)
	}
	return doc.ClipID
}

// appendChunkHTTP uploads one chunk, returning status and body.
func appendChunkHTTP(t *testing.T, base, id string, chunk int, frames []*imaging.Image) (int, []byte) {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.WriteField("chunk", strconv.Itoa(chunk)); err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		fw, err := mw.CreateFormFile("frames", fmt.Sprintf("frame_%04d.ppm", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, f); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/clips/"+id+"/frames", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// sealClipHTTP seals the session, returning status and body.
func sealClipHTTP(t *testing.T, base, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/clips/"+id+"/seal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// analyzeJSONHTTP posts a by-reference JSON analysis request.
func analyzeJSONHTTP(t *testing.T, base string, doc map[string]any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// quantManual rounds a pose to what a %.2f truth-file round trip yields, so
// a JSON request can carry the exact same manual pose as a multipart upload.
func quantManual(t *testing.T, m stickmodel.Pose) stickmodel.Pose {
	t.Helper()
	q := func(f float64) float64 {
		p, err := strconv.ParseFloat(fmt.Sprintf("%.2f", f), 64)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	m.X, m.Y = q(m.X), q(m.Y)
	for i := range m.Rho {
		m.Rho[i] = q(m.Rho[i])
	}
	return m
}

// manualJSON renders a pose as the manual_first JSON object.
func manualJSON(m stickmodel.Pose) map[string]any {
	return map[string]any{"x": m.X, "y": m.Y, "rho": m.Rho[:]}
}

func TestClipIngestProtocolErrors(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	frames := []*imaging.Image{
		imaging.NewImageFilled(16, 8, imaging.Color{R: 100, G: 100, B: 100}),
		imaging.NewImageFilled(16, 8, imaging.Color{R: 100, G: 100, B: 100}),
	}

	// Unknown session: 404 with a machine-readable code.
	code, raw := appendChunkHTTP(t, srv.URL, "deadbeef", 0, frames)
	var env errorEnvelope
	if code != http.StatusNotFound || json.Unmarshal(raw, &env) != nil || env.Code != "session_not_found" {
		t.Fatalf("unknown session: %d %s", code, raw)
	}

	id := openClipHTTP(t, srv.URL)

	// Out-of-order chunk: 409 with the chunk_out_of_order code and the
	// expected index named in the message, so clients can resynchronise.
	code, raw = appendChunkHTTP(t, srv.URL, id, 3, frames)
	env = errorEnvelope{}
	if code != http.StatusConflict || json.Unmarshal(raw, &env) != nil {
		t.Fatalf("out-of-order chunk: %d %s", code, raw)
	}
	if env.Code != "chunk_out_of_order" || !bytes.Contains([]byte(env.Error), []byte("next chunk is 0")) {
		t.Fatalf("out-of-order envelope = %+v", env)
	}

	// In-order chunk succeeds and reports progress.
	code, raw = appendChunkHTTP(t, srv.URL, id, 0, frames)
	if code != http.StatusOK {
		t.Fatalf("chunk 0: %d %s", code, raw)
	}
	var st artifacts.SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil || st.Frames != 2 || st.Chunks != 1 {
		t.Fatalf("status after chunk 0: %s", raw)
	}

	// Seal twice: idempotent, byte-identical documents.
	code, first := sealClipHTTP(t, srv.URL, id)
	if code != http.StatusOK {
		t.Fatalf("seal: %d %s", code, first)
	}
	code, second := sealClipHTTP(t, srv.URL, id)
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Fatalf("reseal: %d\n%s\nvs\n%s", code, second, first)
	}
	var seal artifacts.SealDoc
	if err := json.Unmarshal(first, &seal); err != nil || seal.FramesHash == "" || seal.Frames != 2 {
		t.Fatalf("seal document: %s", first)
	}

	// Appending to a sealed session: 409 session_sealed.
	code, raw = appendChunkHTTP(t, srv.URL, id, 1, frames)
	env = errorEnvelope{}
	if code != http.StatusConflict || json.Unmarshal(raw, &env) != nil || env.Code != "session_sealed" {
		t.Fatalf("append after seal: %d %s", code, raw)
	}

	// Sealing an empty session fails cleanly.
	empty := openClipHTTP(t, srv.URL)
	if code, raw := sealClipHTTP(t, srv.URL, empty); code != http.StatusUnprocessableEntity {
		t.Fatalf("seal of empty session: %d %s", code, raw)
	}

	// The stored frames artifact is fetchable by hash; unknown hashes carry
	// the artifact_not_found code.
	resp, err := http.Get(srv.URL + "/v1/artifacts/" + seal.FramesHash)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(ArtifactKindHeader) != string(artifacts.KindFrames) {
		t.Fatalf("artifact fetch: %d, kind %q", resp.StatusCode, resp.Header.Get(ArtifactKindHeader))
	}
	if artifacts.HashOf(blob) != seal.FramesHash {
		t.Fatal("served artifact does not hash to its address")
	}
	nf, err := http.Get(srv.URL + "/v1/artifacts/" + "0000000000000000000000000000000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(nf.Body)
	nf.Body.Close()
	env = errorEnvelope{}
	if nf.StatusCode != http.StatusNotFound || json.Unmarshal(raw, &env) != nil || env.Code != "artifact_not_found" {
		t.Fatalf("unknown artifact: %d %s", nf.StatusCode, raw)
	}
}

// TestByHashAnalysisMatchesInline is the single-node identity acceptance:
// a clip streamed through an ingest session and analysed by content hash
// (full pipeline) returns a document byte-identical — modulo stage_ms — to
// the same clip uploaded inline. The result cache is disabled so both
// requests genuinely run, proving the memo-injected segmentation replay
// changes nothing.
func TestByHashAnalysisMatchesInline(t *testing.T) {
	opts := DefaultOptions()
	opts.CacheEntries = 0
	s := fastServerWithOptions(t, opts)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := quantManual(t, v.ManualAnnotation(synth.DefaultAnnotationError(), 1))

	// Inline reference run.
	body, ctype := clipUpload(t, v, true)
	resp, err := http.Post(srv.URL+"/v1/analyze", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline analyze: %d %s", resp.StatusCode, want)
	}

	// Streamed upload: three chunks, then seal.
	id := openClipHTTP(t, srv.URL)
	n := len(v.Frames)
	for i, chunk := 0, 0; i < n; chunk++ {
		end := i + (n+2)/3
		if end > n {
			end = n
		}
		if code, raw := appendChunkHTTP(t, srv.URL, id, chunk, v.Frames[i:end]); code != http.StatusOK {
			t.Fatalf("chunk %d: %d %s", chunk, code, raw)
		}
		i = end
	}
	code, sealRaw := sealClipHTTP(t, srv.URL, id)
	if code != http.StatusOK {
		t.Fatalf("seal: %d %s", code, sealRaw)
	}
	var seal artifacts.SealDoc
	if err := json.Unmarshal(sealRaw, &seal); err != nil {
		t.Fatal(err)
	}

	// By-hash run of the full pipeline.
	code, got := analyzeJSONHTTP(t, srv.URL, map[string]any{
		"frames_ref":   seal.FramesHash,
		"manual_first": manualJSON(manual),
		"poses":        true,
	})
	if code != http.StatusOK {
		t.Fatalf("by-hash analyze: %d %s", code, got)
	}
	if !bytes.Equal(e2etest.StripVolatile(t, got), e2etest.StripVolatile(t, want)) {
		t.Fatalf("by-hash result differs from inline:\n%s\nvs\n%s", got, want)
	}

	// The ingest layer's metrics prove segmentation overlapped the upload.
	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mdoc struct {
		Artifacts    artifacts.Metrics        `json:"artifacts"`
		ClipSessions artifacts.SessionMetrics `json:"clip_sessions"`
	}
	err = json.NewDecoder(mresp.Body).Decode(&mdoc)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mdoc.ClipSessions.Sealed != 1 || mdoc.ClipSessions.FramesIngested != uint64(n) {
		t.Fatalf("clip session metrics = %+v", mdoc.ClipSessions)
	}
	if mdoc.Artifacts.Blobs < 2 || mdoc.Artifacts.Stored < 2 {
		t.Fatalf("artifact metrics = %+v, want the frames and silhouettes blobs", mdoc.Artifacts)
	}
}

// TestByHashAnalysisStacksWithResultCache: because the memo-injected
// segmentation is excluded from the cache key, a by-hash request hashes
// identically to the inline upload of the same clip — so the second form is
// answered from the result cache populated by the first.
func TestByHashAnalysisStacksWithResultCache(t *testing.T) {
	s := fastServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := quantManual(t, v.ManualAnnotation(synth.DefaultAnnotationError(), 1))

	// Inline segmentation-only run populates the cache.
	body, ctype := e2etest.ClipUpload(t, v, "segmentation", true)
	resp, err := http.Post(srv.URL+"/v1/analyze", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline analyze: %d %s", resp.StatusCode, want)
	}

	id := openClipHTTP(t, srv.URL)
	if code, raw := appendChunkHTTP(t, srv.URL, id, 0, v.Frames); code != http.StatusOK {
		t.Fatalf("chunk 0: %d %s", code, raw)
	}
	code, sealRaw := sealClipHTTP(t, srv.URL, id)
	if code != http.StatusOK {
		t.Fatalf("seal: %d %s", code, sealRaw)
	}
	var seal artifacts.SealDoc
	if err := json.Unmarshal(sealRaw, &seal); err != nil {
		t.Fatal(err)
	}

	code, got := analyzeJSONHTTP(t, srv.URL, map[string]any{
		"frames_ref":   seal.FramesHash,
		"manual_first": manualJSON(manual),
		"stages":       "segmentation",
		"silhouettes":  true,
	})
	if code != http.StatusOK {
		t.Fatalf("by-hash analyze: %d %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cache-answered by-hash result differs byte-for-byte:\n%s\nvs\n%s", got, want)
	}
	if cm := s.cache.Metrics(); cm.Hits != 1 {
		t.Fatalf("cache hits = %d, want the by-hash request answered from the inline run's entry", cm.Hits)
	}
}
