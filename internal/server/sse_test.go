package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/jobs"
)

// submitTestJob posts to the async route of a server running a testExec
// (no upload parsing) and returns the accepted job id.
func submitTestJob(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var doc submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.ID
}

// openStream opens an SSE stream; afterSeq > 0 sends Last-Event-ID.
func openStream(t *testing.T, url string, afterSeq uint64) (*http.Response, *events.FrameReader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if afterSeq > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", afterSeq))
	}
	client := &http.Client{} // no timeout: the stream outlives deadlines
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	return resp, events.NewFrameReader(resp.Body)
}

// indentDoc renders a compact JSON document exactly like writeJSON does —
// the byte-identity bridge between an SSE-embedded result and the result
// route's body.
func indentDoc(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := json.Indent(&out, raw, "", "  "); err != nil {
		t.Fatalf("embedded result is not valid JSON: %v", err)
	}
	out.WriteByte('\n')
	return out.Bytes()
}

// stagedExec emits the four pipeline stages (gated on release) and returns
// a small response document.
func stagedExec(release <-chan struct{}) jobs.Executor {
	return jobs.ExecutorFunc(func(ctx context.Context, p jobs.Payload, progress func(string)) (any, error) {
		if release != nil {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		for _, st := range []string{"segmentation", "pose", "tracking", "scoring"} {
			progress(st)
		}
		return &AnalysisResponse{Frames: 20, Score: "7/7", Passed: 7, Total: 7}, nil
	})
}

// TestSSEStreamEndToEnd is the streaming acceptance test at the server
// level: a client that opens the event stream — and never polls status —
// sees queued, running, all four stage events in pipeline order, and a
// terminal done frame embedding a result byte-identical (after the shared
// indentation) to what GET /v1/jobs/{id}/result serves.
func TestSSEStreamEndToEnd(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 4, ResultTTL: time.Minute, EventHeartbeat: 20 * time.Millisecond})
	release := make(chan struct{})
	s.testExec = stagedExec(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id := submitTestJob(t, srv.URL)
	resp, fr := openStream(t, srv.URL+"/v1/jobs/"+id+"/events", 0)
	defer resp.Body.Close()
	close(release)

	var types []events.Type
	var stages []string
	var terminal events.Event
	for {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("stream cut before the terminal event: %v (saw %v)", err, types)
		}
		e, err := f.DecodeEvent()
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, e.Type)
		if e.Type == events.TypeStage {
			stages = append(stages, e.Stage)
		}
		if e.Terminal() {
			terminal = e
			break
		}
	}
	if want := []string{"segmentation", "pose", "tracking", "scoring"}; fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Errorf("stage events %v, want %v", stages, want)
	}
	if types[0] != events.TypeQueued || terminal.Type != events.TypeDone {
		t.Errorf("lifecycle events: %v", types)
	}
	if len(terminal.Result) == 0 {
		t.Fatal("terminal frame carries no embedded result")
	}
	// The stream must end (server closes the frame flow) after terminal.
	if _, err := fr.Next(); err == nil {
		t.Error("stream stayed open past the terminal event")
	}

	// Byte-identity with the poll path — the only job GET of the test.
	pollResp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	pollRaw, _ := io.ReadAll(pollResp.Body)
	pollResp.Body.Close()
	if pollResp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", pollResp.StatusCode)
	}
	if got := indentDoc(t, terminal.Result); !bytes.Equal(got, pollRaw) {
		t.Errorf("embedded result differs from the poll path:\n%s\nvs\n%s", got, pollRaw)
	}
}

// TestSSEResumeAfterDrop: a client whose connection drops mid-stream
// reconnects with Last-Event-ID and receives exactly the events it
// missed, in order.
func TestSSEResumeAfterDrop(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 4, ResultTTL: time.Minute, EventHeartbeat: 20 * time.Millisecond})
	mid := make(chan struct{})
	finish := make(chan struct{})
	s.testExec = jobs.ExecutorFunc(func(ctx context.Context, p jobs.Payload, progress func(string)) (any, error) {
		progress("segmentation")
		close(mid)
		select {
		case <-finish:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		progress("pose")
		return &AnalysisResponse{Frames: 20}, nil
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id := submitTestJob(t, srv.URL)
	resp, fr := openStream(t, srv.URL+"/v1/jobs/"+id+"/events", 0)
	<-mid
	// Read up to the first stage event, then drop the connection.
	var lastSeq uint64
	for lastSeq < 3 { // queued, running, stage segmentation
		f, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = f.Seq()
	}
	resp.Body.Close() // dropped connection

	resp2, fr2 := openStream(t, srv.URL+"/v1/jobs/"+id+"/events", lastSeq)
	defer resp2.Body.Close()
	close(finish)
	var got []events.Event
	for {
		f, err := fr2.Next()
		if err != nil {
			t.Fatalf("resumed stream cut: %v (saw %+v)", err, got)
		}
		e, err := f.DecodeEvent()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
		if e.Terminal() {
			break
		}
	}
	if len(got) != 2 || got[0].Stage != "pose" || got[1].Type != events.TypeDone {
		t.Fatalf("resumed events: %+v", got)
	}
	if got[0].Seq != lastSeq+1 {
		t.Errorf("resume gap: first resumed seq %d after %d", got[0].Seq, lastSeq)
	}
}

// TestSSEAlreadyFinishedJobStreamsImmediately: opening the stream of a
// finished job yields its history ending in the embedded-terminal frame
// without waiting.
func TestSSEAlreadyFinishedJobStreamsImmediately(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 4, ResultTTL: time.Minute, EventHeartbeat: 20 * time.Millisecond})
	s.testExec = stagedExec(nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	id := submitTestJob(t, srv.URL)
	waitState(t, srv.URL, id, string(jobs.StateDone))

	resp, fr := openStream(t, srv.URL+"/v1/jobs/"+id+"/events", 0)
	defer resp.Body.Close()
	deadline := time.After(5 * time.Second)
	done := make(chan events.Event, 1)
	go func() {
		for {
			f, err := fr.Next()
			if err != nil {
				return
			}
			if e, err := f.DecodeEvent(); err == nil && e.Terminal() {
				done <- e
				return
			}
		}
	}()
	select {
	case e := <-done:
		if e.Type != events.TypeDone || len(e.Result) == 0 {
			t.Errorf("terminal frame: %+v", e)
		}
	case <-deadline:
		t.Fatal("finished job's stream never delivered its terminal event")
	}
}

// TestSSESubscriberLimit: the configured cap answers 503 + Retry-After
// with the shared envelope, and frees on disconnect.
func TestSSESubscriberLimit(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 4, ResultTTL: time.Minute, EventSubscribers: 1, EventHeartbeat: 10 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	s.testExec = stagedExec(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	id := submitTestJob(t, srv.URL)

	resp, _ := openStream(t, srv.URL+"/v1/jobs/"+id+"/events", 0)
	over, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(over.Body)
	over.Body.Close()
	if over.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit stream: status %d, want 503", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var env errorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == "" {
		t.Errorf("503 body is not the error envelope: %s", raw)
	}

	// Disconnecting the first client frees the slot.
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err := http.Get(srv.URL + "/v1/events")
		if err != nil {
			t.Fatal(err)
		}
		ok := r2.StatusCode == http.StatusOK
		r2.Body.Close()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream slot never freed after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSSEUnknownJob404s with the shared envelope.
func TestSSEUnknownJob(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 1, ResultTTL: time.Minute})
	s.testExec = stagedExec(nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs/deadbeef/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var env errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == "" {
		t.Error("404 body is not the error envelope")
	}
}

// TestSSEBadResumePosition: a non-numeric Last-Event-ID answers 400.
func TestSSEBadResumePosition(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 4, ResultTTL: time.Minute})
	s.testExec = stagedExec(nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	id := submitTestJob(t, srv.URL)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", "bogus")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestEventFeedFirehose: the global feed carries every job's events and
// honours the state filter.
func TestEventFeedFirehose(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 8, ResultTTL: time.Minute, EventHeartbeat: 20 * time.Millisecond})
	s.testExec = stagedExec(nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, fr := openStream(t, srv.URL+"/v1/events?state=done", 0)
	defer resp.Body.Close()
	id1 := submitTestJob(t, srv.URL)
	id2 := submitTestJob(t, srv.URL)

	seen := map[string]bool{}
	deadline := time.After(10 * time.Second)
	got := make(chan events.Event, 32)
	go func() {
		for {
			f, err := fr.Next()
			if err != nil {
				close(got)
				return
			}
			if e, err := f.DecodeEvent(); err == nil {
				got <- e
			}
		}
	}()
	for len(seen) < 2 {
		select {
		case e, ok := <-got:
			if !ok {
				t.Fatalf("feed closed early; saw %v", seen)
			}
			if e.State != string(jobs.StateDone) {
				t.Errorf("state filter leaked event %+v", e)
			}
			seen[e.JobID] = true
		case <-deadline:
			t.Fatalf("feed never delivered both done events; saw %v", seen)
		}
	}
	if !seen[id1] || !seen[id2] {
		t.Errorf("feed missed a job: %v (want %s, %s)", seen, id1, id2)
	}

	// Bad state parameter: the envelope, not a stream.
	bad, err := http.Get(srv.URL + "/v1/events?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad state filter: status %d, want 400", bad.StatusCode)
	}
}

// TestSSEHeartbeats: an idle stream keeps emitting comment frames.
func TestSSEHeartbeats(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 4, ResultTTL: time.Minute, EventHeartbeat: 10 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	s.testExec = stagedExec(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	id := submitTestJob(t, srv.URL)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	var collected []byte
	deadline := time.Now().Add(5 * time.Second)
	for !bytes.Contains(collected, []byte(": hb")) {
		if time.Now().After(deadline) {
			t.Fatalf("no heartbeat on an idle stream: %q", collected)
		}
		n, err := resp.Body.Read(buf)
		collected = append(collected, buf[:n]...)
		if err != nil {
			t.Fatalf("stream ended: %v (%q)", err, collected)
		}
	}
}
