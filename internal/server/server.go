// Package server implements the paper's stated future work (Section 6):
// "a web-based system on the Internet — the user will be able to upload a
// video sequence of a standing long jump ... the system will be able to
// respond with advices to the user."
//
// The service accepts a clip as a multipart upload of PPM frames (plus a
// truth.txt carrying the manual first-frame stick figure), runs the
// requested pipeline stages, and responds with a JSON report: per-rule
// outcomes, advice strings, jump phases and distance.
//
// The versioned surface lives under /v1:
//
//	POST /v1/analyze        synchronous analysis (the caller waits);
//	POST /v1/jobs           asynchronous: 202 + job id into the bounded
//	                        queue of the configured jobs.Dispatcher;
//	GET  /v1/jobs           job history, newest-first (state=, limit=);
//	GET  /v1/jobs/{id}      lifecycle state and pipeline stage;
//	GET  /v1/jobs/{id}/result  the finished AnalysisResponse;
//	GET  /v1/metrics        queue, throughput, latency and cache counters;
//	GET  /v1/rules          Tables 1-2; GET /v1/healthz liveness.
//
// Uploads take optional form fields: poses=1 / silhouettes=1 shape the
// response, and stages selects a pipeline prefix (e.g. stages=segmentation
// returns silhouettes without running the GA). The original unversioned
// routes (/analyze, /jobs, ...) remain as thin aliases of their /v1
// counterparts.
//
// Results are cached content-addressed (internal/cache): the SHA-256 of
// the frame bytes, manual pose, analyzer-config fingerprint, stage
// selection and response options keys the finished AnalysisResponse, and a
// resubmission of an identical clip — on either the sync or the async
// route — is answered from the store without re-running the pipeline or
// enqueueing a job. Every route answers wrong methods with 405, an Allow
// header and the shared JSON error envelope.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"mime/multipart"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sljmotion/sljmotion/internal/artifacts"
	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// MaxUploadBytes bounds one upload (frames are small PPMs; 64 MiB is ample).
const MaxUploadBytes = 64 << 20

// AnalysisResponse is the JSON document returned for one analysed clip.
// Stage-limited requests fill only the fields their stages computed; the
// stages field names them (it is omitted on full-pipeline runs, whose
// document is unchanged from the unversioned API).
type AnalysisResponse struct {
	Frames       int             `json:"frames"`
	TakeoffFrame int             `json:"takeoff_frame"`
	LandingFrame int             `json:"landing_frame"`
	DistancePx   float64         `json:"distance_px"`
	DistanceM    float64         `json:"distance_m,omitempty"`
	Score        string          `json:"score"` // e.g. "7/7"
	Passed       int             `json:"passed"`
	Total        int             `json:"total"`
	Rules        []RuleOut       `json:"rules"`
	Advice       []string        `json:"advice"`
	Poses        []PoseOut       `json:"poses,omitempty"`
	Phases       []string        `json:"phases"`
	Stages       []string        `json:"stages,omitempty"`
	Silhouettes  []SilhouetteOut `json:"silhouettes,omitempty"`
	// StageMS records wall-clock milliseconds per executed pipeline stage.
	// It is the one non-deterministic field of the document: cross-run
	// byte-comparisons must strip it (e2etest.StripVolatile) before diffing.
	StageMS map[string]float64 `json:"stage_ms,omitempty"`
}

// RuleOut is one scored rule in the response.
type RuleOut struct {
	ID       string  `json:"id"`
	Standard string  `json:"standard"`
	Formula  string  `json:"formula"`
	Stage    string  `json:"stage"`
	Value    float64 `json:"value_deg"`
	Passed   bool    `json:"passed"`
	AtFrame  int     `json:"at_frame"`
}

// PoseOut is one estimated stick model in the response.
type PoseOut struct {
	Frame int        `json:"frame"`
	X     float64    `json:"x"`
	Y     float64    `json:"y"`
	Rho   [8]float64 `json:"rho"`
}

// SilhouetteOut is one segmented frame in the response (silhouettes=1).
// Mask is the silhouette bitmap, row-major, bit-packed MSB-first within
// each byte and base64-encoded.
type SilhouetteOut struct {
	Frame int    `json:"frame"`
	W     int    `json:"w"`
	H     int    `json:"h"`
	Area  int    `json:"area"`
	BBox  [4]int `json:"bbox"` // x0, y0, x1, y1 (inclusive)
	Mask  string `json:"mask_b64"`
}

// errorResponse is the JSON error envelope shared by every route. State is
// set only where a job lifecycle state disambiguates the error (the result
// route of a failed job reports state "failed"); everywhere else it is
// omitted and the envelope is unchanged. Code, likewise optional, is a
// stable machine-readable discriminator for errors clients react to
// programmatically (e.g. "chunk_out_of_order" → resync the chunk counter),
// where matching the prose would be brittle.
type errorResponse struct {
	Error string `json:"error"`
	State string `json:"state,omitempty"`
	Code  string `json:"code,omitempty"`
}

// Options configure the asynchronous job path and the result cache.
type Options struct {
	// Workers is the analysis worker pool size.
	Workers int
	// QueueSize bounds the number of jobs waiting beyond the running ones;
	// a full queue answers 503 with Retry-After.
	QueueSize int
	// ResultTTL evicts finished job results this long after completion.
	ResultTTL time.Duration
	// CacheEntries bounds the content-addressed result cache; 0 disables
	// caching entirely.
	CacheEntries int
	// CacheTTL expires cached responses this long after they are stored.
	CacheTTL time.Duration
	// Journal makes the in-process job table durable: submissions, state
	// transitions and evictions are appended to it, and construction
	// replays the log — interrupted jobs re-run, finished results stay
	// pollable across a restart (slj-serve -journal; DESIGN.md §11). The
	// caller keeps ownership of closing it after the server closes.
	// Ignored when Dispatcher is set (a remote backend journals on its
	// worker nodes).
	Journal jobs.Journal
	// Dispatcher overrides the in-process worker pool with an external job
	// backend (e.g. the remote HTTP fan-out dispatcher). When set,
	// Workers/QueueSize/ResultTTL are ignored; on successful construction
	// the server takes ownership of closing it.
	Dispatcher jobs.Dispatcher
	// Worker additionally mounts the worker-node intake route
	// (POST /v1/worker/jobs): serialized job payloads in, the standard
	// submit/poll lifecycle out. Front ends fanning work out via a remote
	// dispatcher point it at nodes running with this enabled.
	Worker bool
	// EventSubscribers caps concurrently connected event-stream clients
	// across both SSE routes; excess subscribers answer 503 + Retry-After.
	// It also sizes the in-process event hub's subscriber limit.
	EventSubscribers int
	// EventBuffer bounds each subscriber's pending-event ring; a client
	// this far behind is resynced (snapshot + delta) instead of ever
	// blocking the pipeline.
	EventBuffer int
	// EventHeartbeat is the SSE keep-alive comment interval.
	EventHeartbeat time.Duration
	// Log receives the server's structured logs (and is threaded into the
	// in-process job manager so lifecycle lines correlate by job_id and
	// trace_id). When nil, the legacy *log.Logger passed to New is wrapped
	// as a plain text handler; if that is nil too, logs are discarded.
	Log *slog.Logger
	// PProf mounts net/http/pprof under /debug/pprof/ (slj-serve -pprof).
	// Off by default: the profiling surface is opt-in, never public.
	PProf bool
	// MaxPayloadBytes bounds one serialized payload on the worker intake
	// route (slj-serve -max-payload-bytes); 0 selects MaxUploadBytes.
	// Inline payloads get double this (base64 inflation headroom);
	// by-reference payloads get exactly this.
	MaxPayloadBytes int64
	// ArtifactBlobs / ArtifactBytes / ArtifactTTL bound the content-
	// addressed artifact store; zero fields take artifacts.DefaultConfig.
	ArtifactBlobs int
	ArtifactBytes int64
	ArtifactTTL   time.Duration
	// ArtifactSpillDir, when set, spills artifact blobs to disk so LRU
	// pressure demotes them instead of dropping them.
	ArtifactSpillDir string
	// ClipTTL expires idle clip-ingest sessions; 0 selects
	// artifacts.DefaultSessionTTL.
	ClipTTL time.Duration
	// Replicator, when set, mirrors this node's cache fills and artifact
	// stores to the ring successor named by each job's payload
	// (Payload.ReplicaTarget), turning a later node death into a successor
	// cache hit instead of a recompute. Worker nodes in a replicating fleet
	// set this (slj-serve wires a dispatch.Replicator); the caller keeps
	// ownership of closing it after the server closes.
	Replicator jobs.ReplicaSink
	// SLOLatency is the end-to-end job latency objective: a successful job
	// slower than this still burns error budget (slj-serve -slo-latency-ms).
	// Zero selects DefaultSLOLatency; negative disables the latency
	// objective, leaving success ratio as the only SLI.
	SLOLatency time.Duration
	// SLOTarget is the objective's success-ratio target in (0, 1); zero
	// selects DefaultSLOTarget.
	SLOTarget float64
	// StallAfter is the in-process queue-stall watchdog threshold (deep
	// health degrades the "queue" component past it); zero selects
	// jobs.DefaultStallAfter. Ignored when Dispatcher is set.
	StallAfter time.Duration
}

// SLO defaults: jobs slower than 2s against a 99% target.
const (
	DefaultSLOLatency = 2 * time.Second
	DefaultSLOTarget  = 0.99
)

// DefaultOptions returns a small-deployment default (jobs.DefaultConfig
// workers/queue, cache.DefaultConfig result cache).
func DefaultOptions() Options {
	d := jobs.DefaultConfig()
	c := cache.DefaultConfig()
	e := events.DefaultConfig()
	return Options{
		Workers: d.Workers, QueueSize: d.QueueSize, ResultTTL: d.ResultTTL,
		CacheEntries: c.MaxEntries, CacheTTL: c.TTL,
		EventSubscribers: e.MaxSubscribers, EventBuffer: e.SubscriberBuffer,
		EventHeartbeat:  15 * time.Second,
		MaxPayloadBytes: MaxUploadBytes,
	}
}

// Server is the HTTP front end over the analyzer.
type Server struct {
	cfg    core.Config
	cfgFP  string // config fingerprint folded into cache keys
	log    *slog.Logger
	jobs   jobs.Dispatcher
	cache  *cache.Store // nil when caching is disabled
	worker bool         // mounts the payload intake route
	pprof  bool         // mounts /debug/pprof/

	// artifacts is the content-addressed blob store behind /v1/artifacts
	// and the by-reference request path; clips is the chunked-ingest
	// session layer over it; maxPayload is the worker-intake body cap.
	artifacts  *artifacts.Store
	clips      *artifacts.Sessions
	maxPayload int64

	// SSE stream accounting: streams counts connected event-stream
	// clients against streamLimit; heartbeat paces keep-alive comments.
	streamLimit int
	heartbeat   time.Duration
	streams     atomic.Int64

	mu       sync.Mutex
	analyzed int // clips analysed since start, served by /healthz

	// slo is the rolling SLI store behind the burn-rate gauges, the
	// /v1/fleet rollup and the deep-health "slo" component. Always set:
	// the in-process Manager and the remote dispatcher both feed it one
	// observation per terminal job.
	slo *obs.SLO

	// Successor replication (worker side): replica is the push sink;
	// replTargets maps the cache key of each in-flight job to its payload's
	// replica target (consulted by the cache OnStore hook); replActive
	// refcounts targets of in-flight jobs (consulted by the artifact OnStore
	// hook, which has no job context); replicaReceived / replicaStored count
	// the intake side (POST /v1/worker/replica).
	replica         jobs.ReplicaSink
	replMu          sync.Mutex
	replTargets     map[cache.Key]string
	replActive      map[string]int
	replicaReceived uint64
	replicaStored   uint64

	// testExec, when set, replaces the analysis executor behind POST /jobs
	// (and makes the route skip upload parsing) — a white-box seam for
	// deterministic queue tests.
	testExec jobs.Executor
}

// New builds a server with DefaultOptions; logger may be nil for silent
// operation.
func New(cfg core.Config, logger *log.Logger) (*Server, error) {
	return NewWithOptions(cfg, logger, DefaultOptions())
}

// NewWithOptions builds a server with an explicitly configured job
// dispatcher and result cache.
func NewWithOptions(cfg core.Config, logger *log.Logger, opts Options) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lg := opts.Log
	if lg == nil {
		if logger != nil {
			lg = slog.New(slog.NewTextHandler(logger.Writer(), nil))
		} else {
			lg = obs.Discard()
		}
	}
	// srv late-binds the server pointer into the store hooks below: the
	// stores are constructed before the Server struct (error-path
	// ownership), but their OnStore hooks only ever fire while requests
	// flow — long after srv is assigned.
	var srv *Server
	// The cache is built before the dispatcher so a config error here never
	// leaves a started worker pool (or a caller-supplied dispatcher the
	// server would own) leaking on the error path.
	var store *cache.Store
	if opts.CacheEntries > 0 {
		ccfg := cache.Config{MaxEntries: opts.CacheEntries, TTL: opts.CacheTTL}
		if opts.Replicator != nil {
			ccfg.OnStore = func(k cache.Key, v any) { srv.onCacheStore(k, v) }
		}
		var err error
		store, err = cache.New(ccfg)
		if err != nil {
			return nil, err
		}
	}
	def := DefaultOptions()
	if opts.EventSubscribers <= 0 {
		opts.EventSubscribers = def.EventSubscribers
	}
	if opts.EventBuffer <= 0 {
		opts.EventBuffer = def.EventBuffer
	}
	if opts.EventHeartbeat <= 0 {
		opts.EventHeartbeat = def.EventHeartbeat
	}
	if opts.MaxPayloadBytes <= 0 {
		opts.MaxPayloadBytes = def.MaxPayloadBytes
	}
	// The artifact store and ingest sessions are built next, still before
	// the dispatcher, for the same error-path ownership reason as the cache.
	acfg := artifacts.DefaultConfig()
	if opts.ArtifactBlobs > 0 {
		acfg.MaxBlobs = opts.ArtifactBlobs
	}
	if opts.ArtifactBytes > 0 {
		acfg.MaxBytes = opts.ArtifactBytes
	}
	if opts.ArtifactTTL > 0 {
		acfg.TTL = opts.ArtifactTTL
	}
	acfg.SpillDir = opts.ArtifactSpillDir
	if opts.Replicator != nil {
		acfg.OnStore = func(hash string, blob []byte) { srv.onArtifactStore(hash, blob) }
	}
	blobs, err := artifacts.NewStore(acfg)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	clips, err := artifacts.NewSessions(artifacts.SessionConfig{
		Store: blobs,
		Seg:   cfg.Segmentation,
		TTL:   opts.ClipTTL,
	})
	if err != nil {
		blobs.Close()
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		cfgFP:       configFingerprint(cfg),
		log:         lg,
		cache:       store,
		worker:      opts.Worker,
		pprof:       opts.PProf,
		streamLimit: opts.EventSubscribers,
		heartbeat:   opts.EventHeartbeat,
		artifacts:   blobs,
		clips:       clips,
		maxPayload:  opts.MaxPayloadBytes,
		replica:     opts.Replicator,
		replTargets: make(map[cache.Key]string),
		replActive:  make(map[string]int),
	}
	sloLatency := opts.SLOLatency
	switch {
	case sloLatency == 0:
		sloLatency = DefaultSLOLatency
	case sloLatency < 0:
		sloLatency = 0 // success ratio only
	}
	sloTarget := opts.SLOTarget
	if sloTarget == 0 {
		sloTarget = DefaultSLOTarget
	}
	s.slo = obs.NewSLO(sloLatency, sloTarget)
	srv = s
	dispatcher := opts.Dispatcher
	if dispatcher == nil {
		// The manager executes payloads through the server's analysis
		// executor (decode → run → cache → response document); the test
		// seam can shadow it per instance.
		exec := jobs.ExecutorFunc(func(ctx context.Context, p jobs.Payload, progress func(string)) (any, error) {
			if s.testExec != nil {
				return s.testExec.Execute(ctx, p, progress)
			}
			return s.executeAnalysis(ctx, p, progress)
		})
		mgr, err := jobs.New(jobs.Config{
			Workers:    opts.Workers,
			QueueSize:  opts.QueueSize,
			ResultTTL:  opts.ResultTTL,
			Journal:    opts.Journal,
			SLO:        s.slo,
			StallAfter: opts.StallAfter,
			Events: events.NewHub(events.Config{
				SubscriberBuffer: opts.EventBuffer,
				MaxSubscribers:   opts.EventSubscribers,
			}),
			Log: lg,
		}, exec)
		if err != nil {
			clips.Close()
			blobs.Close()
			if store != nil {
				store.Close()
			}
			return nil, err
		}
		dispatcher = mgr
	} else if so, ok := dispatcher.(interface{ SetSLO(*obs.SLO) }); ok {
		// A caller-supplied backend (the remote dispatcher) feeds the same
		// SLI store from its submit→terminal round trips.
		so.SetSLO(s.slo)
	}
	s.jobs = dispatcher
	return s, nil
}

// Close shuts the job dispatcher down (see jobs.Manager.Close for the
// drain and hard-cancel semantics) and releases the result cache.
func (s *Server) Close(ctx context.Context) error {
	err := s.jobs.Close(ctx)
	s.clips.Close()
	s.artifacts.Close()
	if s.cache != nil {
		s.cache.Close()
	}
	return err
}

// Handler returns the routed HTTP handler: the versioned /v1 surface plus
// the original unversioned routes as aliases of the same handlers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	for _, prefix := range []string{"", "/v1"} {
		mux.HandleFunc(prefix+"/analyze", method(http.MethodPost, s.handleAnalyze))
		mux.HandleFunc(prefix+"/jobs", s.handleJobsRoot)
		mux.HandleFunc(prefix+"/jobs/", method(http.MethodGet, s.handleJobPath))
		mux.HandleFunc(prefix+"/metrics", method(http.MethodGet, s.handleMetrics))
		mux.HandleFunc(prefix+"/rules", method(http.MethodGet, s.handleRules))
		mux.HandleFunc(prefix+"/healthz", method(http.MethodGet, s.handleHealth))
	}
	// The global event feed is versioned-only, like the worker intake:
	// it is a machine protocol with no pre-/v1 ancestor to alias.
	mux.HandleFunc("/v1/events", method(http.MethodGet, s.handleEventFeed))
	// The artifact store and clip-ingest sessions are likewise versioned-
	// only machine protocols (DESIGN.md §14).
	mux.HandleFunc("/v1/artifacts", method(http.MethodPost, s.handleArtifactPut))
	mux.HandleFunc("/v1/artifacts/", method(http.MethodGet, s.handleArtifactGet))
	mux.HandleFunc("/v1/clips", method(http.MethodPost, s.handleClipOpen))
	mux.HandleFunc("/v1/clips/", s.handleClipPath)
	// Fleet administration (versioned-only): answered 501 unless the job
	// backend manages an elastic fleet (jobs.FleetManager).
	mux.HandleFunc("/v1/fleet", method(http.MethodGet, s.handleFleet))
	// The federated cluster scrape (jobs.MetricsFederator): every member's
	// Prometheus exposition merged under a node label.
	mux.HandleFunc("/v1/fleet/metrics", method(http.MethodGet, s.handleFleetMetrics))
	mux.HandleFunc("/v1/fleet/nodes", method(http.MethodPost, s.handleFleetJoin))
	mux.HandleFunc("/v1/fleet/drain", method(http.MethodPost, s.handleFleetDrain))
	mux.HandleFunc("/v1/fleet/remove", method(http.MethodPost, s.handleFleetRemove))
	if s.worker {
		// The worker intake is a machine protocol, versioned-only: no
		// legacy alias, serialized payloads instead of multipart uploads.
		mux.HandleFunc("/v1/worker/jobs", method(http.MethodPost, s.handleWorkerJobs))
		// Successor-replication intake: replicated results from fleet peers.
		mux.HandleFunc("/v1/worker/replica", method(http.MethodPost, s.handleWorkerReplica))
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// method enforces one HTTP method per route: anything else is answered 405
// with an Allow header and the shared JSON error envelope.
func method(allow string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != allow {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Sprintf("method %s not allowed; use %s", r.Method, allow))
			return
		}
		h(w, r)
	}
}

// indexHTML is the minimal upload form served at /, so the paper's
// envisioned workflow — a user uploads a clip and reads the advice — works
// from a plain browser.
const indexHTML = `<!doctype html>
<title>Standing Long Jump Motion Analysis</title>
<h1>Standing Long Jump Motion Analysis</h1>
<p>Upload the frames of a side-view jump clip (PPM, named frame_NN.ppm)
and a truth.txt whose first line is the manually drawn first-frame stick
model: <code>0 x0 y0 rho0..rho7</code>.</p>
<form action="/v1/analyze" method="post" enctype="multipart/form-data">
  <p>Frames: <input type="file" name="frames" multiple required></p>
  <p>First-frame stick model: <input type="file" name="truth" required></p>
  <p><label><input type="checkbox" name="poses" value="1"> include per-frame poses</label></p>
  <p><button type="submit">Analyze</button></p>
</form>
<p>Long clips can be analysed asynchronously: POST the same form to
<code>/v1/jobs</code>, then poll <code>/v1/jobs/&lt;id&gt;</code> and fetch
<code>/v1/jobs/&lt;id&gt;/result</code>. A resubmitted identical clip is
answered from the result cache immediately. The optional
<code>stages</code> field runs a pipeline prefix (e.g.
<code>stages=segmentation</code> with <code>silhouettes=1</code>).</p>
<p>See <a href="/v1/rules">/v1/rules</a> for the scoring rules (Tables 1-2
of the paper), <a href="/v1/jobs">/v1/jobs</a> for the job history
(newest-first; <code>state=</code>, <code>limit=</code>),
<a href="/v1/metrics">/v1/metrics</a> for queue and cache statistics and
<a href="/v1/healthz">/v1/healthz</a> for service status.</p>
`

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, "not found")
		return
	}
	method(http.MethodGet, s.serveIndex)(w, r)
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, indexHTML)
}

// lookup computes the request's cache key and consults the store. The key
// is valid even on a miss (the zero key when caching is disabled).
func (s *Server) lookup(req core.Request) (cache.Key, *AnalysisResponse) {
	if s.cache == nil {
		return cache.Key{}, nil
	}
	key := requestKey(s.cfgFP, req)
	return key, s.cachedResponse(key)
}

// cachedResponse consults the store under an already-computed key.
func (s *Server) cachedResponse(key cache.Key) *AnalysisResponse {
	if s.cache == nil {
		return nil
	}
	if v, ok := s.cache.Get(key); ok {
		if resp, ok := v.(*AnalysisResponse); ok {
			return resp
		}
	}
	return nil
}

// store caches a finished response under its request key.
func (s *Server) store(key cache.Key, resp *AnalysisResponse) {
	if s.cache != nil {
		s.cache.Put(key, resp)
	}
}

// materialize resolves a by-reference request against the server's own
// artifact store and, when a sealed ingest session memoised this exact
// clip's segmentation, injects the stored silhouettes so Run replays them
// instead of recomputing (bit-identical by determinism; see core.Request.
// SegmentationMemo). Inline requests pass through untouched.
func (s *Server) materialize(req core.Request) (core.Request, error) {
	framesRef := req.FramesRef
	if framesRef == "" && req.SilhouettesRef == "" && req.PosesRef == "" {
		return req, nil
	}
	resolved, err := artifacts.ResolveRequest(s.artifacts, req)
	if err != nil {
		return core.Request{}, err
	}
	return s.injectMemo(framesRef, resolved), nil
}

// injectMemo fills the segmentation memo for a resolved request whose
// frames arrived by reference, when the ingest layer recorded one.
func (s *Server) injectMemo(framesRef string, req core.Request) core.Request {
	if framesRef == "" || req.SegmentationMemo ||
		len(req.Silhouettes) > 0 || req.Background != nil ||
		!req.Stages.Normalize().Includes(core.StageSegmentation) {
		return req
	}
	silsHash, ok := s.clips.Memo(framesRef)
	if !ok {
		return req
	}
	blob, _, ok := s.artifacts.Get(silsHash)
	if !ok {
		return req
	}
	bg, sils, err := artifacts.DecodeSilhouettes(blob)
	if err != nil || len(sils) != len(req.Frames) {
		return req
	}
	req.Silhouettes = sils
	req.Background = bg
	req.SegmentationMemo = true
	return req
}

// writeResolveError maps a reference-resolution failure onto the error
// envelope: unknown hashes are 404 with a machine-readable code, anything
// else (conflicting inline+ref, corrupt blob) is a 400.
func writeResolveError(w http.ResponseWriter, err error) {
	if errors.Is(err, artifacts.ErrNotFound) {
		writeErrorCode(w, http.StatusNotFound, "artifact_not_found", err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// handleAnalyze accepts a multipart POST with fields:
//
//	frames      — one or more PPM files named frame_NN.ppm (order by name);
//	truth       — a truth.txt whose first line is the manual first pose;
//	poses       — optional flag ("1") to include estimated poses;
//	silhouettes — optional flag ("1") to include the segmented masks;
//	stages      — optional pipeline prefix, e.g. "segmentation" or
//	              "segmentation..pose" (default: the full pipeline).
//
// An identical resubmission is answered from the result cache.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, ok := requestFromHTTP(w, r)
	if !ok {
		return
	}
	req, err := s.materialize(req)
	if err != nil {
		writeResolveError(w, err)
		return
	}
	key, cached := s.lookup(req)
	if cached != nil {
		writeJSON(w, http.StatusOK, cached)
		s.log.Debug("analyze cache hit", "key", key.String())
		return
	}

	analyzer, err := core.New(s.cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	result, err := analyzer.Run(r.Context(), req, nil)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("analysis failed: %v", err))
		return
	}

	s.mu.Lock()
	s.analyzed++
	s.mu.Unlock()

	resp := buildResponse(result, len(req.Frames), req)
	s.store(key, resp)
	writeJSON(w, http.StatusOK, resp)
	s.log.Info("clip analyzed", "frames", len(req.Frames), "score", resp.Score)
}

// submitResponse acknowledges an accepted asynchronous job.
type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
}

// handleJobsRoot routes the /jobs collection: POST submits a job, GET
// lists the job history.
func (s *Server) handleJobsRoot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobs(w, r)
	case http.MethodGet:
		s.handleJobList(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Sprintf("method %s not allowed; use GET or POST", r.Method))
	}
}

// jobListResponse is the GET /v1/jobs history document. NextCursor, when
// present, is the opaque token of the next page: pass it back as cursor=
// to continue the listing exactly where this page stopped. The position is
// by value (creation time + id), so it stays correct even when jobs ahead
// of it are TTL-evicted between pages.
type jobListResponse struct {
	Jobs       []jobs.Status `json:"jobs"`
	Count      int           `json:"count"`
	NextCursor string        `json:"next_cursor,omitempty"`
}

// cursorPrefix versions the opaque pagination token.
const cursorPrefix = "c1:"

// encodeCursor packs a listing position into the opaque page token.
func encodeCursor(st jobs.Status) string {
	raw := fmt.Sprintf("%s%d:%s", cursorPrefix, st.CreatedAt.UnixNano(), st.ID)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursor unpacks a page token back into a listing position.
func decodeCursor(token string) (created time.Time, id string, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return time.Time{}, "", errors.New("malformed cursor")
	}
	rest, ok := strings.CutPrefix(string(raw), cursorPrefix)
	if !ok {
		return time.Time{}, "", errors.New("malformed cursor")
	}
	nanos, id, ok := strings.Cut(rest, ":")
	if !ok || id == "" {
		return time.Time{}, "", errors.New("malformed cursor")
	}
	n, err := strconv.ParseInt(nanos, 10, 64)
	if err != nil {
		return time.Time{}, "", errors.New("malformed cursor")
	}
	return time.Unix(0, n), id, nil
}

// handleJobList serves the job history: every job the backend still
// remembers (with a journal configured the table survives restarts),
// newest-first. Query parameters: state=queued|running|done|failed keeps
// one lifecycle state, limit=N truncates the listing (default 100). Note
// that a remote-dispatch backend reports every non-terminal job as queued
// (it does not fan the listing out to worker nodes), so state=running is
// only meaningful on the in-process backend.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	lister, ok := s.jobs.(jobs.Lister)
	if !ok {
		writeError(w, http.StatusNotImplemented, "job listing is not supported by this backend")
		return
	}
	f := jobs.JobFilter{Limit: 100}
	if sv := r.URL.Query().Get("state"); sv != "" {
		switch st := jobs.State(sv); st {
		case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed:
			f.State = st
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown state %q; use queued, running, done or failed", sv))
			return
		}
	}
	if lv := r.URL.Query().Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("limit %q is not a positive integer", lv))
			return
		}
		f.Limit = n
	}
	if cv := r.URL.Query().Get("cursor"); cv != "" {
		created, id, err := decodeCursor(cv)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		f.AfterCreated, f.AfterID = created, id
	}
	// Ask for one job beyond the page: its presence is what proves a next
	// page exists, without a second listing call.
	limit := f.Limit
	f.Limit = limit + 1
	listed := lister.Jobs(f)
	if listed == nil {
		listed = []jobs.Status{}
	}
	resp := jobListResponse{}
	if len(listed) > limit {
		listed = listed[:limit]
		resp.NextCursor = encodeCursor(listed[limit-1])
	}
	resp.Jobs, resp.Count = listed, len(listed)
	writeJSON(w, http.StatusOK, resp)
}

// handleJobs accepts the same multipart clip upload as /v1/analyze but runs
// it asynchronously: the upload is encoded into a serializable job payload
// and submitted to the configured dispatcher (the in-process worker pool,
// or a remote fan-out over worker nodes); the reply is 202 Accepted with
// the job id and poll URLs. A cached identical clip is answered 200 with
// the stored AnalysisResponse — no job is enqueued. A saturated backend
// answers 503 with Retry-After — the client should back off and resubmit.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var payload jobs.Payload
	if s.testExec == nil {
		refReq, ok := requestFromHTTP(w, r)
		if !ok {
			return
		}
		req, err := s.materialize(refReq)
		if err != nil {
			writeResolveError(w, err)
			return
		}
		var p jobs.Payload
		if refReq.FramesRef != "" || refReq.SilhouettesRef != "" || refReq.PosesRef != "" {
			// By-reference submissions dispatch thin: the payload carries the
			// hashes, keyed and short-circuited via the resolved request.
			p, err = jobs.NewArtifactPayload(s.cfgFP, refReq, req)
		} else {
			p, err = jobs.NewAnalysisPayload(s.cfgFP, req)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if key, ok := p.Key(); ok {
			if cached := s.cachedResponse(key); cached != nil {
				writeJSON(w, http.StatusOK, cached)
				s.log.Debug("jobs cache hit", "key", key.String())
				return
			}
		}
		payload = p
	}
	s.submitPayload(w, r, payload)
}

// submitPayload pushes one payload into the dispatcher and answers the
// submit/backpressure protocol shared by the upload and worker routes. An
// inbound Traceparent header (a front end fanning out over worker nodes
// stamps one on the payload POST) makes this job's trace a child of the
// remote dispatch span, so the front end can graft the worker's span tree
// under its own.
func (s *Server) submitPayload(w http.ResponseWriter, r *http.Request, p jobs.Payload) {
	var id string
	var err error
	parent, fromRemote := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	if ts, ok := s.jobs.(jobs.TracedSubmitter); ok && fromRemote {
		id, err = ts.SubmitTraced(p, parent)
	} else {
		id, err = s.jobs.Submit(p)
	}
	switch {
	case jobs.Retryable(err):
		// Propagate the backend's retry hint (a remote dispatcher carries
		// the worker node's Retry-After through); default to 1s.
		w.Header().Set("Retry-After", strconv.Itoa(jobs.RetryAfterHint(err, 1)))
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.log.Info("job accepted", "job_id", id, "remote_trace", fromRemote)
	base := "/jobs/"
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		base = "/v1/jobs/"
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:        id,
		State:     string(jobs.StateQueued),
		StatusURL: base + id,
		ResultURL: base + id + "/result",
	})
}

// executeAnalysis is the server's jobs.Executor: it decodes one payload
// back into a staged request, runs the pipeline reporting stages as
// progress, stores the finished response in the result cache, and returns
// the same AnalysisResponse the synchronous path builds.
func (s *Server) executeAnalysis(ctx context.Context, p jobs.Payload, progress func(string)) (any, error) {
	req, err := p.AnalysisRequest()
	if err != nil {
		return nil, err
	}
	// Successor replication: while this job is in flight, artifact stores
	// (pulls during resolution below) write through to its replica target;
	// registration precedes resolution so mid-resolution pulls are covered.
	if s.replica != nil && p.ReplicaTarget != "" {
		s.replMu.Lock()
		s.replActive[p.ReplicaTarget]++
		s.replMu.Unlock()
		defer func() {
			s.replMu.Lock()
			if s.replActive[p.ReplicaTarget]--; s.replActive[p.ReplicaTarget] <= 0 {
				delete(s.replActive, p.ReplicaTarget)
			}
			s.replMu.Unlock()
		}()
	}
	if req.FramesRef != "" || req.SilhouettesRef != "" || req.PosesRef != "" {
		// The payload crossed the wire (worker intake without a stashed
		// resolution, or a journal replay) still naming artifacts by hash:
		// materialise them — pulling from the originating front end when the
		// local store misses — before keying and running.
		framesRef := req.FramesRef
		req, err = artifacts.ResolveRequest(s.resolver(p.ArtifactOrigin), req)
		if err != nil {
			return nil, err
		}
		req = s.injectMemo(framesRef, req)
	}
	// Referenced artifacts this node already held never re-Put (the OnStore
	// hook stays silent), so mirror them explicitly — the successor must be
	// able to materialise the same references after a failover.
	if s.replica != nil && p.ReplicaTarget != "" {
		for _, hash := range []string{p.FramesRef, p.SilhouettesRef, p.PosesRef} {
			if hash == "" {
				continue
			}
			if blob, _, ok := s.artifacts.Get(hash); ok {
				s.replica.ReplicateArtifact(p.ReplicaTarget, hash, blob)
			}
		}
	}
	// Always re-address the decoded request under this server's own config
	// fingerprint: the stamped CacheKey is a routing hint, and trusting it
	// for storage would let a mislabelled payload poison the result cache
	// (one SHA-256 pass is trivial next to the pipeline).
	key := requestKey(s.cfgFP, req)
	if s.replica != nil && p.ReplicaTarget != "" {
		// The cache OnStore hook replicates by key: register before Run so
		// the synchronous fill in s.store below finds its target.
		s.replMu.Lock()
		s.replTargets[key] = p.ReplicaTarget
		s.replMu.Unlock()
		defer func() {
			s.replMu.Lock()
			delete(s.replTargets, key)
			s.replMu.Unlock()
		}()
	}
	analyzer, err := core.New(s.cfg)
	if err != nil {
		return nil, err
	}
	result, err := analyzer.Run(ctx, req, func(st core.Stage) {
		progress(string(st))
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.analyzed++
	s.mu.Unlock()
	resp := buildResponse(result, len(req.Frames), req)
	s.store(key, resp)
	return resp, nil
}

// handleJobPath routes GET /v1/jobs/{id} (status) and /v1/jobs/{id}/result,
// and the unversioned aliases.
func (s *Server) handleJobPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1")
	rest = strings.TrimPrefix(rest, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeError(w, http.StatusNotFound, "missing job id")
		return
	}
	switch sub {
	case "":
		s.writeJobStatus(w, id)
	case "result":
		s.writeJobResult(w, id)
	case "events":
		s.handleJobEvents(w, r, id)
	case "trace":
		s.writeJobTrace(w, id)
	default:
		writeError(w, http.StatusNotFound, "not found")
	}
}

// writeJobTrace serves GET /v1/jobs/{id}/trace: the job's span tree, from
// submission to terminal publish. On a remote-dispatch backend the tree
// includes the fan-out spans with the worker node's own tree grafted under
// the winning submit attempt. Jobs that carry no trace — journal-replayed
// records from before the last restart — answer 404 like unknown ids.
func (s *Server) writeJobTrace(w http.ResponseWriter, id string) {
	tracer, ok := s.jobs.(jobs.Tracer)
	if !ok {
		writeError(w, http.StatusNotImplemented, "job tracing is not supported by this backend")
		return
	}
	doc, err := tracer.Trace(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case err != nil:
		writeError(w, http.StatusBadGateway, err.Error())
	default:
		writeJSON(w, http.StatusOK, doc)
	}
}

func (s *Server) writeJobStatus(w http.ResponseWriter, id string) {
	st, err := s.jobs.Status(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case err != nil:
		// A remote backend can fail in ways the in-process manager cannot
		// (e.g. a lost worker node); surface those instead of a zero doc.
		writeError(w, http.StatusBadGateway, err.Error())
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Server) writeJobResult(w http.ResponseWriter, id string) {
	val, err := s.jobs.Result(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrNotFinished):
		// Not done yet: echo the status so pollers can use one URL.
		st, serr := s.jobs.Status(id)
		if serr != nil {
			writeError(w, http.StatusNotFound, serr.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	case err != nil:
		// A failed job answers the shared error envelope carrying the
		// job's own error string plus the machine-readable terminal state,
		// so clients can distinguish "analysis failed" from transport
		// problems without parsing prose.
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error: fmt.Sprintf("analysis failed: %v", err),
			State: string(jobs.StateFailed),
		})
	default:
		writeJSON(w, http.StatusOK, val)
	}
}

// handleMetrics exposes queue, throughput and cache statistics for
// scrapers. The default document is JSON, byte-identical to earlier
// releases; format=prometheus selects the text exposition format instead
// (counters, gauges and the latency histograms — see metrics_prom.go).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
	case "prometheus":
		s.writePrometheus(w)
		return
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown format %q; use json or prometheus", f))
		return
	}
	s.mu.Lock()
	analyzed := s.analyzed
	s.mu.Unlock()
	doc := map[string]any{
		"clips_analyzed": analyzed,
		"jobs":           s.jobs.Metrics(),
		"artifacts":      s.artifacts.Metrics(),
		"clip_sessions":  s.clips.Metrics(),
		"ga":             pose.GAMetrics(),
	}
	if s.cache != nil {
		doc["cache"] = s.cache.Metrics()
	}
	if rm, ok := s.replicationSnapshot(); ok {
		doc["replication"] = rm
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleRules lists Table 1 and Table 2 so clients can render them.
func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	type ruleDoc struct {
		ID       string `json:"id"`
		Standard string `json:"standard"`
		Stage    string `json:"stage"`
		Formula  string `json:"formula"`
		Text     string `json:"text"`
	}
	std := map[string]string{}
	for _, s := range scoring.Standards() {
		std[s.ID] = s.Description
	}
	var docs []ruleDoc
	for _, rl := range scoring.Rules() {
		docs = append(docs, ruleDoc{
			ID: rl.ID, Standard: rl.Standard, Stage: rl.Stage.String(),
			Formula: rl.Formula, Text: std[rl.Standard],
		})
	}
	writeJSON(w, http.StatusOK, docs)
}

// handleHealth serves the deep-health document: the overall status plus
// one verdict per watchdog component (queue stall, fleet routability,
// drain progress, replication backlog, SLO burn). The HTTP status is 200
// even when degraded — a stalled process is alive, and the dispatch
// liveness prober must not mistake degraded for dead; the fleet JOIN
// probe, by contrast, reads the body and refuses degraded members.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := s.analyzed
	s.mu.Unlock()
	components := s.componentHealth()
	status := jobs.HealthOK
	for _, c := range components {
		if c.Status != jobs.HealthOK {
			status = jobs.HealthDegraded
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"clips_analyzed": n,
		"components":     components,
	})
}

// componentHealth merges every subsystem's watchdog verdict: the job
// backend's own components (queue stall for the Manager; fleet
// routability and drain progress for the remote dispatcher), the
// replication push backlog, and the short-window SLO burn rate.
func (s *Server) componentHealth() map[string]jobs.ComponentHealth {
	components := make(map[string]jobs.ComponentHealth)
	if hr, ok := s.jobs.(jobs.HealthReporter); ok {
		for k, v := range hr.ComponentHealth() {
			components[k] = v
		}
	}
	if s.replica != nil {
		comp := jobs.HealthOKComponent()
		if b, ok := s.replica.(interface{ Backlog() (int, int) }); ok {
			depth, capacity := b.Backlog()
			if capacity > 0 && depth*5 >= capacity*4 {
				comp = jobs.HealthDegradedComponent(
					"replication backlog %d/%d: pushes are about to drop", depth, capacity)
			}
		}
		components["replication"] = comp
	}
	slo := jobs.HealthOKComponent()
	if burn := s.slo.Burn(obs.SLOWindowShort); burn >= obs.SLOFastBurnAlert {
		slo = jobs.HealthDegradedComponent(
			"error budget burning at %.1fx over the last 5m (alert at %.0fx)",
			burn, obs.SLOFastBurnAlert)
	}
	components["slo"] = slo
	return components
}

// requestFromHTTP parses one analysis request off the HTTP request. Two
// content types are accepted: the multipart clip upload (frames inline),
// and an application/json document naming previously stored artifacts by
// content hash (see requestFromJSON). On any problem it writes the HTTP
// error itself and returns ok=false. Multipart requests always enter the
// pipeline at segmentation (the upload carries frames, not intermediate
// artifacts); stages may select a shorter prefix of it. By-reference JSON
// requests are exempt — a silhouettes or poses artifact is exactly the
// mid-pipeline entry the store exists to feed.
func requestFromHTTP(w http.ResponseWriter, r *http.Request) (core.Request, bool) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		return requestFromJSON(w, r)
	}
	frames, manual, ok := clipFromRequest(w, r)
	if !ok {
		return core.Request{}, false
	}
	req := core.Request{
		Frames:             frames,
		ManualFirst:        manual,
		IncludePoses:       r.FormValue("poses") == "1",
		IncludeSilhouettes: r.FormValue("silhouettes") == "1",
	}
	if sv := r.FormValue("stages"); sv != "" {
		sel, err := core.ParseStageSelection(sv)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return core.Request{}, false
		}
		if sel.Normalize().First != core.StageSegmentation {
			writeError(w, http.StatusBadRequest,
				"stage selection over HTTP must start at segmentation; mid-pipeline entry is a library feature")
			return core.Request{}, false
		}
		req.Stages = sel
	}
	return req, true
}

// clipFromRequest parses the multipart clip upload shared by the analyze
// and jobs routes: decoded frames plus the manual first-frame pose. On any
// problem it writes the HTTP error itself and returns ok=false. The form's
// temp files are removed before returning (frames are already decoded into
// memory); form *values* (e.g. "poses") stay readable via r.FormValue.
func clipFromRequest(w http.ResponseWriter, r *http.Request) ([]*imaging.Image, stickmodel.Pose, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxUploadBytes)
	if err := r.ParseMultipartForm(MaxUploadBytes); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parse upload: %v", err))
		return nil, stickmodel.Pose{}, false
	}
	defer func() {
		if r.MultipartForm != nil {
			_ = r.MultipartForm.RemoveAll()
		}
	}()

	frames, err := framesFromUpload(r.MultipartForm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, stickmodel.Pose{}, false
	}
	manual, err := manualFromUpload(r.MultipartForm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, stickmodel.Pose{}, false
	}
	return frames, manual, true
}

// framesFromUpload decodes the uploaded PPM frames ordered by file name.
func framesFromUpload(form *multipart.Form) ([]*imaging.Image, error) {
	files := form.File["frames"]
	if len(files) == 0 {
		return nil, errors.New("no 'frames' files in upload")
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Filename < files[j].Filename })
	frames := make([]*imaging.Image, 0, len(files))
	for _, fh := range files {
		f, err := fh.Open()
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", fh.Filename, err)
		}
		img, err := imaging.DecodePPM(f)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("decode %s: %w", fh.Filename, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		frames = append(frames, img)
	}
	return frames, nil
}

// manualFromUpload parses the truth file's first pose.
func manualFromUpload(form *multipart.Form) (stickmodel.Pose, error) {
	files := form.File["truth"]
	if len(files) == 0 {
		return stickmodel.Pose{}, errors.New("no 'truth' file in upload (manual first-frame stick figure required)")
	}
	f, err := files[0].Open()
	if err != nil {
		return stickmodel.Pose{}, err
	}
	defer f.Close()
	poses, err := clipio.ReadPoses(f)
	if err != nil {
		return stickmodel.Pose{}, fmt.Errorf("truth file: %w", err)
	}
	return poses[0], nil
}

// buildResponse converts a (possibly stage-limited) analysis result to the
// wire document. Full-pipeline documents are identical to the pre-/v1 API;
// stage-limited ones fill only what their stages computed and name them in
// the stages field.
func buildResponse(result *core.Result, nFrames int, req core.Request) *AnalysisResponse {
	resp := &AnalysisResponse{Frames: nFrames}
	sel := req.Stages.Normalize()
	if !sel.IsFull() {
		for _, st := range sel.Selected() {
			resp.Stages = append(resp.Stages, string(st))
		}
	}
	if result.Track != nil {
		resp.TakeoffFrame = result.Track.TakeoffFrame
		resp.LandingFrame = result.Track.LandingFrame
		resp.DistancePx = result.Track.JumpDistancePx
		resp.DistanceM = result.Track.JumpDistanceM
		for _, ph := range result.Track.Phases {
			resp.Phases = append(resp.Phases, ph.String())
		}
	}
	if result.Report != nil {
		resp.Passed = result.Report.Passed
		resp.Total = result.Report.Total
		resp.Score = fmt.Sprintf("%d/%d", result.Report.Passed, result.Report.Total)
		resp.Advice = append([]string(nil), result.Report.Advice...)
		for _, rr := range result.Report.Results {
			resp.Rules = append(resp.Rules, RuleOut{
				ID:       rr.Rule.ID,
				Standard: rr.Rule.Standard,
				Formula:  rr.Rule.Formula,
				Stage:    rr.Rule.Stage.String(),
				Value:    rr.Value,
				Passed:   rr.Passed,
				AtFrame:  rr.AtFrame,
			})
		}
	}
	if req.IncludePoses {
		for k, p := range result.Poses {
			resp.Poses = append(resp.Poses, PoseOut{Frame: k, X: p.X, Y: p.Y, Rho: p.Rho})
		}
	}
	if len(result.StageMS) > 0 {
		resp.StageMS = make(map[string]float64, len(result.StageMS))
		for k, v := range result.StageMS {
			resp.StageMS[k] = v
		}
	}
	if req.IncludeSilhouettes {
		for _, sil := range result.Silhouettes {
			resp.Silhouettes = append(resp.Silhouettes, SilhouetteOut{
				Frame: sil.Frame,
				W:     sil.Mask.W,
				H:     sil.Mask.H,
				Area:  sil.Area,
				BBox:  [4]int{sil.BBox.X0, sil.BBox.Y0, sil.BBox.X1, sil.BBox.Y1},
				Mask:  maskToB64(sil.Mask),
			})
		}
	}
	return resp
}

// maskToB64 bit-packs a mask row-major (MSB first within each byte) and
// base64-encodes it.
func maskToB64(m *imaging.Mask) string {
	packed := make([]byte, (len(m.Bits)+7)/8)
	for i, b := range m.Bits {
		if b {
			packed[i/8] |= 1 << (7 - i%8)
		}
	}
	return base64.StdEncoding.EncodeToString(packed)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// writeErrorCode writes the error envelope with a machine-readable code.
func writeErrorCode(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}
