// Package server implements the paper's stated future work (Section 6):
// "a web-based system on the Internet — the user will be able to upload a
// video sequence of a standing long jump ... the system will be able to
// respond with advices to the user."
//
// The service accepts a clip as a multipart upload of PPM frames (plus a
// truth.txt carrying the manual first-frame stick figure), runs the full
// analysis pipeline, and responds with a JSON report: per-rule outcomes,
// advice strings, jump phases and distance.
//
// Two execution paths are offered: the original synchronous POST /analyze
// (small clips; the caller waits), and the asynchronous job path — POST
// /jobs enqueues the clip into the bounded queue of internal/jobs, GET
// /jobs/{id} polls lifecycle state and pipeline stage, and GET
// /jobs/{id}/result returns the same AnalysisResponse the synchronous path
// would have produced. GET /metrics exposes queue depth, throughput
// counters and latency statistics.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// MaxUploadBytes bounds one upload (frames are small PPMs; 64 MiB is ample).
const MaxUploadBytes = 64 << 20

// AnalysisResponse is the JSON document returned for one analysed clip.
type AnalysisResponse struct {
	Frames       int       `json:"frames"`
	TakeoffFrame int       `json:"takeoff_frame"`
	LandingFrame int       `json:"landing_frame"`
	DistancePx   float64   `json:"distance_px"`
	DistanceM    float64   `json:"distance_m,omitempty"`
	Score        string    `json:"score"` // e.g. "7/7"
	Passed       int       `json:"passed"`
	Total        int       `json:"total"`
	Rules        []RuleOut `json:"rules"`
	Advice       []string  `json:"advice"`
	Poses        []PoseOut `json:"poses,omitempty"`
	Phases       []string  `json:"phases"`
}

// RuleOut is one scored rule in the response.
type RuleOut struct {
	ID       string  `json:"id"`
	Standard string  `json:"standard"`
	Formula  string  `json:"formula"`
	Stage    string  `json:"stage"`
	Value    float64 `json:"value_deg"`
	Passed   bool    `json:"passed"`
	AtFrame  int     `json:"at_frame"`
}

// PoseOut is one estimated stick model in the response.
type PoseOut struct {
	Frame int        `json:"frame"`
	X     float64    `json:"x"`
	Y     float64    `json:"y"`
	Rho   [8]float64 `json:"rho"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Options configure the asynchronous job path.
type Options struct {
	// Workers is the analysis worker pool size.
	Workers int
	// QueueSize bounds the number of jobs waiting beyond the running ones;
	// a full queue answers 503 with Retry-After.
	QueueSize int
	// ResultTTL evicts finished job results this long after completion.
	ResultTTL time.Duration
}

// DefaultOptions returns a small-deployment default (jobs.DefaultConfig).
func DefaultOptions() Options {
	d := jobs.DefaultConfig()
	return Options{Workers: d.Workers, QueueSize: d.QueueSize, ResultTTL: d.ResultTTL}
}

// Server is the HTTP front end over the analyzer.
type Server struct {
	cfg    core.Config
	logger *log.Logger
	jobs   *jobs.Manager

	mu       sync.Mutex
	analyzed int // clips analysed since start, served by /healthz

	// testTask, when set, replaces the analysis task built for POST /jobs —
	// a white-box seam for deterministic queue tests.
	testTask jobs.Task
}

// New builds a server with DefaultOptions; logger may be nil for silent
// operation.
func New(cfg core.Config, logger *log.Logger) (*Server, error) {
	return NewWithOptions(cfg, logger, DefaultOptions())
}

// NewWithOptions builds a server with an explicitly configured job manager.
func NewWithOptions(cfg core.Config, logger *log.Logger, opts Options) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	mgr, err := jobs.New(jobs.Config{
		Workers:   opts.Workers,
		QueueSize: opts.QueueSize,
		ResultTTL: opts.ResultTTL,
	})
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, logger: logger, jobs: mgr}, nil
}

// Close shuts the job manager down; see jobs.Manager.Close for the drain
// and hard-cancel semantics.
func (s *Server) Close(ctx context.Context) error {
	return s.jobs.Close(ctx)
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobPath)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/rules", s.handleRules)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// indexHTML is the minimal upload form served at /, so the paper's
// envisioned workflow — a user uploads a clip and reads the advice — works
// from a plain browser.
const indexHTML = `<!doctype html>
<title>Standing Long Jump Motion Analysis</title>
<h1>Standing Long Jump Motion Analysis</h1>
<p>Upload the frames of a side-view jump clip (PPM, named frame_NN.ppm)
and a truth.txt whose first line is the manually drawn first-frame stick
model: <code>0 x0 y0 rho0..rho7</code>.</p>
<form action="/analyze" method="post" enctype="multipart/form-data">
  <p>Frames: <input type="file" name="frames" multiple required></p>
  <p>First-frame stick model: <input type="file" name="truth" required></p>
  <p><label><input type="checkbox" name="poses" value="1"> include per-frame poses</label></p>
  <p><button type="submit">Analyze</button></p>
</form>
<p>Long clips can be analysed asynchronously: POST the same form to
<code>/jobs</code>, then poll <code>/jobs/&lt;id&gt;</code> and fetch
<code>/jobs/&lt;id&gt;/result</code>.</p>
<p>See <a href="/rules">/rules</a> for the scoring rules (Tables 1-2 of the
paper), <a href="/metrics">/metrics</a> for queue statistics and
<a href="/healthz">/healthz</a> for service status.</p>
`

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, "not found")
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, indexHTML)
}

// handleAnalyze accepts a multipart POST with fields:
//
//	frames — one or more PPM files named frame_NN.ppm (order by name);
//	truth  — a truth.txt whose first line is the manual first-frame pose;
//	poses  — optional flag ("1") to include estimated poses in the reply.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	frames, manual, ok := clipFromRequest(w, r)
	if !ok {
		return
	}

	analyzer, err := core.New(s.cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	result, err := analyzer.Analyze(frames, manual)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("analysis failed: %v", err))
		return
	}

	s.mu.Lock()
	s.analyzed++
	s.mu.Unlock()

	resp := buildResponse(result, len(frames), r.FormValue("poses") == "1")
	writeJSON(w, http.StatusOK, resp)
	s.logger.Printf("analyzed %d-frame clip: score %s", len(frames), resp.Score)
}

// submitResponse acknowledges an accepted asynchronous job.
type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
}

// handleJobs accepts the same multipart clip upload as /analyze but runs it
// asynchronously: the reply is 202 Accepted with the job id and poll URLs.
// A full queue answers 503 with Retry-After — the client should back off
// and resubmit.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a multipart clip upload")
		return
	}
	task := s.testTask
	if task == nil {
		frames, manual, ok := clipFromRequest(w, r)
		if !ok {
			return
		}
		task = s.analysisTask(frames, manual, r.FormValue("poses") == "1")
	}

	id, err := s.jobs.Submit(task)
	switch {
	case jobs.Retryable(err):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.logger.Printf("job %s queued", id)
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:        id,
		State:     string(jobs.StateQueued),
		StatusURL: "/jobs/" + id,
		ResultURL: "/jobs/" + id + "/result",
	})
}

// analysisTask wraps one clip analysis as an asynchronous job: it reports
// pipeline stages as progress and returns the same AnalysisResponse the
// synchronous /analyze handler builds.
func (s *Server) analysisTask(frames []*imaging.Image, manual stickmodel.Pose, includePoses bool) jobs.Task {
	return func(ctx context.Context, progress func(string)) (any, error) {
		analyzer, err := core.New(s.cfg)
		if err != nil {
			return nil, err
		}
		result, err := analyzer.AnalyzeContext(ctx, frames, manual, func(st core.Stage) {
			progress(string(st))
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.analyzed++
		s.mu.Unlock()
		return buildResponse(result, len(frames), includePoses), nil
	}
}

// handleJobPath routes GET /jobs/{id} (status) and GET /jobs/{id}/result.
func (s *Server) handleJobPath(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeError(w, http.StatusNotFound, "missing job id")
		return
	}
	switch sub {
	case "":
		s.writeJobStatus(w, id)
	case "result":
		s.writeJobResult(w, id)
	default:
		writeError(w, http.StatusNotFound, "not found")
	}
}

func (s *Server) writeJobStatus(w http.ResponseWriter, id string) {
	st, err := s.jobs.Status(id)
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) writeJobResult(w http.ResponseWriter, id string) {
	val, err := s.jobs.Result(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrNotFinished):
		// Not done yet: echo the status so pollers can use one URL.
		st, serr := s.jobs.Status(id)
		if serr != nil {
			writeError(w, http.StatusNotFound, serr.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("analysis failed: %v", err))
	default:
		writeJSON(w, http.StatusOK, val)
	}
}

// handleMetrics exposes queue and throughput statistics for scrapers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	analyzed := s.analyzed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"clips_analyzed": analyzed,
		"jobs":           s.jobs.Metrics(),
	})
}

// handleRules lists Table 1 and Table 2 so clients can render them.
func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type ruleDoc struct {
		ID       string `json:"id"`
		Standard string `json:"standard"`
		Stage    string `json:"stage"`
		Formula  string `json:"formula"`
		Text     string `json:"text"`
	}
	std := map[string]string{}
	for _, s := range scoring.Standards() {
		std[s.ID] = s.Description
	}
	var docs []ruleDoc
	for _, rl := range scoring.Rules() {
		docs = append(docs, ruleDoc{
			ID: rl.ID, Standard: rl.Standard, Stage: rl.Stage.String(),
			Formula: rl.Formula, Text: std[rl.Standard],
		})
	}
	writeJSON(w, http.StatusOK, docs)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := s.analyzed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "clips_analyzed": n})
}

// clipFromRequest parses the multipart clip upload shared by /analyze and
// /jobs: decoded frames plus the manual first-frame pose. On any problem it
// writes the HTTP error itself and returns ok=false. The form's temp files
// are removed before returning (frames are already decoded into memory);
// form *values* (e.g. "poses") stay readable via r.FormValue.
func clipFromRequest(w http.ResponseWriter, r *http.Request) ([]*imaging.Image, stickmodel.Pose, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a multipart clip upload")
		return nil, stickmodel.Pose{}, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxUploadBytes)
	if err := r.ParseMultipartForm(MaxUploadBytes); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parse upload: %v", err))
		return nil, stickmodel.Pose{}, false
	}
	defer func() {
		if r.MultipartForm != nil {
			_ = r.MultipartForm.RemoveAll()
		}
	}()

	frames, err := framesFromUpload(r.MultipartForm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, stickmodel.Pose{}, false
	}
	manual, err := manualFromUpload(r.MultipartForm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, stickmodel.Pose{}, false
	}
	return frames, manual, true
}

// framesFromUpload decodes the uploaded PPM frames ordered by file name.
func framesFromUpload(form *multipart.Form) ([]*imaging.Image, error) {
	files := form.File["frames"]
	if len(files) == 0 {
		return nil, errors.New("no 'frames' files in upload")
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Filename < files[j].Filename })
	frames := make([]*imaging.Image, 0, len(files))
	for _, fh := range files {
		f, err := fh.Open()
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", fh.Filename, err)
		}
		img, err := imaging.DecodePPM(f)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("decode %s: %w", fh.Filename, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		frames = append(frames, img)
	}
	return frames, nil
}

// manualFromUpload parses the truth file's first pose.
func manualFromUpload(form *multipart.Form) (stickmodel.Pose, error) {
	files := form.File["truth"]
	if len(files) == 0 {
		return stickmodel.Pose{}, errors.New("no 'truth' file in upload (manual first-frame stick figure required)")
	}
	f, err := files[0].Open()
	if err != nil {
		return stickmodel.Pose{}, err
	}
	defer f.Close()
	poses, err := clipio.ReadPoses(f)
	if err != nil {
		return stickmodel.Pose{}, fmt.Errorf("truth file: %w", err)
	}
	return poses[0], nil
}

// buildResponse converts an analysis result to the wire document.
func buildResponse(result *core.Result, nFrames int, includePoses bool) *AnalysisResponse {
	resp := &AnalysisResponse{
		Frames:       nFrames,
		TakeoffFrame: result.Track.TakeoffFrame,
		LandingFrame: result.Track.LandingFrame,
		DistancePx:   result.Track.JumpDistancePx,
		DistanceM:    result.Track.JumpDistanceM,
		Passed:       result.Report.Passed,
		Total:        result.Report.Total,
		Score:        fmt.Sprintf("%d/%d", result.Report.Passed, result.Report.Total),
		Advice:       append([]string(nil), result.Report.Advice...),
	}
	for _, rr := range result.Report.Results {
		resp.Rules = append(resp.Rules, RuleOut{
			ID:       rr.Rule.ID,
			Standard: rr.Rule.Standard,
			Formula:  rr.Rule.Formula,
			Stage:    rr.Rule.Stage.String(),
			Value:    rr.Value,
			Passed:   rr.Passed,
			AtFrame:  rr.AtFrame,
		})
	}
	for _, ph := range result.Track.Phases {
		resp.Phases = append(resp.Phases, ph.String())
	}
	if includePoses {
		for k, p := range result.Poses {
			resp.Poses = append(resp.Poses, PoseOut{Frame: k, X: p.X, Y: p.Y, Rho: p.Rho})
		}
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
