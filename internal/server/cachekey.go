package server

import (
	"fmt"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/core"
)

// configFingerprint renders the analyzer configuration deterministically.
// The config tree is plain data (ints, floats, bools, fixed arrays), so the
// formatted form is stable and any config change — a different threshold, a
// different GA budget — changes the fingerprint and therefore every cache
// key derived from it.
func configFingerprint(cfg core.Config) string {
	return fmt.Sprintf("%+v", cfg)
}

// requestKey computes the content address of one analysis request: the
// SHA-256 over the config fingerprint, the stage selection, the
// response-shaping options, the manual first-frame pose and the raw bytes
// of every frame. Identical clips under identical configuration hash to
// the same key; any difference — one pixel, one config field, a different
// stage range, a different response shape — yields a different key.
func requestKey(cfgFP string, req core.Request) cache.Key {
	k := cache.NewKeyer()
	k.WriteString("slj-analysis-response/v1")
	k.WriteString(cfgFP)
	k.WriteString(req.Stages.Normalize().String())
	k.WriteBool(req.IncludePoses)
	k.WriteBool(req.IncludeSilhouettes)
	k.WriteFloat(req.ManualFirst.X)
	k.WriteFloat(req.ManualFirst.Y)
	for _, rho := range req.ManualFirst.Rho {
		k.WriteFloat(rho)
	}
	k.WriteInt(len(req.Frames))
	buf := make([]byte, 0, 1<<16)
	for _, f := range req.Frames {
		k.WriteInt(f.W)
		k.WriteInt(f.H)
		buf = buf[:0]
		for _, px := range f.Pix {
			buf = append(buf, px.R, px.G, px.B)
		}
		k.WriteBytes(buf)
	}
	return k.Sum()
}
