package server

import (
	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/jobs"
)

// configFingerprint renders the analyzer configuration deterministically.
// The canonical implementation lives in internal/jobs so payloads, the
// remote dispatcher and the server all fingerprint configs identically.
func configFingerprint(cfg core.Config) string {
	return jobs.ConfigFingerprint(cfg)
}

// requestKey computes the content address of one analysis request. It is
// jobs.RequestKey: the same key addresses the result cache here, places the
// payload on the remote dispatcher's hash ring, and is recomputed by worker
// nodes — one identity end to end.
func requestKey(cfgFP string, req core.Request) cache.Key {
	return jobs.RequestKey(cfgFP, req)
}
