package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// fastServer builds a server with a trimmed GA budget.
func fastServer(t *testing.T) *Server {
	t.Helper()
	return fastServerWithOptions(t, DefaultOptions())
}

// fastServerWithOptions is fastServer with an explicit job configuration.
func fastServerWithOptions(t *testing.T, opts Options) *Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Pose.Population = 40
	cfg.Pose.Generations = 40
	cfg.Pose.Patience = 10
	cfg.Pose.RefineRounds = 1
	s, err := NewWithOptions(cfg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s
}

// clipUpload builds the canonical multipart body for the synthetic clip.
func clipUpload(t *testing.T, v *synth.Video, includePoses bool) (*bytes.Buffer, string) {
	t.Helper()
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for k, f := range v.Frames {
		fw, err := mw.CreateFormFile("frames", clipio.FrameName(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, f); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("truth", "truth.txt")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(fw, "0 %.2f %.2f", manual.X, manual.Y)
	for l := 0; l < 8; l++ {
		fmt.Fprintf(fw, " %.2f", manual.Rho[l])
	}
	fmt.Fprintln(fw)
	if includePoses {
		if err := mw.WriteField("poses", "1"); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return &body, mw.FormDataContentType()
}

func TestIndexPage(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "/analyze") {
		t.Error("index page missing upload form")
	}

	// Unknown paths 404.
	nf, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d", nf.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" {
		t.Errorf("health doc: %v", doc)
	}
}

func TestRulesEndpoint(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/rules")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var docs []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 7 {
		t.Fatalf("got %d rules, want 7", len(docs))
	}
	if docs[0]["id"] != "R1" {
		t.Errorf("first rule: %v", docs[0])
	}
}

func TestRulesMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/rules", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestAnalyzeRejectsGet(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestAnalyzeRejectsMissingParts(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()

	// Multipart body with no files at all.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.WriteField("poses", "1"); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	resp, err := http.Post(srv.URL+"/analyze", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "frames") {
		t.Errorf("error should mention frames: %s", raw)
	}
}

func TestAnalyzeFullClip(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for k, f := range v.Frames {
		fw, err := mw.CreateFormFile("frames", clipio.FrameName(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, f); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("truth", "truth.txt")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(fw, "0 %.2f %.2f", manual.X, manual.Y)
	for l := 0; l < 8; l++ {
		fmt.Fprintf(fw, " %.2f", manual.Rho[l])
	}
	fmt.Fprintln(fw)
	if err := mw.WriteField("poses", "1"); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/analyze", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var doc AnalysisResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Frames != len(v.Frames) || doc.Total != 7 {
		t.Errorf("doc frames/total = %d/%d", doc.Frames, doc.Total)
	}
	if doc.Passed < 6 {
		t.Errorf("good-form clip scored %s over HTTP", doc.Score)
	}
	if len(doc.Poses) != len(v.Frames) {
		t.Errorf("poses missing: %d", len(doc.Poses))
	}
	if len(doc.Phases) != len(v.Frames) {
		t.Errorf("phases missing: %d", len(doc.Phases))
	}

	// Health counter advanced.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["clips_analyzed"].(float64) != 1 {
		t.Errorf("clips_analyzed = %v", h["clips_analyzed"])
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Pose.Population = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("expected error")
	}
}

// TestJobsCollectionMethods: GET on the /jobs collection is the history
// listing (it used to be 405 before the endpoint existed); anything that
// is neither GET nor POST stays 405 naming both.
func TestJobsCollectionMethods(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /jobs (history listing) status %d, want 200", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /jobs status %d, want 405", dresp.StatusCode)
	}
	if got := dresp.Header.Get("Allow"); got != "GET, POST" {
		t.Errorf("Allow = %q, want GET, POST", got)
	}
}

func TestJobStatusNotFound(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	for _, path := range []string{"/jobs/deadbeef", "/jobs/deadbeef/result", "/jobs/deadbeef/nope"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		ClipsAnalyzed int          `json:"clips_analyzed"`
		Jobs          jobs.Metrics `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Jobs.Workers != DefaultOptions().Workers {
		t.Errorf("workers = %d", doc.Jobs.Workers)
	}
	if doc.Jobs.QueueCapacity != DefaultOptions().QueueSize {
		t.Errorf("queue capacity = %d", doc.Jobs.QueueCapacity)
	}
}

// TestJobsBackpressureHTTP drives the submission queue past capacity: with
// one worker and one queue slot, the third outstanding job must be answered
// 503 + Retry-After, not block or hang.
func TestJobsBackpressureHTTP(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 1, ResultTTL: time.Minute})
	release := make(chan struct{})
	s.testExec = jobs.ExecutorFunc(func(ctx context.Context, p jobs.Payload, progress func(string)) (any, error) {
		progress("pose")
		select {
		case <-release:
			return &AnalysisResponse{Frames: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer close(release)

	submit := func() (*submitResponse, int) {
		resp, err := http.Post(srv.URL+"/jobs", "text/plain", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc submitResponse
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Fatal(err)
			}
		}
		return &doc, resp.StatusCode
	}

	first, code := submit()
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	// Wait until the worker has picked the first job up, so the queue state
	// is deterministic.
	waitState(t, srv.URL, first.ID, string(jobs.StateRunning))

	// While running, the result URL answers 202 with the status document.
	rresp, err := http.Get(srv.URL + first.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusAccepted {
		t.Errorf("running result status %d, want 202", rresp.StatusCode)
	}

	if _, code := submit(); code != http.StatusAccepted {
		t.Fatalf("second submit should queue: %d", code)
	}
	resp, err := http.Post(srv.URL+"/jobs", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third submit: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "retry") {
		t.Errorf("backpressure error should hint at retrying: %s", raw)
	}
}

// waitState polls a job's status URL until it reaches the wanted state.
func waitState(t *testing.T, base, id, want string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if string(st.State) == want || st.State.Terminal() {
			if string(st.State) != want {
				t.Fatalf("job %s reached %s, want %s (err=%q)", id, st.State, want, st.Err)
			}
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Status{}
}

// TestJobRoundTripMatchesSync is the acceptance test of the async path: a
// clip submitted via POST /jobs, polled to completion, must return the
// byte-identical AnalysisResponse the synchronous /analyze path produces.
func TestJobRoundTripMatchesSync(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline twice over HTTP")
	}
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	s := fastServerWithOptions(t, Options{Workers: 2, QueueSize: 4, ResultTTL: time.Minute})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Synchronous reference.
	body, ctype := clipUpload(t, v, true)
	sresp, err := http.Post(srv.URL+"/analyze", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	syncRaw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d: %s", sresp.StatusCode, syncRaw)
	}

	// Async path.
	body, ctype = clipUpload(t, v, true)
	jresp, err := http.Post(srv.URL+"/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(jresp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", jresp.StatusCode)
	}
	if sub.ID == "" || sub.StatusURL == "" || sub.ResultURL == "" {
		t.Fatalf("submit doc incomplete: %+v", sub)
	}

	waitState(t, srv.URL, sub.ID, string(jobs.StateDone))

	rresp, err := http.Get(srv.URL + sub.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	asyncRaw, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", rresp.StatusCode, asyncRaw)
	}
	// The two executions agree on everything but the wall-clock stage_ms.
	if !bytes.Equal(e2etest.StripVolatile(t, syncRaw), e2etest.StripVolatile(t, asyncRaw)) {
		t.Errorf("async result differs from synchronous response:\nsync:  %s\nasync: %s",
			syncRaw, asyncRaw)
	}

	// Metrics reflect the served job.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var doc struct {
		ClipsAnalyzed int          `json:"clips_analyzed"`
		Jobs          jobs.Metrics `json:"jobs"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Jobs.Completed != 1 || doc.Jobs.Submitted != 1 {
		t.Errorf("job metrics: %+v", doc.Jobs)
	}
	if doc.ClipsAnalyzed != 2 {
		t.Errorf("clips_analyzed = %d, want 2 (sync + async)", doc.ClipsAnalyzed)
	}
	if doc.Jobs.Run.Count != 1 || doc.Jobs.Run.MeanMS <= 0 {
		t.Errorf("run latency not recorded: %+v", doc.Jobs.Run)
	}
}

// TestJobFailurePropagates submits a clip the pipeline cannot analyse and
// expects a failed job whose result URL reports the error.
func TestJobFailurePropagates(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 2, ResultTTL: time.Minute})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A tiny all-black clip: background subtraction yields an empty
	// silhouette, so calibration fails deterministically and quickly.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	img := imaging.NewImage(8, 8)
	for k := 0; k < 2; k++ {
		fw, err := mw.CreateFormFile("frames", clipio.FrameName(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, img); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("truth", "truth.txt")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(fw, "0 4 4 0 0 180 180 0 180 180 90")
	mw.Close()

	resp, err := http.Post(srv.URL+"/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	waitState(t, srv.URL, sub.ID, string(jobs.StateFailed))
	rresp, err := http.Get(srv.URL + sub.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("failed result status %d, want 422", rresp.StatusCode)
	}
	raw, _ := io.ReadAll(rresp.Body)
	if !strings.Contains(string(raw), "analysis failed") {
		t.Errorf("failure body: %s", raw)
	}
}
