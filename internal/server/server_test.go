package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// fastServer builds a server with a trimmed GA budget.
func fastServer(t *testing.T) *Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Pose.Population = 40
	cfg.Pose.Generations = 40
	cfg.Pose.Patience = 10
	cfg.Pose.RefineRounds = 1
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIndexPage(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "/analyze") {
		t.Error("index page missing upload form")
	}

	// Unknown paths 404.
	nf, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d", nf.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" {
		t.Errorf("health doc: %v", doc)
	}
}

func TestRulesEndpoint(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/rules")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var docs []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 7 {
		t.Fatalf("got %d rules, want 7", len(docs))
	}
	if docs[0]["id"] != "R1" {
		t.Errorf("first rule: %v", docs[0])
	}
}

func TestRulesMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/rules", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestAnalyzeRejectsGet(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestAnalyzeRejectsMissingParts(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()

	// Multipart body with no files at all.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.WriteField("poses", "1"); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	resp, err := http.Post(srv.URL+"/analyze", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "frames") {
		t.Errorf("error should mention frames: %s", raw)
	}
}

func TestAnalyzeFullClip(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline over HTTP")
	}
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for k, f := range v.Frames {
		fw, err := mw.CreateFormFile("frames", clipio.FrameName(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, f); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("truth", "truth.txt")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(fw, "0 %.2f %.2f", manual.X, manual.Y)
	for l := 0; l < 8; l++ {
		fmt.Fprintf(fw, " %.2f", manual.Rho[l])
	}
	fmt.Fprintln(fw)
	if err := mw.WriteField("poses", "1"); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/analyze", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var doc AnalysisResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Frames != len(v.Frames) || doc.Total != 7 {
		t.Errorf("doc frames/total = %d/%d", doc.Frames, doc.Total)
	}
	if doc.Passed < 6 {
		t.Errorf("good-form clip scored %s over HTTP", doc.Score)
	}
	if len(doc.Poses) != len(v.Frames) {
		t.Errorf("poses missing: %d", len(doc.Poses))
	}
	if len(doc.Phases) != len(v.Frames) {
		t.Errorf("phases missing: %d", len(doc.Phases))
	}

	// Health counter advanced.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["clips_analyzed"].(float64) != 1 {
		t.Errorf("clips_analyzed = %v", h["clips_analyzed"])
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Pose.Population = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("expected error")
	}
}
