package server

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/clipio"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// workerServer builds a fast server with the worker intake mounted.
func workerServer(t *testing.T) *Server {
	t.Helper()
	opts := DefaultOptions()
	opts.Worker = true
	return fastServerWithOptions(t, opts)
}

// segmentationPayload encodes a segmentation-only request for the synthetic
// clip under the server's own config fingerprint.
func segmentationPayload(t *testing.T, s *Server, v *synth.Video) jobs.Payload {
	t.Helper()
	req := core.Request{
		Frames:             v.Frames,
		ManualFirst:        v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
		Stages:             core.OnlyStage(core.StageSegmentation),
		IncludeSilhouettes: true,
	}
	p, err := jobs.NewAnalysisPayload(s.cfgFP, req)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWorkerIntakeRoundTrip drives the worker protocol directly: a payload
// posted to /v1/worker/jobs runs through the standard lifecycle and yields
// the same response document the multipart /v1/analyze path builds; the
// identical resubmission is answered from the node's cache.
func TestWorkerIntakeRoundTrip(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	s := workerServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Reference: the multipart synchronous path. The truth file is written
	// with full float precision so the parsed manual pose — and therefore
	// the cache key — matches the payload's exactly.
	body, ctype := exactClipUpload(t, v)
	sresp, err := http.Post(srv.URL+"/v1/analyze", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	refRaw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("reference status %d: %s", sresp.StatusCode, refRaw)
	}

	// The same request as a serialized payload. The reference run already
	// cached the response, so the worker answers 200 from its cache.
	p := segmentationPayload(t, s, v)
	raw, _ := json.Marshal(p)
	wresp, err := http.Post(srv.URL+"/v1/worker/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hitRaw, _ := io.ReadAll(wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("cached intake status %d: %s", wresp.StatusCode, hitRaw)
	}
	if wresp.Header.Get(CacheHeader) != "hit" {
		t.Errorf("cache hit must set %s", CacheHeader)
	}
	if !bytes.Equal(hitRaw, refRaw) {
		t.Errorf("cached worker response differs from /v1/analyze:\n%s\nvs\n%s", hitRaw, refRaw)
	}

	// A fresh server (cold cache) enqueues the payload as a normal job.
	s2 := workerServer(t)
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	w2, err := http.Post(srv2.URL+"/v1/worker/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(w2.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	w2.Body.Close()
	if w2.StatusCode != http.StatusAccepted {
		t.Fatalf("cold intake status %d", w2.StatusCode)
	}
	waitState(t, srv2.URL, sub.ID, string(jobs.StateDone))
	rresp, err := http.Get(srv2.URL + sub.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	jobRaw, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", rresp.StatusCode, jobRaw)
	}
	// Fresh execution on a cold node: identical up to the wall-clock
	// stage_ms timings.
	if !bytes.Equal(e2etest.StripVolatile(t, jobRaw), e2etest.StripVolatile(t, refRaw)) {
		t.Errorf("worker job result differs from /v1/analyze:\n%s\nvs\n%s", jobRaw, refRaw)
	}
}

// exactClipUpload is clipUploadStaged (stages=segmentation, silhouettes=1)
// with the manual pose written at full float precision, so the server-side
// parse reconstructs the exact ManualAnnotation floats.
func exactClipUpload(t *testing.T, v *synth.Video) (*bytes.Buffer, string) {
	t.Helper()
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for k, f := range v.Frames {
		fw, err := mw.CreateFormFile("frames", clipio.FrameName(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, f); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("truth", "truth.txt")
	if err != nil {
		t.Fatal(err)
	}
	g := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	io.WriteString(fw, "0 "+g(manual.X)+" "+g(manual.Y))
	for l := 0; l < 8; l++ {
		io.WriteString(fw, " "+g(manual.Rho[l]))
	}
	io.WriteString(fw, "\n")
	for _, field := range [][2]string{{"stages", "segmentation"}, {"silhouettes", "1"}} {
		if err := mw.WriteField(field[0], field[1]); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return &body, mw.FormDataContentType()
}

// TestWorkerIntakeIgnoresStampedKey pins the poisoning defence: the
// payload's CacheKey is a routing hint, and the worker stores results only
// under the key it recomputes from the decoded request — a forged stamp
// must never plant one request's result under another's address.
func TestWorkerIntakeIgnoresStampedKey(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	s := workerServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Victim request B: same clip, different response shape → its own key.
	reqB := core.Request{
		Frames:       v.Frames,
		ManualFirst:  v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
		Stages:       core.OnlyStage(core.StageSegmentation),
		IncludePoses: true,
	}
	keyB := jobs.RequestKey(s.cfgFP, reqB).String()

	// Attacker payload: request A's content stamped with B's key.
	forged := segmentationPayload(t, s, v)
	honestKey := forged.CacheKey
	forged.CacheKey = keyB
	raw, _ := json.Marshal(forged)
	resp, err := http.Post(srv.URL+"/v1/worker/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forged submit status %d", resp.StatusCode)
	}
	waitState(t, srv.URL, sub.ID, string(jobs.StateDone))

	// B's honest submission must MISS — the forged run must not have been
	// stored under B's key.
	pB, err := jobs.NewAnalysisPayload(s.cfgFP, reqB)
	if err != nil {
		t.Fatal(err)
	}
	rawB, _ := json.Marshal(pB)
	respB, err := http.Post(srv.URL+"/v1/worker/jobs", "application/json", bytes.NewReader(rawB))
	if err != nil {
		t.Fatal(err)
	}
	respB.Body.Close()
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("victim request was answered from a poisoned cache: status %d", respB.StatusCode)
	}

	// And the forged run was stored under its *recomputed* (honest) key: an
	// honest resubmission of A hits.
	honest := segmentationPayload(t, s, v)
	if honest.CacheKey != honestKey {
		t.Fatalf("test setup: honest key drifted")
	}
	rawA, _ := json.Marshal(honest)
	respA, err := http.Post(srv.URL+"/v1/worker/jobs", "application/json", bytes.NewReader(rawA))
	if err != nil {
		t.Fatal(err)
	}
	respA.Body.Close()
	if respA.StatusCode != http.StatusOK {
		t.Errorf("honest resubmission should hit the recomputed key: status %d", respA.StatusCode)
	}
}

func TestWorkerIntakeRejectsGarbage(t *testing.T) {
	s := workerServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Not JSON at all.
	resp, err := http.Post(srv.URL+"/v1/worker/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage payload status %d, want 400", resp.StatusCode)
	}

	// Wrong kind.
	raw, _ := json.Marshal(jobs.Payload{Kind: "bogus/v9"})
	resp, err = http.Post(srv.URL+"/v1/worker/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus kind status %d, want 400", resp.StatusCode)
	}

	// A structurally valid payload whose request is unrunnable (no frames).
	raw, _ = json.Marshal(jobs.Payload{Kind: jobs.KindAnalysis})
	resp, err = http.Post(srv.URL+"/v1/worker/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("frameless payload status %d, want 400", resp.StatusCode)
	}
}

func TestWorkerIntakeDisabledByDefault(t *testing.T) {
	srv := httptest.NewServer(fastServer(t).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/worker/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("non-worker server must not expose the intake: status %d", resp.StatusCode)
	}
}

// TestFailedJobResultEnvelope pins the failed-job contract of
// GET /v1/jobs/{id}/result and its legacy alias: 422, the shared JSON
// error envelope carrying the job's error string, and the machine-readable
// state field set to "failed".
func TestFailedJobResultEnvelope(t *testing.T) {
	s := fastServerWithOptions(t, Options{Workers: 1, QueueSize: 2, ResultTTL: time.Minute})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A tiny all-black clip fails calibration deterministically and fast.
	var body bytes.Buffer
	mw, img := multipart.NewWriter(&body), imaging.NewImage(8, 8)
	for k := 0; k < 2; k++ {
		fw, err := mw.CreateFormFile("frames", clipio.FrameName(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := imaging.EncodePPM(fw, img); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("truth", "truth.txt")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(fw, "0 4 4 0 0 180 180 0 180 180 90\n")
	mw.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	st := waitState(t, srv.URL, sub.ID, string(jobs.StateFailed))
	if st.Err == "" {
		t.Fatal("failed status must carry the job error")
	}

	for _, path := range []string{"/v1/jobs/" + sub.ID + "/result", "/jobs/" + sub.ID + "/result"} {
		rresp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(rresp.Body)
		rresp.Body.Close()
		if rresp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422", path, rresp.StatusCode)
		}
		var env errorResponse
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("%s: body is not the error envelope: %s", path, raw)
		}
		if env.State != string(jobs.StateFailed) {
			t.Errorf("%s: state = %q, want %q", path, env.State, jobs.StateFailed)
		}
		if !strings.Contains(env.Error, st.Err) {
			t.Errorf("%s: envelope %q must carry the job error %q", path, env.Error, st.Err)
		}
	}
}
