package scoring

import (
	"strings"
	"testing"

	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
	"github.com/sljmotion/sljmotion/internal/track"
)

func TestStandardsTableVerbatim(t *testing.T) {
	std := Standards()
	if len(std) != 7 {
		t.Fatalf("Table 1 has 7 standards, got %d", len(std))
	}
	wantStage := map[string]Stage{
		"E1": StageInitiation, "E2": StageInitiation, "E3": StageInitiation,
		"E4": StageInitiation, "E5": StageAirLanding, "E6": StageAirLanding,
		"E7": StageAirLanding,
	}
	for _, s := range std {
		if wantStage[s.ID] != s.Stage {
			t.Errorf("%s stage = %v", s.ID, s.Stage)
		}
		if s.Description == "" {
			t.Errorf("%s missing description", s.ID)
		}
	}
}

func TestRulesTableVerbatim(t *testing.T) {
	rules := Rules()
	if len(rules) != 7 {
		t.Fatalf("Table 2 has 7 rules, got %d", len(rules))
	}
	type want struct {
		standard  string
		stage     Stage
		threshold float64
		cmp       Comparison
	}
	wants := map[string]want{
		"R1": {"E1", StageInitiation, 60, GreaterThan},
		"R2": {"E2", StageInitiation, 30, GreaterThan},
		"R3": {"E3", StageInitiation, 270, GreaterThan},
		"R4": {"E4", StageInitiation, 45, GreaterThan},
		"R5": {"E5", StageAirLanding, 60, GreaterThan},
		"R6": {"E6", StageAirLanding, 45, GreaterThan},
		"R7": {"E7", StageAirLanding, 160, LessThan},
	}
	seen := map[string]bool{}
	for _, r := range rules {
		w, ok := wants[r.ID]
		if !ok {
			t.Errorf("unexpected rule %s", r.ID)
			continue
		}
		seen[r.ID] = true
		if r.Standard != w.standard || r.Stage != w.stage ||
			r.Threshold != w.threshold || r.Cmp != w.cmp {
			t.Errorf("%s = {std %s, stage %v, thr %v, cmp %v}, want %+v",
				r.ID, r.Standard, r.Stage, r.Threshold, r.Cmp, w)
		}
		if r.Advice == "" || r.Formula == "" {
			t.Errorf("%s missing advice/formula", r.ID)
		}
	}
	if len(seen) != 7 {
		t.Errorf("rules missing: %v", seen)
	}
}

// posesWith builds a 20-frame sequence from a base pose with one frame in
// each window replaced by a modified pose.
func posesWith(initMod, airMod func(*stickmodel.Pose)) []stickmodel.Pose {
	base := stickmodel.Pose{X: 50, Y: 50}
	base.Rho = [stickmodel.NumSticks]float64{10, 15, 185, 175, 10, 178, 180, 95}
	poses := make([]stickmodel.Pose, 20)
	for i := range poses {
		poses[i] = base
	}
	if initMod != nil {
		initMod(&poses[5])
	}
	if airMod != nil {
		airMod(&poses[15])
	}
	return poses
}

func fixedW() (track.Window, track.Window) {
	return track.FixedWindows(20)
}

func TestScoreAllFailOnNeutralPose(t *testing.T) {
	// A stiff upright "jump" satisfies none of the seven standards.
	initW, airW := fixedW()
	rep, err := NewScorer().Score(posesWith(nil, nil), initW, airW)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed != 0 {
		t.Errorf("neutral pose passed %d rules", rep.Passed)
	}
	if len(rep.Advice) != 7 {
		t.Errorf("want 7 advice lines, got %d", len(rep.Advice))
	}
	if rep.Score != 0 {
		t.Errorf("score = %v", rep.Score)
	}
}

func TestEachRuleFiresOnItsPose(t *testing.T) {
	initW, airW := fixedW()
	tests := []struct {
		rule string
		init func(*stickmodel.Pose)
		air  func(*stickmodel.Pose)
	}{
		{"R1", func(p *stickmodel.Pose) {
			p.Rho[stickmodel.Thigh] = 140
			p.Rho[stickmodel.Shank] = 210
		}, nil},
		{"R2", func(p *stickmodel.Pose) { p.Rho[stickmodel.Neck] = 40 }, nil},
		{"R3", func(p *stickmodel.Pose) { p.Rho[stickmodel.UpperArm] = 285 }, nil},
		{"R4", func(p *stickmodel.Pose) {
			p.Rho[stickmodel.UpperArm] = 280
			p.Rho[stickmodel.Forearm] = 220
		}, nil},
		{"R5", nil, func(p *stickmodel.Pose) {
			p.Rho[stickmodel.Thigh] = 120
			p.Rho[stickmodel.Shank] = 200
		}},
		{"R6", nil, func(p *stickmodel.Pose) { p.Rho[stickmodel.Trunk] = 55 }},
		{"R7", nil, func(p *stickmodel.Pose) { p.Rho[stickmodel.UpperArm] = 100 }},
	}
	for _, tt := range tests {
		t.Run(tt.rule, func(t *testing.T) {
			rep, err := NewScorer().Score(posesWith(tt.init, tt.air), initW, airW)
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range rep.Results {
				if res.Rule.ID == tt.rule && !res.Passed {
					t.Errorf("%s did not fire on its pose: value %.1f", tt.rule, res.Value)
				}
			}
		})
	}
}

func TestRuleWindowsAreRespected(t *testing.T) {
	initW, airW := fixedW()
	// A deep knee bend placed ONLY in the air window must not satisfy the
	// initiation rule R1 (and vice versa for R5).
	poses := posesWith(nil, func(p *stickmodel.Pose) {
		p.Rho[stickmodel.Thigh] = 140
		p.Rho[stickmodel.Shank] = 210
	})
	rep, err := NewScorer().Score(poses, initW, airW)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]RuleResult{}
	for _, r := range rep.Results {
		byID[r.Rule.ID] = r
	}
	if byID["R1"].Passed {
		t.Error("R1 fired on air-window knee bend")
	}
	if !byID["R5"].Passed {
		t.Error("R5 ignored air-window knee bend")
	}
	if byID["R5"].AtFrame != 15 {
		t.Errorf("R5 AtFrame = %d, want 15", byID["R5"].AtFrame)
	}
}

func TestR7UsesMinimum(t *testing.T) {
	initW, airW := fixedW()
	// The arm comes forward only once; R7 must still pass because it takes
	// the window minimum.
	poses := posesWith(nil, func(p *stickmodel.Pose) { p.Rho[stickmodel.UpperArm] = 100 })
	rep, err := NewScorer().Score(poses, initW, airW)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Rule.ID == "R7" {
			if !r.Passed {
				t.Error("R7 must pass via minimum aggregation")
			}
			if r.Value != 100 {
				t.Errorf("R7 value = %v, want 100", r.Value)
			}
		}
	}
}

func TestScoreOnTruthClipsMatchesDefects(t *testing.T) {
	// Experiment T2 at ground-truth level: each planted defect must fail
	// exactly its designated rule.
	wantFail := map[string][]string{
		"good-form":        {},
		"no-knee-bend":     {"R1"},
		"no-neck-bend":     {"R2"},
		"no-arm-backswing": {"R3"},
		"straight-arms":    {"R4"},
		"no-air-knee-bend": {"R5"},
		"upright-trunk":    {"R6"},
		"no-arm-forward":   {"R7"},
	}
	for _, clip := range synth.DefectClips(synth.DefaultJumpParams()) {
		v, err := synth.Generate(clip.Params)
		if err != nil {
			t.Fatal(err)
		}
		initW, airW := track.FixedWindows(clip.Params.Frames)
		rep, err := NewScorer().Score(v.Truth, initW, airW)
		if err != nil {
			t.Fatal(err)
		}
		var failed []string
		for _, r := range rep.Results {
			if !r.Passed {
				failed = append(failed, r.Rule.ID)
			}
		}
		want := wantFail[clip.Name]
		if len(failed) != len(want) {
			t.Errorf("%s failed %v, want %v", clip.Name, failed, want)
			continue
		}
		for i := range want {
			if failed[i] != want[i] {
				t.Errorf("%s failed %v, want %v", clip.Name, failed, want)
			}
		}
	}
}

func TestScoreErrors(t *testing.T) {
	initW, airW := fixedW()
	if _, err := NewScorer().Score(nil, initW, airW); err == nil {
		t.Error("empty poses must error")
	}
	poses := posesWith(nil, nil)
	if _, err := NewScorer().Score(poses, track.Window{From: 30, To: 40}, airW); err == nil {
		t.Error("out-of-range window must error")
	}
}

func TestScoreWindowClamping(t *testing.T) {
	// Windows larger than the sequence are clamped, not fatal.
	poses := posesWith(nil, nil)
	rep, err := NewScorer().Score(poses, track.Window{From: -5, To: 9}, track.Window{From: 10, To: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Window.From < 0 || r.Window.To > 19 {
			t.Errorf("window not clamped: %+v", r.Window)
		}
	}
}

func TestNewScorerWithRules(t *testing.T) {
	if _, err := NewScorerWithRules(nil); err == nil {
		t.Error("empty rule set must error")
	}
	custom := []Rule{{
		ID: "X1", Standard: "E1", Stage: StageInitiation, Formula: "ρ0 > 5°",
		Advice:  "lean forward",
		Measure: func(p stickmodel.Pose) float64 { return p.Rho[stickmodel.Trunk] },
		Agg:     AggregateMax, Cmp: GreaterThan, Threshold: 5,
	}}
	s, err := NewScorerWithRules(custom)
	if err != nil {
		t.Fatal(err)
	}
	initW, airW := fixedW()
	rep, err := s.Score(posesWith(nil, nil), initW, airW)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 || !rep.Results[0].Passed {
		t.Errorf("custom rule result: %+v", rep.Results[0])
	}
}

func TestReportString(t *testing.T) {
	initW, airW := fixedW()
	rep, err := NewScorer().Score(posesWith(nil, nil), initW, airW)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, frag := range []string{"score 0/7", "R1", "FAIL", "advice:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestStageString(t *testing.T) {
	if StageInitiation.String() != "Initiation Stage" ||
		StageAirLanding.String() != "On the Air/Landing" {
		t.Error("stage names must match Table 1")
	}
	if Stage(0).String() == "" {
		t.Error("invalid stage must render")
	}
}

func TestScorerRulesCopy(t *testing.T) {
	s := NewScorer()
	rules := s.Rules()
	rules[0].ID = "mutated"
	if s.Rules()[0].ID == "mutated" {
		t.Error("Rules() must return a copy")
	}
}
