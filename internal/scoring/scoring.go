// Package scoring implements Section 4 of the paper: the evaluation
// standards of Table 1 (E1-E7), their translation into stick-model scoring
// rules of Table 2 (R1-R7), window-based rule evaluation ("examine the
// angles for a few consecutive frames ... the maximum of all the angle
// differences is then used"), and the advice generation the system promises
// ("detect improper movements and give advices to the jumper").
package scoring

import (
	"errors"
	"fmt"
	"strings"

	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/track"
)

// Stage identifies the movement stage a standard or rule belongs to.
type Stage int

// Stages of Table 1. Enum starts at one so the zero value is invalid.
const (
	StageInitiation Stage = iota + 1
	StageAirLanding
)

// String names the stage as in Table 1.
func (s Stage) String() string {
	switch s {
	case StageInitiation:
		return "Initiation Stage"
	case StageAirLanding:
		return "On the Air/Landing"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Standard is one row of Table 1.
type Standard struct {
	ID          string
	Stage       Stage
	Description string
}

// Standards returns Table 1 verbatim.
func Standards() []Standard {
	return []Standard{
		{ID: "E1", Stage: StageInitiation, Description: "Knees bended"},
		{ID: "E2", Stage: StageInitiation, Description: "Neck bended forward"},
		{ID: "E3", Stage: StageInitiation, Description: "Arms swung back"},
		{ID: "E4", Stage: StageInitiation, Description: "Arms bended"},
		{ID: "E5", Stage: StageAirLanding, Description: "Knees bended"},
		{ID: "E6", Stage: StageAirLanding, Description: "Trunk bended forward"},
		{ID: "E7", Stage: StageAirLanding, Description: "Arms swung forward after landing"},
	}
}

// Aggregate selects how a rule combines per-frame values over its window.
type Aggregate int

// Aggregation modes. The paper uses the maximum for R1-R6; R7's "ρ2 < 160°"
// is satisfied when the arm comes forward at least once, i.e. the minimum.
const (
	AggregateMax Aggregate = iota + 1
	AggregateMin
)

// Comparison is the pass predicate direction.
type Comparison int

// Comparison directions for rule thresholds.
const (
	GreaterThan Comparison = iota + 1
	LessThan
)

// Rule is one row of Table 2: a measurable predicate over the stick-model
// angle sequence.
type Rule struct {
	ID       string
	Standard string // the Table 1 standard this rule implements
	Stage    Stage
	// Formula is the human-readable form, e.g. "ρ6 - ρ3 > 60°".
	Formula string
	// Advice is emitted when the rule fails.
	Advice string
	// Measure extracts the per-frame quantity in degrees.
	Measure func(p stickmodel.Pose) float64
	// Agg combines per-frame values over the window.
	Agg Aggregate
	// Cmp and Threshold define the pass predicate on the aggregate.
	Cmp       Comparison
	Threshold float64
}

// kneeFlexion is ρ6-ρ3 as a shortest-arc signed difference, positive when
// the shank folds back under the thigh.
func kneeFlexion(p stickmodel.Pose) float64 {
	return stickmodel.AngleDiff(p.Rho[stickmodel.Thigh], p.Rho[stickmodel.Shank])
}

// elbowFlexion is ρ2-ρ5 as a shortest-arc signed difference.
func elbowFlexion(p stickmodel.Pose) float64 {
	return stickmodel.AngleDiff(p.Rho[stickmodel.Forearm], p.Rho[stickmodel.UpperArm])
}

// Rules returns Table 2 verbatim, with measures expressed in the
// stick-model angle convention of DESIGN.md §3.
func Rules() []Rule {
	return []Rule{
		{
			ID: "R1", Standard: "E1", Stage: StageInitiation,
			Formula: "ρ6 - ρ3 > 60°",
			Advice:  "Bend your knees more before taking off.",
			Measure: kneeFlexion,
			Agg:     AggregateMax, Cmp: GreaterThan, Threshold: 60,
		},
		{
			ID: "R2", Standard: "E2", Stage: StageInitiation,
			Formula: "ρ1 > 30°",
			Advice:  "Lean your head and neck forward as you prepare.",
			Measure: func(p stickmodel.Pose) float64 { return p.Rho[stickmodel.Neck] },
			Agg:     AggregateMax, Cmp: GreaterThan, Threshold: 30,
		},
		{
			ID: "R3", Standard: "E3", Stage: StageInitiation,
			Formula: "ρ2 > 270°",
			Advice:  "Swing your arms further back before the jump.",
			Measure: func(p stickmodel.Pose) float64 { return p.Rho[stickmodel.UpperArm] },
			Agg:     AggregateMax, Cmp: GreaterThan, Threshold: 270,
		},
		{
			ID: "R4", Standard: "E4", Stage: StageInitiation,
			Formula: "ρ2 - ρ5 > 45°",
			Advice:  "Keep your elbows bent during the arm swing.",
			Measure: elbowFlexion,
			Agg:     AggregateMax, Cmp: GreaterThan, Threshold: 45,
		},
		{
			ID: "R5", Standard: "E5", Stage: StageAirLanding,
			Formula: "ρ6 - ρ3 > 60°",
			Advice:  "Tuck your knees during flight and bend them on landing.",
			Measure: kneeFlexion,
			Agg:     AggregateMax, Cmp: GreaterThan, Threshold: 60,
		},
		{
			ID: "R6", Standard: "E6", Stage: StageAirLanding,
			Formula: "ρ0 > 45°",
			Advice:  "Bend your trunk forward when landing.",
			Measure: func(p stickmodel.Pose) float64 { return p.Rho[stickmodel.Trunk] },
			Agg:     AggregateMax, Cmp: GreaterThan, Threshold: 45,
		},
		{
			ID: "R7", Standard: "E7", Stage: StageAirLanding,
			Formula: "ρ2 < 160°",
			Advice:  "Swing your arms forward after landing to keep balance.",
			Measure: func(p stickmodel.Pose) float64 { return p.Rho[stickmodel.UpperArm] },
			Agg:     AggregateMin, Cmp: LessThan, Threshold: 160,
		},
	}
}

// RuleResult is the outcome of one rule over its stage window.
type RuleResult struct {
	Rule   Rule
	Window track.Window
	// Value is the aggregated measurement in degrees.
	Value  float64
	Passed bool
	// AtFrame is the frame index where the aggregate value occurred.
	AtFrame int
}

// Report is the full scoring outcome for one jump.
type Report struct {
	Results []RuleResult
	Passed  int
	Total   int
	// Score is Passed/Total in [0,1].
	Score float64
	// Advice lists the advice strings of all failed rules.
	Advice []string
}

// String renders the report as a fixed-width table plus advice lines.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "score %d/%d (%.0f%%)\n", r.Passed, r.Total, 100*r.Score)
	for _, res := range r.Results {
		status := "PASS"
		if !res.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "  %-3s %-22s %-10s measured %7.1f°  (frames %d-%d, at %d)\n",
			res.Rule.ID, res.Rule.Formula, status, res.Value,
			res.Window.From, res.Window.To, res.AtFrame)
	}
	for _, a := range r.Advice {
		fmt.Fprintf(&sb, "  advice: %s\n", a)
	}
	return sb.String()
}

// Scorer evaluates Table 2 rules over pose sequences.
type Scorer struct {
	rules []Rule
}

// NewScorer returns a scorer with the paper's rule set.
func NewScorer() *Scorer { return &Scorer{rules: Rules()} }

// NewScorerWithRules returns a scorer with a custom rule set (extensions).
func NewScorerWithRules(rules []Rule) (*Scorer, error) {
	if len(rules) == 0 {
		return nil, errors.New("scoring: empty rule set")
	}
	return &Scorer{rules: rules}, nil
}

// Rules returns the scorer's rule set.
func (s *Scorer) Rules() []Rule { return append([]Rule(nil), s.rules...) }

// ErrEmptyWindow is returned when a stage window contains no frames.
var ErrEmptyWindow = errors.New("scoring: empty stage window")

// Score evaluates every rule over the pose sequence using the given stage
// windows (from track.FixedWindows for the paper's behaviour, or from a
// track.Analysis for detected phases).
func (s *Scorer) Score(poses []stickmodel.Pose, initiation, airLanding track.Window) (*Report, error) {
	if len(poses) == 0 {
		return nil, errors.New("scoring: no poses")
	}
	rep := &Report{Total: len(s.rules)}
	for _, rule := range s.rules {
		w := initiation
		if rule.Stage == StageAirLanding {
			w = airLanding
		}
		res, err := evalRule(rule, poses, w)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", rule.ID, err)
		}
		rep.Results = append(rep.Results, res)
		if res.Passed {
			rep.Passed++
		} else {
			rep.Advice = append(rep.Advice, res.Rule.Advice)
		}
	}
	rep.Score = float64(rep.Passed) / float64(rep.Total)
	return rep, nil
}

func evalRule(rule Rule, poses []stickmodel.Pose, w track.Window) (RuleResult, error) {
	from, to := w.From, w.To
	if from < 0 {
		from = 0
	}
	if to >= len(poses) {
		to = len(poses) - 1
	}
	if from > to {
		return RuleResult{}, ErrEmptyWindow
	}
	res := RuleResult{Rule: rule, Window: track.Window{From: from, To: to}, AtFrame: from}
	first := true
	for k := from; k <= to; k++ {
		v := rule.Measure(poses[k])
		better := false
		switch rule.Agg {
		case AggregateMax:
			better = first || v > res.Value
		case AggregateMin:
			better = first || v < res.Value
		default:
			return RuleResult{}, fmt.Errorf("unknown aggregate %d", rule.Agg)
		}
		if better {
			res.Value = v
			res.AtFrame = k
		}
		first = false
	}
	switch rule.Cmp {
	case GreaterThan:
		res.Passed = res.Value > rule.Threshold
	case LessThan:
		res.Passed = res.Value < rule.Threshold
	default:
		return RuleResult{}, fmt.Errorf("unknown comparison %d", rule.Cmp)
	}
	return res, nil
}
