package shadow

import (
	"testing"

	"github.com/sljmotion/sljmotion/internal/hsv"
	"github.com/sljmotion/sljmotion/internal/imaging"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{Alpha: 0.9, Beta: 0.5, TauS: 0.1, TauH: 60},  // alpha >= beta
		{Alpha: -1, Beta: 0.9, TauS: 0.1, TauH: 60},   // negative alpha
		{Alpha: 0.4, Beta: 0.9, TauS: 1.5, TauH: 60},  // tauS out of range
		{Alpha: 0.4, Beta: 0.9, TauS: 0.1, TauH: 200}, // tauH out of range
		{Alpha: 0.4, Beta: 2.0, TauS: 0.1, TauH: 60},  // beta too large
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should be invalid: %+v", i, p)
		}
	}
}

func TestNewDetectorRejectsBadParams(t *testing.T) {
	if _, err := NewDetector(Params{Alpha: 1, Beta: 0.5}); err == nil {
		t.Fatal("expected error")
	}
}

func TestIsShadowConditions(t *testing.T) {
	det, err := NewDetector(Params{Alpha: 0.4, Beta: 0.9, TauS: 0.15, TauH: 60})
	if err != nil {
		t.Fatal(err)
	}
	bg := hsv.HSV{H: 30, S: 0.4, V: 0.8}
	tests := []struct {
		name string
		f    hsv.HSV
		want bool
	}{
		{"genuine shadow", hsv.HSV{H: 32, S: 0.42, V: 0.48}, true}, // ratio 0.6
		{"value barely changed", hsv.HSV{H: 30, S: 0.4, V: 0.78}, false},
		{"too dark (object)", hsv.HSV{H: 30, S: 0.4, V: 0.2}, false},
		{"saturation jumped", hsv.HSV{H: 30, S: 0.7, V: 0.5}, false},
		{"hue far off", hsv.HSV{H: 150, S: 0.4, V: 0.5}, false},
		{"saturation dropped ok", hsv.HSV{H: 30, S: 0.1, V: 0.5}, true},
		{"brighter than background", hsv.HSV{H: 30, S: 0.4, V: 0.95}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := det.IsShadow(tt.f, bg); got != tt.want {
				t.Errorf("IsShadow(%+v) = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestIsShadowBlackBackground(t *testing.T) {
	det, err := NewDetector(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if det.IsShadow(hsv.HSV{V: 0.1}, hsv.HSV{V: 0}) {
		t.Error("black background must never classify as shadow")
	}
}

// buildShadowScene creates a background, a frame where region A is a
// photometric shadow (uniform darkening) and region B is a genuine object
// (different colour), plus the foreground mask covering both.
func buildShadowScene() (frame, bg *imaging.Image, fg *imaging.Mask, shadowRect, objRect imaging.Rect) {
	bg = imaging.NewImageFilled(40, 30, imaging.Color{R: 180, G: 150, B: 110})
	frame = bg.Clone()
	shadowRect = imaging.Rect{X0: 4, Y0: 4, X1: 14, Y1: 14}
	objRect = imaging.Rect{X0: 20, Y0: 4, X1: 30, Y1: 14}
	for y := shadowRect.Y0; y <= shadowRect.Y1; y++ {
		for x := shadowRect.X0; x <= shadowRect.X1; x++ {
			frame.Set(x, y, frame.At(x, y).Scale(0.6))
		}
	}
	imaging.FillRect(frame, objRect, imaging.Color{R: 40, G: 60, B: 140})
	fg = imaging.NewMask(40, 30)
	imaging.FillRectMask(fg, shadowRect)
	imaging.FillRectMask(fg, objRect)
	return frame, bg, fg, shadowRect, objRect
}

func TestMaskSeparatesShadowFromObject(t *testing.T) {
	frame, bg, fg, shadowRect, objRect := buildShadowScene()
	det, err := NewDetector(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sm, err := det.Mask(frame, bg, fg)
	if err != nil {
		t.Fatal(err)
	}
	for y := shadowRect.Y0; y <= shadowRect.Y1; y++ {
		for x := shadowRect.X0; x <= shadowRect.X1; x++ {
			if !sm.At(x, y) {
				t.Fatalf("shadow pixel (%d,%d) not detected", x, y)
			}
		}
	}
	for y := objRect.Y0; y <= objRect.Y1; y++ {
		for x := objRect.X0; x <= objRect.X1; x++ {
			if sm.At(x, y) {
				t.Fatalf("object pixel (%d,%d) misclassified as shadow", x, y)
			}
		}
	}
}

func TestMaskIgnoresBackgroundPixels(t *testing.T) {
	frame, bg, _, _, _ := buildShadowScene()
	det, err := NewDetector(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sm, err := det.Mask(frame, bg, imaging.NewMask(40, 30))
	if err != nil {
		t.Fatal(err)
	}
	if !sm.Empty() {
		t.Error("empty foreground must yield empty shadow mask")
	}
}

func TestRemove(t *testing.T) {
	frame, bg, fg, _, objRect := buildShadowScene()
	det, err := NewDetector(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	object, sm, err := det.Remove(frame, bg, fg)
	if err != nil {
		t.Fatal(err)
	}
	wantObj := objRect.Area()
	if object.Count() != wantObj {
		t.Errorf("object pixels = %d, want %d", object.Count(), wantObj)
	}
	if sm.Count() == 0 {
		t.Error("no shadow detected")
	}
	// object ∪ shadow == original foreground; object ∩ shadow == ∅.
	for i := range fg.Bits {
		if object.Bits[i] && sm.Bits[i] {
			t.Fatal("object and shadow overlap")
		}
		if fg.Bits[i] != (object.Bits[i] || sm.Bits[i]) {
			t.Fatal("object ∪ shadow != foreground")
		}
	}
}

func TestMaskSizeMismatch(t *testing.T) {
	det, err := NewDetector(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	frame := imaging.NewImage(4, 4)
	bg := imaging.NewImage(5, 5)
	fg := imaging.NewMask(4, 4)
	if _, err := det.Mask(frame, bg, fg); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestParamsAccessor(t *testing.T) {
	p := DefaultParams()
	det, err := NewDetector(p)
	if err != nil {
		t.Fatal(err)
	}
	if det.Params() != p {
		t.Error("Params accessor lost values")
	}
}
