// Package shadow implements Step 5 of the paper's segmentation pipeline:
// the HSV shadow detector of Eq. (1)-(2) (after Cucchiara et al.). A
// foreground pixel is declared shadow when its value ratio against the
// background lies in [α, β], its saturation drop is bounded by τS, and its
// angular hue distance DH from the background is bounded by τH.
package shadow

import (
	"fmt"

	"github.com/sljmotion/sljmotion/internal/hsv"
	"github.com/sljmotion/sljmotion/internal/imaging"
)

// Params are the four experimentally determined constants of Eq. (1).
type Params struct {
	// Alpha is the lower bound on F.V/B.V; shadows darken, so Alpha < 1.
	// It rejects very dark object pixels that are not shadow.
	Alpha float64
	// Beta is the upper bound on F.V/B.V; it rejects pixels whose value
	// barely changed (noise rather than shadow).
	Beta float64
	// TauS bounds the saturation difference F.S - B.S (an absolute value in
	// the paper's wording: shadows do not raise saturation much).
	TauS float64
	// TauH bounds the angular hue distance DH of Eq. (2), in degrees.
	TauH float64
}

// DefaultParams returns the constants calibrated on the synthetic scenes
// (DESIGN.md §7). The paper determines them "via experiments".
func DefaultParams() Params {
	return Params{Alpha: 0.40, Beta: 0.92, TauS: 0.12, TauH: 60}
}

// Validate rejects parameter sets that cannot classify anything sensibly.
func (p Params) Validate() error {
	if !(p.Alpha >= 0 && p.Alpha < p.Beta && p.Beta <= 1.5) {
		return fmt.Errorf("shadow: need 0 <= alpha < beta <= 1.5, got alpha=%v beta=%v", p.Alpha, p.Beta)
	}
	if p.TauS < 0 || p.TauS > 1 {
		return fmt.Errorf("shadow: tauS must be in [0,1], got %v", p.TauS)
	}
	if p.TauH < 0 || p.TauH > 180 {
		return fmt.Errorf("shadow: tauH must be in [0,180] degrees, got %v", p.TauH)
	}
	return nil
}

// Detector classifies foreground pixels as shadow or object.
type Detector struct {
	params Params
}

// NewDetector returns a detector with the given parameters.
func NewDetector(p Params) (*Detector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Detector{params: p}, nil
}

// Params returns the detector's parameters.
func (d *Detector) Params() Params { return d.params }

// IsShadow evaluates Eq. (1) for a single foreground/background HSV pair.
func (d *Detector) IsShadow(f, b hsv.HSV) bool {
	if b.V <= 0 {
		return false // black background: the value ratio is undefined.
	}
	ratio := f.V / b.V
	if ratio < d.params.Alpha || ratio > d.params.Beta {
		return false
	}
	if f.S-b.S > d.params.TauS {
		return false
	}
	return hsv.Dist(f, b) <= d.params.TauH
}

// Mask computes the shadow mask SM_k of Eq. (1) for every pixel of the
// foreground mask. frame and bg must match the mask size.
func (d *Detector) Mask(frame, bg *imaging.Image, fg *imaging.Mask) (*imaging.Mask, error) {
	if !frame.SameSize(bg) || frame.W != fg.W || frame.H != fg.H {
		return nil, fmt.Errorf("shadow mask: %w", imaging.ErrSizeMismatch)
	}
	out := imaging.NewMask(fg.W, fg.H)
	for i, isFg := range fg.Bits {
		if !isFg {
			continue
		}
		f := hsv.FromRGB(frame.Pix[i])
		b := hsv.FromRGB(bg.Pix[i])
		if d.IsShadow(f, b) {
			out.Bits[i] = true
		}
	}
	return out, nil
}

// Remove returns fg minus detected shadow pixels, together with the shadow
// mask itself (for Figure 3 style reporting).
func (d *Detector) Remove(frame, bg *imaging.Image, fg *imaging.Mask) (object, shadowMask *imaging.Mask, err error) {
	sm, err := d.Mask(frame, bg, fg)
	if err != nil {
		return nil, nil, err
	}
	object = fg.Clone()
	if err := object.Subtract(sm); err != nil {
		return nil, nil, err
	}
	return object, sm, nil
}
