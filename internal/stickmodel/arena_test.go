package stickmodel

import (
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

func TestArenaMaskReuse(t *testing.T) {
	var a Arena
	m1 := a.Mask(32, 16)
	if m1.W != 32 || m1.H != 16 {
		t.Fatalf("mask size %dx%d, want 32x16", m1.W, m1.H)
	}
	m1.Set(3, 4, true)
	m2 := a.Mask(32, 16)
	if m2 != m1 {
		t.Error("same-size request must reuse the buffer")
	}
	if m2.At(3, 4) {
		t.Error("reused mask not cleared")
	}
	m3 := a.Mask(8, 8)
	if m3 == m1 {
		t.Error("size change must reallocate")
	}
}

func TestRasterizeIntoMatchesRasterize(t *testing.T) {
	d := ChildDimensions(60)
	p := standingPose(48, 48)
	want := p.Rasterize(d, 96, 96)
	var a Arena
	got := a.Mask(96, 96)
	p.RasterizeInto(d, got)
	for i := range want.Bits {
		if want.Bits[i] != got.Bits[i] {
			t.Fatalf("RasterizeInto differs from Rasterize at bit %d", i)
		}
	}
}

func TestEstimateLengthsArenaMatchesAllocating(t *testing.T) {
	d := ChildDimensions(60)
	p := standingPose(48, 48)
	sil := p.Rasterize(ChildDimensions(75), 120, 120)
	var a Arena
	got := EstimateLengthsArena(p, d, sil, &a)
	want := EstimateLengths(p, d, sil)
	if got != want {
		t.Errorf("arena path %+v != allocating path %+v", got, want)
	}
	// Repeated use keeps the result stable (the scratch mask is cleared).
	if again := EstimateLengthsArena(p, d, sil, &a); again != want {
		t.Error("arena reuse changed the estimate")
	}
}

func TestRasterizeIntoZeroAllocsSteadyState(t *testing.T) {
	d := ChildDimensions(60)
	p := standingPose(48, 48)
	var a Arena
	a.Mask(96, 96) // warm the buffer
	allocs := testing.AllocsPerRun(20, func() {
		m := a.Mask(96, 96)
		p.RasterizeInto(d, m)
	})
	if allocs != 0 {
		t.Errorf("arena rasterization allocates %v/op, want 0", allocs)
	}
}

func TestContainmentFractionZeroAllocs(t *testing.T) {
	d := ChildDimensions(60)
	p := standingPose(48, 48)
	m := p.Rasterize(d, 96, 96)
	allocs := testing.AllocsPerRun(20, func() { p.ContainmentFraction(d, m) })
	if allocs != 0 {
		t.Errorf("ContainmentFraction allocates %v/op, want 0", allocs)
	}
}

func BenchmarkRasterizeInto(b *testing.B) {
	d := ChildDimensions(60)
	p := standingPose(48, 48)
	var a Arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Mask(96, 96)
		p.RasterizeInto(d, m)
	}
}

func BenchmarkRasterizeAlloc(b *testing.B) {
	d := ChildDimensions(60)
	p := standingPose(48, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rasterize(d, 96, 96)
	}
}

func BenchmarkContainmentFraction(b *testing.B) {
	d := ChildDimensions(60)
	p := standingPose(48, 48)
	m := p.Rasterize(d, 96, 96)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ContainmentFraction(d, m)
	}
}

var sinkMask *imaging.Mask

func BenchmarkArenaMaskClear(b *testing.B) {
	var a Arena
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkMask = a.Mask(96, 96)
	}
}
