// Package stickmodel implements the paper's articulated stick model
// (Section 3, Figures 4-5): eight sticks S0-S7 whose pose is the tuple
// (x0, y0, ρ0..ρ7), forward kinematics for joint positions, capsule
// rasterisation, and thickness estimation from silhouettes.
//
// Angle convention (DESIGN.md §3): every ρl is absolute, measured clockwise
// from the +y (up) axis toward +x, where +x is the jump direction. 0° = up,
// 90° = forward-horizontal, 180° = down, 270° = backward-horizontal. Each
// stick's direction points away from the joint nearer the trunk. Image
// coordinates grow downward, so the image-space direction vector of ρ is
// (sin ρ, -cos ρ).
package stickmodel

import (
	"fmt"
	"math"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

// StickID identifies one of the eight sticks of Figure 4. Two arms and two
// legs are merged into one each because the video is taken from the side.
type StickID int

// Stick identifiers, in the paper's numbering.
const (
	Trunk     StickID = iota // S0
	Neck                     // S1
	UpperArm                 // S2
	Thigh                    // S3
	Head                     // S4
	Forearm                  // S5
	Shank                    // S6
	Foot                     // S7
	NumSticks = 8
)

// String returns the paper's name for the stick.
func (s StickID) String() string {
	switch s {
	case Trunk:
		return "trunk(S0)"
	case Neck:
		return "neck(S1)"
	case UpperArm:
		return "upper-arm(S2)"
	case Thigh:
		return "thigh(S3)"
	case Head:
		return "head(S4)"
	case Forearm:
		return "forearm(S5)"
	case Shank:
		return "shank(S6)"
	case Foot:
		return "foot(S7)"
	default:
		return fmt.Sprintf("stick(%d)", int(s))
	}
}

// JointID identifies a named joint produced by forward kinematics.
type JointID int

// Joints of the kinematic tree.
const (
	JointHip JointID = iota + 1
	JointShoulder
	JointHeadBase
	JointHeadTop
	JointElbow
	JointWrist
	JointKnee
	JointAnkle
	JointToe
	numJoints
)

// String returns the joint name.
func (j JointID) String() string {
	names := map[JointID]string{
		JointHip: "hip", JointShoulder: "shoulder", JointHeadBase: "head-base",
		JointHeadTop: "head-top", JointElbow: "elbow", JointWrist: "wrist",
		JointKnee: "knee", JointAnkle: "ankle", JointToe: "toe",
	}
	if n, ok := names[j]; ok {
		return n
	}
	return fmt.Sprintf("joint(%d)", int(j))
}

// Pose is the chromosome of Section 3: trunk centre plus eight absolute
// angles in degrees: (x0, y0, ρ0, ρ1, ..., ρ7).
type Pose struct {
	X, Y float64            // centre of trunk stick S0, image coordinates
	Rho  [NumSticks]float64 // degrees, convention in the package comment
}

// Dimensions holds per-stick lengths and thicknesses in pixels. Thickness is
// the full stick width (the tl of Eq. 3); capsules are rendered with radius
// Thick/2.
type Dimensions struct {
	Length [NumSticks]float64
	Thick  [NumSticks]float64
}

// ChildDimensions returns body dimensions for a subject of the given total
// height in pixels, using child body proportions. It is both the renderer's
// body and the default prior for pose estimation.
func ChildDimensions(heightPx float64) Dimensions {
	if heightPx <= 0 {
		heightPx = 100
	}
	h := heightPx
	var d Dimensions
	d.Length[Trunk] = 0.30 * h
	d.Length[Neck] = 0.07 * h
	d.Length[UpperArm] = 0.15 * h
	d.Length[Thigh] = 0.23 * h
	d.Length[Head] = 0.12 * h
	d.Length[Forearm] = 0.14 * h
	d.Length[Shank] = 0.21 * h
	d.Length[Foot] = 0.10 * h

	d.Thick[Trunk] = 0.17 * h
	d.Thick[Neck] = 0.06 * h
	d.Thick[UpperArm] = 0.065 * h
	d.Thick[Thigh] = 0.10 * h
	d.Thick[Head] = 0.11 * h
	d.Thick[Forearm] = 0.055 * h
	d.Thick[Shank] = 0.075 * h
	d.Thick[Foot] = 0.05 * h
	return d
}

// Scale returns a copy of d with all lengths and thicknesses multiplied by f.
func (d Dimensions) Scale(f float64) Dimensions {
	var out Dimensions
	for i := 0; i < NumSticks; i++ {
		out.Length[i] = d.Length[i] * f
		out.Thick[i] = d.Thick[i] * f
	}
	return out
}

// Height returns the standing height implied by the dimensions
// (head+neck+trunk+thigh+shank, ignoring foot height).
func (d Dimensions) Height() float64 {
	return d.Length[Head] + d.Length[Neck] + d.Length[Trunk] + d.Length[Thigh] + d.Length[Shank]
}

// Dir converts an angle in degrees to its image-space unit direction
// (clockwise from up; image y grows downward).
func Dir(deg float64) imaging.Vec2 {
	r := deg * math.Pi / 180
	return imaging.Vec2{X: math.Sin(r), Y: -math.Cos(r)}
}

// AngleOf is the inverse of Dir: it recovers the angle in [0,360) of an
// image-space direction vector.
func AngleOf(v imaging.Vec2) float64 {
	return NormalizeAngle(math.Atan2(v.X, -v.Y) * 180 / math.Pi)
}

// NormalizeAngle maps any angle in degrees to [0, 360).
func NormalizeAngle(deg float64) float64 {
	m := math.Mod(deg, 360)
	if m < 0 {
		m += 360
	}
	return m
}

// AngleDiff returns the signed smallest rotation from a to b in (-180, 180].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(b-a, 360)
	if d > 180 {
		d -= 360
	} else if d <= -180 {
		d += 360
	}
	return d
}

// AngleLerp interpolates from a to b along the shortest arc.
func AngleLerp(a, b, t float64) float64 {
	return NormalizeAngle(a + AngleDiff(a, b)*t)
}

// Joints computes forward kinematics: the image-space position of every
// named joint for the pose under the given dimensions.
func (p Pose) Joints(d Dimensions) map[JointID]imaging.Vec2 {
	c := imaging.Vec2{X: p.X, Y: p.Y}
	trunkDir := Dir(p.Rho[Trunk])
	hip := c.Sub(trunkDir.Mul(d.Length[Trunk] / 2))
	shoulder := c.Add(trunkDir.Mul(d.Length[Trunk] / 2))

	headBase := shoulder.Add(Dir(p.Rho[Neck]).Mul(d.Length[Neck]))
	headTop := headBase.Add(Dir(p.Rho[Head]).Mul(d.Length[Head]))
	elbow := shoulder.Add(Dir(p.Rho[UpperArm]).Mul(d.Length[UpperArm]))
	wrist := elbow.Add(Dir(p.Rho[Forearm]).Mul(d.Length[Forearm]))
	knee := hip.Add(Dir(p.Rho[Thigh]).Mul(d.Length[Thigh]))
	ankle := knee.Add(Dir(p.Rho[Shank]).Mul(d.Length[Shank]))
	toe := ankle.Add(Dir(p.Rho[Foot]).Mul(d.Length[Foot]))

	return map[JointID]imaging.Vec2{
		JointHip:      hip,
		JointShoulder: shoulder,
		JointHeadBase: headBase,
		JointHeadTop:  headTop,
		JointElbow:    elbow,
		JointWrist:    wrist,
		JointKnee:     knee,
		JointAnkle:    ankle,
		JointToe:      toe,
	}
}

// Segments returns the image-space segment of every stick, indexed by
// StickID. Allocating a fixed array keeps the fitness inner loop free of
// map lookups.
func (p Pose) Segments(d Dimensions) [NumSticks]imaging.Segment {
	c := imaging.Vec2{X: p.X, Y: p.Y}
	trunkDir := Dir(p.Rho[Trunk])
	hip := c.Sub(trunkDir.Mul(d.Length[Trunk] / 2))
	shoulder := c.Add(trunkDir.Mul(d.Length[Trunk] / 2))
	headBase := shoulder.Add(Dir(p.Rho[Neck]).Mul(d.Length[Neck]))
	elbow := shoulder.Add(Dir(p.Rho[UpperArm]).Mul(d.Length[UpperArm]))
	knee := hip.Add(Dir(p.Rho[Thigh]).Mul(d.Length[Thigh]))
	ankle := knee.Add(Dir(p.Rho[Shank]).Mul(d.Length[Shank]))

	var segs [NumSticks]imaging.Segment
	segs[Trunk] = imaging.Segment{A: hip, B: shoulder}
	segs[Neck] = imaging.Segment{A: shoulder, B: headBase}
	segs[UpperArm] = imaging.Segment{A: shoulder, B: elbow}
	segs[Thigh] = imaging.Segment{A: hip, B: knee}
	segs[Head] = imaging.Segment{A: headBase, B: headBase.Add(Dir(p.Rho[Head]).Mul(d.Length[Head]))}
	segs[Forearm] = imaging.Segment{A: elbow, B: elbow.Add(Dir(p.Rho[Forearm]).Mul(d.Length[Forearm]))}
	segs[Shank] = imaging.Segment{A: knee, B: ankle}
	segs[Foot] = imaging.Segment{A: ankle, B: ankle.Add(Dir(p.Rho[Foot]).Mul(d.Length[Foot]))}
	return segs
}

// Normalize returns a copy of the pose with all angles wrapped to [0, 360).
func (p Pose) Normalize() Pose {
	out := p
	for i := range out.Rho {
		out.Rho[i] = NormalizeAngle(out.Rho[i])
	}
	return out
}

// Interpolate blends two poses: positions linearly, angles along the
// shortest arc. t=0 yields p, t=1 yields q.
func (p Pose) Interpolate(q Pose, t float64) Pose {
	out := Pose{
		X: p.X + t*(q.X-p.X),
		Y: p.Y + t*(q.Y-p.Y),
	}
	for i := range out.Rho {
		out.Rho[i] = AngleLerp(p.Rho[i], q.Rho[i], t)
	}
	return out
}

// Translate returns the pose shifted by (dx, dy).
func (p Pose) Translate(dx, dy float64) Pose {
	out := p
	out.X += dx
	out.Y += dy
	return out
}

// Genome flattens the pose to the 10-gene chromosome layout of Section 3:
// (x0, y0, ρ0, ρ1, ρ2, ρ3, ρ4, ρ5, ρ6, ρ7).
func (p Pose) Genome() []float64 {
	g := make([]float64, 10)
	g[0], g[1] = p.X, p.Y
	for i := 0; i < NumSticks; i++ {
		g[2+i] = p.Rho[i]
	}
	return g
}

// PoseFromGenome reconstructs a pose from a 10-gene chromosome.
func PoseFromGenome(g []float64) (Pose, error) {
	if len(g) != 10 {
		return Pose{}, fmt.Errorf("stickmodel: genome must have 10 genes, got %d", len(g))
	}
	p := Pose{X: g[0], Y: g[1]}
	for i := 0; i < NumSticks; i++ {
		p.Rho[i] = g[2+i]
	}
	return p, nil
}

// CrossoverGroups returns the paper's gene grouping for multiple crossover:
// (x0,y0), (ρ0), (ρ1,ρ4), (ρ2,ρ5), (ρ3,ρ6,ρ7) — neck+head and the limbs
// grouped together. Indices refer to the 10-gene chromosome layout.
func CrossoverGroups() [][]int {
	return [][]int{
		{0, 1},                                // (x0, y0)
		{2},                                   // ρ0 trunk
		{2 + int(Neck), 2 + int(Head)},        // (ρ1, ρ4)
		{2 + int(UpperArm), 2 + int(Forearm)}, // (ρ2, ρ5)
		{2 + int(Thigh), 2 + int(Shank), 2 + int(Foot)}, // (ρ3, ρ6, ρ7)
	}
}
