package stickmodel

import (
	"math"
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

func TestRasterizeCoversJoints(t *testing.T) {
	d := ChildDimensions(60)
	p := standingPose(48, 48)
	m := p.Rasterize(d, 96, 96)
	if m.Empty() {
		t.Fatal("rasterized pose empty")
	}
	for id, j := range p.Joints(d) {
		x, y := int(j.X+0.5), int(j.Y+0.5)
		if m.In(x, y) && !m.At(x, y) {
			t.Errorf("joint %v at (%d,%d) outside silhouette", id, x, y)
		}
	}
}

func TestRasterizeScalesWithDims(t *testing.T) {
	small := standingPose(48, 48).Rasterize(ChildDimensions(30), 96, 96)
	large := standingPose(48, 48).Rasterize(ChildDimensions(60), 96, 96)
	if small.Count() >= large.Count() {
		t.Errorf("larger body must cover more pixels: %d vs %d", small.Count(), large.Count())
	}
}

func TestContainmentFraction(t *testing.T) {
	d := ChildDimensions(50)
	p := standingPose(40, 40)
	own := p.Rasterize(d, 80, 80)
	if got := p.ContainmentFraction(d, own); got < 0.999 {
		t.Errorf("pose inside own silhouette: containment %.3f, want ~1", got)
	}
	if got := p.ContainmentFraction(d, imaging.NewMask(80, 80)); got != 0 {
		t.Errorf("empty mask containment = %v, want 0", got)
	}
	// A pose shifted far away is mostly outside.
	far := p.Translate(40, 0)
	if got := far.ContainmentFraction(d, own); got > 0.5 {
		t.Errorf("shifted pose containment = %.3f, want < 0.5", got)
	}
}

func TestDrawSkeleton(t *testing.T) {
	d := ChildDimensions(50)
	p := standingPose(40, 40)
	img := imaging.NewImage(80, 80)
	p.DrawSkeleton(img, d, imaging.Red, imaging.Green)
	red, green := 0, 0
	for _, px := range img.Pix {
		switch px {
		case imaging.Red:
			red++
		case imaging.Green:
			green++
		}
	}
	if red == 0 || green == 0 {
		t.Errorf("skeleton drawing missing sticks (%d red) or joints (%d green)", red, green)
	}
}

func TestEstimateThicknessRecoversTrueThickness(t *testing.T) {
	d := ChildDimensions(64)
	p := standingPose(60, 60)
	sil := p.Rasterize(d, 120, 120)

	// Start from a prior with wrong thicknesses and recover.
	prior := d
	for i := 0; i < NumSticks; i++ {
		prior.Thick[i] *= 1.4
	}
	est := EstimateThickness(p, prior, sil)
	// The trunk is wide and unobstructed below the arms; its estimate must
	// approach the true thickness much closer than the prior.
	trueT := d.Thick[Trunk]
	priorErr := math.Abs(prior.Thick[Trunk] - trueT)
	estErr := math.Abs(est.Thick[Trunk] - trueT)
	if estErr > priorErr*0.75 {
		t.Errorf("trunk thickness estimate %.2f (true %.2f, prior %.2f) did not improve",
			est.Thick[Trunk], trueT, prior.Thick[Trunk])
	}
	for i := 0; i < NumSticks; i++ {
		if est.Thick[i] <= 0 {
			t.Fatalf("stick %d thickness non-positive", i)
		}
	}
}

func TestEstimateThicknessEmptyMaskKeepsPrior(t *testing.T) {
	d := ChildDimensions(40)
	p := standingPose(30, 30)
	est := EstimateThickness(p, d, imaging.NewMask(60, 60))
	if est != d {
		t.Error("empty mask must keep the prior")
	}
}

func TestEstimateLengths(t *testing.T) {
	d := ChildDimensions(60)
	p := standingPose(60, 60)
	sil := p.Rasterize(d, 120, 120)

	// A prior that is 20% too small gets rescaled toward the silhouette.
	prior := d.Scale(0.8)
	est := EstimateLengths(p, prior, sil)
	if est.Length[Trunk] <= prior.Length[Trunk] {
		t.Errorf("lengths not scaled up: %v <= %v", est.Length[Trunk], prior.Length[Trunk])
	}
	// A wildly wrong prior is left alone rather than amplified.
	tiny := d.Scale(0.2)
	if got := EstimateLengths(p, tiny, sil); got != tiny {
		t.Error("out-of-range scale must keep the prior")
	}
	if got := EstimateLengths(p, d, imaging.NewMask(120, 120)); got != d {
		t.Error("empty mask must keep the prior")
	}
}
