package stickmodel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

func TestNormalizeAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {-90, 270}, {720, 0}, {450, 90}, {-720, 0}, {359.5, 359.5},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.IsInf(deg, 0) || math.Abs(deg) > 1e12 {
			return true
		}
		n := NormalizeAngle(deg)
		return n >= 0 && n < 360
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct{ a, b, want float64 }{
		{0, 90, 90},
		{90, 0, -90},
		{350, 10, 20},
		{10, 350, -20},
		{0, 180, 180},
		{180, 0, 180}, // boundary maps to +180
		{45, 45, 0},
	}
	for _, tt := range tests {
		if got := AngleDiff(tt.a, tt.b); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("AngleDiff(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: AngleDiff is the shortest signed rotation: |d| <= 180 and
// rotating a by d reaches b.
func TestAngleDiffProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e9 || math.Abs(b) > 1e9 {
			return true
		}
		d := AngleDiff(a, b)
		reach := math.Abs(NormalizeAngle(a+d) - NormalizeAngle(b))
		if reach > 180 {
			reach = 360 - reach
		}
		return d > -180-1e-9 && d <= 180+1e-9 && reach < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAngleLerp(t *testing.T) {
	if got := AngleLerp(350, 10, 0.5); math.Abs(got-0) > 1e-9 {
		t.Errorf("AngleLerp(350,10,0.5) = %v, want 0 (wraps short way)", got)
	}
	if got := AngleLerp(0, 90, 0); got != 0 {
		t.Errorf("t=0 should return start, got %v", got)
	}
	if got := AngleLerp(0, 90, 1); got != 90 {
		t.Errorf("t=1 should return end, got %v", got)
	}
}

func TestDirAngleOfRoundTrip(t *testing.T) {
	for deg := 0.0; deg < 360; deg += 7.5 {
		v := Dir(deg)
		if math.Abs(v.Len()-1) > 1e-12 {
			t.Fatalf("Dir(%v) not unit: %v", deg, v.Len())
		}
		back := AngleOf(v)
		d := math.Abs(AngleDiff(deg, back))
		if d > 1e-9 {
			t.Errorf("AngleOf(Dir(%v)) = %v", deg, back)
		}
	}
}

func TestDirConvention(t *testing.T) {
	// 0° = up (negative image y), 90° = +x, 180° = down, 270° = -x.
	checks := []struct {
		deg  float64
		want imaging.Vec2
	}{
		{0, imaging.Vec2{X: 0, Y: -1}},
		{90, imaging.Vec2{X: 1, Y: 0}},
		{180, imaging.Vec2{X: 0, Y: 1}},
		{270, imaging.Vec2{X: -1, Y: 0}},
	}
	for _, c := range checks {
		v := Dir(c.deg)
		if math.Abs(v.X-c.want.X) > 1e-12 || math.Abs(v.Y-c.want.Y) > 1e-12 {
			t.Errorf("Dir(%v) = %+v, want %+v", c.deg, v, c.want)
		}
	}
}

func TestChildDimensions(t *testing.T) {
	d := ChildDimensions(100)
	if math.Abs(d.Height()-93) > 1 {
		t.Errorf("Height() = %v, want ~93 (head+neck+trunk+thigh+shank)", d.Height())
	}
	for i := 0; i < NumSticks; i++ {
		if d.Length[i] <= 0 || d.Thick[i] <= 0 {
			t.Fatalf("stick %d has non-positive dimension", i)
		}
	}
	// Non-positive height selects a sane default.
	d2 := ChildDimensions(-5)
	if d2.Length[Trunk] <= 0 {
		t.Error("fallback dimensions invalid")
	}
}

func TestDimensionsScale(t *testing.T) {
	d := ChildDimensions(50)
	s := d.Scale(2)
	if math.Abs(s.Length[Trunk]-2*d.Length[Trunk]) > 1e-12 {
		t.Error("Scale did not scale lengths")
	}
	if math.Abs(s.Height()-2*d.Height()) > 1e-9 {
		t.Error("Scale did not scale height")
	}
}

// standingPose returns an upright pose centred at (cx, cy).
func standingPose(cx, cy float64) Pose {
	p := Pose{X: cx, Y: cy}
	p.Rho[Trunk] = 0
	p.Rho[Neck] = 0
	p.Rho[Head] = 0
	p.Rho[UpperArm] = 180
	p.Rho[Forearm] = 180
	p.Rho[Thigh] = 180
	p.Rho[Shank] = 180
	p.Rho[Foot] = 90
	return p
}

func TestJointsKinematics(t *testing.T) {
	d := ChildDimensions(100)
	p := standingPose(50, 50)
	j := p.Joints(d)

	shoulder := j[JointShoulder]
	hip := j[JointHip]
	if math.Abs(shoulder.X-50) > 1e-9 || math.Abs(hip.X-50) > 1e-9 {
		t.Error("upright trunk joints must be vertically aligned")
	}
	if math.Abs((hip.Y-shoulder.Y)-d.Length[Trunk]) > 1e-9 {
		t.Errorf("trunk length %v, want %v", hip.Y-shoulder.Y, d.Length[Trunk])
	}
	// Head top is the highest point; toe roughly the lowest-forward point.
	if j[JointHeadTop].Y >= shoulder.Y {
		t.Error("head top must be above shoulder")
	}
	if j[JointAnkle].Y <= hip.Y {
		t.Error("ankle must be below hip")
	}
	if j[JointToe].X <= j[JointAnkle].X {
		t.Error("foot at 90° must point forward (+x)")
	}
	// Elbow hangs below the shoulder for a 180° arm.
	if j[JointElbow].Y <= shoulder.Y {
		t.Error("hanging arm must point down")
	}
}

func TestSegmentsMatchJoints(t *testing.T) {
	d := ChildDimensions(80)
	p := Pose{X: 40, Y: 60}
	for l := 0; l < NumSticks; l++ {
		p.Rho[l] = float64(l) * 40
	}
	j := p.Joints(d)
	segs := p.Segments(d)

	if segs[Trunk].A != j[JointHip] || segs[Trunk].B != j[JointShoulder] {
		t.Error("trunk segment != hip→shoulder")
	}
	if segs[Neck].A != j[JointShoulder] || segs[Neck].B != j[JointHeadBase] {
		t.Error("neck segment != shoulder→head-base")
	}
	if segs[Head].B != j[JointHeadTop] {
		t.Error("head segment end != head-top")
	}
	if segs[UpperArm].B != j[JointElbow] || segs[Forearm].B != j[JointWrist] {
		t.Error("arm segments mismatch")
	}
	if segs[Thigh].B != j[JointKnee] || segs[Shank].B != j[JointAnkle] || segs[Foot].B != j[JointToe] {
		t.Error("leg segments mismatch")
	}
	// Every stick's length matches its dimension.
	for l := 0; l < NumSticks; l++ {
		if math.Abs(segs[l].Len()-d.Length[l]) > 1e-9 {
			t.Errorf("stick %d length %v, want %v", l, segs[l].Len(), d.Length[l])
		}
	}
}

func TestGenomeRoundTrip(t *testing.T) {
	p := Pose{X: 12.5, Y: -3}
	for l := 0; l < NumSticks; l++ {
		p.Rho[l] = float64(l*37) + 0.25
	}
	g := p.Genome()
	if len(g) != 10 {
		t.Fatalf("genome length %d", len(g))
	}
	back, err := PoseFromGenome(g)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("roundtrip %+v != %+v", back, p)
	}
	if _, err := PoseFromGenome(g[:9]); err == nil {
		t.Error("short genome must error")
	}
}

func TestCrossoverGroupsCoverAllGenes(t *testing.T) {
	groups := CrossoverGroups()
	if len(groups) != 5 {
		t.Fatalf("want the paper's 5 groups, got %d", len(groups))
	}
	seen := map[int]bool{}
	for _, g := range groups {
		for _, idx := range g {
			if seen[idx] {
				t.Fatalf("gene %d in two groups", idx)
			}
			seen[idx] = true
		}
	}
	for i := 0; i < 10; i++ {
		if !seen[i] {
			t.Errorf("gene %d not in any group", i)
		}
	}
	// The paper pairs neck+head and the two arm sticks, and groups the leg.
	if len(groups[2]) != 2 || len(groups[3]) != 2 || len(groups[4]) != 3 {
		t.Error("group sizes differ from the paper's (ρ1,ρ4)(ρ2,ρ5)(ρ3,ρ6,ρ7)")
	}
}

func TestPoseNormalize(t *testing.T) {
	p := Pose{}
	p.Rho[0] = -30
	p.Rho[1] = 400
	n := p.Normalize()
	if n.Rho[0] != 330 || math.Abs(n.Rho[1]-40) > 1e-9 {
		t.Errorf("Normalize = %v, %v", n.Rho[0], n.Rho[1])
	}
}

func TestPoseInterpolate(t *testing.T) {
	a := standingPose(10, 10)
	b := standingPose(20, 30)
	b.Rho[UpperArm] = 270
	mid := a.Interpolate(b, 0.5)
	if mid.X != 15 || mid.Y != 20 {
		t.Errorf("centre = (%v,%v)", mid.X, mid.Y)
	}
	if math.Abs(mid.Rho[UpperArm]-225) > 1e-9 {
		t.Errorf("arm = %v, want 225", mid.Rho[UpperArm])
	}
	if a.Interpolate(b, 0) != a.Normalize() {
		t.Error("t=0 must return start")
	}
}

func TestPoseTranslate(t *testing.T) {
	p := standingPose(5, 5).Translate(3, -2)
	if p.X != 8 || p.Y != 3 {
		t.Errorf("Translate = (%v,%v)", p.X, p.Y)
	}
}

func TestStickAndJointNames(t *testing.T) {
	if Trunk.String() != "trunk(S0)" || Foot.String() != "foot(S7)" {
		t.Error("stick names wrong")
	}
	if StickID(99).String() == "" || JointID(99).String() == "" {
		t.Error("unknown ids must still render")
	}
	if JointHip.String() != "hip" {
		t.Error("joint name wrong")
	}
}
