package stickmodel

import (
	"github.com/sljmotion/sljmotion/internal/imaging"
)

// Rasterize renders the pose as a filled silhouette mask of size w×h: one
// capsule per stick with radius Thick/2. This is the geometric body model
// used both by the synthetic renderer and by validity checks.
func (p Pose) Rasterize(d Dimensions, w, h int) *imaging.Mask {
	m := imaging.NewMask(w, h)
	p.RasterizeInto(d, m)
	return m
}

// DrawSkeleton draws the stick model onto an image: one line per stick plus
// joint markers. Used to reproduce the overlay style of Figures 6-7.
func (p Pose) DrawSkeleton(img *imaging.Image, d Dimensions, stickColor, jointColor imaging.Color) {
	segs := p.Segments(d)
	for i := 0; i < NumSticks; i++ {
		imaging.DrawLine(img,
			int(segs[i].A.X+0.5), int(segs[i].A.Y+0.5),
			int(segs[i].B.X+0.5), int(segs[i].B.Y+0.5), stickColor)
	}
	for _, j := range p.Joints(d) {
		imaging.DrawCross(img, int(j.X+0.5), int(j.Y+0.5), 1, jointColor)
	}
}

// ContainmentFraction samples points along every stick (about one sample
// per 2 px) and returns the fraction that land inside the mask. The paper
// rejects chromosomes "not in the boundary of the silhouette"; the fraction
// form allows a configurable tolerance.
func (p Pose) ContainmentFraction(d Dimensions, m *imaging.Mask) float64 {
	segs := p.Segments(d)
	inside, total := 0, 0
	for i := 0; i < NumSticks; i++ {
		seg := segs[i]
		n := int(seg.Len()/2) + 2
		for s := 0; s <= n; s++ {
			t := float64(s) / float64(n)
			pt := seg.At(t)
			total++
			if m.At(int(pt.X+0.5), int(pt.Y+0.5)) {
				inside++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(inside) / float64(total)
}

// maxThicknessScan bounds the perpendicular silhouette scan relative to the
// stick's nominal thickness, so thickness estimation cannot run across the
// whole body when sticks overlap.
const maxThicknessScan = 2.5

// EstimateThickness measures the average silhouette thickness around each
// stick of the pose ("the thickness of all sticks' area can be estimated
// from the stick model drawn by human in the first frame"). For each stick
// it scans perpendicular rays at sample points and averages the covered
// width. Sticks with no silhouette support keep their prior thickness.
func EstimateThickness(p Pose, prior Dimensions, m *imaging.Mask) Dimensions {
	out := prior
	segs := p.Segments(prior)
	for i := 0; i < NumSticks; i++ {
		seg := segs[i]
		segLen := seg.Len()
		if segLen < 1 {
			continue
		}
		dir := seg.B.Sub(seg.A).Mul(1 / segLen)
		normal := imaging.Vec2{X: -dir.Y, Y: dir.X}
		maxScan := prior.Thick[i] * maxThicknessScan / 2
		if maxScan < 2 {
			maxScan = 2
		}
		samples := int(segLen/2) + 1
		var widthSum float64
		var widthN int
		for s := 0; s <= samples; s++ {
			t := float64(s) / float64(samples)
			centre := seg.At(t)
			if !m.At(int(centre.X+0.5), int(centre.Y+0.5)) {
				continue
			}
			w := scanHalfWidth(m, centre, normal, maxScan) + scanHalfWidth(m, centre, normal.Mul(-1), maxScan)
			widthSum += w
			widthN++
		}
		if widthN > 0 {
			est := widthSum / float64(widthN)
			if est >= 1 {
				out.Thick[i] = est
			}
		}
	}
	return out
}

// scanHalfWidth walks from centre along dir until the mask ends or maxScan
// is reached, returning the covered distance.
func scanHalfWidth(m *imaging.Mask, centre, dir imaging.Vec2, maxScan float64) float64 {
	step := 0.5
	var dist float64
	for dist = step; dist <= maxScan; dist += step {
		pt := centre.Add(dir.Mul(dist))
		if !m.At(int(pt.X+0.5), int(pt.Y+0.5)) {
			return dist - step
		}
	}
	return maxScan
}

// EstimateLengths rescales the prior dimensions so the rasterised pose
// height matches the silhouette bounding-box height. It complements
// EstimateThickness during first-frame calibration.
func EstimateLengths(p Pose, prior Dimensions, m *imaging.Mask) Dimensions {
	return EstimateLengthsArena(p, prior, m, nil)
}
