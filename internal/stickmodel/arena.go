package stickmodel

import (
	"math"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

// Arena holds reusable rasterization scratch buffers. Callers that
// rasterize poses repeatedly at a fixed frame size (centroid-offset
// prediction, first-frame calibration) borrow the same mask every time
// instead of allocating W×H bytes per call. An Arena is not safe for
// concurrent use; give each goroutine its own.
type Arena struct {
	mask *imaging.Mask
}

// Mask returns a cleared w×h scratch mask owned by the arena. The mask is
// only valid until the next Mask call.
func (a *Arena) Mask(w, h int) *imaging.Mask {
	if a.mask == nil || a.mask.W != w || a.mask.H != h {
		a.mask = imaging.NewMask(w, h)
		return a.mask
	}
	clear(a.mask.Bits)
	return a.mask
}

// RasterizeInto renders the pose into dst as Rasterize does, without
// allocating. dst is expected to be cleared (Arena.Mask clears); set pixels
// are OR-ed in.
func (p Pose) RasterizeInto(d Dimensions, dst *imaging.Mask) {
	segs := p.Segments(d)
	for i := 0; i < NumSticks; i++ {
		imaging.FillCapsuleMask(dst, segs[i], d.Thick[i]/2)
	}
}

// EstimateLengthsArena is EstimateLengths with the model raster drawn into
// an arena-owned scratch mask instead of a fresh allocation. A nil arena
// falls back to allocating.
func EstimateLengthsArena(p Pose, prior Dimensions, m *imaging.Mask, a *Arena) Dimensions {
	bb, ok := m.BBox()
	if !ok {
		return prior
	}
	var model *imaging.Mask
	if a != nil {
		model = a.Mask(m.W, m.H)
		p.RasterizeInto(prior, model)
	} else {
		model = p.Rasterize(prior, m.W, m.H)
	}
	mb, ok := model.BBox()
	if !ok || mb.H() == 0 {
		return prior
	}
	f := float64(bb.H()) / float64(mb.H())
	if f < 0.5 || f > 2 || math.IsNaN(f) {
		// A wildly different scale means the first-frame annotation is
		// unusable; keep the prior rather than amplifying the error.
		return prior
	}
	return prior.Scale(f)
}
