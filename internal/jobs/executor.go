package jobs

import "context"

// Executor is the seam between job *lifecycle* (queueing, states, TTL,
// metrics — the Manager's job) and job *execution* (what running a payload
// means — the embedding layer's job). The web server's executor decodes the
// payload, runs the analysis pipeline and builds the HTTP response document;
// the library façade's executor returns the in-process Result. Because the
// Manager only ever hands an Executor plain data, the same payload can
// instead be shipped to a worker node and executed there — the remote
// dispatcher relies on exactly this property.
//
// ctx is cancelled on hard shutdown; progress (never nil) receives coarse
// stage labels for status polling. The returned value becomes the job
// result.
type Executor interface {
	Execute(ctx context.Context, p Payload, progress func(stage string)) (any, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(ctx context.Context, p Payload, progress func(stage string)) (any, error)

// Execute implements Executor.
func (f ExecutorFunc) Execute(ctx context.Context, p Payload, progress func(stage string)) (any, error) {
	return f(ctx, p, progress)
}
