package jobs

import "context"

// Dispatcher is the job-execution seam: everything the web service and the
// public JobQueue need from a job backend, abstracted from how and where
// the work runs. The in-process Manager (bounded queue + worker pool over
// an Executor) is the default implementation; the remote HTTP fan-out
// dispatcher (internal/dispatch) replaces it without touching the
// submit/poll lifecycle, the HTTP surface or the /metrics schema — payloads
// are data, so they serialise to worker nodes as JSON.
//
// Contract, matching Manager's behaviour:
//
//   - Submit never blocks: a saturated backend returns ErrQueueFull
//     (retryable — see Retryable, RetryAfterHint), a shut-down backend
//     ErrClosed;
//   - Status and Result return ErrNotFound for unknown or expired ids, and
//     Result returns ErrNotFinished while the job is queued or running;
//   - Close stops intake, drains accepted work within ctx, then cancels.
type Dispatcher interface {
	// Submit enqueues one payload and returns its job id.
	Submit(p Payload) (string, error)
	// Status snapshots a job's lifecycle state and progress stage.
	Status(id string) (Status, error)
	// Result returns the finished job's value or its failure error.
	Result(id string) (any, error)
	// Metrics snapshots queue depth, throughput and latency counters.
	Metrics() Metrics
	// Close shuts the backend down, draining within ctx.
	Close(ctx context.Context) error
}

// JobFilter selects jobs for a history listing.
type JobFilter struct {
	// State keeps only jobs in this lifecycle state; "" keeps all.
	State State
	// Limit truncates the listing after this many jobs; 0 means no limit.
	Limit int
}

// Lister is the optional listing capability of a Dispatcher: a snapshot of
// the known jobs, newest-first by creation time. The server's GET /v1/jobs
// history endpoint uses it when the backend offers it; both the Manager
// (whose journal-backed table survives restarts) and the remote dispatcher
// implement it.
type Lister interface {
	// Jobs lists the jobs matching f, newest-first.
	Jobs(f JobFilter) []Status
}

// Manager is the canonical in-process Dispatcher and Lister.
var (
	_ Dispatcher = (*Manager)(nil)
	_ Lister     = (*Manager)(nil)
)
