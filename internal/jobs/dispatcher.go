package jobs

import (
	"context"
	"time"

	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/obs"
)

// Dispatcher is the job-execution seam: everything the web service and the
// public JobQueue need from a job backend, abstracted from how and where
// the work runs. The in-process Manager (bounded queue + worker pool over
// an Executor) is the default implementation; the remote HTTP fan-out
// dispatcher (internal/dispatch) replaces it without touching the
// submit/poll lifecycle, the HTTP surface or the /metrics schema — payloads
// are data, so they serialise to worker nodes as JSON.
//
// Contract, matching Manager's behaviour:
//
//   - Submit never blocks: a saturated backend returns ErrQueueFull
//     (retryable — see Retryable, RetryAfterHint), a shut-down backend
//     ErrClosed;
//   - Status and Result return ErrNotFound for unknown or expired ids, and
//     Result returns ErrNotFinished while the job is queued or running;
//   - Close stops intake, drains accepted work within ctx, then cancels.
type Dispatcher interface {
	// Submit enqueues one payload and returns its job id.
	Submit(p Payload) (string, error)
	// Status snapshots a job's lifecycle state and progress stage.
	Status(id string) (Status, error)
	// Result returns the finished job's value or its failure error.
	Result(id string) (any, error)
	// Metrics snapshots queue depth, throughput and latency counters.
	Metrics() Metrics
	// Close shuts the backend down, draining within ctx.
	Close(ctx context.Context) error
}

// JobFilter selects jobs for a history listing.
type JobFilter struct {
	// State keeps only jobs in this lifecycle state; "" keeps all.
	State State
	// Limit truncates the listing after this many jobs; 0 means no limit.
	Limit int
	// AfterCreated/AfterID resume a listing strictly after the job at this
	// position in the shared newest-first order — the pagination cursor.
	// Because the position is by value (creation time + id), not an
	// offset, it stays stable when jobs ahead of it are TTL-evicted
	// between pages. The zero values disable the cursor.
	AfterCreated time.Time
	AfterID      string
}

// HasCursor reports whether the filter carries a pagination cursor.
func (f JobFilter) HasCursor() bool {
	return f.AfterID != "" || !f.AfterCreated.IsZero()
}

// AfterCursor reports whether a job at (created, id) sorts strictly after
// the filter's cursor position in the newest-first order SortStatuses
// defines (creation time descending, ties by ascending id). Always true
// without a cursor.
func (f JobFilter) AfterCursor(created time.Time, id string) bool {
	if !f.HasCursor() {
		return true
	}
	if !created.Equal(f.AfterCreated) {
		return created.Before(f.AfterCreated)
	}
	return id > f.AfterID
}

// Lister is the optional listing capability of a Dispatcher: a snapshot of
// the known jobs, newest-first by creation time. The server's GET /v1/jobs
// history endpoint uses it when the backend offers it; both the Manager
// (whose journal-backed table survives restarts) and the remote dispatcher
// implement it.
type Lister interface {
	// Jobs lists the jobs matching f, newest-first.
	Jobs(f JobFilter) []Status
}

// Watcher is the optional streaming capability of a Dispatcher: a live,
// ordered feed of one job's lifecycle and per-stage progress events. The
// server's GET /v1/jobs/{id}/events SSE route and the library's
// JobQueue.Watch use it when the backend offers it. The Manager serves it
// from its event hub; the remote dispatcher proxies the stream from the
// job's worker node, falling back to polling-backed synthetic events when
// the stream cannot be (re)established.
type Watcher interface {
	// Watch streams the job's events after sequence number afterSeq (0 =
	// from the beginning, subject to the hub's retained history). The
	// channel closes after the terminal event, on ctx cancellation, or on
	// backend shutdown. Unknown ids return ErrNotFound; a saturated event
	// bus returns events.ErrTooManySubscribers (retryable).
	Watch(ctx context.Context, id string, afterSeq uint64) (<-chan events.Event, error)
}

// EventSource is the optional firehose capability of a Dispatcher: access
// to the event hub carrying every job's events, for the global
// GET /v1/events dashboard feed.
type EventSource interface {
	// EventHub returns the backend's event hub.
	EventHub() *events.Hub
}

// Tracer is the optional tracing capability of a Dispatcher: the per-job
// span tree behind GET /v1/jobs/{id}/trace. The Manager serves the trace
// it recorded in-process; the remote dispatcher returns its own dispatch
// spans with the worker node's tree grafted underneath. Terminal jobs
// whose live trace died with a restart (journal-replayed records) are
// served as a minimal stub with Replayed set; a replayed job still
// awaiting its re-run returns ErrNotFound.
type Tracer interface {
	// Trace returns the job's span tree snapshot.
	Trace(id string) (*obs.TraceDoc, error)
}

// TracedSubmitter is the optional trace-propagation capability of a
// Dispatcher: Submit with an inbound parent span context, the receiving
// half of the traceparent header carried on dispatch fan-out. The zero
// SpanContext is valid and starts a fresh trace, making SubmitTraced a
// strict generalisation of Submit.
type TracedSubmitter interface {
	// SubmitTraced enqueues one payload under the given remote parent.
	SubmitTraced(p Payload, parent obs.SpanContext) (string, error)
}

// Manager is the canonical in-process Dispatcher, Lister, Watcher,
// EventSource, Tracer, TracedSubmitter and HealthReporter.
var (
	_ Dispatcher      = (*Manager)(nil)
	_ Lister          = (*Manager)(nil)
	_ Watcher         = (*Manager)(nil)
	_ EventSource     = (*Manager)(nil)
	_ Tracer          = (*Manager)(nil)
	_ TracedSubmitter = (*Manager)(nil)
	_ HealthReporter  = (*Manager)(nil)
)
