package jobs

import "context"

// Dispatcher is the job-execution seam: everything the web service and the
// public JobQueue need from a job backend, abstracted from how and where
// the work runs. The in-process Manager (bounded queue + worker pool over
// an Executor) is the default implementation; the remote HTTP fan-out
// dispatcher (internal/dispatch) replaces it without touching the
// submit/poll lifecycle, the HTTP surface or the /metrics schema — payloads
// are data, so they serialise to worker nodes as JSON.
//
// Contract, matching Manager's behaviour:
//
//   - Submit never blocks: a saturated backend returns ErrQueueFull
//     (retryable — see Retryable, RetryAfterHint), a shut-down backend
//     ErrClosed;
//   - Status and Result return ErrNotFound for unknown or expired ids, and
//     Result returns ErrNotFinished while the job is queued or running;
//   - Close stops intake, drains accepted work within ctx, then cancels.
type Dispatcher interface {
	// Submit enqueues one payload and returns its job id.
	Submit(p Payload) (string, error)
	// Status snapshots a job's lifecycle state and progress stage.
	Status(id string) (Status, error)
	// Result returns the finished job's value or its failure error.
	Result(id string) (any, error)
	// Metrics snapshots queue depth, throughput and latency counters.
	Metrics() Metrics
	// Close shuts the backend down, draining within ctx.
	Close(ctx context.Context) error
}

// Manager is the canonical in-process Dispatcher.
var _ Dispatcher = (*Manager)(nil)
