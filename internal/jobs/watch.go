package jobs

import (
	"context"

	"github.com/sljmotion/sljmotion/internal/events"
)

// EventHub exposes the manager's event hub (the EventSource capability)
// for the global dashboard feed.
func (m *Manager) EventHub() *events.Hub { return m.hub }

// Watch streams one job's lifecycle and per-stage progress events
// (the Watcher capability). Events arrive in per-job sequence order;
// afterSeq resumes after that sequence number — the hub replays its
// retained history past it, or opens with a snapshot when the gap is no
// longer covered. The channel closes after the terminal event (done,
// failed or evicted), when ctx is cancelled, or when the manager shuts
// down. Unknown or expired ids return ErrNotFound.
func (m *Manager) Watch(ctx context.Context, id string, afterSeq uint64) (<-chan events.Event, error) {
	// Subscribe before the existence check: an eviction between the two
	// is then delivered as an event instead of leaving the subscriber
	// waiting on a job the hub already forgot.
	sub, err := m.hub.Subscribe(id, afterSeq)
	if err != nil {
		return nil, err
	}
	if _, err := m.Status(id); err != nil {
		sub.Close()
		return nil, err
	}
	ch := make(chan events.Event, 16)
	go func() {
		defer close(ch)
		defer sub.Close()
		for {
			e, err := sub.Next(ctx)
			if err != nil {
				return
			}
			select {
			case ch <- e:
			case <-ctx.Done():
				return
			}
			if e.Terminal() {
				return
			}
		}
	}()
	return ch, nil
}
