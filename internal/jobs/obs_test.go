package jobs

// Tests for the Manager's observability plane: the replayed-trace stub on
// journal-restored jobs, per-job resource accounting in the status
// document, SLO observation on terminal transitions, the queue-stall
// health watchdog, and the DisableObservability switch.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/obs"
)

// TestReplayedTraceStub: a journal-restored terminal job lost its live
// span tree with the old process; its trace route must answer a minimal
// stub marked replayed, with stable ids and the original timestamps —
// and an interrupted job still pending its re-run must answer ErrNotFound
// until it finishes.
func TestReplayedTraceStub(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	jrn := &memJournal{}
	m1, err := New(Config{Workers: 1, QueueSize: 4, Clock: clk.Now, Journal: jrn}, routeExec{
		"ok": func(context.Context, Payload, func(string)) (any, error) { return 1, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(kind("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	st1, _ := m1.Status(id)

	// The live manager served a real trace; the restarted one cannot.
	m2, err := New(Config{Workers: 1, QueueSize: 4, Clock: clk.Now, Journal: jrn}, routeExec{
		"ok": func(context.Context, Payload, func(string)) (any, error) {
			t.Error("restored done job re-ran")
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())

	doc, err := m2.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Replayed {
		t.Error("restored trace not marked replayed")
	}
	if doc.JobID != id {
		t.Errorf("stub job_id = %q, want %q", doc.JobID, id)
	}
	if len(doc.TraceID) != 32 {
		t.Errorf("stub trace_id %q is not 32 hex chars", doc.TraceID)
	}
	if doc.Root == nil || doc.Root.Name != "job" {
		t.Fatalf("stub root = %+v, want the job span", doc.Root)
	}
	if doc.Root.Attrs["replayed"] != "true" {
		t.Errorf("stub root attrs = %v, want replayed=true", doc.Root.Attrs)
	}
	if got := doc.Root.StartUnixNS; got != st1.CreatedAt.UnixNano() {
		t.Errorf("stub start %d, want the journaled creation time %d", got, st1.CreatedAt.UnixNano())
	}
	wantDur := float64(st1.FinishedAt.Sub(st1.CreatedAt)) / float64(time.Millisecond)
	if doc.Root.DurationMS != wantDur {
		t.Errorf("stub duration %.3fms, want %.3fms", doc.Root.DurationMS, wantDur)
	}

	// Repeated fetches are stable: derived ids, not random ones.
	again, err := m2.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if again.TraceID != doc.TraceID || again.Root.SpanID != doc.Root.SpanID {
		t.Error("replayed stub ids not stable across fetches")
	}
}

// TestReplayedPendingJobTraceNotFound: an interrupted job re-enqueued by
// replay answers ErrNotFound while pending, and the replayed stub once
// its re-run reaches a terminal state.
func TestReplayedPendingJobTraceNotFound(t *testing.T) {
	jrn := &memJournal{}
	block := make(chan struct{})
	m1, err := New(Config{Workers: 1, QueueSize: 4, Journal: jrn}, routeExec{
		"slow": func(ctx context.Context, _ Payload, _ func(string)) (any, error) {
			select {
			case <-block:
				return 1, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(kind("slow"))
	if err != nil {
		t.Fatal(err)
	}
	// Hard-cancel the close: the job stays interrupted in the journal.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m1.Close(ctx)

	release := make(chan struct{})
	m2, err := New(Config{Workers: 1, QueueSize: 4, Journal: jrn}, routeExec{
		"slow": func(ctx context.Context, _ Payload, _ func(string)) (any, error) {
			select {
			case <-release:
				return 1, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())

	if _, err := m2.Trace(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("trace of a replayed pending job = %v, want ErrNotFound", err)
	}
	close(release)
	waitFor(t, "replayed job to finish", func() bool {
		st, err := m2.Status(id)
		return err == nil && st.State.Terminal()
	})
	doc, err := m2.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Replayed {
		t.Error("re-run replayed job's trace not marked replayed")
	}
}

// TestStatusCarriesResources: a finished job's status reports the
// CPU/allocation cost measured around its execution.
func TestStatusCarriesResources(t *testing.T) {
	m, err := New(Config{Workers: 1, QueueSize: 2}, routeExec{
		"alloc": func(context.Context, Payload, func(string)) (any, error) {
			hold := make([][]byte, 32)
			for i := range hold {
				hold[i] = make([]byte, 64<<10)
			}
			return len(hold), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	id, err := m.Submit(kind("alloc"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateDone
	})
	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Resources == nil {
		t.Fatal("finished job has no resources section")
	}
	if st.Resources.HeapAllocBytes < 1<<20 {
		t.Errorf("heap_alloc_bytes = %d, want >= 1MiB after a 2MiB allocation", st.Resources.HeapAllocBytes)
	}
	if st.Resources.CPUUserMS < 0 || st.Resources.CPUSystemMS < 0 {
		t.Errorf("negative CPU accounting: %+v", st.Resources)
	}
}

// TestSLOObservedOnTerminal: every terminal job feeds the configured SLO
// tracker — successes as good, failures as budget burn.
func TestSLOObservedOnTerminal(t *testing.T) {
	slo := obs.NewSLO(time.Minute, 0.99)
	m, err := New(Config{Workers: 1, QueueSize: 4, SLO: slo}, routeExec{
		"ok":   func(context.Context, Payload, func(string)) (any, error) { return 1, nil },
		"boom": func(context.Context, Payload, func(string)) (any, error) { return nil, errors.New("nope") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	for _, k := range []string{"ok", "ok", "boom"} {
		if _, err := m.Submit(kind(k)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "slo observations", func() bool {
		total, _ := slo.Window(obs.SLOWindowShort)
		return total == 3
	})
	total, bad := slo.Window(obs.SLOWindowShort)
	if total != 3 || bad != 1 {
		t.Errorf("slo window = (%d, %d), want (3, 1)", total, bad)
	}
	if burn := slo.Burn(obs.SLOWindowShort); burn < 33 || burn > 34 {
		t.Errorf("burn = %v, want ~33.3 (1/3 bad over a 0.01 budget)", burn)
	}
}

// TestQueueStallComponentHealth: the queue component degrades when the
// oldest queued job waits past the stall threshold, and recovers when the
// queue drains.
func TestQueueStallComponentHealth(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	release := make(chan struct{})
	m, err := New(Config{Workers: 1, QueueSize: 2, Clock: clk.Now, StallAfter: 30 * time.Second}, routeExec{
		"slow": func(ctx context.Context, _ Payload, _ func(string)) (any, error) {
			select {
			case <-release:
				return 1, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	// First job occupies the lone worker, second sits queued.
	if _, err := m.Submit(kind("slow")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job running", func() bool { return m.Metrics().Running == 1 })
	if _, err := m.Submit(kind("slow")); err != nil {
		t.Fatal(err)
	}

	if h := m.ComponentHealth()["queue"]; h.Status != HealthOK {
		t.Fatalf("queue health before the threshold = %+v, want ok", h)
	}
	clk.Advance(31 * time.Second)
	h := m.ComponentHealth()["queue"]
	if h.Status != HealthDegraded {
		t.Fatalf("queue health past the threshold = %+v, want degraded", h)
	}
	if !strings.Contains(h.Reason, "stalled") {
		t.Errorf("degraded reason %q does not mention the stall", h.Reason)
	}

	close(release)
	waitFor(t, "queue drained", func() bool {
		mt := m.Metrics()
		return mt.Completed == 2
	})
	if h := m.ComponentHealth()["queue"]; h.Status != HealthOK {
		t.Errorf("queue health after draining = %+v, want ok", h)
	}
}

// TestDisableObservability: the switch strips jobs of their trace and
// resources without touching the job lifecycle itself.
func TestDisableObservability(t *testing.T) {
	m, err := New(Config{Workers: 1, QueueSize: 2, DisableObservability: true}, routeExec{
		"ok": func(context.Context, Payload, func(string)) (any, error) { return 1, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	id, err := m.Submit(kind("ok"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateDone
	})
	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Resources != nil {
		t.Errorf("resources present with observability disabled: %+v", st.Resources)
	}
	if _, err := m.Trace(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("trace with observability disabled = %v, want ErrNotFound", err)
	}
}
