// Package jobs is the asynchronous analysis job manager behind the web
// service's non-blocking upload path. The paper's Section 6 future work — a
// web system where users upload a jump clip and read advice back — needs
// analyses that can take seconds (a GA fit per frame) to run off the request
// path: a request submits a job into a bounded queue, a fixed worker pool
// drains it, and the client polls the job until it is done.
//
// A job is *data*, not a closure: Submit takes a serializable Payload and
// the Manager runs it through the Executor it was constructed with. The
// payload/executor split is what lets work leave the process — the same
// Payload the in-process Manager executes locally is what the remote
// dispatcher (internal/dispatch) posts to a worker node as JSON.
//
// Semantics:
//
//   - bounded submission queue: Submit never blocks; a full queue returns
//     ErrQueueFull (retryable backpressure, HTTP 503 at the server);
//   - lifecycle: queued → running → done | failed, with the running stage
//     label (segmentation / pose / tracking / scoring) exposed for polling;
//   - TTL-based result eviction: finished jobs are dropped ResultTTL after
//     completion, lazily on access and by a background janitor;
//   - graceful shutdown: Close stops intake, drains queued work, and
//     hard-cancels in-flight tasks via their context when the shutdown
//     context expires.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job lifecycle state.
type State string

// Job lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Sentinel errors.
var (
	// ErrQueueFull is the backpressure signal: the submission queue is at
	// capacity. It is retryable — clients should back off and resubmit.
	ErrQueueFull = errors.New("jobs: queue full, retry later")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound marks an unknown or TTL-evicted job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotFinished is returned by Result while the job is queued/running.
	ErrNotFinished = errors.New("jobs: job not finished")
)

// Retryable reports whether the error is transient backpressure the caller
// should retry after a delay.
func Retryable(err error) bool { return errors.Is(err, ErrQueueFull) }

// retryAfterer is implemented by backpressure errors that carry an explicit
// retry delay (the remote dispatcher propagates a worker node's Retry-After
// header this way).
type retryAfterer interface{ RetryAfterSeconds() int }

// RetryAfterHint extracts the retry delay carried by a retryable error, in
// seconds, or def when the error carries none.
func RetryAfterHint(err error, def int) int {
	var ra retryAfterer
	if errors.As(err, &ra) {
		if s := ra.RetryAfterSeconds(); s > 0 {
			return s
		}
	}
	return def
}

// Config parameterises a Manager.
type Config struct {
	// Workers is the analysis worker pool size (>= 1).
	Workers int
	// QueueSize is the number of jobs that may wait beyond the ones being
	// executed; 0 means a submission is accepted only when a worker can
	// receive it immediately.
	QueueSize int
	// ResultTTL evicts finished jobs this long after completion; 0 keeps
	// them until shutdown (unbounded — intended for tests only).
	ResultTTL time.Duration
	// Clock overrides time.Now, a test seam for TTL eviction.
	Clock func() time.Time
}

// DefaultConfig returns a small service-oriented configuration.
func DefaultConfig() Config {
	return Config{Workers: 2, QueueSize: 16, ResultTTL: 15 * time.Minute}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("jobs: Workers must be >= 1, got %d", c.Workers)
	}
	if c.QueueSize < 0 {
		return fmt.Errorf("jobs: QueueSize must be >= 0, got %d", c.QueueSize)
	}
	if c.ResultTTL < 0 {
		return fmt.Errorf("jobs: ResultTTL must be >= 0, got %v", c.ResultTTL)
	}
	return nil
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Stage is the pipeline stage currently executing (running jobs only).
	Stage     string    `json:"stage,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// StartedAt/FinishedAt are nil until the job reaches that point
	// (pointers so the JSON omits them instead of a zero timestamp).
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Err carries the failure message of failed jobs.
	Err string `json:"error,omitempty"`
}

// LatencyStats summarise a sample of durations in milliseconds.
type LatencyStats struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Metrics is a point-in-time snapshot of the manager.
type Metrics struct {
	Workers       int    `json:"workers"`
	QueueCapacity int    `json:"queue_capacity"`
	QueueDepth    int    `json:"queue_depth"`
	Running       int    `json:"running"`
	Submitted     uint64 `json:"jobs_submitted"`
	Rejected      uint64 `json:"jobs_rejected"`
	Completed     uint64 `json:"jobs_completed"`
	Failed        uint64 `json:"jobs_failed"`
	Evicted       uint64 `json:"jobs_evicted"`
	// Run is the payload execution latency of finished jobs; Wait the time
	// jobs spent queued before a worker picked them up.
	Run  LatencyStats `json:"run_latency"`
	Wait LatencyStats `json:"queue_wait"`
	// Nodes carries per-worker-node counters when the backend is a remote
	// dispatcher; the in-process Manager omits it, keeping the /metrics
	// document byte-compatible with earlier releases.
	Nodes []NodeMetrics `json:"nodes,omitempty"`
}

// NodeMetrics is one worker node's view inside a remote dispatcher.
type NodeMetrics struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Submitted counts payloads accepted by the node; Rejected its 503
	// backpressure answers; Completed/Failed terminal results observed by
	// the dispatcher; CacheHits submissions the node answered directly from
	// its result cache without enqueueing a job.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	CacheHits uint64 `json:"cache_hits"`
	// LastError is the most recent transport/health failure, for operators.
	LastError string `json:"last_error,omitempty"`
}

// latencySample bounds the memory of the latency window (a ring of the most
// recent finished jobs; enough for stable p95 under steady load).
const latencySample = 256

// job is the internal record; all fields are guarded by Manager.mu once the
// job is registered.
type job struct {
	id       string
	payload  Payload
	state    State
	stage    string
	created  time.Time
	started  time.Time
	finished time.Time
	result   any
	err      error
}

// Manager owns the queue, the worker pool and the job table.
type Manager struct {
	cfg   Config
	exec  Executor
	clock func() time.Time

	runCtx  context.Context
	cancel  context.CancelFunc
	queue   chan *job
	workers sync.WaitGroup
	janitor sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	closed  bool
	running int

	submitted uint64
	rejected  uint64
	completed uint64
	failed    uint64
	evicted   uint64
	runLat    []time.Duration // ring, most recent latencySample entries
	waitLat   []time.Duration
	latIdx    int
}

// New starts a manager executing payloads through exec: Workers goroutines
// draining the queue plus, when a TTL is set, a janitor goroutine evicting
// expired results.
func New(cfg Config, exec Executor) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if exec == nil {
		return nil, errNoExecutor
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg,
		exec:   exec,
		clock:  clock,
		runCtx: ctx,
		cancel: cancel,
		queue:  make(chan *job, cfg.QueueSize),
		jobs:   make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	if cfg.ResultTTL > 0 {
		m.janitor.Add(1)
		go m.runJanitor()
	}
	return m, nil
}

// Config returns the manager configuration.
func (m *Manager) Config() Config { return m.cfg }

// Submit enqueues a payload and returns its job id. It never blocks: a full
// queue returns ErrQueueFull, a closed manager ErrClosed.
func (m *Manager) Submit(p Payload) (string, error) {
	id, err := newID()
	if err != nil {
		return "", err
	}
	now := m.clock()
	j := &job{id: id, payload: p, state: StateQueued, created: now}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	select {
	case m.queue <- j:
		m.jobs[id] = j
		m.submitted++
		m.sweepLocked(now)
		return id, nil
	default:
		m.rejected++
		return "", ErrQueueFull
	}
}

// Status returns a snapshot of the job, or ErrNotFound for unknown/expired
// ids.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.clock())
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshotLocked(), nil
}

// Result returns the job's result value once it is done. While the job is
// queued or running it returns ErrNotFinished; for failed jobs it returns
// the task's error.
func (m *Manager) Result(id string) (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.clock())
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, j.err
	default:
		return nil, ErrNotFinished
	}
}

// Metrics returns a consistent snapshot of queue depth, throughput counters
// and latency statistics.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.clock())
	return Metrics{
		Workers:       m.cfg.Workers,
		QueueCapacity: m.cfg.QueueSize,
		QueueDepth:    len(m.queue),
		Running:       m.running,
		Submitted:     m.submitted,
		Rejected:      m.rejected,
		Completed:     m.completed,
		Failed:        m.failed,
		Evicted:       m.evicted,
		Run:           Summarise(m.runLat),
		Wait:          Summarise(m.waitLat),
	}
}

// Close shuts the manager down: intake stops immediately (ErrClosed), queued
// jobs are drained and executed, and if ctx expires before the drain
// completes, in-flight tasks are hard-cancelled through their context. The
// janitor always stops. Close is idempotent; later calls just wait again.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Cancel tasks still running past the deadline (no-op on clean drain)
	// and stop the janitor.
	m.cancel()
	m.janitor.Wait()
	return err
}

// worker drains the queue until it is closed and empty.
func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		m.execute(j)
	}
}

// execute runs one job through its lifecycle.
func (m *Manager) execute(j *job) {
	start := m.clock()
	m.mu.Lock()
	j.state = StateRunning
	j.started = start
	m.running++
	m.mu.Unlock()

	progress := func(stage string) {
		m.mu.Lock()
		j.stage = stage
		m.mu.Unlock()
	}
	val, err := m.exec.Execute(m.runCtx, j.payload, progress)

	now := m.clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	j.finished = now
	j.stage = ""
	j.payload = Payload{} // release the payload (it may pin a whole clip)
	if err != nil {
		j.state = StateFailed
		j.err = err
		m.failed++
	} else {
		j.state = StateDone
		j.result = val
		m.completed++
	}
	m.recordLocked(now.Sub(start), start.Sub(j.created))
}

// runJanitor periodically evicts expired results so memory stays bounded
// even when nobody polls.
func (m *Manager) runJanitor() {
	defer m.janitor.Done()
	interval := m.cfg.ResultTTL / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.runCtx.Done():
			return
		case <-t.C:
			m.mu.Lock()
			m.sweepLocked(m.clock())
			m.mu.Unlock()
		}
	}
}

// sweepLocked evicts finished jobs older than the TTL. Caller holds mu.
func (m *Manager) sweepLocked(now time.Time) {
	if m.cfg.ResultTTL <= 0 {
		return
	}
	for id, j := range m.jobs {
		if j.state.Terminal() && now.Sub(j.finished) >= m.cfg.ResultTTL {
			delete(m.jobs, id)
			m.evicted++
		}
	}
}

// recordLocked appends to the latency rings. Caller holds mu.
func (m *Manager) recordLocked(run, wait time.Duration) {
	if len(m.runLat) < latencySample {
		m.runLat = append(m.runLat, run)
		m.waitLat = append(m.waitLat, wait)
		return
	}
	m.runLat[m.latIdx] = run
	m.waitLat[m.latIdx] = wait
	m.latIdx = (m.latIdx + 1) % latencySample
}

// snapshotLocked copies the job's visible state. Caller holds mu.
func (j *job) snapshotLocked() Status {
	s := Status{
		ID:        j.id,
		State:     j.state,
		Stage:     j.stage,
		CreatedAt: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// Summarise computes latency statistics over a sample window of
// durations. It is shared by the Manager and the remote dispatcher so both
// backends report the same statistics shape.
func Summarise(sample []time.Duration) LatencyStats {
	if len(sample) == 0 {
		return LatencyStats{}
	}
	sorted := make([]time.Duration, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return LatencyStats{
		Count:  len(sorted),
		MeanMS: ms(sum) / float64(len(sorted)),
		P50MS:  ms(pct(0.50)),
		P95MS:  ms(pct(0.95)),
		MaxMS:  ms(sorted[len(sorted)-1]),
	}
}

// newID returns a 16-hex-char random job id.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: id generation: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
