// Package jobs is the asynchronous analysis job manager behind the web
// service's non-blocking upload path. The paper's Section 6 future work — a
// web system where users upload a jump clip and read advice back — needs
// analyses that can take seconds (a GA fit per frame) to run off the request
// path: a request submits a job into a bounded queue, a fixed worker pool
// drains it, and the client polls the job until it is done.
//
// A job is *data*, not a closure: Submit takes a serializable Payload and
// the Manager runs it through the Executor it was constructed with. The
// payload/executor split is what lets work leave the process — the same
// Payload the in-process Manager executes locally is what the remote
// dispatcher (internal/dispatch) posts to a worker node as JSON.
//
// Semantics:
//
//   - bounded submission queue: Submit never blocks; a full queue returns
//     ErrQueueFull (retryable backpressure, HTTP 503 at the server);
//   - lifecycle: queued → running → done | failed, with the running stage
//     label (segmentation / pose / tracking / scoring) exposed for polling;
//   - TTL-based result eviction: finished jobs are dropped ResultTTL after
//     completion, lazily on access and by a background janitor;
//   - graceful shutdown: Close stops intake, drains queued work, and
//     hard-cancels in-flight tasks via their context when the shutdown
//     context expires.
package jobs

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/obs"
)

// Latency histograms feeding the Prometheus export, registered once so
// the per-job cost is a few atomic adds.
var (
	queueWaitSeconds = obs.Default.Histogram("slj_job_queue_wait_seconds",
		"Time jobs sat queued before a worker picked them up, in seconds.", obs.DefBuckets)
	runSeconds = obs.Default.Histogram("slj_job_run_seconds",
		"Payload execution time of finished jobs, in seconds.", obs.DefBuckets)
)

// State is a job lifecycle state.
type State string

// Job lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Sentinel errors.
var (
	// ErrQueueFull is the backpressure signal: the submission queue is at
	// capacity. It is retryable — clients should back off and resubmit.
	ErrQueueFull = errors.New("jobs: queue full, retry later")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound marks an unknown or TTL-evicted job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotFinished is returned by Result while the job is queued/running.
	ErrNotFinished = errors.New("jobs: job not finished")
)

// Retryable reports whether the error is transient backpressure the caller
// should retry after a delay.
func Retryable(err error) bool { return errors.Is(err, ErrQueueFull) }

// retryAfterer is implemented by backpressure errors that carry an explicit
// retry delay (the remote dispatcher propagates a worker node's Retry-After
// header this way).
type retryAfterer interface{ RetryAfterSeconds() int }

// RetryAfterHint extracts the retry delay carried by a retryable error, in
// seconds, or def when the error carries none.
func RetryAfterHint(err error, def int) int {
	var ra retryAfterer
	if errors.As(err, &ra) {
		if s := ra.RetryAfterSeconds(); s > 0 {
			return s
		}
	}
	return def
}

// Config parameterises a Manager.
type Config struct {
	// Workers is the analysis worker pool size (>= 1).
	Workers int
	// QueueSize is the number of jobs that may wait beyond the ones being
	// executed; 0 means a submission is accepted only when a worker can
	// receive it immediately.
	QueueSize int
	// ResultTTL evicts finished jobs this long after completion; 0 keeps
	// them until shutdown (unbounded — intended for tests only).
	ResultTTL time.Duration
	// Clock overrides time.Now, a test seam for TTL eviction.
	Clock func() time.Time
	// Journal, when set, makes the job table durable: every submission,
	// state transition and eviction is appended to it, and New replays the
	// log before the workers start — interrupted queued/running jobs are
	// re-enqueued and re-executed, terminal results are restored with
	// their original timestamps, evicted records are skipped. Replayed
	// pending jobs go to a backlog drained ahead of the queue, so recovery
	// never drops work and the QueueSize bound on new submissions is
	// unchanged.
	Journal Journal
	// Events, when set, is the hub every job lifecycle transition and
	// per-stage progress tick is published into (and Watch subscriptions
	// are served from). When nil, New creates one with
	// events.DefaultConfig(), so streaming always works on the in-process
	// backend. The Manager closes the hub on Close either way.
	Events *events.Hub
	// Log receives structured lifecycle logs, every line correlated by
	// job_id (and trace_id once the job carries a trace). Nil discards.
	Log *slog.Logger
	// SLO, when set, receives one observation per terminal job: the
	// end-to-end latency (enqueue to finish) and whether it succeeded,
	// feeding the burn-rate gauges. Nil disables SLI tracking.
	SLO *obs.SLO
	// StallAfter is the queue-stall watchdog threshold: when the oldest
	// queued job has waited longer than this, the manager's queue health
	// component reports degraded. 0 means DefaultStallAfter.
	StallAfter time.Duration
	// DisableObservability turns off per-job tracing and resource
	// accounting (jobs carry no span tree and no resources section). The
	// benchmark's overhead section uses it; services leave it off.
	DisableObservability bool
}

// DefaultConfig returns a small service-oriented configuration.
func DefaultConfig() Config {
	return Config{Workers: 2, QueueSize: 16, ResultTTL: 15 * time.Minute}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("jobs: Workers must be >= 1, got %d", c.Workers)
	}
	if c.QueueSize < 0 {
		return fmt.Errorf("jobs: QueueSize must be >= 0, got %d", c.QueueSize)
	}
	if c.ResultTTL < 0 {
		return fmt.Errorf("jobs: ResultTTL must be >= 0, got %v", c.ResultTTL)
	}
	return nil
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Stage is the pipeline stage currently executing (running jobs only).
	Stage     string    `json:"stage,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// StartedAt/FinishedAt are nil until the job reaches that point
	// (pointers so the JSON omits them instead of a zero timestamp).
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// QueueWaitMS is how long the job sat queued before a worker picked it
	// up; RunMS how long its execution took. Both are the per-job samples
	// feeding the aggregate queue_wait / run_latency metrics, surfaced so
	// a history listing explains individual jobs, not just the fleet.
	// Omitted until the job reaches the relevant point.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	RunMS       float64 `json:"run_ms,omitempty"`
	// Resources is the measured cost of the job's execution — CPU-time and
	// heap-allocation deltas sampled around the payload run — present once
	// the job finished (and accounting was not disabled).
	Resources *obs.ResourceUsage `json:"resources,omitempty"`
	// Err carries the failure message of failed jobs.
	Err string `json:"error,omitempty"`
}

// LatencyStats summarise a sample of durations in milliseconds.
type LatencyStats struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Metrics is a point-in-time snapshot of the manager.
type Metrics struct {
	Workers       int    `json:"workers"`
	QueueCapacity int    `json:"queue_capacity"`
	QueueDepth    int    `json:"queue_depth"`
	Running       int    `json:"running"`
	Submitted     uint64 `json:"jobs_submitted"`
	Rejected      uint64 `json:"jobs_rejected"`
	Completed     uint64 `json:"jobs_completed"`
	Failed        uint64 `json:"jobs_failed"`
	Evicted       uint64 `json:"jobs_evicted"`
	// JournalFailures counts journal appends that errored after the job
	// was accepted (the durability guarantee is degraded until the sink
	// recovers). Omitted — and always zero — without a journal, keeping
	// the document byte-compatible with earlier releases.
	JournalFailures uint64 `json:"journal_append_failures,omitempty"`
	// Run is the payload execution latency of finished jobs; Wait the time
	// jobs spent queued before a worker picked them up.
	Run  LatencyStats `json:"run_latency"`
	Wait LatencyStats `json:"queue_wait"`
	// Nodes carries per-worker-node counters when the backend is a remote
	// dispatcher; the in-process Manager omits it, keeping the /metrics
	// document byte-compatible with earlier releases.
	Nodes []NodeMetrics `json:"nodes,omitempty"`
	// MembershipEpoch is the dispatch fleet's membership version (starts at
	// 1, bumps on every join/drain/weight change/removal); Failovers counts
	// submissions or recoveries served by a node other than the key's
	// primary ring owner. Both omitted for the in-process Manager.
	MembershipEpoch uint64 `json:"membership_epoch,omitempty"`
	Failovers       uint64 `json:"dispatch_failovers,omitempty"`
}

// NodeMetrics is one worker node's view inside a remote dispatcher.
type NodeMetrics struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Submitted counts payloads accepted by the node; Rejected its 503
	// backpressure answers; Completed/Failed terminal results observed by
	// the dispatcher; CacheHits submissions the node answered directly from
	// its result cache without enqueueing a job.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	CacheHits uint64 `json:"cache_hits"`
	// Weight scales the node's share of the hash ring (vnode count); 1 for
	// fleets that never set weights, omitted when zero for byte-compat.
	Weight int `json:"weight,omitempty"`
	// Draining marks a node excluded from new-key routing while its running
	// jobs finish; it is removed from the fleet when none remain.
	Draining bool `json:"draining,omitempty"`
	// LastError is the most recent transport/health failure, for operators.
	LastError string `json:"last_error,omitempty"`
}

// latencySample bounds the memory of the latency window (a ring of the most
// recent finished jobs; enough for stable p95 under steady load).
const latencySample = 256

// job is the internal record; all fields are guarded by Manager.mu once the
// job is registered.
type job struct {
	id      string
	payload Payload
	state   State
	stage   string
	created time.Time
	// enqueued is when the job entered THIS process's queue — creation
	// time normally, replay time for journal-recovered jobs — so the
	// queue_wait metric never counts restart downtime as queueing.
	enqueued time.Time
	started  time.Time
	finished time.Time
	result   any
	err      error
	// aborted marks a job whose submit record could not be journaled: it
	// was already handed to the queue (the send is not undoable), so the
	// worker drops it instead of executing unjournaled work.
	aborted bool
	// trace is the job's span tree, rooted at submission; queueSpan is the
	// open queue-wait child the picking worker closes. Both nil for
	// journal-replayed jobs (their live spans died with the old process)
	// — Trace answers a minimal replayed stub for those once terminal.
	// The trace is evicted with the record, so trace memory is bounded by
	// the job table.
	trace     *obs.Trace
	root      *obs.Span
	queueSpan *obs.Span
	// resources is the execution's measured cost, stamped at terminal.
	resources *obs.ResourceUsage
}

// Manager owns the queue, the worker pool and the job table.
type Manager struct {
	cfg   Config
	exec  Executor
	clock func() time.Time
	hub   *events.Hub
	log   *slog.Logger

	runCtx  context.Context
	cancel  context.CancelFunc
	queue   chan *job
	workers sync.WaitGroup
	janitor sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*job
	// backlog holds journal-replayed pending jobs; workers drain it ahead
	// of the queue, so recovery never drops accepted work while the
	// channel keeps its configured capacity — the backpressure bound on
	// NEW submissions is unchanged by a restart.
	backlog []*job
	closed  bool
	running int

	submitted     uint64
	rejected      uint64
	completed     uint64
	failed        uint64
	evicted       uint64
	journalFailed uint64
	runLat        []time.Duration // ring, most recent latencySample entries
	waitLat       []time.Duration
	latIdx        int
}

// New starts a manager executing payloads through exec: Workers goroutines
// draining the queue plus, when a TTL is set, a janitor goroutine evicting
// expired results. With a Journal configured, the log is replayed first:
// the restored job table and the re-enqueued interrupted jobs are in place
// before the first worker starts.
func New(cfg Config, exec Executor) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if exec == nil {
		return nil, errNoExecutor
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	restored, pending, err := replayJournal(cfg.Journal)
	if err != nil {
		return nil, err
	}
	hub := cfg.Events
	if hub == nil {
		hub = events.NewHub(events.DefaultConfig())
	}
	lg := cfg.Log
	if lg == nil {
		lg = obs.Discard()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		exec:    exec,
		clock:   clock,
		hub:     hub,
		log:     lg,
		runCtx:  ctx,
		cancel:  cancel,
		queue:   make(chan *job, cfg.QueueSize),
		jobs:    restored,
		backlog: pending,
	}
	for _, j := range restored {
		m.submitted++
		switch j.state {
		case StateDone:
			m.completed++
		case StateFailed:
			m.failed++
		}
		// Seed the event hub from the replayed table so restored jobs are
		// streamable: a terminal job's stream opens onto its terminal event
		// immediately (with its original timestamp), a recovered pending
		// job's onto a queued event awaiting its re-run.
		switch {
		case j.state == StateDone:
			hub.Publish(events.Event{Type: events.TypeDone, JobID: j.id, At: j.finished, State: string(StateDone)})
		case j.state == StateFailed:
			hub.Publish(events.Event{Type: events.TypeFailed, JobID: j.id, At: j.finished, State: string(StateFailed), Error: j.err.Error()})
		default:
			hub.Publish(events.Event{Type: events.TypeQueued, JobID: j.id, At: j.created, State: string(StateQueued)})
		}
	}
	// Recovered pending jobs enter this process's queue now: their
	// queue_wait must not count the downtime between crash and restart.
	for _, j := range pending {
		j.enqueued = clock()
	}
	for i := 0; i < cfg.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	if cfg.ResultTTL > 0 {
		m.janitor.Add(1)
		go m.runJanitor()
	}
	return m, nil
}

// replayJournal rebuilds the job table from the journal: the map of every
// live job plus, in submission order, the non-terminal ones to re-enqueue.
// Interrupted jobs come back in StateQueued with their original creation
// time (their next run stamps fresh started/finished times); terminal jobs
// keep all original timestamps and their recorded result or error. A done
// record without a serialized result counts as interrupted — the work
// re-runs rather than serving a hole.
func replayJournal(jrn Journal) (map[string]*job, []*job, error) {
	table := make(map[string]*job)
	if jrn == nil {
		return table, nil, nil
	}
	var order []string
	err := jrn.Replay(func(e JournalEntry) error {
		switch e.Op {
		case OpSubmit:
			if len(e.Payload) == 0 {
				return fmt.Errorf("jobs: journal submit record %s carries no payload", e.ID)
			}
			if _, ok := table[e.ID]; ok {
				return nil // duplicate segment overlap (interrupted compaction)
			}
			var p Payload
			if err := json.Unmarshal(e.Payload, &p); err != nil {
				return fmt.Errorf("jobs: journal submit record %s: %w", e.ID, err)
			}
			// enqueued mirrors the original submission so a restored
			// terminal job's queue_wait reports the wait it really had
			// (pending jobs get this process's enqueue time instead).
			table[e.ID] = &job{id: e.ID, payload: p, state: StateQueued, created: e.At, enqueued: e.At}
			order = append(order, e.ID)
		case OpRunning:
			if j, ok := table[e.ID]; ok {
				j.started = e.At
			}
		case OpDone:
			j, ok := table[e.ID]
			if !ok || len(e.Result) == 0 {
				return nil
			}
			j.state, j.finished = StateDone, e.At
			j.result = json.RawMessage(append([]byte(nil), e.Result...))
			j.payload = Payload{}
		case OpFailed:
			if j, ok := table[e.ID]; ok {
				j.state, j.finished = StateFailed, e.At
				j.err = errors.New(e.Error)
				j.payload = Payload{}
			}
		case OpEvict:
			delete(table, e.ID)
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: journal replay: %w", err)
	}
	var pending []*job
	for _, id := range order {
		if j, ok := table[id]; ok && !j.state.Terminal() {
			j.started = time.Time{} // the re-run stamps its own start
			pending = append(pending, j)
		}
	}
	return table, pending, nil
}

// Config returns the manager configuration.
func (m *Manager) Config() Config { return m.cfg }

// Submit enqueues a payload and returns its job id. It never blocks: a full
// queue returns ErrQueueFull, a closed manager ErrClosed.
func (m *Manager) Submit(p Payload) (string, error) {
	return m.SubmitTraced(p, obs.SpanContext{})
}

// SubmitTraced is Submit carrying a remote parent span context: a worker
// node receiving a dispatched payload passes the traceparent it was posted
// so this job's span tree grafts under the front end's dispatch trace.
// The zero SpanContext starts a fresh trace.
func (m *Manager) SubmitTraced(p Payload, parent obs.SpanContext) (string, error) {
	id, err := newID()
	if err != nil {
		return "", err
	}
	// Encode the submit record's payload before taking the lock: a clip
	// payload is megabytes and every poller shares the mutex.
	var praw json.RawMessage
	if m.cfg.Journal != nil {
		if praw, err = json.Marshal(&p); err != nil {
			return "", fmt.Errorf("jobs: encode payload for journal: %w", err)
		}
	}
	now := m.clock()
	j := &job{id: id, payload: p, state: StateQueued, created: now, enqueued: now}
	if !m.cfg.DisableObservability {
		j.trace, j.root = obs.NewTraceFrom(parent, "job")
		j.root.SetAttr("job_id", id)
		j.queueSpan = j.root.Start("queue_wait")
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	select {
	case m.queue <- j:
		if m.cfg.Journal != nil {
			if jerr := m.cfg.Journal.Append(JournalEntry{Op: OpSubmit, ID: id, At: now, Payload: praw}); jerr != nil {
				// The send is not undoable, so the worker drops the job
				// instead of executing work the journal never recorded
				// (the slot frees as soon as a worker pops it). Counted:
				// this is the journal failure mode that actively rejects
				// traffic, and it must show in /metrics.
				m.journalFailed++
				j.aborted = true
				return "", fmt.Errorf("jobs: journal submit: %w", jerr)
			}
		}
		m.jobs[id] = j
		m.submitted++
		m.hub.Publish(events.Event{Type: events.TypeQueued, JobID: id, At: now, State: string(StateQueued)})
		m.log.Debug("job queued", "job_id", id, "trace_id", j.trace.TraceID())
		m.sweepLocked(now)
		return id, nil
	default:
		m.rejected++
		m.log.Warn("job rejected, queue full", "queue_capacity", m.cfg.QueueSize)
		return "", ErrQueueFull
	}
}

// Trace returns the job's span tree. Jobs submitted before the last
// restart (journal-replayed records) lost their live spans with the old
// process; once terminal they answer a minimal stub — the job span with
// its original timestamps, marked replayed — so post-restart debugging
// isn't blind. A replayed job still pending its re-run answers
// ErrNotFound until it finishes (its re-execution carries no trace).
func (m *Manager) Trace(id string) (*obs.TraceDoc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.clock())
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.trace == nil {
		// With observability disabled jobs legitimately carry no trace;
		// answering the replayed stub would mislabel them.
		if m.cfg.DisableObservability || !j.state.Terminal() {
			return nil, ErrNotFound
		}
		return replayedTraceStub(j), nil
	}
	return j.trace.Doc(id), nil
}

// replayedTraceStub reconstructs a terminal trace for a job whose span
// tree did not survive a restart. The ids are derived from the job id so
// repeated fetches are stable; the root span covers creation to finish
// with the journal's original timestamps.
func replayedTraceStub(j *job) *obs.TraceDoc {
	sum := sha256.Sum256([]byte("slj-replayed-trace:" + j.id))
	root := &obs.SpanDoc{
		Name:        "job",
		SpanID:      hex.EncodeToString(sum[16:24]),
		StartUnixNS: j.created.UnixNano(),
		DurationMS:  float64(j.finished.Sub(j.created)) / float64(time.Millisecond),
		Attrs:       map[string]string{"replayed": "true"},
	}
	return &obs.TraceDoc{
		TraceID:  hex.EncodeToString(sum[:16]),
		JobID:    j.id,
		Replayed: true,
		Root:     root,
	}
}

// Status returns a snapshot of the job, or ErrNotFound for unknown/expired
// ids.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.clock())
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshotLocked(), nil
}

// Result returns the job's result value once it is done. While the job is
// queued or running it returns ErrNotFinished; for failed jobs it returns
// the task's error.
func (m *Manager) Result(id string) (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.clock())
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, j.err
	default:
		return nil, ErrNotFinished
	}
}

// Metrics returns a consistent snapshot of queue depth, throughput counters
// and latency statistics.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.clock())
	return Metrics{
		Workers:         m.cfg.Workers,
		QueueCapacity:   m.cfg.QueueSize,
		QueueDepth:      len(m.queue) + len(m.backlog),
		Running:         m.running,
		Submitted:       m.submitted,
		Rejected:        m.rejected,
		Completed:       m.completed,
		Failed:          m.failed,
		Evicted:         m.evicted,
		JournalFailures: m.journalFailed,
		Run:             Summarise(m.runLat),
		Wait:            Summarise(m.waitLat),
	}
}

// Jobs lists the known jobs newest-first by creation time (ties broken by
// id so the order is total), filtered and truncated per f. With a journal
// configured the table — and therefore this history — survives restarts.
func (m *Manager) Jobs(f JobFilter) []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(m.clock())
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		if f.State != "" && j.state != f.State {
			continue
		}
		if !f.AfterCursor(j.created, j.id) {
			continue
		}
		out = append(out, j.snapshotLocked())
	}
	SortStatuses(out)
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// SortStatuses orders a job listing newest-first by creation time, ties
// broken by id. Shared by every Lister so histories paginate stably.
func SortStatuses(out []Status) {
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.After(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
}

// Close shuts the manager down: intake stops immediately (ErrClosed), queued
// jobs are drained and executed, and if ctx expires before the drain
// completes, in-flight tasks are hard-cancelled through their context. The
// janitor always stops. Close is idempotent; later calls just wait again.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Cancel tasks still running past the deadline (no-op on clean drain)
	// and stop the janitor. The event hub closes after the workers have
	// published their last terminal events, so subscribers drain a
	// complete stream before seeing ErrClosed.
	m.cancel()
	m.janitor.Wait()
	m.hub.Close()
	// Flush the journal so a graceful shutdown leaves every drained
	// transition on stable storage.
	if m.cfg.Journal != nil {
		if serr := m.cfg.Journal.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// worker drains the replay backlog, then the queue, until the queue is
// closed and both are empty.
func (m *Manager) worker() {
	defer m.workers.Done()
	for {
		m.mu.Lock()
		if n := len(m.backlog); n > 0 {
			j := m.backlog[0]
			m.backlog = m.backlog[1:]
			m.mu.Unlock()
			m.execute(j)
			continue
		}
		m.mu.Unlock()
		j, ok := <-m.queue
		if !ok {
			return
		}
		m.execute(j)
	}
}

// execute runs one job through its lifecycle.
func (m *Manager) execute(j *job) {
	start := m.clock()
	m.mu.Lock()
	if j.aborted {
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = start
	m.running++
	m.journalLocked(JournalEntry{Op: OpRunning, ID: j.id, At: start})
	m.hub.Publish(events.Event{Type: events.TypeRunning, JobID: j.id, At: start, State: string(StateRunning)})
	m.mu.Unlock()
	j.queueSpan.End()
	queueWaitSeconds.Observe(start.Sub(j.enqueued).Seconds())
	runSpan := j.root.Start("run")
	m.log.Debug("job running", "job_id", j.id, "trace_id", j.trace.TraceID(),
		"queue_wait_ms", float64(start.Sub(j.enqueued))/float64(time.Millisecond))

	progress := func(stage string) {
		m.mu.Lock()
		j.stage = stage
		m.hub.Publish(events.Event{
			Type: events.TypeStage, JobID: j.id, At: m.clock(),
			State: string(StateRunning), Stage: stage,
		})
		m.mu.Unlock()
	}
	// The run span rides the execution context: the core pipeline hangs
	// its per-stage (and per-frame GA) spans under it via obs.StartSpan.
	// The resource snapshot brackets exactly the payload run, so the
	// delta answers "where did this job spend cycles" — an upper bound on
	// a node executing jobs concurrently, since the counters are
	// process-wide.
	var snap obs.ResourceSnapshot
	if !m.cfg.DisableObservability {
		snap = obs.TakeResourceSnapshot()
	}
	val, err := m.exec.Execute(obs.ContextWithSpan(m.runCtx, runSpan), j.payload, progress)
	now := m.clock()
	var usage *obs.ResourceUsage
	if !m.cfg.DisableObservability {
		u := snap.Delta()
		u.Stamp(runSpan)
		usage = &u
	}
	runSpan.End()
	runSeconds.Observe(now.Sub(start).Seconds())
	// The SLI is the client's view: enqueue to terminal, so queue wait
	// counts against the latency objective exactly as a poller feels it.
	m.cfg.SLO.Observe(now.Sub(j.enqueued), err == nil)

	// Journal the terminal record BEFORE taking the lock and before the
	// terminal state becomes visible: the result marshal can be megabytes
	// and the append fsyncs under the production policy — neither belongs
	// under the mutex every poller shares — and the ordering (record
	// durable, then state visible) is exactly what guarantees a result a
	// client polled can never evaporate across a crash. A failure caused
	// by the manager's own shutdown cancel is not journaled: the job is
	// interrupted, not failed — a restart must re-run it, exactly as
	// after a crash (in-memory it still reports failed to pollers of THIS
	// process, matching the pre-journal hard-cancel behaviour). A result
	// that fails to serialize is journaled without its document; replay
	// re-runs the job instead of serving a hole.
	if m.cfg.Journal != nil {
		var entry *JournalEntry
		if err == nil {
			raw, _ := json.Marshal(val)
			entry = &JournalEntry{Op: OpDone, ID: j.id, At: now, Result: raw}
		} else if m.runCtx.Err() == nil {
			entry = &JournalEntry{Op: OpFailed, ID: j.id, At: now, Error: err.Error()}
		}
		if entry != nil {
			jspan := j.root.Start("journal_append")
			if aerr := m.cfg.Journal.Append(*entry); aerr != nil {
				m.mu.Lock()
				m.journalFailed++
				m.mu.Unlock()
				m.log.Error("journal append failed", "job_id", j.id, "trace_id", j.trace.TraceID(), "error", aerr)
			}
			jspan.End()
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	j.finished = now
	j.stage = ""
	j.payload = Payload{} // release the payload (it may pin a whole clip)
	j.resources = usage
	pubSpan := j.root.Start("publish")
	if err != nil {
		j.state = StateFailed
		j.err = err
		m.failed++
		m.hub.Publish(events.Event{
			Type: events.TypeFailed, JobID: j.id, At: now,
			State: string(StateFailed), Error: err.Error(),
		})
		m.log.Warn("job failed", "job_id", j.id, "trace_id", j.trace.TraceID(),
			"run_ms", float64(now.Sub(start))/float64(time.Millisecond), "error", err)
	} else {
		j.state = StateDone
		j.result = val
		m.completed++
		// Published after the terminal state is set, so a subscriber that
		// fetches the result on seeing this event always finds it.
		m.hub.Publish(events.Event{Type: events.TypeDone, JobID: j.id, At: now, State: string(StateDone)})
		m.log.Info("job done", "job_id", j.id, "trace_id", j.trace.TraceID(),
			"run_ms", float64(now.Sub(start))/float64(time.Millisecond),
			"queue_wait_ms", float64(start.Sub(j.enqueued))/float64(time.Millisecond))
	}
	pubSpan.End()
	j.root.End()
	m.recordLocked(now.Sub(start), start.Sub(j.enqueued))
}

// journalLocked appends one cheap lifecycle record (running/evict — the
// terminal records, which marshal documents and fsync, are appended
// outside the lock in execute), best-effort: a failed append past
// submission costs at most a re-execution after restart, never the live
// job — but it is counted, so operators see a dying journal in /metrics
// instead of discovering it at the next restart. Caller holds mu.
func (m *Manager) journalLocked(e JournalEntry) {
	if m.cfg.Journal == nil {
		return
	}
	if err := m.cfg.Journal.Append(e); err != nil {
		m.journalFailed++
	}
}

// runJanitor periodically evicts expired results so memory stays bounded
// even when nobody polls.
func (m *Manager) runJanitor() {
	defer m.janitor.Done()
	interval := m.cfg.ResultTTL / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.runCtx.Done():
			return
		case <-t.C:
			m.mu.Lock()
			m.sweepLocked(m.clock())
			m.mu.Unlock()
		}
	}
}

// sweepLocked evicts finished jobs older than the TTL. Caller holds mu.
func (m *Manager) sweepLocked(now time.Time) {
	if m.cfg.ResultTTL <= 0 {
		return
	}
	for id, j := range m.jobs {
		if j.state.Terminal() && now.Sub(j.finished) >= m.cfg.ResultTTL {
			delete(m.jobs, id)
			m.evicted++
			m.journalLocked(JournalEntry{Op: OpEvict, ID: id, At: now})
			m.hub.Publish(events.Event{Type: events.TypeEvicted, JobID: id, At: now, State: string(j.state)})
		}
	}
}

// recordLocked appends to the latency rings. Caller holds mu.
func (m *Manager) recordLocked(run, wait time.Duration) {
	if len(m.runLat) < latencySample {
		m.runLat = append(m.runLat, run)
		m.waitLat = append(m.waitLat, wait)
		return
	}
	m.runLat[m.latIdx] = run
	m.waitLat[m.latIdx] = wait
	m.latIdx = (m.latIdx + 1) % latencySample
}

// snapshotLocked copies the job's visible state. Caller holds mu.
func (j *job) snapshotLocked() Status {
	s := Status{
		ID:        j.id,
		State:     j.state,
		Stage:     j.stage,
		CreatedAt: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
		if !j.enqueued.IsZero() {
			s.QueueWaitMS = float64(j.started.Sub(j.enqueued)) / float64(time.Millisecond)
		}
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
		if !j.started.IsZero() {
			s.RunMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if j.resources != nil {
		u := *j.resources
		s.Resources = &u
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// Summarise computes latency statistics over a sample window of
// durations. It is shared by the Manager and the remote dispatcher so both
// backends report the same statistics shape.
func Summarise(sample []time.Duration) LatencyStats {
	if len(sample) == 0 {
		return LatencyStats{}
	}
	sorted := make([]time.Duration, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	// Nearest-rank percentile: the ⌈p·N⌉-th smallest sample. The floored
	// index it replaced reported the P95 of a 2-sample window as the
	// *minimum*, skewing /metrics and every committed BENCH document low.
	pct := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return LatencyStats{
		Count:  len(sorted),
		MeanMS: ms(sum) / float64(len(sorted)),
		P50MS:  ms(pct(0.50)),
		P95MS:  ms(pct(0.95)),
		MaxMS:  ms(sorted[len(sorted)-1]),
	}
}

// newID returns a 16-hex-char random job id.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: id generation: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
