package jobs

import "errors"

// Fleet errors surfaced by FleetManager implementations. Servers map these
// onto HTTP status codes, so they live here with the capability interface.
var (
	// ErrNodeUnknown reports a drain/remove request for a URL that is not a
	// fleet member.
	ErrNodeUnknown = errors.New("node is not a fleet member")
	// ErrNodeUnhealthy reports a join request whose admission probe failed;
	// nodes are admitted to the ring only after answering a health probe.
	ErrNodeUnhealthy = errors.New("node failed its admission probe")
	// ErrLastNode reports a drain request that would leave the fleet with no
	// routable node.
	ErrLastNode = errors.New("cannot drain the last routable node")
)

// FleetNode describes one member of an elastic dispatch fleet.
type FleetNode struct {
	URL      string `json:"url"`
	Weight   int    `json:"weight"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
	// Pending counts jobs routed to the node that have not reached a
	// terminal state; a draining node is removed when it hits zero.
	Pending int `json:"pending"`
}

// FleetView is an immutable snapshot of fleet membership at one epoch.
// The epoch increments on every membership mutation (join, drain, weight
// change, removal); in-flight submissions keep routing against the ring
// built for the epoch they started under.
type FleetView struct {
	Epoch uint64      `json:"epoch"`
	Nodes []FleetNode `json:"nodes"`
}

// FleetManager is the optional capability interface for Dispatcher backends
// whose worker topology can change at runtime. The in-process Manager does
// not implement it; dispatch.Remote does.
type FleetManager interface {
	// Fleet reports the current membership.
	Fleet() FleetView
	// JoinNode admits a worker after its health probe passes. Joining an
	// existing member updates its weight and cancels a pending drain.
	JoinNode(url string, weight int) (FleetView, error)
	// DrainNode stops routing new keys to the node; its running jobs finish
	// and the node is removed once none remain pending.
	DrainNode(url string) (FleetView, error)
	// RemoveNode drops the node immediately, abandoning any pending jobs
	// (replication/failover may still recover them).
	RemoveNode(url string) (FleetView, error)
}

// FederationStats summarises the dispatcher's member-metrics scraping for
// the /v1/fleet JSON rollup.
type FederationStats struct {
	// NodesScraped counts members whose latest scrape succeeded and is
	// included in the merged exposition.
	NodesScraped int `json:"nodes_scraped"`
	// ScrapeFailures counts failed member scrapes over the process
	// lifetime.
	ScrapeFailures uint64 `json:"scrape_failures_total"`
	// LastScrapeUnixMS stamps the most recent scrape sweep; 0 before the
	// first one.
	LastScrapeUnixMS int64 `json:"last_scrape_unix_ms,omitempty"`
}

// MetricsFederator is the optional capability of a Dispatcher that
// scrapes its members' Prometheus expositions and merges them into one
// cluster-wide scrape with a node label per sample — the view behind
// GET /v1/fleet/metrics. Only the remote dispatcher implements it.
type MetricsFederator interface {
	// FederatedMetrics returns the merged exposition and the scrape
	// bookkeeping. Implementations refresh stale caches synchronously, so
	// a fleet that has not ticked its health loop yet still federates.
	FederatedMetrics() ([]byte, FederationStats, error)
}

// ReplicaMetrics counts successor-replication pushes from one node.
type ReplicaMetrics struct {
	Results   uint64 `json:"results"`
	Artifacts uint64 `json:"artifacts"`
	Failures  uint64 `json:"failures"`
	Dropped   uint64 `json:"dropped"`
}

// ReplicaSink accepts asynchronous successor-replication pushes: cache fills
// and artifact stores are mirrored to the ring successor so that node death
// turns into a cache hit on failover instead of a recompute. Implementations
// must not block the caller.
type ReplicaSink interface {
	// ReplicateResult mirrors a marshaled analysis response under its cache
	// key to the target node.
	ReplicateResult(target, key string, doc []byte)
	// ReplicateArtifact mirrors a content-addressed artifact blob to the
	// target node.
	ReplicateArtifact(target, hash string, blob []byte)
	// ReplicaMetrics reports push counters.
	ReplicaMetrics() ReplicaMetrics
}
