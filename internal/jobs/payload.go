package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// KindAnalysis marks a Payload carrying one staged analysis request. The
// version suffix lets worker nodes reject payloads from incompatible
// front ends instead of mis-decoding them.
const KindAnalysis = "slj-analysis/v1"

// ArtifactPayloadHeader marks a worker submission whose payload names its
// bulk artifacts by content hash (Payload.ByReference). The worker intake
// reads it before the body, so by-reference submissions get a tight body
// cap instead of the base64-inflation headroom inline clips need.
const ArtifactPayloadHeader = "X-SLJ-Artifact-Payload"

// Payload is one unit of asynchronous work as *data*: a typed,
// JSON-serializable description of a staged analysis request. Unlike the
// closure-based task it replaced, a Payload can leave the process — the
// remote dispatcher posts it to a worker node as JSON — while the in-process
// Manager hands it to its Executor without any serialisation round trip.
//
// The artifact fields mirror core.Request: frames enter a selection starting
// at segmentation, silhouettes one starting at pose, poses+dimensions one
// starting at tracking or scoring. Binary artifacts use compact encodings
// (raw interleaved RGB for frames, bit-packed masks for silhouettes), which
// encoding/json transports as base64.
type Payload struct {
	// Kind discriminates payload types; KindAnalysis is the only kind today.
	Kind string `json:"kind"`
	// ConfigFP is the analyzer-config fingerprint of the submitting front
	// end. Executors recompute cache keys when it differs from their own.
	ConfigFP string `json:"config_fp,omitempty"`
	// CacheKey is the hex content address of the request (RequestKey) under
	// ConfigFP. The remote dispatcher hashes it onto the node ring so
	// identical clips land on the node that already cached their result.
	CacheKey string `json:"cache_key,omitempty"`
	// Stages is the stage selection in ParseStageSelection form ("" = all).
	Stages string `json:"stages,omitempty"`
	// IncludePoses / IncludeSilhouettes shape the serialised response.
	IncludePoses       bool `json:"include_poses,omitempty"`
	IncludeSilhouettes bool `json:"include_silhouettes,omitempty"`

	// Manual is the hand-drawn first-frame stick figure, when present.
	Manual *PoseWire `json:"manual_first,omitempty"`
	// Frames is the clip for selections starting at segmentation.
	Frames []FrameWire `json:"frames,omitempty"`
	// Silhouettes feeds selections starting at the pose stage.
	Silhouettes []SilhouetteWire `json:"silhouettes,omitempty"`
	// Background carries the Step 1 estimate through when segmentation is
	// skipped.
	Background *FrameWire `json:"background,omitempty"`
	// Poses and Dimensions feed selections starting at tracking/scoring.
	Poses      []PoseWire      `json:"poses,omitempty"`
	Dimensions *DimensionsWire `json:"dimensions,omitempty"`

	// FramesRef / SilhouettesRef / PosesRef reference the corresponding
	// artifacts by content hash instead of carrying them inline, shrinking
	// a megabytes payload to a few hundred bytes. A worker that does not
	// hold a referenced artifact pulls it from ArtifactOrigin — the
	// submitting front end's base URL, stamped by the dispatcher — via
	// GET /v1/artifacts/{hash}, and caches it locally.
	FramesRef      string `json:"frames_ref,omitempty"`
	SilhouettesRef string `json:"silhouettes_ref,omitempty"`
	PosesRef       string `json:"poses_ref,omitempty"`
	ArtifactOrigin string `json:"artifact_origin,omitempty"`

	// ReplicaTarget is the base URL of the ring successor for this payload's
	// key, stamped by a replicating dispatcher. A worker that completes the
	// job mirrors its cache fill (and any artifacts it pulled for it) to the
	// target, so failover — which re-hashes to the successor — finds a cache
	// hit instead of recomputing. Empty when replication is off or the fleet
	// has no second routable node.
	ReplicaTarget string `json:"replica_target,omitempty"`

	// decoded short-circuits AnalysisRequest for payloads that never left
	// the process: the in-process Manager executes the exact request the
	// submitter built, skipping a full decode copy of the clip. Unexported,
	// so it never crosses the wire — remote workers always decode.
	decoded *core.Request
}

// FrameWire is one RGB frame on the wire: raw interleaved RGB bytes,
// row-major (base64 in JSON).
type FrameWire struct {
	W   int    `json:"w"`
	H   int    `json:"h"`
	RGB []byte `json:"rgb"`
}

// PoseWire is one stick-model pose on the wire.
type PoseWire struct {
	X   float64   `json:"x"`
	Y   float64   `json:"y"`
	Rho []float64 `json:"rho"`
}

// SilhouetteWire is one segmented frame on the wire. Mask is bit-packed
// row-major, MSB first within each byte; area/centroid/bbox are rederived
// from the mask on decode, so they cannot drift from it.
type SilhouetteWire struct {
	Frame int    `json:"frame"`
	W     int    `json:"w"`
	H     int    `json:"h"`
	Mask  []byte `json:"mask"`
}

// DimensionsWire carries the calibrated stick dimensions on the wire.
type DimensionsWire struct {
	Length []float64 `json:"length"`
	Thick  []float64 `json:"thick"`
}

// ConfigFingerprint renders the analyzer configuration deterministically
// and hashes it down to a fixed-width token. The config tree is plain data
// (ints, floats, bools, fixed arrays), so the formatted form is stable and
// any config change — a different threshold, a different GA budget —
// changes the fingerprint and therefore every cache key derived from it.
// The fingerprint travels in every dispatch payload and is only ever
// compared or hashed, never parsed, so the compact form keeps by-reference
// payloads small.
func ConfigFingerprint(cfg core.Config) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", cfg)))
	return hex.EncodeToString(sum[:])
}

// RequestKey computes the content address of one analysis request: the
// SHA-256 over the config fingerprint, the stage selection, the
// response-shaping options, the manual first-frame pose and every input
// artifact — frames, and for mid-pipeline entry the silhouettes, poses,
// dimensions and background. Identical requests under identical
// configuration hash to the same key; any difference — one pixel, one
// config field, a different stage range, a different pose value — yields a
// different key. It is both the result-cache key and the remote
// dispatcher's ring placement key, so artifact-bearing (frame-less)
// requests must be covered too: two tracking..scoring re-scores over
// different poses may never collide.
func RequestKey(cfgFP string, req core.Request) cache.Key {
	// A segmentation memo is a server-injected replay of what segmentation
	// would compute over Frames anyway — bit-identical by determinism — so
	// it must not shift the key: a memo-assisted request and the equivalent
	// cold request are the same work and must share one cache entry and one
	// ring placement. req is a by-value copy, so stripping is local.
	if req.SegmentationMemo {
		req.Silhouettes = nil
		req.Background = nil
	}
	k := cache.NewKeyer()
	k.WriteString("slj-analysis-response/v2")
	k.WriteString(cfgFP)
	k.WriteString(req.Stages.Normalize().String())
	k.WriteBool(req.IncludePoses)
	k.WriteBool(req.IncludeSilhouettes)
	writePose := func(p stickmodel.Pose) {
		k.WriteFloat(p.X)
		k.WriteFloat(p.Y)
		for _, rho := range p.Rho {
			k.WriteFloat(rho)
		}
	}
	writePose(req.ManualFirst)
	buf := make([]byte, 0, 1<<16)
	writeImage := func(f *imaging.Image) {
		k.WriteInt(f.W)
		k.WriteInt(f.H)
		buf = buf[:0]
		for _, px := range f.Pix {
			buf = append(buf, px.R, px.G, px.B)
		}
		k.WriteBytes(buf)
	}
	k.WriteInt(len(req.Frames))
	for _, f := range req.Frames {
		writeImage(f)
	}
	k.WriteInt(len(req.Silhouettes))
	for _, s := range req.Silhouettes {
		k.WriteInt(s.Frame)
		k.WriteInt(s.Mask.W)
		k.WriteInt(s.Mask.H)
		k.WriteBytes(PackMask(s.Mask))
	}
	k.WriteInt(len(req.Poses))
	for _, p := range req.Poses {
		writePose(p)
	}
	for i := range req.Dimensions.Length {
		k.WriteFloat(req.Dimensions.Length[i])
		k.WriteFloat(req.Dimensions.Thick[i])
	}
	k.WriteBool(req.Background != nil)
	if req.Background != nil {
		writeImage(req.Background)
	}
	return k.Sum()
}

// NewAnalysisPayload encodes a staged analysis request into a serializable
// payload, stamping the submitting config fingerprint and the request's
// cache key. The encoding is lossless: AnalysisRequest reconstructs a
// request whose analysis — and cache key — are identical.
func NewAnalysisPayload(cfgFP string, req core.Request) (Payload, error) {
	if err := req.Stages.Validate(); err != nil {
		return Payload{}, err
	}
	p := Payload{
		Kind:               KindAnalysis,
		ConfigFP:           cfgFP,
		CacheKey:           RequestKey(cfgFP, req).String(),
		IncludePoses:       req.IncludePoses,
		IncludeSilhouettes: req.IncludeSilhouettes,
	}
	if !req.Stages.Normalize().IsFull() {
		p.Stages = req.Stages.String()
	}
	if req.ManualFirst != (stickmodel.Pose{}) {
		p.Manual = encodePose(req.ManualFirst)
	}
	for _, f := range req.Frames {
		p.Frames = append(p.Frames, encodeFrame(f))
	}
	for _, s := range req.Silhouettes {
		p.Silhouettes = append(p.Silhouettes, SilhouetteWire{
			Frame: s.Frame, W: s.Mask.W, H: s.Mask.H, Mask: PackMask(s.Mask),
		})
	}
	if req.Background != nil {
		bg := encodeFrame(req.Background)
		p.Background = &bg
	}
	for _, pose := range req.Poses {
		p.Poses = append(p.Poses, *encodePose(pose))
	}
	if req.Dimensions != (stickmodel.Dimensions{}) {
		p.Dimensions = &DimensionsWire{
			Length: append([]float64(nil), req.Dimensions.Length[:]...),
			Thick:  append([]float64(nil), req.Dimensions.Thick[:]...),
		}
	}
	p.decoded = &req
	return p, nil
}

// AnalysisRequest decodes the payload back into a staged analysis request.
// The round trip is exact: frames, poses and masks reconstruct bit- and
// float-identically, so the decoded request's cache key equals CacheKey.
// Payloads that never left the process return the submitter's original
// request without a decode copy.
func (p Payload) AnalysisRequest() (core.Request, error) {
	if p.Kind != KindAnalysis {
		return core.Request{}, fmt.Errorf("jobs: payload kind %q is not %s", p.Kind, KindAnalysis)
	}
	if p.decoded != nil {
		return *p.decoded, nil
	}
	sel, err := core.ParseStageSelection(p.Stages)
	if err != nil {
		return core.Request{}, err
	}
	req := core.Request{
		Stages:             sel,
		IncludePoses:       p.IncludePoses,
		IncludeSilhouettes: p.IncludeSilhouettes,
		FramesRef:          p.FramesRef,
		SilhouettesRef:     p.SilhouettesRef,
		PosesRef:           p.PosesRef,
	}
	if p.Manual != nil {
		pose, err := decodePose(*p.Manual)
		if err != nil {
			return core.Request{}, fmt.Errorf("jobs: manual pose: %w", err)
		}
		req.ManualFirst = pose
	}
	for i, f := range p.Frames {
		img, err := decodeFrame(f)
		if err != nil {
			return core.Request{}, fmt.Errorf("jobs: frame %d: %w", i, err)
		}
		req.Frames = append(req.Frames, img)
	}
	for i, s := range p.Silhouettes {
		mask, err := UnpackMask(s.W, s.H, s.Mask)
		if err != nil {
			return core.Request{}, fmt.Errorf("jobs: silhouette %d: %w", i, err)
		}
		req.Silhouettes = append(req.Silhouettes, segmentation.NewSilhouette(s.Frame, mask))
	}
	if p.Background != nil {
		bg, err := decodeFrame(*p.Background)
		if err != nil {
			return core.Request{}, fmt.Errorf("jobs: background: %w", err)
		}
		req.Background = bg
	}
	for i, pw := range p.Poses {
		pose, err := decodePose(pw)
		if err != nil {
			return core.Request{}, fmt.Errorf("jobs: pose %d: %w", i, err)
		}
		req.Poses = append(req.Poses, pose)
	}
	if p.Dimensions != nil {
		if len(p.Dimensions.Length) != stickmodel.NumSticks || len(p.Dimensions.Thick) != stickmodel.NumSticks {
			return core.Request{}, fmt.Errorf("jobs: dimensions need %d sticks", stickmodel.NumSticks)
		}
		copy(req.Dimensions.Length[:], p.Dimensions.Length)
		copy(req.Dimensions.Thick[:], p.Dimensions.Thick)
	}
	return req, nil
}

// NewArtifactPayload encodes a by-reference analysis request: refReq names
// its bulk artifacts by content hash, and resolved is the same request with
// those references materialised (the submitting front end resolves against
// its own store). The payload carries only the references plus the small
// inline fields, but its cache key — and its in-process decoded shortcut —
// come from the resolved request, so by-reference and inline submissions of
// the same clip share one cache entry and one dispatch-ring placement.
func NewArtifactPayload(cfgFP string, refReq, resolved core.Request) (Payload, error) {
	if err := refReq.Stages.Validate(); err != nil {
		return Payload{}, err
	}
	p := Payload{
		Kind:               KindAnalysis,
		ConfigFP:           cfgFP,
		CacheKey:           RequestKey(cfgFP, resolved).String(),
		IncludePoses:       refReq.IncludePoses,
		IncludeSilhouettes: refReq.IncludeSilhouettes,
		FramesRef:          refReq.FramesRef,
		SilhouettesRef:     refReq.SilhouettesRef,
		PosesRef:           refReq.PosesRef,
	}
	if !refReq.Stages.Normalize().IsFull() {
		p.Stages = refReq.Stages.String()
	}
	if refReq.ManualFirst != (stickmodel.Pose{}) {
		p.Manual = encodePose(refReq.ManualFirst)
	}
	p.decoded = &resolved
	return p, nil
}

// ByReference reports whether the payload names any artifact by hash
// instead of carrying it inline.
func (p Payload) ByReference() bool {
	return p.FramesRef != "" || p.SilhouettesRef != "" || p.PosesRef != ""
}

// WithResolved returns the payload with req installed as its decoded
// request: executors that resolved the payload's artifact references stash
// the materialised request here so AnalysisRequest stops re-decoding.
func (p Payload) WithResolved(req core.Request) Payload {
	p.decoded = &req
	return p
}

// Key parses the payload's cache key. ok is false when the payload carries
// none (or a corrupt one).
func (p Payload) Key() (cache.Key, bool) {
	return cache.ParseKey(p.CacheKey)
}

func encodePose(pose stickmodel.Pose) *PoseWire {
	return &PoseWire{X: pose.X, Y: pose.Y, Rho: append([]float64(nil), pose.Rho[:]...)}
}

func decodePose(pw PoseWire) (stickmodel.Pose, error) {
	if len(pw.Rho) != stickmodel.NumSticks {
		return stickmodel.Pose{}, fmt.Errorf("pose needs %d angles, got %d", stickmodel.NumSticks, len(pw.Rho))
	}
	pose := stickmodel.Pose{X: pw.X, Y: pw.Y}
	copy(pose.Rho[:], pw.Rho)
	return pose, nil
}

func encodeFrame(img *imaging.Image) FrameWire {
	rgb := make([]byte, 0, 3*len(img.Pix))
	for _, px := range img.Pix {
		rgb = append(rgb, px.R, px.G, px.B)
	}
	return FrameWire{W: img.W, H: img.H, RGB: rgb}
}

func decodeFrame(f FrameWire) (*imaging.Image, error) {
	if f.W <= 0 || f.H <= 0 {
		return nil, fmt.Errorf("invalid size %dx%d", f.W, f.H)
	}
	if len(f.RGB) != 3*f.W*f.H {
		return nil, fmt.Errorf("rgb payload is %d bytes, want %d", len(f.RGB), 3*f.W*f.H)
	}
	img := imaging.NewImage(f.W, f.H)
	for i := range img.Pix {
		img.Pix[i] = imaging.Color{R: f.RGB[3*i], G: f.RGB[3*i+1], B: f.RGB[3*i+2]}
	}
	return img, nil
}

// PackMask bit-packs a mask row-major, MSB first within each byte — the
// same layout the web service's mask_b64 response field uses.
func PackMask(m *imaging.Mask) []byte {
	packed := make([]byte, (len(m.Bits)+7)/8)
	for i, b := range m.Bits {
		if b {
			packed[i/8] |= 1 << (7 - i%8)
		}
	}
	return packed
}

// UnpackMask reverses PackMask.
func UnpackMask(w, h int, packed []byte) (*imaging.Mask, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("invalid size %dx%d", w, h)
	}
	if len(packed) != (w*h+7)/8 {
		return nil, fmt.Errorf("mask payload is %d bytes, want %d", len(packed), (w*h+7)/8)
	}
	m := imaging.NewMask(w, h)
	for i := range m.Bits {
		m.Bits[i] = packed[i/8]&(1<<(7-i%8)) != 0
	}
	return m, nil
}

// errNoExecutor rejects Manager construction without an executor.
var errNoExecutor = errors.New("jobs: nil executor")
