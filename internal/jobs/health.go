// Componentwise deep health: the watchdog surface behind GET /v1/healthz.
// Each subsystem reports one ComponentHealth; the server merges them into
// the deep-health document and the fleet join probe refuses members whose
// overall status is not ok. The HTTP status stays 200 either way — a
// stalled node is alive, and the dispatcher's health prober must not
// confuse "degraded" with "dead".
package jobs

import (
	"fmt"
	"time"
)

// Health component statuses.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// ComponentHealth is one subsystem's readiness verdict.
type ComponentHealth struct {
	Status string `json:"status"`
	// Reason explains a degraded verdict, empty when ok.
	Reason string `json:"reason,omitempty"`
}

// HealthOKComponent is the all-clear verdict.
func HealthOKComponent() ComponentHealth { return ComponentHealth{Status: HealthOK} }

// HealthDegradedComponent builds a degraded verdict with its reason.
func HealthDegradedComponent(format string, args ...any) ComponentHealth {
	return ComponentHealth{Status: HealthDegraded, Reason: fmt.Sprintf(format, args...)}
}

// HealthReporter is the optional capability a Dispatcher implements to
// contribute components to the deep-health document. The in-process
// Manager reports its queue-stall watchdog; the remote dispatcher reports
// fleet routability and drain progress.
type HealthReporter interface {
	ComponentHealth() map[string]ComponentHealth
}

// DefaultStallAfter is the queue-stall threshold when Config.StallAfter
// is zero: a job queued longer than this without a worker picking it up
// flips the queue component to degraded.
const DefaultStallAfter = 2 * time.Minute

// ComponentHealth implements HealthReporter for the in-process Manager:
// the "queue" component degrades when the oldest still-queued job has
// waited past the stall threshold — the signature of a wedged worker
// pool (every worker stuck in a payload that never returns).
func (m *Manager) ComponentHealth() map[string]ComponentHealth {
	stallAfter := m.cfg.StallAfter
	if stallAfter <= 0 {
		stallAfter = DefaultStallAfter
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	var oldest time.Duration
	queued := 0
	for _, j := range m.jobs {
		if j.state != StateQueued || j.aborted {
			continue
		}
		queued++
		if w := now.Sub(j.enqueued); w > oldest {
			oldest = w
		}
	}
	queue := HealthOKComponent()
	if oldest > stallAfter {
		queue = HealthDegradedComponent(
			"queue stalled: oldest of %d queued job(s) waiting %s (threshold %s)",
			queued, oldest.Round(time.Millisecond), stallAfter)
	}
	return map[string]ComponentHealth{"queue": queue}
}
