package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fakeClock is a mutable clock for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// routeExec routes payloads to handlers by their Kind — the test-side
// Executor: each submitted payload names the behaviour it wants.
type routeExec map[string]func(ctx context.Context, p Payload, progress func(string)) (any, error)

func (r routeExec) Execute(ctx context.Context, p Payload, progress func(string)) (any, error) {
	fn := r[p.Kind]
	if fn == nil {
		return nil, fmt.Errorf("routeExec: no handler for kind %q", p.Kind)
	}
	return fn(ctx, p, progress)
}

// kind builds a test payload carrying only a routing kind.
func kind(k string) Payload { return Payload{Kind: k} }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Workers: 0, QueueSize: 1},
		{Workers: 1, QueueSize: -1},
		{Workers: 1, QueueSize: 1, ResultTTL: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	noop := ExecutorFunc(func(context.Context, Payload, func(string)) (any, error) { return nil, nil })
	if _, err := New(Config{}, noop); err == nil {
		t.Error("New must reject the zero config")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("New must reject a nil executor")
	}
}

func TestJobLifecycle(t *testing.T) {
	release := make(chan struct{})
	m, err := New(Config{Workers: 1, QueueSize: 4}, routeExec{
		"lifecycle": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			progress("segmentation")
			<-release
			progress("scoring")
			return 42, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	id, err := m.Submit(kind("lifecycle"))
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, "job running", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateRunning
	})
	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stage != "segmentation" {
		t.Errorf("stage = %q, want segmentation", st.Stage)
	}
	if st.StartedAt == nil || st.CreatedAt.IsZero() {
		t.Error("timestamps not set")
	}
	if st.FinishedAt != nil {
		t.Error("running job must not report finished_at")
	}
	if _, err := m.Result(id); !errors.Is(err, ErrNotFinished) {
		t.Errorf("result before completion: %v", err)
	}

	close(release)
	waitFor(t, "job done", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateDone
	})
	val, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != 42 {
		t.Errorf("result = %v", val)
	}
	st, _ = m.Status(id)
	if st.FinishedAt == nil || st.Stage != "" {
		t.Errorf("finished snapshot: %+v", st)
	}
}

func TestJobFailure(t *testing.T) {
	boom := errors.New("boom")
	m, err := New(Config{Workers: 1, QueueSize: 1}, routeExec{
		"boom": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			return nil, boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	id, err := m.Submit(kind("boom"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job failed", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateFailed
	})
	st, _ := m.Status(id)
	if st.Err != "boom" {
		t.Errorf("status error = %q", st.Err)
	}
	if _, err := m.Result(id); !errors.Is(err, boom) {
		t.Errorf("result error = %v, want boom", err)
	}
}

func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	m, err := New(Config{Workers: 1, QueueSize: 1}, routeExec{
		"block": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return "ok", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	first, err := m.Submit(kind("block"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job running", func() bool {
		st, err := m.Status(first)
		return err == nil && st.State == StateRunning
	})
	second, err := m.Submit(kind("block"))
	if err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	if _, err := m.Submit(kind("block")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	} else if !Retryable(err) {
		t.Error("ErrQueueFull must be retryable")
	}

	mt := m.Metrics()
	if mt.Rejected != 1 || mt.QueueDepth != 1 || mt.Running != 1 {
		t.Errorf("metrics after backpressure: %+v", mt)
	}
	if mt.Nodes != nil {
		t.Error("in-process metrics must omit per-node counters")
	}

	close(release)
	for _, id := range []string{first, second} {
		waitFor(t, "job drained", func() bool {
			st, err := m.Status(id)
			return err == nil && st.State == StateDone
		})
	}
}

func TestRetryAfterHint(t *testing.T) {
	if got := RetryAfterHint(ErrQueueFull, 1); got != 1 {
		t.Errorf("plain ErrQueueFull hint = %d, want default 1", got)
	}
	if got := RetryAfterHint(errors.New("other"), 3); got != 3 {
		t.Errorf("unrelated error hint = %d, want default 3", got)
	}
}

func TestTTLEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	m, err := New(Config{Workers: 1, QueueSize: 2, ResultTTL: time.Minute, Clock: clk.Now}, routeExec{
		"quick": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			return "r", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	id, err := m.Submit(kind("quick"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateDone
	})

	clk.Advance(59 * time.Second)
	if _, err := m.Status(id); err != nil {
		t.Fatalf("job evicted before TTL: %v", err)
	}
	clk.Advance(2 * time.Second)
	if _, err := m.Status(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired status = %v, want ErrNotFound", err)
	}
	if _, err := m.Result(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired result = %v, want ErrNotFound", err)
	}
	if mt := m.Metrics(); mt.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", mt.Evicted)
	}
}

func TestGracefulClose(t *testing.T) {
	var done sync.WaitGroup
	m, err := New(Config{Workers: 2, QueueSize: 8}, routeExec{
		"sleep": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			defer done.Done()
			time.Sleep(5 * time.Millisecond)
			return "ok", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		done.Add(1)
		id, err := m.Submit(kind("sleep"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	done.Wait()
	for _, id := range ids {
		if _, err := m.Result(id); err != nil {
			t.Errorf("job %s after close: %v", id, err)
		}
	}
	if _, err := m.Submit(kind("sleep")); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
	// A second Close is a harmless no-op.
	if err := m.Close(context.Background()); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestCloseCancelsInFlight(t *testing.T) {
	m, err := New(Config{Workers: 1, QueueSize: 1}, routeExec{
		"hang": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			<-ctx.Done() // run until hard-cancelled
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(kind("hang"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateRunning
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close = %v, want deadline exceeded", err)
	}
	waitFor(t, "job cancelled", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateFailed
	})
	if _, err := m.Result(id); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled job result = %v", err)
	}
}

func TestMetricsLatency(t *testing.T) {
	m, err := New(Config{Workers: 2, QueueSize: 8}, routeExec{
		"tick": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := m.Submit(kind("tick")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all jobs complete", func() bool {
		return m.Metrics().Completed == n
	})
	mt := m.Metrics()
	if mt.Run.Count != n || mt.Wait.Count != n {
		t.Fatalf("latency counts: %+v", mt)
	}
	if mt.Run.MeanMS <= 0 || mt.Run.MaxMS < mt.Run.P50MS {
		t.Errorf("run latency stats inconsistent: %+v", mt.Run)
	}
	if mt.Submitted != n || mt.Failed != 0 {
		t.Errorf("counters: %+v", mt)
	}
}

// TestConcurrentSubmitAndPoll exercises the manager under the race detector:
// many goroutines submitting, polling and reading metrics at once. The
// payload's CacheKey field carries a per-job tag the executor echoes back,
// proving payload data flows through untouched.
func TestConcurrentSubmitAndPoll(t *testing.T) {
	m, err := New(Config{Workers: 4, QueueSize: 64, ResultTTL: time.Minute}, routeExec{
		"echo": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			progress("pose")
			return p.CacheKey, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tag := fmt.Sprintf("g%d-%d", g, i)
				id, err := m.Submit(Payload{Kind: "echo", CacheKey: tag})
				if errors.Is(err, ErrQueueFull) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				for {
					st, err := m.Status(id)
					if err != nil || st.State.Terminal() {
						break
					}
					m.Metrics()
					time.Sleep(100 * time.Microsecond)
				}
				if val, err := m.Result(id); err == nil && val.(string) != tag {
					t.Errorf("job %s echoed %v, want %s", id, val, tag)
				}
			}
		}(g)
	}
	wg.Wait()
	mt := m.Metrics()
	if mt.Completed == 0 || mt.Failed != 0 {
		t.Errorf("metrics after stress: %+v", mt)
	}
}
