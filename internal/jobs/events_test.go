package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/events"
)

// drainWatch collects a Watch channel to completion with a deadline.
func drainWatch(t *testing.T, ch <-chan events.Event) []events.Event {
	t.Helper()
	var out []events.Event
	deadline := time.After(5 * time.Second)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, e)
		case <-deadline:
			t.Fatalf("watch never completed; got %d events: %+v", len(out), out)
		}
	}
}

// TestWatchSeesFullLifecycle: a watcher subscribed at submission observes
// queued → running → every stage → done, in order, with monotonic
// sequence numbers, and the channel closes after the terminal event.
func TestWatchSeesFullLifecycle(t *testing.T) {
	release := make(chan struct{})
	m, err := New(Config{Workers: 1, QueueSize: 4}, routeExec{
		"staged": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			<-release
			for _, st := range []string{"segmentation", "pose", "tracking", "scoring"} {
				progress(st)
			}
			return "ok", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	id, err := m.Submit(kind("staged"))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.Watch(context.Background(), id, 0)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	got := drainWatch(t, ch)

	wantTypes := []events.Type{
		events.TypeQueued, events.TypeRunning,
		events.TypeStage, events.TypeStage, events.TypeStage, events.TypeStage,
		events.TypeDone,
	}
	if len(got) != len(wantTypes) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(wantTypes), got)
	}
	wantStages := []string{"", "", "segmentation", "pose", "tracking", "scoring", ""}
	for i, e := range got {
		if e.Type != wantTypes[i] || e.Stage != wantStages[i] {
			t.Errorf("event %d: %s/%q, want %s/%q", i, e.Type, e.Stage, wantTypes[i], wantStages[i])
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.JobID != id {
			t.Errorf("event %d: job %q, want %q", i, e.JobID, id)
		}
	}
	// The terminal event guarantees the result is fetchable.
	if _, err := m.Result(id); err != nil {
		t.Fatalf("result after terminal event: %v", err)
	}
}

// TestWatchAlreadyFinishedJob delivers the retained history — ending in
// the terminal event — immediately.
func TestWatchAlreadyFinishedJob(t *testing.T) {
	m, err := New(Config{Workers: 1, QueueSize: 1}, routeExec{
		"fail": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			return nil, errors.New("ga diverged")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	id, err := m.Submit(kind("fail"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job failure", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateFailed
	})
	ch, err := m.Watch(context.Background(), id, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := drainWatch(t, ch)
	last := got[len(got)-1]
	if last.Type != events.TypeFailed || last.Error != "ga diverged" {
		t.Errorf("terminal event: %+v", last)
	}
}

// TestWatchResume: a client that saw the first events reconnects with its
// last sequence number and receives exactly the rest.
func TestWatchResume(t *testing.T) {
	release := make(chan struct{})
	m, err := New(Config{Workers: 1, QueueSize: 1}, routeExec{
		"staged": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			progress("segmentation")
			<-release
			progress("pose")
			return "ok", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	id, err := m.Submit(kind("staged"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first stage", func() bool {
		st, err := m.Status(id)
		return err == nil && st.Stage == "segmentation"
	})
	// Resume after seq 3 (queued, running, stage segmentation).
	ch, err := m.Watch(context.Background(), id, 3)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	got := drainWatch(t, ch)
	if len(got) != 2 || got[0].Stage != "pose" || got[1].Type != events.TypeDone {
		t.Fatalf("resumed stream: %+v", got)
	}
	if got[0].Seq != 4 || got[1].Seq != 5 {
		t.Errorf("resumed seqs: %d, %d, want 4, 5", got[0].Seq, got[1].Seq)
	}
}

func TestWatchUnknownJob(t *testing.T) {
	m, err := New(Config{Workers: 1, QueueSize: 1}, routeExec{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if _, err := m.Watch(context.Background(), "deadbeef", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("watch of unknown id: %v, want ErrNotFound", err)
	}
	if m.EventHub().Subscribers() != 0 {
		t.Error("failed watch leaked a subscription")
	}
}

// TestWatchEviction: the TTL sweep ends a watch with an evicted event.
func TestWatchEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := New(Config{Workers: 1, QueueSize: 1, ResultTTL: time.Minute, Clock: clk.Now}, routeExec{
		"ok": func(ctx context.Context, p Payload, progress func(string)) (any, error) { return "ok", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	id, err := m.Submit(kind("ok"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		st, err := m.Status(id)
		return err == nil && st.State == StateDone
	})
	// A client resuming at the terminal sequence number (reconnect after
	// the server closed its completed stream) gets the terminal snapshot
	// immediately — it must not idle until eviction.
	ch, err := m.Watch(context.Background(), id, 3) // queued, running, done
	if err != nil {
		t.Fatal(err)
	}
	got := drainWatch(t, ch)
	if len(got) != 1 || got[0].Type != events.TypeSnapshot || !got[0].Terminal() {
		t.Fatalf("terminal resume stream: %+v", got)
	}
	// The eviction itself is still published — observable on the global
	// feed (a per-job watch always ends at the terminal event).
	sub, err := m.EventHub().Subscribe("", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	clk.Advance(2 * time.Minute)
	if _, err := m.Status(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("job not evicted: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		e, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("eviction never reached the feed: %v", err)
		}
		if e.Type == events.TypeEvicted && e.JobID == id {
			return
		}
	}
}

// TestReplaySeedsTerminalEvents: after a journal replay, finished jobs are
// immediately streamable — the stream opens onto the terminal event with
// the original timestamp.
func TestReplaySeedsTerminalEvents(t *testing.T) {
	jrn := &memJournal{}
	exec := routeExec{
		"ok": func(ctx context.Context, p Payload, progress func(string)) (any, error) { return "v1", nil },
	}
	m1, err := New(Config{Workers: 1, QueueSize: 2, Journal: jrn}, exec)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(kind("ok"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		st, err := m1.Status(id)
		return err == nil && st.State == StateDone
	})
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{Workers: 1, QueueSize: 2, Journal: jrn}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	ch, err := m2.Watch(context.Background(), id, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := drainWatch(t, ch)
	if len(got) != 1 || got[0].Type != events.TypeDone {
		t.Fatalf("restored job stream: %+v", got)
	}
	st, err := m2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].At.Equal(*st.FinishedAt) {
		t.Errorf("seeded terminal event at %v, want the original finish %v", got[0].At, *st.FinishedAt)
	}
}

// TestStatusCarriesPerJobTiming: queue_wait_ms and run_ms surface on the
// job snapshot once the job starts/finishes.
func TestStatusCarriesPerJobTiming(t *testing.T) {
	clk := &fakeClock{now: time.Unix(2000, 0)}
	gate := make(chan struct{})
	m, err := New(Config{Workers: 1, QueueSize: 4, Clock: clk.Now}, routeExec{
		"wait": func(ctx context.Context, p Payload, progress func(string)) (any, error) {
			<-gate
			return "ok", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	// First job occupies the worker; the second queues behind it.
	first, err := m.Submit(kind("wait"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first running", func() bool {
		st, _ := m.Status(first)
		return st.State == StateRunning
	})
	second, err := m.Submit(kind("wait"))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Status(second); st.QueueWaitMS != 0 || st.RunMS != 0 {
		t.Errorf("queued job must not report timing yet: %+v", st)
	}
	clk.Advance(250 * time.Millisecond) // the second job's queue wait
	close(gate)
	waitFor(t, "both done", func() bool {
		s1, _ := m.Status(first)
		s2, _ := m.Status(second)
		return s1.State == StateDone && s2.State == StateDone
	})
	st, err := m.Status(second)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueueWaitMS < 250 {
		t.Errorf("queue_wait_ms = %v, want >= 250", st.QueueWaitMS)
	}
	// The listing carries the same numbers.
	listed := m.Jobs(JobFilter{})
	for _, ls := range listed {
		if ls.ID == second && ls.QueueWaitMS != st.QueueWaitMS {
			t.Errorf("listing timing %v != status timing %v", ls.QueueWaitMS, st.QueueWaitMS)
		}
	}
}

// TestJobFilterCursor pins the cursor predicate: strictly-after semantics
// in the shared newest-first order, stable under eviction of earlier rows.
func TestJobFilterCursor(t *testing.T) {
	t0 := time.Unix(3000, 0)
	f := JobFilter{AfterCreated: t0, AfterID: "bb"}
	cases := []struct {
		created time.Time
		id      string
		want    bool
	}{
		{t0.Add(time.Second), "aa", false}, // newer → before the cursor page
		{t0, "aa", false},                  // same instant, smaller id → already served
		{t0, "bb", false},                  // the cursor row itself
		{t0, "cc", true},                   // same instant, larger id → next page
		{t0.Add(-time.Second), "aa", true}, // older → next page
	}
	for _, c := range cases {
		if got := f.AfterCursor(c.created, c.id); got != c.want {
			t.Errorf("AfterCursor(%v, %q) = %v, want %v", c.created, c.id, got, c.want)
		}
	}
	if !(JobFilter{}).AfterCursor(t0, "zz") {
		t.Error("no cursor must keep everything")
	}
	if (JobFilter{AfterID: "x"}).HasCursor() != true || (JobFilter{}).HasCursor() != false {
		t.Error("HasCursor")
	}
}
