package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// memJournal is an in-memory jobs.Journal for Manager unit tests: appends
// accumulate, Replay streams them back, and failSubmit simulates a sink
// that cannot accept new work.
type memJournal struct {
	mu         sync.Mutex
	entries    []JournalEntry
	failSubmit bool
	syncs      int
}

func (m *memJournal) Append(e JournalEntry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failSubmit && e.Op == OpSubmit {
		return errors.New("memJournal: append refused")
	}
	e.Payload = append(json.RawMessage(nil), e.Payload...)
	e.Result = append(json.RawMessage(nil), e.Result...)
	m.entries = append(m.entries, e)
	return nil
}

func (m *memJournal) Replay(fn func(e JournalEntry) error) error {
	m.mu.Lock()
	snap := append([]JournalEntry(nil), m.entries...)
	m.mu.Unlock()
	for _, e := range snap {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

func (m *memJournal) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncs++
	return nil
}

func (m *memJournal) ops() []JournalOp {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JournalOp, len(m.entries))
	for i, e := range m.entries {
		out[i] = e.Op
	}
	return out
}

// TestSummariseNearestRank pins the nearest-rank percentile over the
// window sizes that matter: the floored index it replaced reported the P95
// of a 2-sample window as the minimum.
func TestSummariseNearestRank(t *testing.T) {
	// window builds 1ms, 2ms, ..., n ms (shuffled order must not matter,
	// so feed them reversed).
	window := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(n-i) * time.Millisecond
		}
		return s
	}
	cases := []struct {
		n          int
		p50, p95   float64 // expected sample values in ms
		mean, max  float64
		checkP95Is string
	}{
		{n: 1, p50: 1, p95: 1, mean: 1, max: 1},
		// The regression case: ceil(0.95·2) = 2 → the LARGER sample.
		{n: 2, p50: 1, p95: 2, mean: 1.5, max: 2},
		{n: 3, p50: 2, p95: 3, mean: 2, max: 3},
		{n: 20, p50: 10, p95: 19, mean: 10.5, max: 20},
		{n: 256, p50: 128, p95: 244, mean: 128.5, max: 256},
	}
	for _, c := range cases {
		got := Summarise(window(c.n))
		if got.Count != c.n {
			t.Errorf("n=%d: count = %d", c.n, got.Count)
		}
		if got.P50MS != c.p50 {
			t.Errorf("n=%d: P50 = %v ms, want %v", c.n, got.P50MS, c.p50)
		}
		if got.P95MS != c.p95 {
			t.Errorf("n=%d: P95 = %v ms, want %v (nearest rank ⌈0.95·%d⌉)", c.n, got.P95MS, c.p95, c.n)
		}
		if got.MaxMS != c.max {
			t.Errorf("n=%d: Max = %v ms, want %v", c.n, got.MaxMS, c.max)
		}
		if got.MeanMS != c.mean {
			t.Errorf("n=%d: Mean = %v ms, want %v", c.n, got.MeanMS, c.mean)
		}
	}
	if got := Summarise(nil); got != (LatencyStats{}) {
		t.Errorf("empty window must summarise to zero, got %+v", got)
	}
}

// TestJournalRecoversInterruptedJobs: a Manager dropped without Close
// leaves queued/running jobs in the journal; a second Manager over the
// same journal re-enqueues and re-executes them under their original ids —
// even when they outnumber the configured queue bound.
func TestJournalRecoversInterruptedJobs(t *testing.T) {
	jrn := &memJournal{}
	block := make(chan struct{})
	defer close(block)
	m1, err := New(Config{Workers: 1, QueueSize: 2, Journal: jrn}, routeExec{
		"stuck": func(ctx context.Context, p Payload, _ func(string)) (any, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, errors.New("never finished")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 3)
	created := make([]time.Time, 3)
	for i := range ids {
		p := kind("stuck")
		p.CacheKey = fmt.Sprintf("clip-%d", i)
		if ids[i], err = m1.Submit(p); err != nil {
			t.Fatal(err)
		}
		st, err := m1.Status(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		created[i] = st.CreatedAt
		if i == 0 {
			// Let the worker take job 0 so the 2-slot queue holds 1 and 2.
			waitFor(t, "first job running", func() bool {
				st, _ := m1.Status(ids[0])
				return st.State == StateRunning
			})
		}
	}
	// Crash: m1 is abandoned without Close — no terminal records exist.

	// Recovery: 3 interrupted jobs against QueueSize 2 — replay must still
	// hold them all.
	var mu sync.Mutex
	ran := map[string]int{}
	m2, err := New(Config{Workers: 1, QueueSize: 2, Journal: jrn}, routeExec{
		"stuck": func(_ context.Context, p Payload, _ func(string)) (any, error) {
			mu.Lock()
			ran[p.CacheKey]++
			mu.Unlock()
			return "recovered:" + p.CacheKey, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	for i, id := range ids {
		waitFor(t, "recovered job done", func() bool {
			st, err := m2.Status(id)
			return err == nil && st.State == StateDone
		})
		val, err := m2.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("recovered:clip-%d", i); val != want {
			t.Errorf("job %s result = %v, want %v", id, val, want)
		}
		st, _ := m2.Status(id)
		if !st.CreatedAt.Equal(created[i]) {
			t.Errorf("job %s created_at = %v, want original %v", id, st.CreatedAt, created[i])
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for key, n := range ran {
		if n != 1 {
			t.Errorf("payload %s re-ran %d times, want exactly 1", key, n)
		}
	}
}

// TestJournalRestoresTerminalResults: finished jobs come back pollable
// with their original timestamps and are NOT re-executed; the restored
// result is the journaled JSON document.
func TestJournalRestoresTerminalResults(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	jrn := &memJournal{}
	m1, err := New(Config{Workers: 1, QueueSize: 4, Clock: clk.Now, Journal: jrn}, routeExec{
		"ok":   func(context.Context, Payload, func(string)) (any, error) { return map[string]int{"score": 7}, nil },
		"boom": func(context.Context, Payload, func(string)) (any, error) { return nil, errors.New("ga diverged") },
	})
	if err != nil {
		t.Fatal(err)
	}
	okID, err := m1.Submit(kind("ok"))
	if err != nil {
		t.Fatal(err)
	}
	boomID, err := m1.Submit(kind("boom"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	okSt, _ := m1.Status(okID)
	boomSt, _ := m1.Status(boomID)

	m2, err := New(Config{Workers: 1, QueueSize: 4, Clock: clk.Now, Journal: jrn}, routeExec{
		"ok": func(context.Context, Payload, func(string)) (any, error) {
			t.Error("restored done job re-ran")
			return nil, nil
		},
		"boom": func(context.Context, Payload, func(string)) (any, error) {
			t.Error("restored failed job re-ran")
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())

	val, err := m2.Result(okID)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := val.(json.RawMessage)
	if !ok {
		t.Fatalf("restored result is %T, want the journaled JSON document", val)
	}
	if string(raw) != `{"score":7}` {
		t.Errorf("restored result = %s", raw)
	}
	st, err := m2.Status(okID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.CreatedAt.Equal(okSt.CreatedAt) ||
		st.StartedAt == nil || !st.StartedAt.Equal(*okSt.StartedAt) ||
		st.FinishedAt == nil || !st.FinishedAt.Equal(*okSt.FinishedAt) {
		t.Errorf("restored status %+v, want original %+v", st, okSt)
	}

	if _, err := m2.Result(boomID); err == nil || err.Error() != "ga diverged" {
		t.Errorf("restored failure = %v, want the original job error", err)
	}
	if st, _ := m2.Status(boomID); st.Err != boomSt.Err || st.State != StateFailed {
		t.Errorf("restored failed status %+v, want %+v", st, boomSt)
	}

	mt := m2.Metrics()
	if mt.Submitted != 2 || mt.Completed != 1 || mt.Failed != 1 {
		t.Errorf("restored counters: %+v", mt)
	}
}

// TestJournalSkipsEvictedRecords: a TTL-evicted job writes an evict record
// and never comes back on replay.
func TestJournalSkipsEvictedRecords(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	jrn := &memJournal{}
	m1, err := New(Config{Workers: 1, QueueSize: 4, ResultTTL: time.Minute, Clock: clk.Now, Journal: jrn}, routeExec{
		"ok": func(context.Context, Payload, func(string)) (any, error) { return 1, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(kind("ok"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		st, _ := m1.Status(id)
		return st.State == StateDone
	})
	clk.Advance(2 * time.Minute)
	if _, err := m1.Status(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("job not evicted: %v", err)
	}
	_ = m1.Close(context.Background())

	ops := jrn.ops()
	if ops[len(ops)-1] != OpEvict {
		t.Fatalf("journal ops %v must end in evict", ops)
	}
	m2, err := New(Config{Workers: 1, QueueSize: 4, ResultTTL: time.Minute, Clock: clk.Now, Journal: jrn}, routeExec{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	if _, err := m2.Status(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("evicted job resurrected by replay: %v", err)
	}
	if n := len(m2.Jobs(JobFilter{})); n != 0 {
		t.Errorf("listing shows %d jobs after eviction replay", n)
	}
}

// TestJournalSubmitAppendFailureRejects: when the journal cannot record a
// submission, the submission fails and the job never executes — accepted
// work is exactly the journaled work.
func TestJournalSubmitAppendFailureRejects(t *testing.T) {
	jrn := &memJournal{failSubmit: true}
	ran := make(chan struct{}, 1)
	m, err := New(Config{Workers: 1, QueueSize: 4, Journal: jrn}, routeExec{
		"ok": func(context.Context, Payload, func(string)) (any, error) {
			ran <- struct{}{}
			return 1, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	id, err := m.Submit(kind("ok"))
	if err == nil {
		t.Fatalf("submit must fail when the journal refuses the record (id=%s)", id)
	}
	select {
	case <-ran:
		t.Error("unjournaled job executed anyway")
	case <-time.After(50 * time.Millisecond):
	}
	if got := m.Metrics().Submitted; got != 0 {
		t.Errorf("submitted counter = %d for a rejected submission", got)
	}
}

// TestManagerJobsListing: newest-first order, state filter, limit.
func TestManagerJobsListing(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	block := make(chan struct{})
	m, err := New(Config{Workers: 1, QueueSize: 8, Clock: clk.Now}, routeExec{
		"ok": func(context.Context, Payload, func(string)) (any, error) { return 1, nil },
		"stuck": func(ctx context.Context, _ Payload, _ func(string)) (any, error) {
			<-block
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		m.Close(context.Background())
	}()

	// One job per tick: done, done, then a stuck one occupying the worker.
	var ids []string
	for _, k := range []string{"ok", "ok"} {
		id, err := m.Submit(kind(k))
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "job done", func() bool {
			st, _ := m.Status(id)
			return st.State == StateDone
		})
		ids = append(ids, id)
		clk.Advance(time.Second)
	}
	stuckID, err := m.Submit(kind("stuck"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stuck job running", func() bool {
		st, _ := m.Status(stuckID)
		return st.State == StateRunning
	})

	all := m.Jobs(JobFilter{})
	if len(all) != 3 {
		t.Fatalf("listing has %d jobs, want 3", len(all))
	}
	if all[0].ID != stuckID || all[2].ID != ids[0] {
		t.Errorf("listing not newest-first: %v", []string{all[0].ID, all[1].ID, all[2].ID})
	}
	done := m.Jobs(JobFilter{State: StateDone})
	if len(done) != 2 {
		t.Errorf("state filter kept %d jobs, want 2", len(done))
	}
	if lim := m.Jobs(JobFilter{Limit: 1}); len(lim) != 1 || lim[0].ID != stuckID {
		t.Errorf("limit 1 = %+v, want just the newest", lim)
	}
}

// TestJournalHardCancelLeavesJobsInterrupted: jobs killed by the
// manager's own shutdown cancel must NOT be journaled as failed — a
// restart over the journal re-runs them, exactly like after a crash.
func TestJournalHardCancelLeavesJobsInterrupted(t *testing.T) {
	jrn := &memJournal{}
	m1, err := New(Config{Workers: 1, QueueSize: 2, Journal: jrn}, routeExec{
		"stuck": func(ctx context.Context, _ Payload, _ func(string)) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(kind("stuck"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool {
		st, _ := m1.Status(id)
		return st.State == StateRunning
	})
	// Hard cancel: the drain budget is already exhausted.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = m1.Close(ctx)
	// In-process the job reports failed (pre-journal behaviour); Close
	// returns on the expired ctx before the cancelled executor's
	// bookkeeping lands, so poll briefly.
	waitFor(t, "hard-cancelled job failed in-process", func() bool {
		st, _ := m1.Status(id)
		return st.State == StateFailed
	})
	// ...but the journal holds no terminal record, so a restart re-runs it.
	for _, op := range jrn.ops() {
		if op == OpFailed || op == OpDone {
			t.Fatalf("shutdown cancel journaled a terminal record: %v", jrn.ops())
		}
	}
	m2, err := New(Config{Workers: 1, QueueSize: 2, Journal: jrn}, routeExec{
		"stuck": func(context.Context, Payload, func(string)) (any, error) { return "rerun", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	waitFor(t, "job re-run after restart", func() bool {
		st, err := m2.Status(id)
		return err == nil && st.State == StateDone
	})
	if val, _ := m2.Result(id); val != "rerun" {
		t.Errorf("re-run result = %v", val)
	}
}
