package jobs

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// analysisRequest builds a small real request off the synthetic generator.
func analysisRequest(t *testing.T) core.Request {
	t.Helper()
	params := synth.DefaultJumpParams()
	params.Frames = 4
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	return core.Request{
		Frames:       v.Frames,
		ManualFirst:  v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
		IncludePoses: true,
	}
}

// TestPayloadRoundTripExact is the core property of the payload refactor:
// encode → JSON → decode reconstructs a request whose frames, manual pose
// and options are identical, and whose cache key equals the stamped one —
// so a remote worker computes the same content address the front end did.
func TestPayloadRoundTripExact(t *testing.T) {
	req := analysisRequest(t)
	cfgFP := ConfigFingerprint(core.DefaultConfig())

	p, err := NewAnalysisPayload(cfgFP, req)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindAnalysis || p.ConfigFP != cfgFP {
		t.Fatalf("payload header: %q %q", p.Kind, p.ConfigFP)
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Payload
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.AnalysisRequest()
	if err != nil {
		t.Fatal(err)
	}

	if got.ManualFirst != req.ManualFirst {
		t.Errorf("manual pose drifted: %+v vs %+v", got.ManualFirst, req.ManualFirst)
	}
	if got.IncludePoses != req.IncludePoses || got.IncludeSilhouettes != req.IncludeSilhouettes {
		t.Error("response shaping drifted")
	}
	if len(got.Frames) != len(req.Frames) {
		t.Fatalf("frames = %d, want %d", len(got.Frames), len(req.Frames))
	}
	for i := range got.Frames {
		if !reflect.DeepEqual(got.Frames[i], req.Frames[i]) {
			t.Fatalf("frame %d not bit-identical", i)
		}
	}
	if RequestKey(cfgFP, got) != RequestKey(cfgFP, req) {
		t.Error("decoded request hashes to a different cache key")
	}
	if key, ok := back.Key(); !ok || key != RequestKey(cfgFP, req) {
		t.Error("stamped CacheKey disagrees with the recomputed key")
	}
}

// TestPayloadArtifactEntry round-trips a mid-pipeline request: silhouettes
// in, then poses+dimensions in.
func TestPayloadArtifactEntry(t *testing.T) {
	params := synth.DefaultJumpParams()
	params.Frames = 4
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}

	// Poses + dimensions (tracking..scoring re-entry).
	req := core.Request{
		Poses:      v.Truth,
		Dimensions: v.Dims,
		Stages:     core.SelectStages(core.StageTracking, core.StageScoring),
	}
	p, err := NewAnalysisPayload("fp", req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(p)
	var back Payload
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.AnalysisRequest()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Poses, req.Poses) {
		t.Error("poses drifted through the wire")
	}
	if got.Dimensions != req.Dimensions {
		t.Error("dimensions drifted through the wire")
	}
	if got.Stages.Normalize() != req.Stages.Normalize() {
		t.Errorf("stage selection drifted: %v", got.Stages)
	}

	// Silhouettes (pose-stage re-entry): masks round-trip bit-identically
	// and the derived stats (area, centroid, bbox) are recomputed.
	mask := imaging.NewMask(9, 7)
	mask.Bits[3] = true
	mask.Bits[13] = true
	mask.Bits[62] = true
	sreq := core.Request{
		Silhouettes: []segmentation.Silhouette{segmentation.NewSilhouette(2, mask)},
		ManualFirst: v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
		Stages:      core.OnlyStage(core.StagePose),
	}
	sp, err := NewAnalysisPayload("fp", sreq)
	if err != nil {
		t.Fatal(err)
	}
	sraw, _ := json.Marshal(sp)
	var sback Payload
	if err := json.Unmarshal(sraw, &sback); err != nil {
		t.Fatal(err)
	}
	sgot, err := sback.AnalysisRequest()
	if err != nil {
		t.Fatal(err)
	}
	if len(sgot.Silhouettes) != 1 {
		t.Fatalf("silhouettes = %d", len(sgot.Silhouettes))
	}
	s := sgot.Silhouettes[0]
	if s.Frame != 2 || !reflect.DeepEqual(s.Mask.Bits, mask.Bits) {
		t.Error("mask drifted through the wire")
	}
	if s.Area != 3 {
		t.Errorf("derived area = %d, want 3", s.Area)
	}
}

// TestRequestKeyCoversArtifacts pins that the content address separates
// artifact-bearing (frame-less) requests: two re-scores over different
// poses, silhouettes or dimensions must never share a cache key — they are
// ring-placement and result-cache identities in the remote path.
func TestRequestKeyCoversArtifacts(t *testing.T) {
	params := synth.DefaultJumpParams()
	params.Frames = 4
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	base := core.Request{
		Poses:      v.Truth,
		Dimensions: v.Dims,
		Stages:     core.SelectStages(core.StageTracking, core.StageScoring),
	}
	if RequestKey("fp", base) != RequestKey("fp", base) {
		t.Fatal("identical artifact requests must share a key")
	}

	changed := base
	changed.Poses = append([]stickmodel.Pose(nil), v.Truth...)
	changed.Poses[1].Rho[3] += 0.5
	if RequestKey("fp", changed) == RequestKey("fp", base) {
		t.Error("a pose change must separate the keys")
	}

	dims := base
	dims.Dimensions.Length[2] += 1
	if RequestKey("fp", dims) == RequestKey("fp", base) {
		t.Error("a dimensions change must separate the keys")
	}

	mask := imaging.NewMask(8, 8)
	mask.Bits[5] = true
	sil := core.Request{
		Silhouettes: []segmentation.Silhouette{segmentation.NewSilhouette(0, mask)},
		ManualFirst: v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
		Stages:      core.OnlyStage(core.StagePose),
	}
	mask2 := imaging.NewMask(8, 8)
	mask2.Bits[6] = true
	sil2 := sil
	sil2.Silhouettes = []segmentation.Silhouette{segmentation.NewSilhouette(0, mask2)}
	if RequestKey("fp", sil) == RequestKey("fp", sil2) {
		t.Error("a silhouette change must separate the keys")
	}
}

func TestPayloadRejectsCorruptWire(t *testing.T) {
	if _, err := (Payload{Kind: "bogus/v9"}).AnalysisRequest(); err == nil {
		t.Error("unknown kind must be rejected")
	}
	bad := Payload{Kind: KindAnalysis, Frames: []FrameWire{{W: 2, H: 2, RGB: []byte{1, 2, 3}}}}
	if _, err := bad.AnalysisRequest(); err == nil {
		t.Error("truncated frame bytes must be rejected")
	}
	badPose := Payload{Kind: KindAnalysis, Manual: &PoseWire{X: 1, Y: 1, Rho: []float64{1, 2}}}
	if _, err := badPose.AnalysisRequest(); err == nil {
		t.Error("short rho vector must be rejected")
	}
	badSel := Payload{Kind: KindAnalysis, Stages: "warp"}
	if _, err := badSel.AnalysisRequest(); err == nil {
		t.Error("unknown stage selection must be rejected")
	}
	badMask := Payload{Kind: KindAnalysis, Silhouettes: []SilhouetteWire{{W: 8, H: 8, Mask: []byte{0}}}}
	if _, err := badMask.AnalysisRequest(); err == nil {
		t.Error("truncated mask must be rejected")
	}
}

func TestMaskPacking(t *testing.T) {
	m := imaging.NewMask(10, 3)
	for _, i := range []int{0, 7, 8, 9, 15, 29} {
		m.Bits[i] = true
	}
	back, err := UnpackMask(10, 3, PackMask(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Bits, m.Bits) {
		t.Error("pack/unpack not a round trip")
	}
	if _, err := UnpackMask(0, 3, nil); err == nil {
		t.Error("zero-size mask must be rejected")
	}
}

// TestFitProfileSeparatesKeys pins the cache-identity half of the fit
// profile contract: the same clip analysed under the default and fast
// profiles is different work — distinct config fingerprints, distinct
// request keys, so neither the result cache nor a worker node's cache can
// ever serve one profile's poses for the other's request.
func TestFitProfileSeparatesKeys(t *testing.T) {
	req := analysisRequest(t)

	defCfg := core.DefaultConfig()
	fastCfg := core.DefaultConfig()
	fastCfg.Pose.Profile = pose.FastProfile()

	defFP := ConfigFingerprint(defCfg)
	fastFP := ConfigFingerprint(fastCfg)
	if defFP == fastFP {
		t.Fatal("default and fast profiles must produce distinct config fingerprints")
	}
	if ConfigFingerprint(defCfg) != defFP {
		t.Fatal("fingerprint must be deterministic")
	}

	defKey := RequestKey(defFP, req)
	fastKey := RequestKey(fastFP, req)
	if defKey == fastKey {
		t.Fatal("same clip under different profiles must have distinct request keys")
	}
}
