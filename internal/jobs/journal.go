package jobs

import (
	"encoding/json"
	"time"
)

// JournalOp names one kind of journal record. The ops mirror the job
// lifecycle (submit → running → done|failed) plus the TTL eviction that
// retires a record, so an append-only log of them is sufficient to rebuild
// the Manager's whole job table.
type JournalOp string

// Journal record operations.
const (
	OpSubmit  JournalOp = "submit"
	OpRunning JournalOp = "running"
	OpDone    JournalOp = "done"
	OpFailed  JournalOp = "failed"
	OpEvict   JournalOp = "evict"
)

// Terminal reports whether the op ends a job's execution. Terminal appends
// are the ones a durable journal fsyncs (see internal/journal): losing a
// submit record loses at most an acknowledgement, losing a done record
// only costs a re-execution, but serving a result whose record may
// disappear would break the restart contract.
func (o JournalOp) Terminal() bool { return o == OpDone || o == OpFailed }

// JournalEntry is one record of the job journal. Submission records carry
// the full serializable Payload — everything needed to re-execute the job
// after a restart; done records carry the result document as JSON; failed
// records the error text. At is the Manager-clock timestamp of the
// transition, so replayed jobs keep their original times.
//
// The payload and result travel pre-encoded (json.RawMessage): a clip
// payload is megabytes, and encoding it inside Append — which the Manager
// calls under its table lock — would stall every concurrent poller for
// the duration of the marshal. The Manager encodes both outside the lock.
type JournalEntry struct {
	Op JournalOp `json:"op"`
	ID string    `json:"id"`
	At time.Time `json:"at"`
	// Payload is the marshalled Payload, set on submit records only.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Result is the marshalled result document of a done record. A done
	// record without a result (the value did not serialize) is treated as
	// interrupted on replay and the job re-runs.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure message of a failed record.
	Error string `json:"error,omitempty"`
}

// Journal is the durability seam of the Manager: an append-only record
// sink plus the replay that rebuilds state from it. internal/journal's
// file-backed WAL is the canonical implementation; tests substitute
// in-memory fakes.
//
// Append MUST be safe for concurrent use: cheap lifecycle records
// (submit/running/evict) are appended under the Manager's lock, but
// terminal records are appended by worker goroutines OUTSIDE it — with
// Workers > 1, concurrent Appends happen. Implementations must not
// re-enter the Manager. Replay must stream every live record in append
// order; records of evicted jobs may be omitted (compaction does exactly
// that).
type Journal interface {
	// Append durably records one entry. The implementation decides its
	// fsync policy; returning an error from a submit append rejects the
	// submission.
	Append(e JournalEntry) error
	// Replay streams the journal's records in append order into fn,
	// stopping at fn's first error.
	Replay(fn func(e JournalEntry) error) error
	// Sync flushes buffered records to stable storage (graceful shutdown)
	// and may apply deferred log maintenance.
	Sync() error
}
