package imaging

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskAtOutOfBounds(t *testing.T) {
	m := NewMask(3, 3)
	m.Set(1, 1, true)
	if m.At(-1, 0) || m.At(3, 0) || m.At(0, -1) || m.At(0, 3) {
		t.Error("out-of-bounds At must return false")
	}
	if !m.At(1, 1) {
		t.Error("Set/At roundtrip failed")
	}
}

func TestMaskCountAndEmpty(t *testing.T) {
	m := NewMask(4, 4)
	if !m.Empty() || m.Count() != 0 {
		t.Error("new mask should be empty")
	}
	m.Set(0, 0, true)
	m.Set(3, 3, true)
	if m.Count() != 2 || m.Empty() {
		t.Errorf("Count = %d, want 2", m.Count())
	}
}

func TestMaskCentroid(t *testing.T) {
	m := NewMask(5, 5)
	if _, _, ok := m.Centroid(); ok {
		t.Error("empty mask must have no centroid")
	}
	m.Set(1, 1, true)
	m.Set(3, 1, true)
	m.Set(1, 3, true)
	m.Set(3, 3, true)
	cx, cy, ok := m.Centroid()
	if !ok || cx != 2 || cy != 2 {
		t.Errorf("Centroid = (%v,%v,%v), want (2,2,true)", cx, cy, ok)
	}
}

func TestMaskBBox(t *testing.T) {
	m := NewMask(6, 6)
	if _, ok := m.BBox(); ok {
		t.Error("empty mask must have no bbox")
	}
	m.Set(2, 1, true)
	m.Set(4, 3, true)
	bb, ok := m.BBox()
	if !ok || bb != (Rect{X0: 2, Y0: 1, X1: 4, Y1: 3}) {
		t.Errorf("BBox = %+v", bb)
	}
	if bb.W() != 3 || bb.H() != 3 || bb.Area() != 9 {
		t.Errorf("W/H/Area = %d/%d/%d", bb.W(), bb.H(), bb.Area())
	}
	if !bb.Contains(3, 2) || bb.Contains(5, 2) {
		t.Error("Contains wrong")
	}
}

func TestMaskBooleanOps(t *testing.T) {
	a := NewMask(3, 1)
	b := NewMask(3, 1)
	a.Bits = []bool{true, true, false}
	b.Bits = []bool{false, true, true}

	and := a.Clone()
	if err := and.And(b); err != nil {
		t.Fatal(err)
	}
	if got := and.Bits; got[0] || !got[1] || got[2] {
		t.Errorf("And = %v", got)
	}

	or := a.Clone()
	if err := or.Or(b); err != nil {
		t.Fatal(err)
	}
	if got := or.Bits; !got[0] || !got[1] || !got[2] {
		t.Errorf("Or = %v", got)
	}

	sub := a.Clone()
	if err := sub.Subtract(b); err != nil {
		t.Fatal(err)
	}
	if got := sub.Bits; !got[0] || got[1] || got[2] {
		t.Errorf("Subtract = %v", got)
	}

	inv := a.Clone()
	inv.Invert()
	if got := inv.Bits; got[0] || got[1] || !got[2] {
		t.Errorf("Invert = %v", got)
	}
}

func TestMaskOpsSizeMismatch(t *testing.T) {
	a, b := NewMask(2, 2), NewMask(3, 3)
	if a.And(b) == nil || a.Or(b) == nil || a.Subtract(b) == nil {
		t.Error("size mismatch must error")
	}
}

// Property: A∧B ⊆ A ⊆ A∨B for random masks.
func TestMaskLatticeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a, b := randomMask(rng, 8, 8), randomMask(rng, 8, 8)
		and := a.Clone()
		if err := and.And(b); err != nil {
			t.Fatal(err)
		}
		or := a.Clone()
		if err := or.Or(b); err != nil {
			t.Fatal(err)
		}
		for i := range a.Bits {
			if and.Bits[i] && !a.Bits[i] {
				t.Fatal("A∧B ⊄ A")
			}
			if a.Bits[i] && !or.Bits[i] {
				t.Fatal("A ⊄ A∨B")
			}
		}
	}
}

// Property: double inversion is the identity.
func TestMaskInvertInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMask(rng, 7, 5)
		orig := m.Clone()
		m.Invert()
		m.Invert()
		for i := range m.Bits {
			if m.Bits[i] != orig.Bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMaskPointsRowMajor(t *testing.T) {
	m := NewMask(3, 2)
	m.Set(2, 0, true)
	m.Set(0, 1, true)
	pts := m.Points()
	if len(pts) != 2 || pts[0] != (Point{2, 0}) || pts[1] != (Point{0, 1}) {
		t.Errorf("Points = %v", pts)
	}
}

func TestMaskApply(t *testing.T) {
	img := NewImageFilled(2, 2, Red)
	m := NewMask(2, 2)
	m.Set(0, 0, true)
	out, err := m.Apply(img, Black)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != Red || out.At(1, 1) != Black {
		t.Errorf("Apply result wrong: %v", out.Pix)
	}
	if _, err := m.Apply(NewImage(3, 3), Black); err == nil {
		t.Error("Apply size mismatch must error")
	}
}

func TestMaskToGray(t *testing.T) {
	m := NewMask(2, 1)
	m.Set(1, 0, true)
	g := m.ToGray()
	if g.Pix[0] != 0 || g.Pix[1] != 255 {
		t.Errorf("ToGray = %v", g.Pix)
	}
}

func randomMask(rng *rand.Rand, w, h int) *Mask {
	m := NewMask(w, h)
	for i := range m.Bits {
		m.Bits[i] = rng.Intn(2) == 0
	}
	return m
}
