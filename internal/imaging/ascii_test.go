package imaging

import (
	"strings"
	"testing"
)

func TestASCIIMaskShowsShape(t *testing.T) {
	m := NewMask(32, 32)
	FillRectMask(m, Rect{X0: 8, Y0: 8, X1: 23, Y1: 23})
	art := ASCIIMask(m, 32)
	if !strings.Contains(art, "@") {
		t.Errorf("dense block missing from art:\n%s", art)
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no output")
	}
	if strings.TrimSpace(lines[0]) != "" {
		t.Errorf("top rows should be empty, got %q", lines[0])
	}
}

func TestASCIIMaskEmptyIsBlank(t *testing.T) {
	art := ASCIIMask(NewMask(16, 16), 16)
	if strings.Trim(art, " \n") != "" {
		t.Errorf("empty mask should render blank, got %q", art)
	}
}

func TestASCIIMaskWidthBound(t *testing.T) {
	m := NewMask(100, 50)
	art := ASCIIMask(m, 40)
	for _, line := range strings.Split(strings.TrimRight(art, "\n"), "\n") {
		if len(line) > 50 {
			t.Errorf("line wider than bound: %d", len(line))
		}
	}
	// Zero maxW selects a sane default rather than panicking.
	_ = ASCIIMask(m, 0)
}

func TestASCIIGrayDarkIsDense(t *testing.T) {
	g := NewGray(8, 8) // all zero = dark
	art := ASCIIGray(g, 8)
	if !strings.Contains(art, "@") {
		t.Errorf("dark plane should be dense:\n%q", art)
	}
	for i := range g.Pix {
		g.Pix[i] = 255
	}
	art = ASCIIGray(g, 8)
	if strings.ContainsAny(art, "@#%") {
		t.Errorf("bright plane should be sparse:\n%q", art)
	}
}

func TestSideBySide(t *testing.T) {
	a := "ab\ncd\n"
	b := "x\ny\nz\n"
	out := SideBySide(" | ", a, b)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 rows, got %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "ab | x") {
		t.Errorf("row 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "   | z") {
		t.Errorf("row 2 = %q (short block should pad)", lines[2])
	}
}
