package imaging

import "strings"

// asciiRamp orders characters from empty to dense; index scales with the
// fraction of covered pixels in a character cell.
const asciiRamp = " .:-=+*#%@"

// ASCIIMask renders a mask as ASCII art at most maxW characters wide.
// Character cells are 1:2 (height:width) corrected so shapes keep their
// aspect ratio in a terminal. This is how the repository reproduces the
// paper's silhouette figures without a display.
func ASCIIMask(m *Mask, maxW int) string {
	if maxW <= 0 {
		maxW = 64
	}
	cellW := (m.W + maxW - 1) / maxW
	if cellW < 1 {
		cellW = 1
	}
	cellH := cellW * 2
	rows := (m.H + cellH - 1) / cellH
	cols := (m.W + cellW - 1) / cellW
	var sb strings.Builder
	sb.Grow(rows * (cols + 1))
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			set, total := 0, 0
			for y := cy * cellH; y < (cy+1)*cellH && y < m.H; y++ {
				for x := cx * cellW; x < (cx+1)*cellW && x < m.W; x++ {
					total++
					if m.Bits[y*m.W+x] {
						set++
					}
				}
			}
			sb.WriteByte(rampChar(set, total))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ASCIIGray renders a grayscale plane as ASCII art at most maxW characters
// wide, dark pixels dense.
func ASCIIGray(g *Gray, maxW int) string {
	if maxW <= 0 {
		maxW = 64
	}
	cellW := (g.W + maxW - 1) / maxW
	if cellW < 1 {
		cellW = 1
	}
	cellH := cellW * 2
	rows := (g.H + cellH - 1) / cellH
	cols := (g.W + cellW - 1) / cellW
	var sb strings.Builder
	sb.Grow(rows * (cols + 1))
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			sum, total := 0, 0
			for y := cy * cellH; y < (cy+1)*cellH && y < g.H; y++ {
				for x := cx * cellW; x < (cx+1)*cellW && x < g.W; x++ {
					total++
					sum += int(g.Pix[y*g.W+x])
				}
			}
			if total == 0 {
				sb.WriteByte(' ')
				continue
			}
			mean := sum / total
			idx := (255 - mean) * (len(asciiRamp) - 1) / 255
			sb.WriteByte(asciiRamp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func rampChar(set, total int) byte {
	if total == 0 || set == 0 {
		return ' '
	}
	idx := set * (len(asciiRamp) - 1) / total
	if idx == 0 {
		idx = 1 // any coverage should be visible
	}
	return asciiRamp[idx]
}

// SideBySide joins multi-line blocks horizontally with a gutter, padding each
// block to its own width. Used by the figure harness to mimic the paper's
// (a)/(b) panel layout.
func SideBySide(gutter string, blocks ...string) string {
	split := make([][]string, len(blocks))
	widths := make([]int, len(blocks))
	rows := 0
	for i, b := range blocks {
		split[i] = strings.Split(strings.TrimRight(b, "\n"), "\n")
		for _, line := range split[i] {
			if len(line) > widths[i] {
				widths[i] = len(line)
			}
		}
		if len(split[i]) > rows {
			rows = len(split[i])
		}
	}
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for i := range split {
			line := ""
			if r < len(split[i]) {
				line = split[i][r]
			}
			sb.WriteString(line)
			if i < len(split)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(line)))
				sb.WriteString(gutter)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
