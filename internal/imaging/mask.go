package imaging

import "fmt"

// Mask is a dense binary raster. True marks a foreground pixel.
type Mask struct {
	W, H int
	Bits []bool
}

// NewMask returns an empty (all-false) w×h mask.
func NewMask(w, h int) *Mask {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid mask size %dx%d", w, h))
	}
	return &Mask{W: w, H: h, Bits: make([]bool, w*h)}
}

// In reports whether (x, y) lies inside the mask.
func (m *Mask) In(x, y int) bool { return x >= 0 && x < m.W && y >= 0 && y < m.H }

// At returns the bit at (x, y); out-of-bounds reads return false so neighbour
// scans need no explicit border handling.
func (m *Mask) At(x, y int) bool {
	if !m.In(x, y) {
		return false
	}
	return m.Bits[y*m.W+x]
}

// Set writes the bit at (x, y) when in bounds.
func (m *Mask) Set(x, y int, v bool) {
	if m.In(x, y) {
		m.Bits[y*m.W+x] = v
	}
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	out := NewMask(m.W, m.H)
	copy(out.Bits, m.Bits)
	return out
}

// Count returns the number of set pixels.
func (m *Mask) Count() int {
	n := 0
	for _, b := range m.Bits {
		if b {
			n++
		}
	}
	return n
}

// Empty reports whether no pixel is set.
func (m *Mask) Empty() bool { return m.Count() == 0 }

// SameSize reports whether o has identical dimensions.
func (m *Mask) SameSize(o *Mask) bool { return o != nil && m.W == o.W && m.H == o.H }

// Points returns the coordinates of all set pixels in row-major order.
func (m *Mask) Points() []Point {
	pts := make([]Point, 0, 256)
	for y := 0; y < m.H; y++ {
		row := y * m.W
		for x := 0; x < m.W; x++ {
			if m.Bits[row+x] {
				pts = append(pts, Point{X: x, Y: y})
			}
		}
	}
	return pts
}

// Centroid returns the mean coordinate of set pixels and ok=false when the
// mask is empty.
func (m *Mask) Centroid() (cx, cy float64, ok bool) {
	var sx, sy, n int
	for y := 0; y < m.H; y++ {
		row := y * m.W
		for x := 0; x < m.W; x++ {
			if m.Bits[row+x] {
				sx += x
				sy += y
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0, false
	}
	return float64(sx) / float64(n), float64(sy) / float64(n), true
}

// BBox returns the tight bounding box of set pixels and ok=false when empty.
func (m *Mask) BBox() (r Rect, ok bool) {
	minX, minY := m.W, m.H
	maxX, maxY := -1, -1
	for y := 0; y < m.H; y++ {
		row := y * m.W
		for x := 0; x < m.W; x++ {
			if !m.Bits[row+x] {
				continue
			}
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxX < 0 {
		return Rect{}, false
	}
	return Rect{X0: minX, Y0: minY, X1: maxX, Y1: maxY}, true
}

// And intersects m with o in place. Sizes must match.
func (m *Mask) And(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("mask and: %w", ErrSizeMismatch)
	}
	for i := range m.Bits {
		m.Bits[i] = m.Bits[i] && o.Bits[i]
	}
	return nil
}

// Or unions o into m in place. Sizes must match.
func (m *Mask) Or(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("mask or: %w", ErrSizeMismatch)
	}
	for i := range m.Bits {
		m.Bits[i] = m.Bits[i] || o.Bits[i]
	}
	return nil
}

// Subtract clears every pixel of m that is set in o. Sizes must match.
func (m *Mask) Subtract(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("mask subtract: %w", ErrSizeMismatch)
	}
	for i := range m.Bits {
		if o.Bits[i] {
			m.Bits[i] = false
		}
	}
	return nil
}

// Invert flips every bit in place.
func (m *Mask) Invert() {
	for i := range m.Bits {
		m.Bits[i] = !m.Bits[i]
	}
}

// ToGray renders the mask as a grayscale plane (255 for set pixels).
func (m *Mask) ToGray() *Gray {
	g := NewGray(m.W, m.H)
	for i, b := range m.Bits {
		if b {
			g.Pix[i] = 255
		}
	}
	return g
}

// Apply returns a copy of img with pixels outside the mask replaced by bg.
// It reproduces the paper's Figure 3(b): the segmented object "in original
// colors".
func (m *Mask) Apply(img *Image, bg Color) (*Image, error) {
	if m.W != img.W || m.H != img.H {
		return nil, fmt.Errorf("mask apply: %w", ErrSizeMismatch)
	}
	out := NewImageFilled(img.W, img.H, bg)
	for i, b := range m.Bits {
		if b {
			out.Pix[i] = img.Pix[i]
		}
	}
	return out, nil
}

// Point is an integer pixel coordinate.
type Point struct {
	X, Y int
}

// Rect is an inclusive integer rectangle.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle width in pixels.
func (r Rect) W() int { return r.X1 - r.X0 + 1 }

// H returns the rectangle height in pixels.
func (r Rect) H() int { return r.Y1 - r.Y0 + 1 }

// Area returns the number of pixels covered by the rectangle.
func (r Rect) Area() int { return r.W() * r.H() }

// Contains reports whether (x, y) is inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x <= r.X1 && y >= r.Y0 && y <= r.Y1
}
