package imaging

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// EncodePPM writes img as a binary PPM (P6) stream.
func EncodePPM(w io.Writer, img *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", img.W, img.H); err != nil {
		return fmt.Errorf("ppm header: %w", err)
	}
	buf := make([]byte, 0, img.W*3)
	for y := 0; y < img.H; y++ {
		buf = buf[:0]
		for x := 0; x < img.W; x++ {
			p := img.Pix[y*img.W+x]
			buf = append(buf, p.R, p.G, p.B)
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("ppm row %d: %w", y, err)
		}
	}
	return bw.Flush()
}

// DecodePPM reads a binary PPM (P6) stream.
func DecodePPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := readPNMToken(br)
	if err != nil {
		return nil, fmt.Errorf("ppm magic: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("ppm: unsupported magic %q", magic)
	}
	w, h, maxV, err := readPNMDims(br)
	if err != nil {
		return nil, err
	}
	if maxV != 255 {
		return nil, fmt.Errorf("ppm: unsupported maxval %d", maxV)
	}
	img := NewImage(w, h)
	row := make([]byte, w*3)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("ppm row %d: %w", y, err)
		}
		for x := 0; x < w; x++ {
			img.Pix[y*w+x] = Color{row[x*3], row[x*3+1], row[x*3+2]}
		}
	}
	return img, nil
}

// EncodePGM writes g as a binary PGM (P5) stream.
func EncodePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return fmt.Errorf("pgm header: %w", err)
	}
	if _, err := bw.Write(g.Pix); err != nil {
		return fmt.Errorf("pgm pixels: %w", err)
	}
	return bw.Flush()
}

// DecodePGM reads a binary PGM (P5) stream.
func DecodePGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	magic, err := readPNMToken(br)
	if err != nil {
		return nil, fmt.Errorf("pgm magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("pgm: unsupported magic %q", magic)
	}
	w, h, maxV, err := readPNMDims(br)
	if err != nil {
		return nil, err
	}
	if maxV != 255 {
		return nil, fmt.Errorf("pgm: unsupported maxval %d", maxV)
	}
	g := NewGray(w, h)
	if _, err := io.ReadFull(br, g.Pix); err != nil {
		return nil, fmt.Errorf("pgm pixels: %w", err)
	}
	return g, nil
}

// EncodePBM writes m as a plain PBM (P1) stream. Plain format keeps the mask
// output diff-able in experiments.
func EncodePBM(w io.Writer, m *Mask) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P1\n%d %d\n", m.W, m.H); err != nil {
		return fmt.Errorf("pbm header: %w", err)
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			b := byte('0')
			if m.Bits[y*m.W+x] {
				b = '1'
			}
			if err := bw.WriteByte(b); err != nil {
				return fmt.Errorf("pbm row %d: %w", y, err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("pbm row %d: %w", y, err)
		}
	}
	return bw.Flush()
}

// DecodePBM reads a plain PBM (P1) stream.
func DecodePBM(r io.Reader) (*Mask, error) {
	br := bufio.NewReader(r)
	magic, err := readPNMToken(br)
	if err != nil {
		return nil, fmt.Errorf("pbm magic: %w", err)
	}
	if magic != "P1" {
		return nil, fmt.Errorf("pbm: unsupported magic %q", magic)
	}
	wTok, err := readPNMToken(br)
	if err != nil {
		return nil, fmt.Errorf("pbm width: %w", err)
	}
	hTok, err := readPNMToken(br)
	if err != nil {
		return nil, fmt.Errorf("pbm height: %w", err)
	}
	w, err := strconv.Atoi(wTok)
	if err != nil {
		return nil, fmt.Errorf("pbm width %q: %w", wTok, err)
	}
	h, err := strconv.Atoi(hTok)
	if err != nil {
		return nil, fmt.Errorf("pbm height %q: %w", hTok, err)
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("pbm: unreasonable size %dx%d", w, h)
	}
	m := NewMask(w, h)
	for i := 0; i < w*h; {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("pbm pixel %d: %w", i, err)
		}
		switch b {
		case '0':
			i++
		case '1':
			m.Bits[i] = true
			i++
		case ' ', '\t', '\n', '\r':
		default:
			return nil, fmt.Errorf("pbm: unexpected byte %q", b)
		}
	}
	return m, nil
}

// WritePPMFile writes img to a PPM file at path.
func WritePPMFile(path string, img *Image) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return EncodePPM(f, img)
}

// ReadPPMFile reads a PPM image from path.
func ReadPPMFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	img, err := DecodePPM(f)
	if err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return img, nil
}

// WritePGMFile writes g to a PGM file at path.
func WritePGMFile(path string, g *Gray) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return EncodePGM(f, g)
}

// readPNMToken skips whitespace and # comments, returning the next token.
func readPNMToken(br *bufio.Reader) (string, error) {
	tok := make([]byte, 0, 8)
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			if len(tok) > 0 {
				return string(tok), br.UnreadByte()
			}
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func readPNMDims(br *bufio.Reader) (w, h, maxV int, err error) {
	toks := [3]int{}
	for i := range toks {
		t, err := readPNMToken(br)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("pnm dims: %w", err)
		}
		v, err := strconv.Atoi(t)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("pnm dims %q: %w", t, err)
		}
		toks[i] = v
	}
	if toks[0] <= 0 || toks[1] <= 0 || toks[0]*toks[1] > 1<<28 {
		return 0, 0, 0, fmt.Errorf("pnm: unreasonable size %dx%d", toks[0], toks[1])
	}
	return toks[0], toks[1], toks[2], nil
}
