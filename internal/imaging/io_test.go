package imaging

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestPPMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	img := NewImage(17, 9)
	for i := range img.Pix {
		img.Pix[i] = Color{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	var buf bytes.Buffer
	if err := EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != img.W || got.H != img.H {
		t.Fatalf("size %dx%d, want %dx%d", got.W, got.H, img.W, img.H)
	}
	for i := range img.Pix {
		if got.Pix[i] != img.Pix[i] {
			t.Fatalf("pixel %d = %v, want %v", i, got.Pix[i], img.Pix[i])
		}
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := NewGray(5, 4)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 13)
	}
	var buf bytes.Buffer
	if err := EncodePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 5 || got.H != 4 {
		t.Fatalf("size %dx%d", got.W, got.H)
	}
	for i := range g.Pix {
		if got.Pix[i] != g.Pix[i] {
			t.Fatalf("pixel %d mismatch", i)
		}
	}
}

func TestPBMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMask(rng, 13, 7)
	var buf bytes.Buffer
	if err := EncodePBM(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePBM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Bits {
		if got.Bits[i] != m.Bits[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestDecodePPMComments(t *testing.T) {
	data := "P6\n# a comment\n2 1\n# another\n255\n" + string([]byte{1, 2, 3, 4, 5, 6})
	img, err := DecodePPM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if img.At(0, 0) != (Color{1, 2, 3}) || img.At(1, 0) != (Color{4, 5, 6}) {
		t.Errorf("pixels: %v", img.Pix)
	}
}

func TestDecodePPMErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"wrong magic", "P5\n2 2\n255\n"},
		{"bad maxval", "P6\n2 2\n65535\n"},
		{"truncated", "P6\n4 4\n255\nxx"},
		{"zero size", "P6\n0 2\n255\n"},
		{"garbage dims", "P6\nab cd\n255\n"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodePPM(strings.NewReader(tt.data)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestDecodePBMErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"wrong magic", "P2\n2 2\n"},
		{"bad byte", "P1\n2 1\n0X\n"},
		{"truncated", "P1\n3 3\n01"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodePBM(strings.NewReader(tt.data)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPPMFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frame.ppm")
	img := NewImageFilled(3, 3, Red)
	if err := WritePPMFile(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPPMFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1, 1) != Red {
		t.Error("file roundtrip lost pixels")
	}
}

func TestWritePGMFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mask.pgm")
	if err := WritePGMFile(path, NewGray(2, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestReadPPMFileMissing(t *testing.T) {
	if _, err := ReadPPMFile(filepath.Join(t.TempDir(), "nope.ppm")); err == nil {
		t.Error("expected error for missing file")
	}
}
