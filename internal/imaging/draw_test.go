package imaging

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Basics(t *testing.T) {
	a := Vec2{3, 4}
	if a.Len() != 5 {
		t.Errorf("Len = %v, want 5", a.Len())
	}
	if got := a.Add(Vec2{1, 1}); got != (Vec2{4, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(Vec2{1, 1}); got != (Vec2{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(2); got != (Vec2{6, 8}) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Dot(Vec2{2, 1}); got != 10 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Dist(Vec2{0, 0}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestSegmentPointDist(t *testing.T) {
	seg := Segment{A: Vec2{0, 0}, B: Vec2{10, 0}}
	tests := []struct {
		name string
		p    Vec2
		want float64
	}{
		{"on segment", Vec2{5, 0}, 0},
		{"above middle", Vec2{5, 3}, 3},
		{"beyond B", Vec2{13, 4}, 5},
		{"before A", Vec2{-3, -4}, 5},
		{"at endpoint", Vec2{10, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := seg.PointDist(tt.p); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("PointDist(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestSegmentPointDistDegenerate(t *testing.T) {
	seg := Segment{A: Vec2{2, 2}, B: Vec2{2, 2}}
	if got := seg.PointDist(Vec2{5, 6}); got != 5 {
		t.Errorf("degenerate PointDist = %v, want 5", got)
	}
}

// Property: PointDist is bounded below by distance to the infinite line and
// above by distance to either endpoint.
func TestSegmentPointDistBoundsProperty(t *testing.T) {
	f := func(ax, ay, bx, by, px, py int8) bool {
		seg := Segment{
			A: Vec2{float64(ax), float64(ay)},
			B: Vec2{float64(bx), float64(by)},
		}
		p := Vec2{float64(px), float64(py)}
		d := seg.PointDist(p)
		dA := p.Dist(seg.A)
		dB := p.Dist(seg.B)
		return d <= dA+1e-9 && d <= dB+1e-9 && d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentAtAndMid(t *testing.T) {
	seg := Segment{A: Vec2{0, 0}, B: Vec2{4, 8}}
	if got := seg.At(0.5); got != seg.Mid() {
		t.Errorf("At(0.5) = %v, Mid = %v", got, seg.Mid())
	}
	if seg.At(0) != seg.A || seg.At(1) != seg.B {
		t.Error("At endpoints wrong")
	}
	if seg.Len() != math.Hypot(4, 8) {
		t.Errorf("Len = %v", seg.Len())
	}
}

func TestDrawLineEndpoints(t *testing.T) {
	img := NewImage(10, 10)
	DrawLine(img, 1, 1, 8, 6, Red)
	if img.At(1, 1) != Red || img.At(8, 6) != Red {
		t.Error("line endpoints not drawn")
	}
}

func TestDrawLineClipsSafely(t *testing.T) {
	img := NewImage(5, 5)
	// Must not panic even when the line leaves the canvas.
	DrawLine(img, -3, -3, 8, 8, Red)
	if img.At(2, 2) != Red {
		t.Error("diagonal through centre missing")
	}
}

func TestDrawLineMask(t *testing.T) {
	m := NewMask(10, 10)
	DrawLineMask(m, 0, 0, 9, 0)
	for x := 0; x < 10; x++ {
		if !m.At(x, 0) {
			t.Errorf("horizontal line missing pixel %d", x)
		}
	}
}

func TestFillCapsuleMaskRadius(t *testing.T) {
	m := NewMask(21, 21)
	seg := Segment{A: Vec2{10, 10}, B: Vec2{10, 10}}
	FillCapsuleMask(m, seg, 3)
	if !m.At(10, 10) || !m.At(13, 10) || !m.At(10, 7) {
		t.Error("disc pixels missing")
	}
	if m.At(14, 10) || m.At(10, 14) {
		t.Error("disc exceeded radius")
	}
	// Every set pixel must be within the radius.
	for _, p := range m.Points() {
		d := math.Hypot(float64(p.X-10), float64(p.Y-10))
		if d > 3 {
			t.Errorf("pixel (%d,%d) at distance %v > 3", p.X, p.Y, d)
		}
	}
}

func TestFillCapsuleNegativeRadiusNoop(t *testing.T) {
	m := NewMask(5, 5)
	FillCapsuleMask(m, Segment{A: Vec2{2, 2}, B: Vec2{3, 3}}, -1)
	if !m.Empty() {
		t.Error("negative radius must draw nothing")
	}
}

func TestFillCapsuleImageMatchesMask(t *testing.T) {
	img := NewImage(20, 20)
	m := NewMask(20, 20)
	seg := Segment{A: Vec2{4, 4}, B: Vec2{15, 12}}
	FillCapsule(img, seg, 2.5, Green)
	FillCapsuleMask(m, seg, 2.5)
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			got := img.At(x, y) == Green
			if got != m.At(x, y) {
				t.Fatalf("capsule image/mask disagree at (%d,%d)", x, y)
			}
		}
	}
}

func TestFillRectClips(t *testing.T) {
	img := NewImage(4, 4)
	FillRect(img, Rect{X0: -2, Y0: -2, X1: 1, Y1: 1}, Blue)
	if img.At(0, 0) != Blue || img.At(1, 1) != Blue || img.At(2, 2) == Blue {
		t.Error("FillRect clipping wrong")
	}
	m := NewMask(4, 4)
	FillRectMask(m, Rect{X0: 2, Y0: 2, X1: 9, Y1: 9})
	if !m.At(3, 3) || m.At(1, 1) {
		t.Error("FillRectMask clipping wrong")
	}
}

func TestDrawCross(t *testing.T) {
	img := NewImage(9, 9)
	DrawCross(img, 4, 4, 2, Red)
	for d := -2; d <= 2; d++ {
		if img.At(4+d, 4) != Red || img.At(4, 4+d) != Red {
			t.Fatal("cross arms missing")
		}
	}
	if img.At(3, 3) == Red {
		t.Error("cross filled diagonal")
	}
}

func TestFillCircle(t *testing.T) {
	img := NewImage(11, 11)
	FillCircle(img, 5, 5, 2, Red)
	if img.At(5, 5) != Red || img.At(7, 5) != Red || img.At(8, 5) == Red {
		t.Error("circle fill wrong")
	}
	m := NewMask(11, 11)
	FillCircleMask(m, 5, 5, 2)
	if !m.At(5, 5) || m.At(8, 5) {
		t.Error("circle mask wrong")
	}
}
