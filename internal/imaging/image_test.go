package imaging

import (
	"testing"
	"testing/quick"
)

func TestColorLuma(t *testing.T) {
	tests := []struct {
		name string
		c    Color
		want uint8
	}{
		{"black", Black, 0},
		{"white", White, 255},
		{"pure red", Color{255, 0, 0}, 76},
		{"pure green", Color{0, 255, 0}, 149},
		{"pure blue", Color{0, 0, 255}, 29},
		{"mid gray", Color{128, 128, 128}, 128},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Luma(); got != tt.want {
				t.Errorf("Luma(%v) = %d, want %d", tt.c, got, tt.want)
			}
		})
	}
}

func TestColorMaxChanDiff(t *testing.T) {
	tests := []struct {
		name string
		a, b Color
		want int
	}{
		{"identical", Color{10, 20, 30}, Color{10, 20, 30}, 0},
		{"red dominates", Color{200, 20, 30}, Color{10, 25, 35}, 190},
		{"green dominates", Color{10, 200, 30}, Color{12, 20, 35}, 180},
		{"blue dominates", Color{10, 20, 200}, Color{12, 25, 30}, 170},
		{"symmetric", Color{0, 0, 0}, Color{5, 10, 15}, 15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.MaxChanDiff(tt.b); got != tt.want {
				t.Errorf("MaxChanDiff = %d, want %d", got, tt.want)
			}
			if got := tt.b.MaxChanDiff(tt.a); got != tt.want {
				t.Errorf("MaxChanDiff reversed = %d, want %d (must be symmetric)", got, tt.want)
			}
		})
	}
}

func TestColorMaxChanDiffSymmetryProperty(t *testing.T) {
	f := func(r1, g1, b1, r2, g2, b2 uint8) bool {
		a := Color{r1, g1, b1}
		b := Color{r2, g2, b2}
		d := a.MaxChanDiff(b)
		return d == b.MaxChanDiff(a) && d >= 0 && d <= 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColorScale(t *testing.T) {
	c := Color{100, 200, 50}
	if got := c.Scale(0.5); got != (Color{50, 100, 25}) {
		t.Errorf("Scale(0.5) = %v", got)
	}
	if got := c.Scale(2); got != (Color{200, 255, 100}) {
		t.Errorf("Scale(2) should clamp: %v", got)
	}
	if got := c.Scale(0); got != Black {
		t.Errorf("Scale(0) = %v, want black", got)
	}
	if got := c.Scale(-1); got != Black {
		t.Errorf("Scale(-1) = %v, want black", got)
	}
}

func TestColorLerp(t *testing.T) {
	a, b := Black, White
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
	mid := a.Lerp(b, 0.5)
	if mid.R < 127 || mid.R > 128 {
		t.Errorf("Lerp(0.5).R = %d, want ~127", mid.R)
	}
}

func TestNewImagePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewImage(0, 5) should panic")
		}
	}()
	NewImage(0, 5)
}

func TestImageSetAtClipping(t *testing.T) {
	img := NewImage(4, 3)
	img.Set(2, 1, Red)
	if img.At(2, 1) != Red {
		t.Error("Set/At roundtrip failed")
	}
	// Out-of-bounds writes are silently ignored.
	img.Set(-1, 0, Red)
	img.Set(4, 0, Red)
	img.Set(0, 3, Red)
	for i, p := range img.Pix {
		if p == Red && i != 1*4+2 {
			t.Errorf("out-of-bounds write leaked to index %d", i)
		}
	}
}

func TestImageCloneIndependence(t *testing.T) {
	img := NewImageFilled(3, 3, Blue)
	cl := img.Clone()
	cl.Set(0, 0, Red)
	if img.At(0, 0) != Blue {
		t.Error("Clone shares storage with original")
	}
	if !img.SameSize(cl) {
		t.Error("clone size mismatch")
	}
}

func TestImageGray(t *testing.T) {
	img := NewImageFilled(2, 2, White)
	img.Set(0, 0, Black)
	g := img.Gray()
	if g.At(0, 0) != 0 || g.At(1, 1) != 255 {
		t.Errorf("Gray conversion wrong: %v", g.Pix)
	}
}

func TestAbsDiff(t *testing.T) {
	a := NewGray(2, 2)
	b := NewGray(2, 2)
	a.Pix = []uint8{10, 200, 0, 255}
	b.Pix = []uint8{20, 100, 0, 0}
	d, err := AbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{10, 100, 0, 255}
	for i := range want {
		if d.Pix[i] != want[i] {
			t.Errorf("AbsDiff[%d] = %d, want %d", i, d.Pix[i], want[i])
		}
	}
}

func TestAbsDiffSizeMismatch(t *testing.T) {
	if _, err := AbsDiff(NewGray(2, 2), NewGray(3, 2)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestGraySetOutOfBoundsIgnored(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(5, 5, 9)
	for _, v := range g.Pix {
		if v != 0 {
			t.Error("out-of-bounds gray write leaked")
		}
	}
}
