package imaging

import "math"

// Vec2 is a 2-D point or vector in continuous image coordinates
// (x right, y down unless a caller states otherwise).
type Vec2 struct {
	X, Y float64
}

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Mul returns v scaled by s.
func (v Vec2) Mul(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and o.
func (v Vec2) Dist(o Vec2) float64 { return math.Hypot(v.X-o.X, v.Y-o.Y) }

// Segment is a 2-D line segment between A and B.
type Segment struct {
	A, B Vec2
}

// Len returns the segment length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Mid returns the segment midpoint.
func (s Segment) Mid() Vec2 { return Vec2{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2} }

// PointDist returns the Euclidean distance from p to the closest point of the
// segment. This is the geometric core of the pose-estimation fitness
// function (Eq. 3 of the paper).
func (s Segment) PointDist(p Vec2) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(s.A.Add(d.Mul(t)))
}

// At returns the point at parameter t in [0,1] along the segment.
func (s Segment) At(t float64) Vec2 {
	return Vec2{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
}

// DrawLine draws a 1-pixel Bresenham line on img.
func DrawLine(img *Image, x0, y0, x1, y1 int, c Color) {
	dx := absInt(x1 - x0)
	dy := -absInt(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		img.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// DrawLineMask draws a 1-pixel Bresenham line on a mask.
func DrawLineMask(m *Mask, x0, y0, x1, y1 int) {
	dx := absInt(x1 - x0)
	dy := -absInt(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		m.Set(x0, y0, true)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// FillCapsule fills every pixel within radius r of segment seg with c.
// A capsule (thick line with round caps) is the rendering primitive for body
// sticks in the synthetic jumper.
func FillCapsule(img *Image, seg Segment, r float64, c Color) {
	forEachCapsulePixel(img.W, img.H, seg, r, func(x, y int) { img.Pix[y*img.W+x] = c })
}

// FillCapsuleMask sets every mask pixel within radius r of segment seg.
func FillCapsuleMask(m *Mask, seg Segment, r float64) {
	forEachCapsulePixel(m.W, m.H, seg, r, func(x, y int) { m.Bits[y*m.W+x] = true })
}

func forEachCapsulePixel(w, h int, seg Segment, r float64, set func(x, y int)) {
	if r < 0 {
		return
	}
	minX := int(math.Floor(math.Min(seg.A.X, seg.B.X) - r))
	maxX := int(math.Ceil(math.Max(seg.A.X, seg.B.X) + r))
	minY := int(math.Floor(math.Min(seg.A.Y, seg.B.Y) - r))
	maxY := int(math.Ceil(math.Max(seg.A.Y, seg.B.Y) + r))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX >= w {
		maxX = w - 1
	}
	if maxY >= h {
		maxY = h - 1
	}
	r2 := r * r
	d := seg.B.Sub(seg.A)
	l2 := d.Dot(d)
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			p := Vec2{float64(x), float64(y)}
			var dist2 float64
			if l2 == 0 {
				dp := p.Sub(seg.A)
				dist2 = dp.Dot(dp)
			} else {
				t := p.Sub(seg.A).Dot(d) / l2
				if t < 0 {
					t = 0
				} else if t > 1 {
					t = 1
				}
				dp := p.Sub(seg.A.Add(d.Mul(t)))
				dist2 = dp.Dot(dp)
			}
			if dist2 <= r2 {
				set(x, y)
			}
		}
	}
}

// FillCircle fills a disc of radius r centred at (cx, cy).
func FillCircle(img *Image, cx, cy, r float64, c Color) {
	FillCapsule(img, Segment{A: Vec2{cx, cy}, B: Vec2{cx, cy}}, r, c)
}

// FillCircleMask sets a disc of radius r centred at (cx, cy).
func FillCircleMask(m *Mask, cx, cy, r float64) {
	FillCapsuleMask(m, Segment{A: Vec2{cx, cy}, B: Vec2{cx, cy}}, r)
}

// FillRect fills the inclusive rectangle with c, clipped to the image.
func FillRect(img *Image, r Rect, c Color) {
	for y := maxIntD(r.Y0, 0); y <= minIntD(r.Y1, img.H-1); y++ {
		for x := maxIntD(r.X0, 0); x <= minIntD(r.X1, img.W-1); x++ {
			img.Pix[y*img.W+x] = c
		}
	}
}

// FillRectMask sets the inclusive rectangle, clipped to the mask.
func FillRectMask(m *Mask, r Rect) {
	for y := maxIntD(r.Y0, 0); y <= minIntD(r.Y1, m.H-1); y++ {
		for x := maxIntD(r.X0, 0); x <= minIntD(r.X1, m.W-1); x++ {
			m.Bits[y*m.W+x] = true
		}
	}
}

func maxIntD(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minIntD(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DrawCross draws a small + marker, used when rendering stick-model joints
// onto figures.
func DrawCross(img *Image, x, y, arm int, c Color) {
	for d := -arm; d <= arm; d++ {
		img.Set(x+d, y, c)
		img.Set(x, y+d, c)
	}
}
