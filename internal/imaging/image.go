// Package imaging provides the raster substrate used by the whole system:
// RGB frames, grayscale planes, binary masks, drawing primitives, PPM/PGM/PBM
// encoding, and terminal-friendly ASCII rendering.
//
// The package is deliberately self-contained (stdlib only) and uses plain
// slices rather than image.Image so that hot loops in the segmentation and
// pose-estimation pipelines can index pixels directly.
package imaging

import (
	"errors"
	"fmt"
)

// Color is a 24-bit RGB colour. It is the pixel type for Image.
type Color struct {
	R, G, B uint8
}

// Common colours used by the synthetic renderer and figure output.
var (
	Black = Color{0, 0, 0}
	White = Color{255, 255, 255}
	Red   = Color{220, 40, 40}
	Green = Color{40, 180, 60}
	Blue  = Color{50, 80, 210}
	Gray5 = Color{128, 128, 128}
)

// Luma returns the Rec.601 luma of c in [0,255].
func (c Color) Luma() uint8 {
	// Integer approximation: (299R + 587G + 114B) / 1000.
	return uint8((299*int(c.R) + 587*int(c.G) + 114*int(c.B)) / 1000)
}

// MaxChanDiff returns the largest per-channel absolute difference between c
// and o. It is the colour distance used by background subtraction.
func (c Color) MaxChanDiff(o Color) int {
	d := absInt(int(c.R) - int(o.R))
	if g := absInt(int(c.G) - int(o.G)); g > d {
		d = g
	}
	if b := absInt(int(c.B) - int(o.B)); b > d {
		d = b
	}
	return d
}

// Scale multiplies each channel by f, clamping to [0,255]. It is used by the
// synthetic renderer for illumination flicker and shadow darkening.
func (c Color) Scale(f float64) Color {
	return Color{clampU8(float64(c.R) * f), clampU8(float64(c.G) * f), clampU8(float64(c.B) * f)}
}

// Lerp linearly interpolates between c and o with t in [0,1].
func (c Color) Lerp(o Color, t float64) Color {
	return Color{
		clampU8(float64(c.R) + t*(float64(o.R)-float64(c.R))),
		clampU8(float64(c.G) + t*(float64(o.G)-float64(c.G))),
		clampU8(float64(c.B) + t*(float64(o.B)-float64(c.B))),
	}
}

func clampU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Image is a dense RGB raster with row-major pixel storage.
type Image struct {
	W, H int
	Pix  []Color
}

// NewImage returns a w×h image filled with black.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]Color, w*h)}
}

// NewImageFilled returns a w×h image filled with c.
func NewImageFilled(w, h int, c Color) *Image {
	img := NewImage(w, h)
	for i := range img.Pix {
		img.Pix[i] = c
	}
	return img
}

// In reports whether (x, y) lies inside the image bounds.
func (m *Image) In(x, y int) bool { return x >= 0 && x < m.W && y >= 0 && y < m.H }

// At returns the pixel at (x, y). It panics on out-of-bounds access, matching
// slice semantics; callers on hot paths bound-check once per row instead.
func (m *Image) At(x, y int) Color { return m.Pix[y*m.W+x] }

// Set writes the pixel at (x, y) if it is in bounds; out-of-bounds writes are
// ignored so drawing primitives can clip implicitly.
func (m *Image) Set(x, y int, c Color) {
	if m.In(x, y) {
		m.Pix[y*m.W+x] = c
	}
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	out := NewImage(m.W, m.H)
	copy(out.Pix, m.Pix)
	return out
}

// Fill sets every pixel to c.
func (m *Image) Fill(c Color) {
	for i := range m.Pix {
		m.Pix[i] = c
	}
}

// Gray converts the image to a grayscale plane using Rec.601 luma.
func (m *Image) Gray() *Gray {
	g := NewGray(m.W, m.H)
	for i, p := range m.Pix {
		g.Pix[i] = p.Luma()
	}
	return g
}

// SameSize reports whether o has identical dimensions.
func (m *Image) SameSize(o *Image) bool { return o != nil && m.W == o.W && m.H == o.H }

// Gray is a dense single-channel 8-bit raster.
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray returns a w×h grayscale plane initialised to zero.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid gray size %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// In reports whether (x, y) lies inside the plane.
func (g *Gray) In(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// At returns the value at (x, y).
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// Set writes v at (x, y) when in bounds.
func (g *Gray) Set(x, y int, v uint8) {
	if g.In(x, y) {
		g.Pix[y*g.W+x] = v
	}
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// ErrSizeMismatch is returned by operations that require equally sized rasters.
var ErrSizeMismatch = errors.New("imaging: raster size mismatch")

// AbsDiff returns |a-b| per pixel. The two planes must be the same size.
func AbsDiff(a, b *Gray) (*Gray, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("abs diff %dx%d vs %dx%d: %w", a.W, a.H, b.W, b.H, ErrSizeMismatch)
	}
	out := NewGray(a.W, a.H)
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		out.Pix[i] = uint8(d)
	}
	return out, nil
}
